// Package pagerank implements the PageRank convention shared by all
// three execution models of the paper (Eq. 1):
//
//	PR(v) = alpha/|V| + (1-alpha) * sum_{u in In(v)} PR(u)/outdeg(u)
//
// where alpha is the teleportation probability and |V| counts the
// window's active vertices (vertices incident to at least one edge).
// Inactive vertices hold rank 0. Mass leaving dangling active vertices
// (out-degree zero, possible in directed mode) is redistributed
// uniformly over the active set, so ranks always sum to 1.
//
// The package provides the sequential pull kernel used by the offline
// baseline and a deliberately independent dense oracle (Reference) used
// by tests across the repository.
package pagerank

import (
	"fmt"
	"math"

	"pmpr/internal/csr"
)

// Options control the iteration.
type Options struct {
	// Alpha is the teleportation probability (paper's alpha; a damping
	// factor d corresponds to Alpha = 1-d).
	Alpha float64
	// Tol is the L1 convergence threshold between iterates.
	Tol float64
	// MaxIter caps the number of iterations.
	MaxIter int
}

// Defaults returns the options used throughout the evaluation:
// alpha = 0.15, tol = 1e-8, at most 100 iterations.
func Defaults() Options {
	return Options{Alpha: 0.15, Tol: 1e-8, MaxIter: 100}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return fmt.Errorf("pagerank: alpha %v outside (0, 1)", o.Alpha)
	}
	if o.Tol <= 0 {
		return fmt.Errorf("pagerank: tolerance %v must be positive", o.Tol)
	}
	if o.MaxIter <= 0 {
		return fmt.Errorf("pagerank: max iterations %d must be positive", o.MaxIter)
	}
	return nil
}

// Result is the outcome of a PageRank computation on one window graph.
type Result struct {
	// Ranks has one entry per vertex of the universe; inactive vertices
	// are 0 and active ranks sum to 1.
	Ranks []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Converged reports whether the L1 delta fell below Tol before
	// MaxIter was reached.
	Converged bool
	// ActiveVertices is |V_i| of the window graph.
	ActiveVertices int32
}

// Run computes PageRank on g. If init is non-nil it is used as the
// starting vector (it must have length g.NumVertices(); entries at
// inactive vertices are ignored and treated as 0; the active entries
// are renormalized to sum to 1). A nil init means the full uniform
// initialization 1/|V_i|.
func Run(g *csr.Graph, init []float64, opt Options) (Result, error) {
	if err := opt.Validate(); err != nil {
		return Result{}, err
	}
	n := g.NumVertices()
	if init != nil && int32(len(init)) != n {
		return Result{}, fmt.Errorf("pagerank: init length %d != vertex count %d", len(init), n)
	}

	active := make([]bool, n)
	var na int32
	for v := int32(0); v < n; v++ {
		if g.Active(v) {
			active[v] = true
			na++
		}
	}
	if na == 0 {
		return Result{Ranks: make([]float64, n), Converged: true}, nil
	}

	x := make([]float64, n)
	if init == nil {
		u := 1 / float64(na)
		for v := int32(0); v < n; v++ {
			if active[v] {
				x[v] = u
			}
		}
	} else {
		var sum float64
		for v := int32(0); v < n; v++ {
			if active[v] && init[v] > 0 {
				sum += init[v]
			}
		}
		if sum <= 0 {
			u := 1 / float64(na)
			for v := int32(0); v < n; v++ {
				if active[v] {
					x[v] = u
				}
			}
		} else {
			for v := int32(0); v < n; v++ {
				if active[v] && init[v] > 0 {
					x[v] = init[v] / sum
				}
			}
		}
	}

	y := make([]float64, n)
	invNA := 1 / float64(na)
	res := Result{ActiveVertices: na}
	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		// Scaled contributions z[u] = x[u]/outdeg(u), dangling mass
		// accumulated separately.
		var dangling float64
		for u := int32(0); u < n; u++ {
			if !active[u] {
				continue
			}
			if d := g.OutDegree(u); d == 0 {
				dangling += x[u]
			}
		}
		base := opt.Alpha*invNA + (1-opt.Alpha)*dangling*invNA
		var delta float64
		for v := int32(0); v < n; v++ {
			if !active[v] {
				continue
			}
			var acc float64
			for _, u := range g.InNeighbors(v) {
				acc += x[u] / float64(g.OutDegree(u))
			}
			nv := base + (1-opt.Alpha)*acc
			delta += math.Abs(nv - x[v])
			y[v] = nv
		}
		x, y = y, x
		if delta < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = x
	return res, nil
}

// Reference computes PageRank with an intentionally naive, map-based
// dense implementation. It shares no code with Run and is the oracle the
// rest of the repository tests against. It is O(|V|^2 + |E|) per
// iteration; use it only on small graphs.
func Reference(g *csr.Graph, opt Options) ([]float64, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n := int(g.NumVertices())
	outdeg := make(map[int32]int)
	inlist := make(map[int32][]int32)
	activeSet := make(map[int32]bool)
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.OutNeighbors(u) {
			outdeg[u]++
			inlist[v] = append(inlist[v], u)
			activeSet[u] = true
			activeSet[v] = true
		}
	}
	na := len(activeSet)
	ranks := make([]float64, n)
	if na == 0 {
		return ranks, nil
	}
	x := make(map[int32]float64, na)
	for v := range activeSet {
		x[v] = 1 / float64(na)
	}
	for it := 0; it < opt.MaxIter; it++ {
		var dangling float64
		for v := range activeSet {
			if outdeg[v] == 0 {
				dangling += x[v]
			}
		}
		y := make(map[int32]float64, na)
		var delta float64
		for v := range activeSet {
			acc := 0.0
			for _, u := range inlist[v] {
				acc += x[u] / float64(outdeg[u])
			}
			y[v] = opt.Alpha/float64(na) + (1-opt.Alpha)*(acc+dangling/float64(na))
			delta += math.Abs(y[v] - x[v])
		}
		x = y
		if delta < opt.Tol {
			break
		}
	}
	for v, r := range x {
		ranks[v] = r
	}
	return ranks, nil
}
