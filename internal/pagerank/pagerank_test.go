package pagerank

import (
	"math"
	"math/rand"
	"testing"

	"pmpr/internal/csr"
	"pmpr/internal/events"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func mustGraph(t *testing.T, evs []events.Event, n int32) *csr.Graph {
	t.Helper()
	g, err := csr.FromEvents(evs, n)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	return g
}

func rankSum(ranks []float64) float64 {
	s := 0.0
	for _, r := range ranks {
		s += r
	}
	return s
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Alpha: 0, Tol: 1e-8, MaxIter: 10},
		{Alpha: 1, Tol: 1e-8, MaxIter: 10},
		{Alpha: 0.15, Tol: 0, MaxIter: 10},
		{Alpha: 0.15, Tol: 1e-8, MaxIter: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestTwoNodeCycle(t *testing.T) {
	g := mustGraph(t, []events.Event{ev(0, 1, 1), ev(1, 0, 2)}, 2)
	res, err := Run(g, nil, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged {
		t.Fatal("two-node cycle did not converge")
	}
	if math.Abs(res.Ranks[0]-0.5) > 1e-9 || math.Abs(res.Ranks[1]-0.5) > 1e-9 {
		t.Fatalf("ranks = %v, want [0.5 0.5]", res.Ranks)
	}
}

func TestStarGraphCenterWins(t *testing.T) {
	// Leaves 1..5 all point to 0, and 0 points back to each: center
	// must outrank every leaf, leaves are symmetric.
	var evs []events.Event
	for i := int32(1); i <= 5; i++ {
		evs = append(evs, ev(i, 0, int64(i)), ev(0, i, int64(i)))
	}
	g := mustGraph(t, evs, 6)
	res, err := Run(g, nil, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i <= 5; i++ {
		if res.Ranks[0] <= res.Ranks[i] {
			t.Fatalf("center rank %v not above leaf %d rank %v", res.Ranks[0], i, res.Ranks[i])
		}
	}
	for i := 2; i <= 5; i++ {
		if math.Abs(res.Ranks[i]-res.Ranks[1]) > 1e-9 {
			t.Fatalf("leaves not symmetric: %v vs %v", res.Ranks[i], res.Ranks[1])
		}
	}
	if math.Abs(rankSum(res.Ranks)-1) > 1e-9 {
		t.Fatalf("ranks sum to %v, want 1", rankSum(res.Ranks))
	}
}

func TestDanglingMassRedistributed(t *testing.T) {
	// 0 -> 1, 1 has no out-edges: without dangling handling mass drains.
	g := mustGraph(t, []events.Event{ev(0, 1, 1)}, 2)
	res, err := Run(g, nil, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(rankSum(res.Ranks)-1) > 1e-9 {
		t.Fatalf("ranks sum to %v, want 1", rankSum(res.Ranks))
	}
	if res.Ranks[1] <= res.Ranks[0] {
		t.Fatalf("sink should outrank source: %v", res.Ranks)
	}
}

func TestInactiveVerticesZero(t *testing.T) {
	g := mustGraph(t, []events.Event{ev(0, 1, 1), ev(1, 0, 1)}, 10)
	res, err := Run(g, nil, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ActiveVertices != 2 {
		t.Fatalf("ActiveVertices = %d, want 2", res.ActiveVertices)
	}
	for v := 2; v < 10; v++ {
		if res.Ranks[v] != 0 {
			t.Fatalf("inactive vertex %d has rank %v", v, res.Ranks[v])
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustGraph(t, nil, 4)
	res, err := Run(g, nil, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Converged || rankSum(res.Ranks) != 0 {
		t.Fatalf("empty graph: converged=%v sum=%v", res.Converged, rankSum(res.Ranks))
	}
}

func randomGraph(rng *rand.Rand, n int32, m int) []events.Event {
	evs := make([]events.Event, m)
	for i := range evs {
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), int64(i))
	}
	return evs
}

func TestRunMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := int32(rng.Intn(30) + 2)
		g := mustGraph(t, randomGraph(rng, n, rng.Intn(150)), n)
		opt := Defaults()
		res, err := Run(g, nil, opt)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		want, err := Reference(g, opt)
		if err != nil {
			t.Fatalf("Reference: %v", err)
		}
		for v := range want {
			if math.Abs(res.Ranks[v]-want[v]) > 1e-6 {
				t.Fatalf("trial %d: vertex %d: Run=%v Reference=%v", trial, v, res.Ranks[v], want[v])
			}
		}
	}
}

func TestRankSumInvariantEveryIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := int32(rng.Intn(25) + 2)
		g := mustGraph(t, randomGraph(rng, n, rng.Intn(100)+1), n)
		// Run with MaxIter = 1, 2, 3: the sum must be 1 after every
		// number of iterations, not just at convergence.
		for iters := 1; iters <= 3; iters++ {
			opt := Options{Alpha: 0.15, Tol: 1e-300, MaxIter: iters}
			res, err := Run(g, nil, opt)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if g.ActiveCount() > 0 && math.Abs(rankSum(res.Ranks)-1) > 1e-9 {
				t.Fatalf("trial %d iters %d: sum=%v", trial, iters, rankSum(res.Ranks))
			}
		}
	}
}

func TestWarmStartSameFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := int32(rng.Intn(25) + 3)
		g := mustGraph(t, randomGraph(rng, n, rng.Intn(120)+5), n)
		opt := Defaults()
		cold, err := Run(g, nil, opt)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		// Arbitrary positive init, unnormalized on purpose.
		init := make([]float64, n)
		for i := range init {
			init[i] = rng.Float64() + 0.01
		}
		warm, err := Run(g, init, opt)
		if err != nil {
			t.Fatalf("Run warm: %v", err)
		}
		for v := range cold.Ranks {
			if math.Abs(cold.Ranks[v]-warm.Ranks[v]) > 1e-6 {
				t.Fatalf("trial %d: fixed points differ at %d: %v vs %v", trial, v, cold.Ranks[v], warm.Ranks[v])
			}
		}
	}
}

func TestWarmStartNearSolutionConvergesFaster(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := int32(60)
	g := mustGraph(t, randomGraph(rng, n, 500), n)
	opt := Defaults()
	cold, err := Run(g, nil, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	warm, err := Run(g, cold.Ranks, opt)
	if err != nil {
		t.Fatalf("Run warm: %v", err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
}

func TestWarmStartZeroInitFallsBackToUniform(t *testing.T) {
	g := mustGraph(t, []events.Event{ev(0, 1, 1), ev(1, 0, 1)}, 2)
	init := []float64{0, 0}
	res, err := Run(g, init, Defaults())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if math.Abs(rankSum(res.Ranks)-1) > 1e-9 {
		t.Fatalf("sum = %v", rankSum(res.Ranks))
	}
}

func TestRunRejectsBadInitLength(t *testing.T) {
	g := mustGraph(t, []events.Event{ev(0, 1, 1)}, 2)
	if _, err := Run(g, []float64{1}, Defaults()); err == nil {
		t.Fatal("short init accepted")
	}
}

func TestHigherAlphaFlattensRanks(t *testing.T) {
	// With alpha -> 1 everything tends to uniform; verify monotonic
	// flattening on an asymmetric graph.
	g := mustGraph(t, []events.Event{
		ev(1, 0, 1), ev(2, 0, 1), ev(3, 0, 1), ev(0, 1, 1),
	}, 4)
	spreadAt := func(alpha float64) float64 {
		res, err := Run(g, nil, Options{Alpha: alpha, Tol: 1e-12, MaxIter: 500})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range res.Ranks {
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		return hi - lo
	}
	if !(spreadAt(0.05) > spreadAt(0.5) && spreadAt(0.5) > spreadAt(0.95)) {
		t.Fatalf("spread not decreasing in alpha: %v %v %v", spreadAt(0.05), spreadAt(0.5), spreadAt(0.95))
	}
}
