package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedFastPath(t *testing.T) {
	r := NewRegistry(1)
	if r.Enabled() {
		t.Fatal("fresh registry reports enabled")
	}
	if err := r.Inject("some.point"); err != nil {
		t.Fatalf("disarmed Inject: %v", err)
	}
	if got := r.Injected(); got != 0 {
		t.Fatalf("Injected = %d, want 0", got)
	}
}

func TestErrorModeCountAndAfter(t *testing.T) {
	r := NewRegistry(1)
	cancel := r.Arm(Rule{Point: "p", Mode: ModeError, After: 2, Count: 2})
	defer cancel()

	var errs int
	for i := 0; i < 5; i++ {
		if err := r.Inject("p"); err != nil {
			errs++
			var fe *Error
			if !errors.As(err, &fe) || fe.Point != "p" {
				t.Fatalf("hit %d: error %v is not a fault at p", i, err)
			}
			if i == 0 {
				t.Fatal("fired on the first hit despite after=2")
			}
		}
	}
	if errs != 2 {
		t.Fatalf("fired %d times, want 2 (after=2, count=2)", errs)
	}
	if got := r.Injected(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
}

func TestCancelRemovesRule(t *testing.T) {
	r := NewRegistry(1)
	cancel := r.Arm(Rule{Point: "p", Mode: ModeError, Count: 0})
	if err := r.Inject("p"); err == nil {
		t.Fatal("armed rule did not fire")
	}
	cancel()
	if r.Enabled() {
		t.Fatal("registry still enabled after the only rule was canceled")
	}
	if err := r.Inject("p"); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	r := NewRegistry(1)
	defer r.Arm(Rule{Point: "p", Mode: ModePanic})()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("ModePanic did not panic")
		}
		fe, ok := rec.(*Error)
		if !ok || fe.Point != "p" {
			t.Fatalf("panic value = %#v, want *Error at p", rec)
		}
	}()
	_ = r.Inject("p")
}

func TestDelayMode(t *testing.T) {
	r := NewRegistry(1)
	defer r.Arm(Rule{Point: "p", Mode: ModeDelay, Delay: 20 * time.Millisecond})()
	start := time.Now()
	if err := r.Inject("p"); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}
}

func TestProbDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []bool {
		r := NewRegistry(seed)
		defer r.Arm(Rule{Point: "p", Mode: ModeError, Prob: 0.5, Count: 0})()
		out := make([]bool, 64)
		for i := range out {
			out[i] = r.Inject("p") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical firing patterns (suspicious)")
	}
}

func TestParseRule(t *testing.T) {
	rule, err := ParseRule("core.solve.window:panic:after=3,count=0,msg=boom")
	if err != nil {
		t.Fatal(err)
	}
	want := Rule{Point: "core.solve.window", Mode: ModePanic, After: 3, Count: 0, Msg: "boom"}
	if rule != want {
		t.Fatalf("ParseRule = %+v, want %+v", rule, want)
	}
	if _, err := ParseRule("p"); err == nil {
		t.Fatal("missing mode accepted")
	}
	if _, err := ParseRule("p:explode"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := ParseRule("p:error:count=x"); err == nil {
		t.Fatal("bad count accepted")
	}
	if _, err := ParseRule("p:error:frequency=2"); err == nil {
		t.Fatal("unknown option accepted")
	}
}

func TestArmSpecMultipleAndUndo(t *testing.T) {
	r := NewRegistry(1)
	cancel, err := r.ArmSpec("a:error; b:delay:delay=1ms ;; c:error:count=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Inject("a"); err == nil {
		t.Fatal("a not armed")
	}
	if err := r.Inject("c"); err == nil {
		t.Fatal("c not armed")
	}
	cancel()
	if r.Enabled() {
		t.Fatal("registry enabled after spec cancel")
	}
	if _, err := r.ArmSpec("a:error; bad"); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if r.Enabled() {
		t.Fatal("failed ArmSpec left rules armed")
	}
}

func TestPointCatalog(t *testing.T) {
	r := NewRegistry(1)
	r.RegisterPoint("b.point", "second")
	r.RegisterPoint("a.point", "first")
	pts := r.Points()
	if len(pts) != 2 || pts[0] != "a.point" || pts[1] != "b.point" {
		t.Fatalf("Points = %v", pts)
	}
	if r.Describe("a.point") != "first" {
		t.Fatalf("Describe = %q", r.Describe("a.point"))
	}
}

func TestDefaultWrappers(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	defer Arm(Rule{Point: "wrap.p", Mode: ModeError})()
	if !Enabled() {
		t.Fatal("default registry not enabled")
	}
	if err := Inject("wrap.p"); err == nil {
		t.Fatal("default Inject did not fire")
	}
}
