// Package fault is a deterministic, seeded fault-injection registry.
// Production code marks failure-prone seams with named injection points
// (fault.Inject("core.solve.window")); tests and chaos runs arm rules
// against those points to force errors, panics, or delays exactly where
// — and exactly as often as — the scenario calls for. Because rules
// fire on hit counters (and an optional seeded RNG), every failure
// path the solve pipeline recovers from is reproducible: the same
// arming always faults the same attempts.
//
// The package is built to disappear when disarmed: Inject first checks
// one atomic bool, so an unarmed binary pays a single atomic load per
// injection point. Points sit at window/batch/stage boundaries, never
// inside kernel iteration loops.
//
// Arming is programmatic (Arm, with a cancel function for tests) or
// declarative via a spec string, the form the PMPR_FAULTPOINTS
// environment variable uses:
//
//	point:mode[:key=value[,key=value...]][;point:mode...]
//
// with mode one of error, panic, delay and keys after (skip the first
// N-1 hits), count (fire at most N times, default 1, 0 = unlimited),
// prob (fire with seeded probability instead of on every eligible
// hit), delay (sleep duration for mode delay, default 1ms), and msg
// (error text). Examples:
//
//	PMPR_FAULTPOINTS='core.solve.window:panic'            # first window solve panics once
//	PMPR_FAULTPOINTS='core.solve.batch:error:after=3,count=0'  # every batch from the 3rd errors
//	PMPR_FAULTPOINTS='events.read_binary:delay:delay=50ms'
package fault

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is what an armed rule does when it fires.
type Mode int

const (
	// ModeError makes Inject return an *Error.
	ModeError Mode = iota
	// ModePanic makes Inject panic with an *Error value.
	ModePanic
	// ModeDelay makes Inject sleep for the rule's delay, then proceed.
	ModeDelay
)

// String names the mode as used in spec strings.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Error is the failure an armed injection point produces: the error
// ModeError returns and the value ModePanic panics with. Detect
// injected faults with errors.As.
type Error struct {
	// Point is the injection point that fired.
	Point string
	// Msg is the rule's message (defaults to "injected fault").
	Msg string
}

// Error renders the fault with its point name.
func (e *Error) Error() string { return fmt.Sprintf("fault: %s at %s", e.Msg, e.Point) }

// Rule arms one injection point.
type Rule struct {
	// Point is the injection point name the rule matches.
	Point string
	// Mode selects error, panic, or delay behavior.
	Mode Mode
	// After skips the first After-1 hits of the point; 0 or 1 means the
	// rule is eligible from the first hit.
	After int
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Prob, when in (0, 1), gates each eligible hit on the registry's
	// seeded RNG; 0 (or >= 1) fires deterministically on every eligible
	// hit.
	Prob float64
	// Delay is the sleep for ModeDelay (default 1ms).
	Delay time.Duration
	// Msg overrides the injected error text.
	Msg string
}

type armedRule struct {
	Rule
	hits  atomic.Int64 // times the point was reached while this rule was armed
	fired atomic.Int64 // times the rule actually fired
}

// Registry holds armed rules and the injection-point catalog. The zero
// value is not usable; use NewRegistry. Most code uses the package
// default registry through the top-level functions.
type Registry struct {
	enabled atomic.Bool // fast path: any rule armed?

	mu     sync.Mutex
	rules  map[string][]*armedRule
	rng    *rand.Rand
	points map[string]string // name -> description (the catalog)

	injected atomic.Int64 // total faults fired (error+panic+delay)
}

// NewRegistry returns an empty registry seeded with seed.
func NewRegistry(seed int64) *Registry {
	return &Registry{
		rules:  map[string][]*armedRule{},
		rng:    rand.New(rand.NewSource(seed)),
		points: map[string]string{},
	}
}

// Default is the package-level registry the top-level functions use.
// It is armed from PMPR_FAULTPOINTS at process start.
var Default = NewRegistry(1)

func init() {
	if spec := os.Getenv("PMPR_FAULTPOINTS"); spec != "" {
		if _, err := Default.ArmSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring PMPR_FAULTPOINTS: %v\n", err)
		}
	}
	if seed := os.Getenv("PMPR_FAULTSEED"); seed != "" {
		if v, err := strconv.ParseInt(seed, 10, 64); err == nil {
			Default.Seed(v)
		}
	}
}

// RegisterPoint adds an injection point to the catalog. Call it from
// the package that owns the Inject site, so Points() enumerates every
// seam a chaos run can arm. Re-registering a name overwrites its
// description.
func (r *Registry) RegisterPoint(name, desc string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points[name] = desc
}

// Points returns the registered injection-point names, sorted.
func (r *Registry) Points() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.points))
	for name := range r.points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe returns an injection point's registered description.
func (r *Registry) Describe(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.points[name]
}

// Seed re-seeds the RNG that probabilistic rules draw from.
func (r *Registry) Seed(seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng = rand.New(rand.NewSource(seed))
}

// Arm adds a rule and returns a cancel function removing exactly that
// rule (test helper: defer the cancel, or use t.Cleanup).
func (r *Registry) Arm(rule Rule) (cancel func()) {
	ar := &armedRule{Rule: rule}
	r.mu.Lock()
	r.rules[rule.Point] = append(r.rules[rule.Point], ar)
	r.mu.Unlock()
	r.enabled.Store(true)
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		list := r.rules[ar.Point]
		for i, x := range list {
			if x == ar {
				r.rules[ar.Point] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(r.rules[ar.Point]) == 0 {
			delete(r.rules, ar.Point)
		}
		if len(r.rules) == 0 {
			r.enabled.Store(false)
		}
	}
}

// Reset disarms every rule. The catalog and counters survive.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rules = map[string][]*armedRule{}
	r.enabled.Store(false)
}

// Enabled reports whether any rule is armed (the Inject fast path).
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Injected returns the total number of faults fired since creation.
func (r *Registry) Injected() int64 { return r.injected.Load() }

// Inject is the injection point hook. With no armed rule for point it
// returns nil after one atomic load. An armed ModeError rule makes it
// return an *Error, ModePanic makes it panic with an *Error, ModeDelay
// sleeps and returns nil.
func (r *Registry) Inject(point string) error {
	if !r.enabled.Load() {
		return nil
	}
	rule, fire := r.match(point)
	if !fire {
		return nil
	}
	r.injected.Add(1)
	msg := rule.Msg
	if msg == "" {
		msg = "injected " + rule.Mode.String()
	}
	switch rule.Mode {
	case ModePanic:
		//pmvet:ignore panic -- the entire purpose of ModePanic is to raise a test panic at the armed seam
		panic(&Error{Point: point, Msg: msg})
	case ModeDelay:
		d := rule.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
		return nil
	default:
		return &Error{Point: point, Msg: msg}
	}
}

// match finds the first armed rule for point that should fire on this
// hit and consumes one firing from it.
func (r *Registry) match(point string) (*armedRule, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ar := range r.rules[point] {
		hit := ar.hits.Add(1)
		if ar.After > 1 && hit < int64(ar.After) {
			continue
		}
		if ar.Count > 0 && ar.fired.Load() >= int64(ar.Count) {
			continue
		}
		if ar.Prob > 0 && ar.Prob < 1 && r.rng.Float64() >= ar.Prob {
			continue
		}
		ar.fired.Add(1)
		return ar, true
	}
	return nil, false
}

// ArmSpec parses and arms a spec string (the PMPR_FAULTPOINTS syntax
// documented in the package comment) and returns one cancel function
// removing every rule it added.
func (r *Registry) ArmSpec(spec string) (cancel func(), err error) {
	var cancels []func()
	undo := func() {
		for _, c := range cancels {
			c()
		}
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		rule, err := ParseRule(part)
		if err != nil {
			undo()
			return nil, err
		}
		cancels = append(cancels, r.Arm(rule))
	}
	return undo, nil
}

// ParseRule parses one "point:mode[:key=value,...]" rule.
func ParseRule(s string) (Rule, error) {
	fields := strings.SplitN(s, ":", 3)
	if len(fields) < 2 || fields[0] == "" {
		return Rule{}, fmt.Errorf("fault: rule %q: want point:mode[:options]", s)
	}
	rule := Rule{Point: strings.TrimSpace(fields[0]), Count: 1}
	switch strings.TrimSpace(fields[1]) {
	case "error":
		rule.Mode = ModeError
	case "panic":
		rule.Mode = ModePanic
	case "delay":
		rule.Mode = ModeDelay
	default:
		return Rule{}, fmt.Errorf("fault: rule %q: unknown mode %q (want error, panic or delay)", s, fields[1])
	}
	if len(fields) < 3 {
		return rule, nil
	}
	for _, opt := range strings.Split(fields[2], ",") {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		kv := strings.SplitN(opt, "=", 2)
		if len(kv) != 2 {
			return Rule{}, fmt.Errorf("fault: rule %q: option %q is not key=value", s, opt)
		}
		key, val := strings.TrimSpace(kv[0]), strings.TrimSpace(kv[1])
		switch key {
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("fault: rule %q: bad after=%q", s, val)
			}
			rule.After = n
		case "count":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("fault: rule %q: bad count=%q", s, val)
			}
			rule.Count = n
		case "prob":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("fault: rule %q: bad prob=%q", s, val)
			}
			rule.Prob = p
			if rule.Count == 1 {
				rule.Count = 0 // probabilistic rules default to unlimited firings
			}
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("fault: rule %q: bad delay=%q", s, val)
			}
			rule.Delay = d
		case "msg":
			rule.Msg = val
		default:
			return Rule{}, fmt.Errorf("fault: rule %q: unknown option %q", s, key)
		}
	}
	return rule, nil
}

// Top-level wrappers over the Default registry.

// RegisterPoint adds an injection point to the default catalog.
func RegisterPoint(name, desc string) { Default.RegisterPoint(name, desc) }

// Points lists the default catalog's injection points, sorted.
func Points() []string { return Default.Points() }

// Describe returns a default-catalog point's description.
func Describe(name string) string { return Default.Describe(name) }

// Arm arms a rule on the default registry; defer the cancel in tests.
func Arm(rule Rule) (cancel func()) { return Default.Arm(rule) }

// ArmSpec arms a PMPR_FAULTPOINTS-syntax spec on the default registry.
func ArmSpec(spec string) (cancel func(), err error) { return Default.ArmSpec(spec) }

// Reset disarms every rule on the default registry.
func Reset() { Default.Reset() }

// Enabled reports whether the default registry has any armed rule.
func Enabled() bool { return Default.Enabled() }

// Injected returns the default registry's total fired-fault count.
func Injected() int64 { return Default.Injected() }

// Inject is the default-registry injection point hook.
func Inject(point string) error { return Default.Inject(point) }

// Seed re-seeds the default registry's RNG.
func Seed(seed int64) { Default.Seed(seed) }
