package core

import (
	"errors"
	"fmt"
	"sync"

	"pmpr/internal/invariant"
)

// runValidator collects invariant violations found while windows solve.
// Window solves run concurrently on pool workers in the window-level and
// nested modes, so collection is mutex-guarded.
type runValidator struct {
	mu   sync.Mutex
	errs []error
}

func (v *runValidator) addf(format string, args ...interface{}) {
	v.mu.Lock()
	v.errs = append(v.errs, fmt.Errorf(format, args...))
	v.mu.Unlock()
}

func (v *runValidator) err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return errors.Join(v.errs...)
}

// checkWindowRanks runs the invariant catalog's rank checks on a
// freshly solved window (stochasticity, non-negativity, active count).
func checkWindowRanks(r *WindowResult) error {
	return invariant.CheckRanks(r.ranks, r.ActiveVertices, invariant.DefaultRankTol)
}
