package core

import (
	"errors"
	"fmt"
	"sync"

	"pmpr/internal/invariant"
)

// runValidator collects invariant violations found while windows solve.
// Window solves run concurrently on pool workers in the window-level and
// nested modes, so collection is mutex-guarded.
type runValidator struct {
	mu   sync.Mutex
	errs []error
}

func (v *runValidator) addf(format string, args ...interface{}) {
	v.mu.Lock()
	v.errs = append(v.errs, fmt.Errorf(format, args...))
	v.mu.Unlock()
}

func (v *runValidator) err() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return errors.Join(v.errs...)
}

// validateWindow checks a freshly solved window's rank vector against
// the invariant catalog. It must run before DiscardRanks nils the
// vector. No-op unless the Run set up a validator (Config.Validate).
func (e *Engine) validateWindow(r *WindowResult) {
	if e.val == nil {
		return
	}
	if err := invariant.CheckRanks(r.ranks, r.ActiveVertices, invariant.DefaultRankTol); err != nil {
		e.val.addf("core: window %d: %w", r.Window, err)
	}
}
