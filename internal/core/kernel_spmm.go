package core

import (
	"math"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// spmmKernel advances the PageRank vectors of a whole batch of windows
// (all in one multi-window graph) simultaneously — the SpMM-inspired
// kernel of paper Sec. 4.4. Vectors are interleaved — entry (v, k)
// lives at v*K+k — so the random accesses of the pull pass hit one
// cache line for all K windows, which is the SpMM effect the paper
// exploits.
//
// Working memory is drawn from the batch's scratch lease and returned
// in Finalize; only the K per-window rank vectors stay checked out
// (the driver recycles them once consumed). Cross-leaf reductions use
// lane-indexed K-wide slots — lane l owns [l*K, (l+1)*K) — summed
// serially between passes, so the leaves of the steady-state iteration
// loop neither allocate nor touch atomics.
type spmmKernel struct{}

func init() { RegisterKernel(spmmKernel{}) }

// spmmState is the kernel's per-batch working set; the interleaved x
// and y swap through the state pointer so the bound passes track them
// for free.
type spmmState struct {
	tsK, teK     []int64
	invdeg       []float64
	active       []bool
	na           []int32
	x, y, z      []float64
	laneDangling []float64
	laneDelta    []float64
	laneAcc      []float64
	baseK        []float64
	pass1, pass2 sched.Body
}

// Name is the registry key.
func (spmmKernel) Name() string { return "spmm" }

// BatchWidth is Config.VectorLen: the number of windows one sweep of
// the shared temporal CSR advances.
func (spmmKernel) BatchWidth(cfg *Config) int { return cfg.VectorLen }

// Init stages the interleaved window states and starting vectors (Eq. 4
// per slot where a predecessor vector is supplied, uniform otherwise),
// binds the two sweep passes, and marks non-empty slots live.
func (spmmKernel) Init(b *Batch) {
	mw := b.mw
	n := int(mw.NumLocal())
	K := b.width()
	sb, loop := b.scratch, b.loop
	opt := b.cfg.Opts
	lanes := sb.lanes()
	s := &spmmState{}
	b.state = s

	tsK := sb.getI64(K)
	teK := sb.getI64(K)
	for k := range b.views {
		tsK[k], teK[k] = b.views[k].Ts, b.views[k].Te
	}
	s.tsK, s.teK = tsK, teK

	// Per-window inverse out-degrees, interleaved. First accumulate
	// counts, then invert in place.
	invdeg := sb.getF64(n * K)
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			i := start
			for i < end {
				j := i + 1
				c := mw.OutCol[i]
				for j < end && mw.OutCol[j] == c {
					j++
				}
				times := mw.OutTime[i:j]
				for k := 0; k < K; k++ {
					if tcsr.RunActive(times, tsK[k], teK[k]) {
						invdeg[u*K+k]++
					}
				}
				i = j
			}
			for k := 0; k < K; k++ {
				if d := invdeg[u*K+k]; d > 0 {
					invdeg[u*K+k] = 1 / d
				}
			}
		}
	})
	s.invdeg = invdeg

	// Activity flags and |V_i| per window; counts reduce via lanes.
	active := sb.getBool(n * K)
	laneCnt := sb.getI32(lanes * K)
	directed := b.cfg.Directed
	loop(n, func(wk *sched.Worker, lo, hi int) {
		cnt := laneCnt[laneOf(wk)*K:][:K]
		for v := lo; v < hi; v++ {
			pending := 0
			for k := 0; k < K; k++ {
				if invdeg[v*K+k] > 0 {
					active[v*K+k] = true
					cnt[k]++
				} else if directed {
					pending++
				}
			}
			if pending > 0 {
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && pending > 0 {
					j := i + 1
					c := mw.InCol[i]
					for j < end && mw.InCol[j] == c {
						j++
					}
					times := mw.InTime[i:j]
					for k := 0; k < K; k++ {
						if !active[v*K+k] && tcsr.RunActive(times, tsK[k], teK[k]) {
							active[v*K+k] = true
							cnt[k]++
							pending--
						}
					}
					i = j
				}
			}
		}
	})
	s.active = active
	na := sb.getI32(K)
	for k := 0; k < K; k++ {
		for l := 0; l < lanes; l++ {
			na[k] += laneCnt[l*K+k]
		}
		b.results[k].ActiveVertices = na[k]
		if na[k] > 0 {
			b.markLive(k)
		} else {
			b.results[k].Converged = true
		}
	}
	sb.putI32(laneCnt)
	s.na = na

	// Initialization: Eq. 4 per window slot where a predecessor vector
	// is supplied, uniform otherwise.
	x := sb.getF64(n * K)
	y := sb.getF64(n * K)
	z := sb.getF64(n * K)
	s.x, s.y, s.z = x, y, z
	inits := b.inits
	laneSharedN := sb.getI64(lanes * K)
	laneSharedSum := sb.getF64(lanes * K)
	loop(n, func(wk *sched.Worker, lo, hi int) {
		lane := laneOf(wk)
		cnt := laneSharedN[lane*K:][:K]
		sum := laneSharedSum[lane*K:][:K]
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				if p := inits[k]; p != nil && active[v*K+k] && p[v] > 0 {
					cnt[k]++
					sum[k] += p[v]
				}
			}
		}
	})
	scale := sb.getF64(K)
	uniform := sb.getF64(K)
	partial := sb.getBool(K)
	for k := 0; k < K; k++ {
		if na[k] == 0 {
			continue
		}
		uniform[k] = 1 / float64(na[k])
		var sh int64
		var sm float64
		for l := 0; l < lanes; l++ {
			sh += laneSharedN[l*K+k]
			sm += laneSharedSum[l*K+k]
		}
		if inits[k] != nil && sh > 0 && sm > 0 {
			scale[k] = float64(sh) / float64(na[k]) / sm
			partial[k] = true
			b.results[k].UsedPartialInit = true
		}
	}
	sb.putI64(laneSharedN)
	sb.putF64(laneSharedSum)
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				switch {
				case !active[v*K+k]:
					x[v*K+k] = 0
				case partial[k] && inits[k][v] > 0:
					x[v*K+k] = inits[k][v] * scale[k]
				default:
					x[v*K+k] = uniform[k]
				}
			}
		}
	})

	laneDangling := sb.getF64(lanes * K)
	laneDelta := sb.getF64(lanes * K)
	laneAcc := sb.getF64(lanes * K)
	baseK := sb.getF64(K)
	s.laneDangling, s.laneDelta, s.laneAcc, s.baseK = laneDangling, laneDelta, laneAcc, baseK
	isLive := b.isLive

	// Pass 1 (by source): scaled contributions + dangling mass.
	s.pass1 = func(wk *sched.Worker, lo, hi int) {
		xv := s.x
		live := b.live
		d := laneDangling[laneOf(wk)*K:][:K]
		for u := lo; u < hi; u++ {
			for _, k := range live {
				z[u*K+k] = xv[u*K+k] * invdeg[u*K+k]
				if active[u*K+k] && invdeg[u*K+k] == 0 {
					d[k] += xv[u*K+k]
				}
			}
		}
	}
	// Pass 2 (by target): one sweep of the shared CSR advances all
	// live windows.
	s.pass2 = func(wk *sched.Worker, lo, hi int) {
		xv, yv := s.x, s.y
		live := b.live
		lane := laneOf(wk)
		acc := laneAcc[lane*K:][:K]
		dl := laneDelta[lane*K:][:K]
		for v := lo; v < hi; v++ {
			for _, k := range live {
				acc[k] = 0
			}
			start, end := mw.InRow[v], mw.InRow[v+1]
			i := start
			for i < end {
				j := i + 1
				c := mw.InCol[i]
				for j < end && mw.InCol[j] == c {
					j++
				}
				times := mw.InTime[i:j]
				for _, k := range live {
					if tcsr.RunActive(times, tsK[k], teK[k]) {
						acc[k] += z[int(c)*K+k]
					}
				}
				i = j
			}
			for k := 0; k < K; k++ {
				if !isLive[k] {
					// Keep converged windows' entries current so the
					// array swap does not resurrect stale iterates.
					yv[v*K+k] = xv[v*K+k]
					continue
				}
				if !active[v*K+k] {
					yv[v*K+k] = 0
					continue
				}
				nv := baseK[k] + (1-opt.Alpha)*acc[k]
				dl[k] += math.Abs(nv - xv[v*K+k])
				yv[v*K+k] = nv
			}
		}
	}

	sb.putF64(scale)
	sb.putF64(uniform)
	sb.putBool(partial)
}

// Iterate runs one shared-CSR sweep advancing all live slots: pass 1,
// the per-slot dangling reductions, pass 2, and the vector swap.
func (spmmKernel) Iterate(b *Batch) {
	s := b.state.(*spmmState)
	K := b.width()
	n := int(b.mw.NumLocal())
	lanes := b.scratch.lanes()
	alpha := b.cfg.Opts.Alpha
	clear(s.laneDangling)
	clear(s.laneDelta)
	b.loop(n, s.pass1)
	for _, k := range b.live {
		var d float64
		for l := 0; l < lanes; l++ {
			d += s.laneDangling[l*K+k]
		}
		invNA := 1 / float64(s.na[k])
		s.baseK[k] = alpha*invNA + (1-alpha)*d*invNA
	}
	b.loop(n, s.pass2)
	s.x, s.y = s.y, s.x
}

// Residual sums slot's lane deltas of the last sweep.
func (spmmKernel) Residual(b *Batch, slot int) float64 {
	s := b.state.(*spmmState)
	K := b.width()
	lanes := b.scratch.lanes()
	var delta float64
	for l := 0; l < lanes; l++ {
		delta += s.laneDelta[l*K+slot]
	}
	return delta
}

// Finalize de-interleaves each slot's rank vector into its result and
// returns all working memory.
func (spmmKernel) Finalize(b *Batch) {
	s := b.state.(*spmmState)
	sb := b.scratch
	n := int(b.mw.NumLocal())
	K := b.width()
	for k := 0; k < K; k++ {
		ranks := sb.getF64(n)
		for v := 0; v < n; v++ {
			ranks[v] = s.x[v*K+k]
		}
		b.results[k].ranks = ranks
	}
	sb.putF64(s.x)
	sb.putF64(s.y)
	sb.putF64(s.z)
	sb.putF64(s.invdeg)
	sb.putBool(s.active)
	sb.putI64(s.tsK)
	sb.putI64(s.teK)
	sb.putI32(s.na)
	sb.putF64(s.laneDangling)
	sb.putF64(s.laneDelta)
	sb.putF64(s.laneAcc)
	sb.putF64(s.baseK)
	b.state = nil
}
