package core

import (
	"fmt"
	"math"
	"time"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// solveMW runs the SpMM-inspired kernel (paper Sec. 4.4) over one
// multi-window graph, writing a WindowResult for each of its windows
// into out (indexed by global window id).
//
// The windows of the multi-window graph are split into VectorLen
// contiguous regions. Batch j gathers the j-th window of every region,
// so one sweep of the shared temporal CSR advances up to VectorLen
// PageRank vectors, and every batch after the first warm-starts from
// its region predecessor (which is the previous global window).
//
// All staging memory (region table, rank staging, batch descriptors)
// comes from the worker's scratch buffer. Under Config.DiscardRanks a
// batch's rank vectors are recycled as soon as the next batch has
// consumed them for partial initialization — including the final
// batch's vectors after the loop, which earlier versions leaked at K
// vectors per multi-window graph.
func (e *Engine) solveMW(mwIdx int, mw *tcsr.MultiWindow, wid int, loop forLoop, out []WindowResult, mwSweeps []int64) {
	W := mw.NumWindows()
	if W == 0 {
		return
	}
	sb, release := e.arena.acquire(wid)
	defer release()
	K := e.cfg.VectorLen
	if K > W {
		K = W
	}
	base := W / K
	rem := W % K
	regionStart := sb.getInt(K + 1)
	for r := 0; r < K; r++ {
		size := base
		if r < rem {
			size++
		}
		regionStart[r+1] = regionStart[r] + size
	}
	numBatches := base
	if rem > 0 {
		numBatches++
	}

	// ranksByOffset[o] is the rank vector of window mw.WinLo+o, kept
	// until batch o+1 has consumed it for partial initialization.
	ranksByOffset := sb.getVecs(W)
	winsBuf := sb.getInt(K)
	initsBuf := sb.getVecs(K)

	for j := 0; j < numBatches; j++ {
		wins := winsBuf[:0]
		inits := initsBuf[:0]
		for r := 0; r < K; r++ {
			off := regionStart[r] + j
			if off >= regionStart[r+1] {
				continue
			}
			wins = append(wins, mw.WinLo+off)
			if j > 0 && e.cfg.PartialInit {
				inits = append(inits, ranksByOffset[off-1])
			} else {
				inits = append(inits, nil)
			}
		}
		t0 := time.Now()
		batch := e.solveBatch(mw, wins, inits, sb, loop)
		dur := time.Since(t0)
		var sweeps int64
		for s, w := range wins {
			if it := int64(batch[s].Iterations); it > sweeps {
				sweeps = it
			}
			batch[s].WallSeconds = dur.Seconds()
			batch[s].Worker = wid
			e.validateWindow(&batch[s])
			ranksByOffset[w-mw.WinLo] = batch[s].ranks
			if e.cfg.DiscardRanks {
				batch[s].ranks = nil
			}
			out[w] = batch[s]
		}
		sb.putResults(batch)
		// One SpMM sweep of the shared CSR advances every live window of
		// the batch, so the batch's sweep count is its iteration maximum.
		mwSweeps[mwIdx] += sweeps
		if e.trace != nil {
			e.trace.Complete(fmt.Sprintf("mw %d batch %d", mwIdx, j), "batch", traceTID(wid), t0, dur,
				map[string]interface{}{
					"mw": mwIdx, "batch": j, "windows": len(wins),
					"first_window": wins[0], "sweeps": sweeps,
				})
		}
		if e.cfg.DiscardRanks && j > 0 {
			// Batch j-1's vectors have been consumed; recycle them.
			for r := 0; r < K; r++ {
				if off := regionStart[r] + j - 1; off < regionStart[r+1] {
					sb.putF64(ranksByOffset[off])
					ranksByOffset[off] = nil
				}
			}
		}
	}
	if e.cfg.DiscardRanks {
		// The final batch's vectors have no consumer; recycle whatever
		// is still staged so a multi-window graph does not hold K rank
		// vectors past its solve.
		for off := range ranksByOffset {
			if ranksByOffset[off] != nil {
				sb.putF64(ranksByOffset[off])
				ranksByOffset[off] = nil
			}
		}
	}
	sb.putVecs(ranksByOffset)
	sb.putVecs(initsBuf)
	sb.putInt(winsBuf)
	sb.putInt(regionStart)
}

// solveBatch advances the PageRank vectors of the given windows (all in
// mw) simultaneously. Vectors are interleaved — entry (v, k) lives at
// v*K+k — so the random accesses of the pull pass hit one cache line
// for all K windows, which is the SpMM effect the paper exploits.
//
// Working memory is drawn from sb and returned before the function
// exits; only the K per-window rank vectors and the returned result
// slice stay checked out (the caller recycles both). Cross-leaf
// reductions use lane-indexed K-wide slots — lane l owns
// [l*K, (l+1)*K) — summed serially between passes, so the leaves of
// the steady-state iteration loop neither allocate nor touch atomics.
func (e *Engine) solveBatch(mw *tcsr.MultiWindow, wins []int, inits [][]float64, sb *scratchBuf, loop forLoop) []WindowResult {
	n := int(mw.NumLocal())
	K := len(wins)
	opt := e.cfg.Opts
	lanes := sb.lanes()

	tsK := sb.getI64(K)
	teK := sb.getI64(K)
	for k, w := range wins {
		tsK[k], teK[k] = mw.Window(w)
	}

	// Per-window inverse out-degrees, interleaved. First accumulate
	// counts, then invert in place.
	invdeg := sb.getF64(n * K)
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			i := start
			for i < end {
				j := i + 1
				c := mw.OutCol[i]
				for j < end && mw.OutCol[j] == c {
					j++
				}
				times := mw.OutTime[i:j]
				for k := 0; k < K; k++ {
					if tcsr.RunActive(times, tsK[k], teK[k]) {
						invdeg[u*K+k]++
					}
				}
				i = j
			}
			for k := 0; k < K; k++ {
				if d := invdeg[u*K+k]; d > 0 {
					invdeg[u*K+k] = 1 / d
				}
			}
		}
	})

	// Activity flags and |V_i| per window; counts reduce via lanes.
	active := sb.getBool(n * K)
	laneCnt := sb.getI32(lanes * K)
	loop(n, func(wk *sched.Worker, lo, hi int) {
		cnt := laneCnt[laneOf(wk)*K:][:K]
		for v := lo; v < hi; v++ {
			pending := 0
			for k := 0; k < K; k++ {
				if invdeg[v*K+k] > 0 {
					active[v*K+k] = true
					cnt[k]++
				} else if e.cfg.Directed {
					pending++
				}
			}
			if pending > 0 {
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && pending > 0 {
					j := i + 1
					c := mw.InCol[i]
					for j < end && mw.InCol[j] == c {
						j++
					}
					times := mw.InTime[i:j]
					for k := 0; k < K; k++ {
						if !active[v*K+k] && tcsr.RunActive(times, tsK[k], teK[k]) {
							active[v*K+k] = true
							cnt[k]++
							pending--
						}
					}
					i = j
				}
			}
		}
	})
	na := sb.getI32(K)
	results := sb.getResults(K)
	liveBuf := sb.getInt(K)
	live := liveBuf[:0]
	for k := 0; k < K; k++ {
		for l := 0; l < lanes; l++ {
			na[k] += laneCnt[l*K+k]
		}
		results[k] = WindowResult{Window: wins[k], ActiveVertices: na[k], mw: mw}
		if na[k] > 0 {
			live = append(live, k)
		} else {
			results[k].Converged = true
		}
	}
	sb.putI32(laneCnt)

	// Initialization: Eq. 4 per window slot where a predecessor vector
	// is supplied, uniform otherwise.
	x := sb.getF64(n * K)
	y := sb.getF64(n * K)
	z := sb.getF64(n * K)
	laneSharedN := sb.getI64(lanes * K)
	laneSharedSum := sb.getF64(lanes * K)
	loop(n, func(wk *sched.Worker, lo, hi int) {
		lane := laneOf(wk)
		cnt := laneSharedN[lane*K:][:K]
		sum := laneSharedSum[lane*K:][:K]
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				if p := inits[k]; p != nil && active[v*K+k] && p[v] > 0 {
					cnt[k]++
					sum[k] += p[v]
				}
			}
		}
	})
	scale := sb.getF64(K)
	uniform := sb.getF64(K)
	partial := sb.getBool(K)
	for k := 0; k < K; k++ {
		if na[k] == 0 {
			continue
		}
		uniform[k] = 1 / float64(na[k])
		var sh int64
		var sm float64
		for l := 0; l < lanes; l++ {
			sh += laneSharedN[l*K+k]
			sm += laneSharedSum[l*K+k]
		}
		if inits[k] != nil && sh > 0 && sm > 0 {
			scale[k] = float64(sh) / float64(na[k]) / sm
			partial[k] = true
			results[k].UsedPartialInit = true
		}
	}
	sb.putI64(laneSharedN)
	sb.putF64(laneSharedSum)
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				switch {
				case !active[v*K+k]:
					x[v*K+k] = 0
				case partial[k] && inits[k][v] > 0:
					x[v*K+k] = inits[k][v] * scale[k]
				default:
					x[v*K+k] = uniform[k]
				}
			}
		}
	})

	laneDangling := sb.getF64(lanes * K)
	laneDelta := sb.getF64(lanes * K)
	laneAcc := sb.getF64(lanes * K)
	baseK := sb.getF64(K)
	isLive := sb.getBool(K)

	// Pass 1 (by source): scaled contributions + dangling mass.
	pass1 := func(wk *sched.Worker, lo, hi int) {
		d := laneDangling[laneOf(wk)*K:][:K]
		for u := lo; u < hi; u++ {
			for _, k := range live {
				z[u*K+k] = x[u*K+k] * invdeg[u*K+k]
				if active[u*K+k] && invdeg[u*K+k] == 0 {
					d[k] += x[u*K+k]
				}
			}
		}
	}
	// Pass 2 (by target): one sweep of the shared CSR advances all
	// live windows.
	pass2 := func(wk *sched.Worker, lo, hi int) {
		lane := laneOf(wk)
		acc := laneAcc[lane*K:][:K]
		dl := laneDelta[lane*K:][:K]
		for v := lo; v < hi; v++ {
			for _, k := range live {
				acc[k] = 0
			}
			start, end := mw.InRow[v], mw.InRow[v+1]
			i := start
			for i < end {
				j := i + 1
				c := mw.InCol[i]
				for j < end && mw.InCol[j] == c {
					j++
				}
				times := mw.InTime[i:j]
				for _, k := range live {
					if tcsr.RunActive(times, tsK[k], teK[k]) {
						acc[k] += z[int(c)*K+k]
					}
				}
				i = j
			}
			for k := 0; k < K; k++ {
				if !isLive[k] {
					// Keep converged windows' entries current so the
					// array swap does not resurrect stale iterates.
					y[v*K+k] = x[v*K+k]
					continue
				}
				if !active[v*K+k] {
					y[v*K+k] = 0
					continue
				}
				nv := baseK[k] + (1-opt.Alpha)*acc[k]
				dl[k] += math.Abs(nv - x[v*K+k])
				y[v*K+k] = nv
			}
		}
	}

	for it := 0; it < opt.MaxIter && len(live) > 0; it++ {
		clear(isLive)
		clear(laneDangling)
		clear(laneDelta)
		for _, k := range live {
			isLive[k] = true
			results[k].Iterations = it + 1
		}
		loop(n, pass1)
		for _, k := range live {
			var d float64
			for l := 0; l < lanes; l++ {
				d += laneDangling[l*K+k]
			}
			invNA := 1 / float64(na[k])
			baseK[k] = opt.Alpha*invNA + (1-opt.Alpha)*d*invNA
		}
		loop(n, pass2)
		x, y = y, x
		next := live[:0]
		for _, k := range live {
			var delta float64
			for l := 0; l < lanes; l++ {
				delta += laneDelta[l*K+k]
			}
			results[k].FinalResidual = delta
			if delta < opt.Tol {
				results[k].Converged = true
			} else {
				next = append(next, k)
			}
		}
		live = next
	}

	for k := 0; k < K; k++ {
		ranks := sb.getF64(n)
		for v := 0; v < n; v++ {
			ranks[v] = x[v*K+k]
		}
		results[k].ranks = ranks
	}
	sb.putF64(x)
	sb.putF64(y)
	sb.putF64(z)
	sb.putF64(invdeg)
	sb.putBool(active)
	sb.putI64(tsK)
	sb.putI64(teK)
	sb.putI32(na)
	sb.putInt(liveBuf)
	sb.putF64(scale)
	sb.putF64(uniform)
	sb.putBool(partial)
	sb.putF64(laneDangling)
	sb.putF64(laneDelta)
	sb.putF64(laneAcc)
	sb.putF64(baseK)
	sb.putBool(isLive)
	return results
}
