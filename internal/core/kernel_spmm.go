package core

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"pmpr/internal/tcsr"
)

// solveMW runs the SpMM-inspired kernel (paper Sec. 4.4) over one
// multi-window graph, writing a WindowResult for each of its windows
// into out (indexed by global window id).
//
// The windows of the multi-window graph are split into VectorLen
// contiguous regions. Batch j gathers the j-th window of every region,
// so one sweep of the shared temporal CSR advances up to VectorLen
// PageRank vectors, and every batch after the first warm-starts from
// its region predecessor (which is the previous global window).
func (e *Engine) solveMW(mwIdx int, mw *tcsr.MultiWindow, wid int, loop forLoop, out []WindowResult, mwSweeps []int64) {
	W := mw.NumWindows()
	if W == 0 {
		return
	}
	K := e.cfg.VectorLen
	if K > W {
		K = W
	}
	base := W / K
	rem := W % K
	regionStart := make([]int, K+1)
	for r := 0; r < K; r++ {
		size := base
		if r < rem {
			size++
		}
		regionStart[r+1] = regionStart[r] + size
	}
	numBatches := base
	if rem > 0 {
		numBatches++
	}

	// ranksByOffset[o] is the rank vector of window mw.WinLo+o, kept
	// until batch o+1 has consumed it for partial initialization.
	ranksByOffset := make([][]float64, W)

	for j := 0; j < numBatches; j++ {
		var wins []int
		var inits [][]float64
		for r := 0; r < K; r++ {
			off := regionStart[r] + j
			if off >= regionStart[r+1] {
				continue
			}
			wins = append(wins, mw.WinLo+off)
			if j > 0 && e.cfg.PartialInit {
				inits = append(inits, ranksByOffset[off-1])
			} else {
				inits = append(inits, nil)
			}
		}
		t0 := time.Now()
		batch := e.solveBatch(mw, wins, inits, loop)
		dur := time.Since(t0)
		var sweeps int64
		for s, w := range wins {
			if it := int64(batch[s].Iterations); it > sweeps {
				sweeps = it
			}
			batch[s].WallSeconds = dur.Seconds()
			batch[s].Worker = wid
			e.validateWindow(&batch[s])
			ranksByOffset[w-mw.WinLo] = batch[s].ranks
			if e.cfg.DiscardRanks {
				batch[s].ranks = nil
			}
			out[w] = batch[s]
		}
		// One SpMM sweep of the shared CSR advances every live window of
		// the batch, so the batch's sweep count is its iteration maximum.
		mwSweeps[mwIdx] += sweeps
		if e.trace != nil {
			e.trace.Complete(fmt.Sprintf("mw %d batch %d", mwIdx, j), "batch", traceTID(wid), t0, dur,
				map[string]interface{}{
					"mw": mwIdx, "batch": j, "windows": len(wins),
					"first_window": wins[0], "sweeps": sweeps,
				})
		}
		if e.cfg.DiscardRanks && j > 0 {
			// Batch j-1's vectors have been consumed; free them.
			for r := 0; r < K; r++ {
				if off := regionStart[r] + j - 1; off < regionStart[r+1] {
					ranksByOffset[off] = nil
				}
			}
		}
	}
}

// solveBatch advances the PageRank vectors of the given windows (all in
// mw) simultaneously. Vectors are interleaved — entry (v, k) lives at
// v*K+k — so the random accesses of the pull pass hit one cache line
// for all K windows, which is the SpMM effect the paper exploits.
func (e *Engine) solveBatch(mw *tcsr.MultiWindow, wins []int, inits [][]float64, loop forLoop) []WindowResult {
	n := int(mw.NumLocal())
	K := len(wins)
	opt := e.cfg.Opts

	tsK := make([]int64, K)
	teK := make([]int64, K)
	for k, w := range wins {
		tsK[k], teK[k] = mw.Window(w)
	}

	// Per-window inverse out-degrees, interleaved. First accumulate
	// counts, then invert in place.
	invdeg := make([]float64, n*K)
	loop(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			i := start
			for i < end {
				j := i + 1
				c := mw.OutCol[i]
				for j < end && mw.OutCol[j] == c {
					j++
				}
				times := mw.OutTime[i:j]
				for k := 0; k < K; k++ {
					if tcsr.RunActive(times, tsK[k], teK[k]) {
						invdeg[u*K+k]++
					}
				}
				i = j
			}
			for k := 0; k < K; k++ {
				if d := invdeg[u*K+k]; d > 0 {
					invdeg[u*K+k] = 1 / d
				}
			}
		}
	})

	// Activity flags and |V_i| per window.
	active := make([]bool, n*K)
	naAcc := make([]atomic.Int32, K)
	loop(n, func(lo, hi int) {
		cnt := make([]int32, K)
		for v := lo; v < hi; v++ {
			pending := 0
			for k := 0; k < K; k++ {
				if invdeg[v*K+k] > 0 {
					active[v*K+k] = true
					cnt[k]++
				} else if e.cfg.Directed {
					pending++
				}
			}
			if pending > 0 {
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && pending > 0 {
					j := i + 1
					c := mw.InCol[i]
					for j < end && mw.InCol[j] == c {
						j++
					}
					times := mw.InTime[i:j]
					for k := 0; k < K; k++ {
						if !active[v*K+k] && tcsr.RunActive(times, tsK[k], teK[k]) {
							active[v*K+k] = true
							cnt[k]++
							pending--
						}
					}
					i = j
				}
			}
		}
		for k := 0; k < K; k++ {
			naAcc[k].Add(cnt[k])
		}
	})
	na := make([]int32, K)
	results := make([]WindowResult, K)
	live := make([]int, 0, K)
	for k := 0; k < K; k++ {
		na[k] = naAcc[k].Load()
		results[k] = WindowResult{Window: wins[k], ActiveVertices: na[k], mw: mw}
		if na[k] > 0 {
			live = append(live, k)
		} else {
			results[k].Converged = true
		}
	}

	// Initialization: Eq. 4 per window slot where a predecessor vector
	// is supplied, uniform otherwise.
	x := make([]float64, n*K)
	y := make([]float64, n*K)
	z := make([]float64, n*K)
	sharedN := make([]atomic.Int64, K)
	var sharedSum []atomicFloat64 = make([]atomicFloat64, K)
	loop(n, func(lo, hi int) {
		cnt := make([]int64, K)
		sum := make([]float64, K)
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				if p := inits[k]; p != nil && active[v*K+k] && p[v] > 0 {
					cnt[k]++
					sum[k] += p[v]
				}
			}
		}
		for k := 0; k < K; k++ {
			sharedN[k].Add(cnt[k])
			sharedSum[k].Add(sum[k])
		}
	})
	scale := make([]float64, K)
	uniform := make([]float64, K)
	partial := make([]bool, K)
	for k := 0; k < K; k++ {
		if na[k] == 0 {
			continue
		}
		uniform[k] = 1 / float64(na[k])
		if sh, sm := sharedN[k].Load(), sharedSum[k].Load(); inits[k] != nil && sh > 0 && sm > 0 {
			scale[k] = float64(sh) / float64(na[k]) / sm
			partial[k] = true
			results[k].UsedPartialInit = true
		}
	}
	loop(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			for k := 0; k < K; k++ {
				switch {
				case !active[v*K+k]:
					x[v*K+k] = 0
				case partial[k] && inits[k][v] > 0:
					x[v*K+k] = inits[k][v] * scale[k]
				default:
					x[v*K+k] = uniform[k]
				}
			}
		}
	})

	dangling := make([]atomicFloat64, K)
	deltas := make([]atomicFloat64, K)
	baseK := make([]float64, K)
	isLive := make([]bool, K)

	for it := 0; it < opt.MaxIter && len(live) > 0; it++ {
		for k := range isLive {
			isLive[k] = false
		}
		for _, k := range live {
			isLive[k] = true
			results[k].Iterations = it + 1
			dangling[k].Store(0)
			deltas[k].Store(0)
		}

		// Pass 1 (by source): scaled contributions + dangling mass.
		loop(n, func(lo, hi int) {
			d := make([]float64, K)
			for u := lo; u < hi; u++ {
				for _, k := range live {
					z[u*K+k] = x[u*K+k] * invdeg[u*K+k]
					if active[u*K+k] && invdeg[u*K+k] == 0 {
						d[k] += x[u*K+k]
					}
				}
			}
			for _, k := range live {
				dangling[k].Add(d[k])
			}
		})
		for _, k := range live {
			invNA := 1 / float64(na[k])
			baseK[k] = opt.Alpha*invNA + (1-opt.Alpha)*dangling[k].Load()*invNA
		}

		// Pass 2 (by target): one sweep of the shared CSR advances all
		// live windows.
		loop(n, func(lo, hi int) {
			acc := make([]float64, K)
			dl := make([]float64, K)
			for v := lo; v < hi; v++ {
				for _, k := range live {
					acc[k] = 0
				}
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end {
					j := i + 1
					c := mw.InCol[i]
					for j < end && mw.InCol[j] == c {
						j++
					}
					times := mw.InTime[i:j]
					for _, k := range live {
						if tcsr.RunActive(times, tsK[k], teK[k]) {
							acc[k] += z[int(c)*K+k]
						}
					}
					i = j
				}
				for k := 0; k < K; k++ {
					if !isLive[k] {
						// Keep converged windows' entries current so the
						// array swap does not resurrect stale iterates.
						y[v*K+k] = x[v*K+k]
						continue
					}
					if !active[v*K+k] {
						y[v*K+k] = 0
						continue
					}
					nv := baseK[k] + (1-opt.Alpha)*acc[k]
					dl[k] += math.Abs(nv - x[v*K+k])
					y[v*K+k] = nv
				}
			}
			for _, k := range live {
				deltas[k].Add(dl[k])
			}
		})
		x, y = y, x
		next := live[:0]
		for _, k := range live {
			results[k].FinalResidual = deltas[k].Load()
			if results[k].FinalResidual < opt.Tol {
				results[k].Converged = true
			} else {
				next = append(next, k)
			}
		}
		live = next
	}

	for k := 0; k < K; k++ {
		ranks := make([]float64, n)
		for v := 0; v < n; v++ {
			ranks[v] = x[v*K+k]
		}
		results[k].ranks = ranks
	}
	return results
}
