package core

import (
	"errors"
	"fmt"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/invariant"
	"pmpr/internal/obs"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Engine computes the postmortem PageRank series of a temporal graph.
// It owns the temporal CSR representation (built once, reused across
// Run calls) and a reference to a scheduler pool.
type Engine struct {
	tg    *tcsr.Temporal
	cfg   Config
	pool  *sched.Pool
	arena *scratchArena // kernel working memory, reused across Run calls

	trace        *obs.Trace    // optional; nil = no trace events
	val          *runValidator // per-Run violation collector; nil unless cfg.Validate
	buildSeconds float64       // wall time of the TCSR build in NewEngine
}

// newArena sizes the scratch arena for pool (nil = serial engine).
func newArena(pool *sched.Pool) *scratchArena {
	if pool == nil {
		return newScratchArena(0)
	}
	return newScratchArena(pool.NumWorkers())
}

// NewEngine builds the postmortem representation of l under spec and
// returns an engine. pool may be nil, in which case every mode degrades
// to a fully serial execution (useful for tests and baselines).
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	build := tcsr.Build
	if cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	start := time.Now()
	tg, err := build(l, spec, cfg.NumMultiWindows, cfg.Directed)
	if err != nil {
		return nil, err
	}
	if cfg.Validate {
		if err := invariant.CheckTemporal(tg); err != nil {
			return nil, err
		}
		if err := invariant.CheckCoverage(tg, l); err != nil {
			return nil, err
		}
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool, arena: newArena(pool),
		buildSeconds: time.Since(start).Seconds()}, nil
}

// NewEngineFromTemporal wraps an existing representation, so that
// several configurations (kernel, mode, grain, ...) can be benchmarked
// without rebuilding the temporal CSR. cfg.NumMultiWindows is ignored;
// the partitioning of tg is used. cfg.Directed must match the build.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	if tg == nil {
		return nil, errors.New("core: nil temporal representation")
	}
	if cfg.Directed != tg.Directed {
		return nil, fmt.Errorf("core: config direction (%v) disagrees with representation (%v)",
			cfg.Directed, tg.Directed)
	}
	if cfg.Validate {
		// The originating log is not available here; coverage is only
		// checkable through NewEngine.
		if err := invariant.CheckTemporal(tg); err != nil {
			return nil, err
		}
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool, arena: newArena(pool)}, nil
}

// ScratchStats snapshots the scratch arena's buffer-reuse counters.
// After a warm-up Run with Config.DiscardRanks the miss delta across
// further Run calls is zero: the steady state allocates nothing.
func (e *Engine) ScratchStats() ScratchStats { return e.arena.stats() }

// Temporal exposes the underlying representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.tg }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetTrace attaches a Chrome trace writer: every subsequent Run records
// which worker solved which window (SpMV) or batch (SpMM) when, plus
// thread labels and config metadata. Pass nil to detach. Do not call
// concurrently with Run.
func (e *Engine) SetTrace(t *obs.Trace) {
	e.trace = t
	if t == nil {
		return
	}
	t.ProcessName("pmpr engine")
	t.ThreadName(0, "main")
	if e.pool != nil {
		for i := 0; i < e.pool.NumWorkers(); i++ {
			t.ThreadName(i+1, fmt.Sprintf("worker %d", i))
		}
	}
	t.SetMeta("config", e.cfg.Info())
	t.SetMeta("build", obs.CollectBuildInfo())
}

// traceTID maps a window-loop worker id to a trace thread id (tid 0 is
// the main/serial thread, workers start at 1).
func traceTID(wid int) int { return wid + 1 }

// Run computes PageRank for every window of the sequence and returns
// the series. It is safe to call Run repeatedly; the representation is
// read-only during execution.
func (e *Engine) Run() (*Series, error) {
	count := e.tg.Spec.Count
	results := make([]WindowResult, count)
	var before sched.Stats
	if e.pool != nil && e.pool.MetricsEnabled() {
		before = e.pool.Stats()
	}
	scratchBefore := e.arena.stats()
	mwSweeps := make([]int64, len(e.tg.MWs))
	if e.cfg.Validate {
		e.val = &runValidator{}
		defer func() { e.val = nil }()
	}
	start := time.Now()
	switch e.cfg.Kernel {
	case SpMV, SpMVBlocked:
		e.runSpMV(results)
	case SpMM:
		e.runSpMM(results, mwSweeps)
	default:
		return nil, fmt.Errorf("core: unknown kernel %v", e.cfg.Kernel)
	}
	// Measure the solve duration once; the trace event and the report
	// wall must agree (they used to be two time.Since calls apart).
	dur := time.Since(start)
	wall := dur.Seconds()
	if e.trace != nil {
		e.trace.Complete("solve", "phase", 0, start, dur, nil)
	}
	if e.val != nil {
		if err := e.val.err(); err != nil {
			return nil, err
		}
	}
	return &Series{
		Spec:        e.tg.Spec,
		NumVertices: e.tg.NumVertices(),
		Results:     results,
		Report:      e.buildReport(results, mwSweeps, wall, before, scratchBefore),
	}, nil
}

// spmvRange processes windows [lo, hi) in order with the SpMV kernel,
// chaining partial initialization inside the range: a window
// warm-starts iff its predecessor was computed in this same range and
// lives in the same multi-window graph — exactly the paper's "if the
// same thread processes Gi-1 and Gi, partial initialization occurs".
func (e *Engine) spmvRange(lo, hi, wid int, loop forLoop, results []WindowResult) {
	sb, release := e.arena.acquire(wid)
	defer release()
	var prev []float64
	var prevMW *tcsr.MultiWindow
	solver := e.solveWindow
	if e.cfg.Kernel == SpMVBlocked {
		solver = e.solveWindowBlocked
	}
	for w := lo; w < hi; w++ {
		mw := e.tg.ForWindow(w)
		var init []float64
		if e.cfg.PartialInit && prevMW == mw && prev != nil {
			init = prev
		}
		t0 := time.Now()
		r := solver(mw, w, init, sb, loop)
		dur := time.Since(t0)
		r.WallSeconds = dur.Seconds()
		r.Worker = wid
		if e.trace != nil {
			e.trace.Complete(fmt.Sprintf("window %d", w), "window", traceTID(wid), t0, dur,
				map[string]interface{}{
					"window": w, "iterations": r.Iterations,
					"active": r.ActiveVertices, "warm_start": r.UsedPartialInit,
				})
		}
		e.validateWindow(&r)
		if e.cfg.DiscardRanks && prev != nil {
			// The predecessor vector has served its warm start; recycle.
			sb.putF64(prev)
		}
		prev, prevMW = r.ranks, mw
		if e.cfg.DiscardRanks {
			r.ranks = nil
		}
		results[w] = r
	}
	if e.cfg.DiscardRanks && prev != nil {
		sb.putF64(prev)
	}
}

func (e *Engine) runSpMV(results []WindowResult) {
	count := e.tg.Spec.Count
	grain := e.cfg.grain()
	part := e.cfg.Partitioner
	switch {
	case e.pool == nil:
		e.spmvRange(0, count, -1, serialLoop, results)
	case e.cfg.Mode == AppLevel:
		// Windows strictly in order; all parallelism inside the kernel.
		// The window loop runs on one pool worker (via Run) so the inner
		// loops fork from a worker context instead of paying the
		// external-submission path per parallel region.
		e.pool.Run(func(w *sched.Worker) {
			e.spmvRange(0, count, -1, workerLoop(w, grain, part), results)
		})
	case e.cfg.Mode == WindowLevel:
		e.pool.ParallelFor(count, grain, part, func(w *sched.Worker, lo, hi int) {
			e.spmvRange(lo, hi, w.ID(), serialLoop, results)
		})
	default: // Nested
		e.pool.ParallelFor(count, grain, part, func(w *sched.Worker, lo, hi int) {
			e.spmvRange(lo, hi, w.ID(), workerLoop(w, grain, part), results)
		})
	}
}

func (e *Engine) runSpMM(results []WindowResult, mwSweeps []int64) {
	mws := e.tg.MWs
	grain := e.cfg.grain()
	part := e.cfg.Partitioner
	switch {
	case e.pool == nil:
		for i, mw := range mws {
			e.solveMW(i, mw, -1, serialLoop, results, mwSweeps)
		}
	case e.cfg.Mode == AppLevel:
		e.pool.Run(func(w *sched.Worker) {
			inner := workerLoop(w, grain, part)
			for i, mw := range mws {
				e.solveMW(i, mw, -1, inner, results, mwSweeps)
			}
		})
	case e.cfg.Mode == WindowLevel:
		// The multi-window graph is the unit of window-level work for
		// SpMM: its batches are sequentially dependent through partial
		// initialization, but distinct multi-window graphs are
		// independent (this is why Fig. 8's window-level runs improve
		// with more multi-window graphs).
		e.pool.ParallelFor(len(mws), grain, part, func(w *sched.Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				e.solveMW(i, mws[i], w.ID(), serialLoop, results, mwSweeps)
			}
		})
	default: // Nested
		e.pool.ParallelFor(len(mws), 1, part, func(w *sched.Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				e.solveMW(i, mws[i], w.ID(), workerLoop(w, grain, part), results, mwSweeps)
			}
		})
	}
}
