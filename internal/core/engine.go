package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"pmpr/internal/checkpoint"
	"pmpr/internal/events"
	"pmpr/internal/invariant"
	"pmpr/internal/obs"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Engine computes the postmortem PageRank series of a temporal graph.
// It is a thin orchestrator over the staged pipeline: the build and
// plan stages run once at construction and are cached (build once,
// solve many), Run executes the solve stage under the caller's
// context, and the publish stage assembles the Series. Callers that
// need finer control — re-planning with a different kernel against the
// same representation, solving without a report — can drive the stage
// values (BuildStage, PlanStage, SolveStage, PublishStage) directly.
type Engine struct {
	build BuildOutput
	plan  *SolvePlan
	solve *SolveStage
	pool  *sched.Pool

	// running guards against overlapping Run calls: the solve stage's
	// arena and trace writer are single-run state.
	running  atomic.Bool
	counters obs.RunCounters
	// phase is the coarse lifecycle (runPhase) the /status surface reads.
	phase atomic.Int32
}

// runPhase is the engine's coarse lifecycle for live status.
type runPhase int32

const (
	phaseIdle runPhase = iota
	phaseSolve
	phasePublish
	phaseDone
	phaseCanceled
	phaseFailed
)

func (p runPhase) String() string {
	switch p {
	case phaseIdle:
		return "idle"
	case phaseSolve:
		return "solve"
	case phasePublish:
		return "publish"
	case phaseDone:
		return "done"
	case phaseCanceled:
		return "canceled"
	case phaseFailed:
		return "failed"
	default:
		return fmt.Sprintf("runPhase(%d)", int32(p))
	}
}

// Progress is a live snapshot of an engine's current (or most recent)
// run: the coarse phase plus the window and fault counts a watcher
// needs. It is what pmrank's /status endpoint serves (see obs.Status).
type Progress struct {
	// Phase is "idle", "solve", "publish", "done", "canceled", or
	// "failed".
	Phase string
	// WindowsTotal is the plan's window count.
	WindowsTotal int
	// WindowsDone counts decided windows (solved, restored, or failed)
	// of the current or most recent run.
	WindowsDone int
	// Quarantined, Retried, Degraded, and Resumed mirror the fault
	// counters (cumulative across the engine's runs).
	Quarantined int64
	Retried     int64
	Degraded    int64
	Resumed     int64
}

// Progress snapshots the engine's live run state. Safe to call
// concurrently with Run; between runs it reports the last run's state.
func (e *Engine) Progress() Progress {
	fc := e.solve.FaultCounters()
	return Progress{
		Phase:        runPhase(e.phase.Load()).String(),
		WindowsTotal: e.plan.Windows,
		WindowsDone:  e.solve.Completed(),
		Quarantined:  fc.Quarantined.Value(),
		Retried:      fc.Retries.Value(),
		Degraded:     fc.Degraded.Value(),
		Resumed:      fc.CheckpointResumed.Value(),
	}
}

// Histograms exposes the solve stage's per-window distributions (wall
// time, iterations, residual) for metrics registration (see
// obs.SolveHistograms.RegisterOn).
func (e *Engine) Histograms() *obs.SolveHistograms { return e.solve.Histograms() }

// newArena sizes the scratch arena for pool (nil = serial engine).
func newArena(pool *sched.Pool) *scratchArena {
	if pool == nil {
		return newScratchArena(0)
	}
	return newScratchArena(pool.NumWorkers())
}

// newEngine plans cfg against a built representation and assembles the
// cached pipeline.
func newEngine(build BuildOutput, cfg Config, pool *sched.Pool) (*Engine, error) {
	workers := 0
	if pool != nil {
		workers = pool.NumWorkers()
	}
	plan, err := (PlanStage{}).Run(PlanInput{Temporal: build.Temporal, Cfg: cfg, Workers: workers})
	if err != nil {
		return nil, err
	}
	return &Engine{build: build, plan: plan, solve: NewSolveStage(pool), pool: pool}, nil
}

// NewEngine builds the postmortem representation of l under spec and
// returns an engine. pool may be nil, in which case every mode degrades
// to a fully serial execution (useful for tests and baselines).
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	build, err := (BuildStage{}).Run(BuildInput{Log: l, Spec: spec, Cfg: cfg})
	if err != nil {
		return nil, err
	}
	return newEngine(build, cfg, pool)
}

// NewEngineFromTemporal wraps an existing representation, so that
// several configurations (kernel, mode, grain, ...) can be benchmarked
// without rebuilding the temporal CSR. cfg.NumMultiWindows is ignored;
// the partitioning of tg is used. cfg.Directed must match the build.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if err := cfg.Check(); err != nil {
		return nil, err
	}
	if tg == nil {
		return nil, errors.New("core: nil temporal representation")
	}
	if cfg.Directed != tg.Directed {
		return nil, fmt.Errorf("core: config direction (%v) disagrees with representation (%v)",
			cfg.Directed, tg.Directed)
	}
	if cfg.Validate {
		// The originating log is not available here; coverage is only
		// checkable through NewEngine.
		if err := invariant.CheckTemporal(tg); err != nil {
			return nil, err
		}
	}
	return newEngine(BuildOutput{Temporal: tg}, cfg, pool)
}

// ScratchStats snapshots the scratch arena's buffer-reuse counters.
// After a warm-up Run with Config.DiscardRanks the miss delta across
// further Run calls is zero: the steady state allocates nothing.
func (e *Engine) ScratchStats() ScratchStats { return e.solve.ScratchStats() }

// Temporal exposes the underlying representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.plan.Temporal }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.plan.Cfg }

// Plan exposes the cached solve plan (kernel, batch layout). The plan
// is immutable; re-plan by constructing a new engine or driving
// PlanStage directly.
func (e *Engine) Plan() *SolvePlan { return e.plan }

// Counters exposes the engine's run lifecycle counters for metrics
// registration (see obs.RunCounters.RegisterOn).
func (e *Engine) Counters() *obs.RunCounters { return &e.counters }

// FaultCounters exposes the solve stage's fault-tolerance counters
// (panics recovered, retries, degrades, quarantines, checkpoint
// traffic) for metrics registration (see obs.FaultCounters.RegisterOn).
func (e *Engine) FaultCounters() *obs.FaultCounters { return e.solve.FaultCounters() }

// Manifest renders the engine's run identity for checkpointing: the
// window spec, kernel, partitioning, iteration options, and input
// shape. Two engines may share a checkpoint directory iff their
// manifests are equal.
func (e *Engine) Manifest() checkpoint.Manifest {
	t := e.plan.Temporal
	cfg := &e.plan.Cfg
	bounds := make([]int, 0, len(t.MWs)*2)
	for _, mw := range t.MWs {
		bounds = append(bounds, mw.WinLo, mw.WinHi)
	}
	return checkpoint.Manifest{
		SpecT0:          t.Spec.T0,
		SpecDelta:       t.Spec.Delta,
		SpecSlide:       t.Spec.Slide,
		SpecCount:       t.Spec.Count,
		Kernel:          e.plan.Kernel.Name(),
		NumMultiWindows: len(t.MWs),
		PartitionHash:   checkpoint.HashPartition(bounds),
		NumVertices:     t.NumVertices(),
		Directed:        t.Directed,
		PartialInit:     cfg.PartialInit,
		Alpha:           cfg.Opts.Alpha,
		Tol:             cfg.Opts.Tol,
		MaxIter:         cfg.Opts.MaxIter,
	}
}

// SetCheckpoint enables checkpointing on store for every subsequent
// Run: each decided window is flushed (atomically, CRC-checksummed)
// before it counts as completed, so a killed or canceled run leaves a
// resumable directory behind.
//
// With resume false the store is cleared and a fresh manifest written.
// With resume true the store's manifest must match this engine's (same
// spec, kernel, partitioning, options — see Manifest); matching window
// records are then restored instead of re-solved, bit-identically,
// with corrupt or mismatched records silently re-solved. resumed
// reports how many windows the next Run will restore.
//
// Checkpointing requires retained ranks: it returns an error under
// Config.DiscardRanks. Pass a nil store to disable checkpointing. Do
// not call concurrently with Run.
func (e *Engine) SetCheckpoint(store *checkpoint.Store, resume bool) (resumed int, err error) {
	if store == nil {
		e.solve.setCheckpoint(nil)
		return 0, nil
	}
	if e.plan.Cfg.DiscardRanks {
		return 0, errors.New("core: checkpointing requires retained ranks (Config.DiscardRanks is set)")
	}
	want := e.Manifest()
	if !resume {
		if err := store.Clear(); err != nil {
			return 0, err
		}
		if err := store.WriteManifest(want); err != nil {
			return 0, err
		}
		e.solve.setCheckpoint(&ckptRun{store: store})
		return 0, nil
	}
	have, ok, err := store.LoadManifest()
	if err != nil {
		return 0, err
	}
	if !ok {
		// Nothing to resume from; start checkpointing fresh.
		if err := store.WriteManifest(want); err != nil {
			return 0, err
		}
		e.solve.setCheckpoint(&ckptRun{store: store})
		return 0, nil
	}
	if have != want {
		return 0, fmt.Errorf("core: checkpoint in %s belongs to a different run (manifest mismatch); re-run without -resume to start over", store.Dir())
	}
	windows, _, err := store.LoadWindows()
	if err != nil {
		return 0, err
	}
	t := e.plan.Temporal
	for idx, w := range windows {
		// Drop records that cannot belong to this run despite the
		// manifest match (wrong index range or rank-vector shape): they
		// will simply be re-solved and overwritten.
		if idx < 0 || idx >= t.Spec.Count || len(w.Ranks) != int(t.ForWindow(idx).NumLocal()) {
			delete(windows, idx)
		}
	}
	e.solve.setCheckpoint(&ckptRun{store: store, resumed: windows})
	return len(windows), nil
}

// SetTrace attaches a Chrome trace writer: every subsequent Run records
// which worker solved which window (width-1 kernels) or batch (SpMM)
// when, plus thread labels and config metadata. Pass nil to detach. Do
// not call concurrently with Run.
func (e *Engine) SetTrace(t *obs.Trace) {
	e.solve.SetTrace(t)
	if t == nil {
		return
	}
	t.ProcessName("pmpr engine")
	t.ThreadName(0, "main")
	if e.pool != nil {
		for i := 0; i < e.pool.NumWorkers(); i++ {
			t.ThreadName(i+1, fmt.Sprintf("worker %d", i))
		}
	}
	t.SetMeta("config", e.plan.Cfg.Info())
	t.SetMeta("build", obs.CollectBuildInfo())
}

// Run computes PageRank for every window of the sequence and returns
// the series. Sequential re-runs on the same engine are supported (the
// representation is read-only and the arena recycles between runs);
// overlapping calls return ErrConcurrentRun. Cancel ctx to stop
// mid-solve: Run then returns a *CanceledError (matching ErrCanceled)
// carrying the completed-window count. A nil ctx never cancels.
func (e *Engine) Run(ctx context.Context) (*Series, error) {
	if !e.running.CompareAndSwap(false, true) {
		return nil, ErrConcurrentRun
	}
	defer e.running.Store(false)
	e.counters.Started.Inc()
	j := e.plan.Cfg.Journal
	start := time.Now()
	j.EmitRunStart(e.plan.Windows, e.plan.Cfg.Kernel.String(), e.plan.Cfg.Mode.String(), e.plan.Workers)
	e.phase.Store(int32(phaseSolve))
	out, err := e.solve.Run(ctx, e.plan)
	if err != nil {
		if errors.Is(err, ErrCanceled) {
			e.counters.Canceled.Inc()
			e.phase.Store(int32(phaseCanceled))
			done := 0
			var ce *CanceledError
			if errors.As(err, &ce) {
				done = ce.Completed
			}
			j.EmitRunEnd("canceled", done, e.plan.Windows, time.Since(start).Seconds(), errString(err))
		} else {
			e.phase.Store(int32(phaseFailed))
			j.EmitRunEnd("failed", e.solve.Completed(), e.plan.Windows, time.Since(start).Seconds(), errString(err))
		}
		return nil, err
	}
	e.phase.Store(int32(phasePublish))
	pubStart := time.Now()
	series, err := (PublishStage{}).Run(PublishInput{
		Plan:         e.plan,
		Solve:        out,
		BuildSeconds: e.build.Seconds,
	})
	if err != nil {
		e.phase.Store(int32(phaseFailed))
		j.EmitRunEnd("failed", e.solve.Completed(), e.plan.Windows, time.Since(start).Seconds(), errString(err))
		return nil, err
	}
	series.Report.SetPhase("publish", time.Since(pubStart).Seconds())
	e.counters.Completed.Inc()
	e.phase.Store(int32(phaseDone))
	j.EmitRunEnd("completed", e.plan.Windows, e.plan.Windows, time.Since(start).Seconds(), "")
	return series, nil
}
