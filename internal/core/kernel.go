package core

import (
	"sort"

	"pmpr/internal/tcsr"
)

// Kernel is the pluggable iteration engine of the solve stage. The
// three implementations (spmv, spmv-blocked, spmm) register themselves
// at init time and the plan stage resolves one by Config.Kernel, so
// the solve drivers contain no kernel-specific branches — the window
// loop, warm-start chaining, tracing, validation, and convergence
// control are written once in solveRun and shared by every kernel.
//
// A Kernel is stateless and safe for concurrent use; per-solve state
// lives in the Batch it is handed. The contract with runBatch:
//
//	Init      stages the batch (window state, starting vectors, bound
//	          loop bodies) and marks the non-empty window slots live.
//	Iterate   advances every live slot by one PageRank sweep.
//	Residual  returns a slot's L1 delta from the last Iterate.
//	Finalize  extracts each slot's rank vector into its result and
//	          returns all working memory to the scratch lease. It runs
//	          unconditionally — after convergence, MaxIter exhaustion,
//	          or a cancellation break — so the arena stays consistent
//	          on every exit path.
type Kernel interface {
	// Name is the registry key (matches a KernelID.String()).
	Name() string
	// BatchWidth is the number of windows one batch of this kernel
	// advances under cfg: 1 for the SpMV-style kernels, VectorLen for
	// SpMM. Width 1 routes through the window-chain driver, wider
	// kernels through the region-batched multi-window driver.
	BatchWidth(cfg *Config) int
	// Init stages the batch and marks live slots via Batch.markLive.
	Init(b *Batch)
	// Iterate advances all live slots by one sweep.
	Iterate(b *Batch)
	// Residual returns slot's L1 residual from the last Iterate.
	Residual(b *Batch, slot int) float64
	// Finalize publishes rank vectors and releases working memory.
	Finalize(b *Batch)
}

// Batch is the unit of kernel execution: up to BatchWidth windows of
// one multi-window graph, their optional warm-start vectors, and the
// scratch lease all working memory is drawn from. The solve drivers
// assemble batches and own the convergence loop; kernels only read the
// staged fields and park their per-solve state in state.
type Batch struct {
	mw      *tcsr.MultiWindow
	views   []tcsr.SolveView // one per slot, all windows of mw
	inits   [][]float64      // per-slot predecessor ranks; nil = uniform start
	results []WindowResult   // per-slot results, filled by Init/Finalize
	cfg     *Config
	scratch *scratchBuf // the lease: goroutine-confined free lists
	loop    forLoop     // serial or worker-forked vertex loop

	// live / isLive are maintained by runBatch: Init marks slots live,
	// the driver retires them as they converge. Kernel passes read both
	// (hoisted at leaf start) to skip finished windows mid-sweep.
	live   []int
	isLive []bool

	// truncated is set by runBatch when the convergence loop broke on
	// cancellation: the staged results may be mid-iteration, so the
	// batch is undecided — solveBatchFT returns false and the driver
	// must not consume, count, or checkpoint its results (the run is
	// returning a *CanceledError and a resume re-solves them).
	truncated bool

	// state is the kernel's per-batch working set (vectors, bound loop
	// bodies); one boxed allocation per batch, amortized over its
	// iterations.
	state any
}

// width returns the number of window slots staged in the batch.
func (b *Batch) width() int { return len(b.views) }

// markLive adds slot to the live set; called by Kernel.Init for every
// slot with at least one active vertex.
func (b *Batch) markLive(slot int) {
	b.live = append(b.live, slot)
	b.isLive[slot] = true
}

// kernelRegistry maps Kernel.Name() to the singleton implementation.
// All writes happen in init functions; lookups after that are
// read-only, so no locking is needed.
var kernelRegistry = map[string]Kernel{}

// RegisterKernel adds k to the registry under k.Name(). It is intended
// for init-time use; registering a duplicate or empty name is a
// programming error.
func RegisterKernel(k Kernel) {
	name := k.Name()
	if name == "" {
		//pmvet:ignore panic -- init-time registration; an empty name is a programming error
		panic("core: RegisterKernel with empty name")
	}
	if _, dup := kernelRegistry[name]; dup {
		//pmvet:ignore panic -- init-time registration; a duplicate name is a programming error
		panic("core: RegisterKernel duplicate name " + name)
	}
	kernelRegistry[name] = k
}

// LookupKernel resolves a registered kernel by name.
func LookupKernel(name string) (Kernel, bool) {
	k, ok := kernelRegistry[name]
	return k, ok
}

// RegisteredKernels returns the registered kernel names, sorted.
func RegisteredKernels() []string {
	names := make([]string, 0, len(kernelRegistry))
	for name := range kernelRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
