package core

import (
	"encoding/json"
	"io"
	"os"

	"pmpr/internal/obs"
	"pmpr/internal/sched"
)

// Phase is one timed stage of a run (event load, TCSR build, solve).
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// WarmStartStats quantifies the paper's "if the same thread processes
// Gi-1 and Gi, partial initialization occurs" claim (Sec. 4.3).
// Eligible counts the windows that could warm-start under ideal
// scheduling: PartialInit is on and the window's predecessor lies in
// the same multi-window graph. Hits counts the windows that actually
// did. Serial SpMV runs hit every eligible window; work-stealing and
// SpMM region boundaries (a region-first window's predecessor is solved
// in a later batch) lower the rate, which is exactly what this metric
// makes visible.
type WarmStartStats struct {
	Eligible int     `json:"eligible"`
	Hits     int     `json:"hits"`
	HitRate  float64 `json:"hit_rate"`
}

// ResidualStats summarizes the final per-window L1 residuals.
type ResidualStats struct {
	Max         float64 `json:"max"`
	Mean        float64 `json:"mean"`
	Unconverged int     `json:"unconverged"`
}

// SchedReport is the scheduler's share of a run: the per-worker
// counters plus the aggregate load-balance summary.
type SchedReport struct {
	Workers       []sched.WorkerStats `json:"workers"`
	TotalTasks    int64               `json:"total_tasks"`
	TotalSteals   int64               `json:"total_steals"`
	TotalSplits   int64               `json:"total_splits"`
	LoadImbalance float64             `json:"load_imbalance"`
}

// ScratchReport is the scratch arena's share of a run: how many buffer
// requests the kernels made and how many were served from the free
// lists. A warmed-up engine under Config.DiscardRanks reports
// Misses == 0 and HitRate == 1.
type ScratchReport struct {
	Gets    int64   `json:"gets"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// FaultReport summarizes how the fault-tolerance machinery touched a
// run's windows: how many needed retries, how many fell back to the
// serial kernel, how many were restored from a checkpoint, and which
// were quarantined. An all-zero report is the healthy case.
type FaultReport struct {
	// Retried counts windows that succeeded with the configured kernel
	// after at least one failed attempt.
	Retried int `json:"retried"`
	// Degraded counts windows solved by the serial-SpMV fallback.
	Degraded int `json:"degraded"`
	// Resumed counts windows restored from a checkpoint.
	Resumed int `json:"resumed"`
	// Quarantined lists the global indices of terminally failed windows.
	Quarantined []int `json:"quarantined,omitempty"`
}

// Percentiles condenses a latency distribution to its median and tail.
// The values are interpolated from the solve stage's window wall-time
// histogram buckets, so they are estimates (bucket-resolution accurate),
// not exact order statistics.
type Percentiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// RunReport aggregates the observability of one Engine.Run: phase
// timers, warm-start behavior, per-multi-window sweep counts, final
// residuals, per-window wall time and worker attribution, and (when
// pool metrics are enabled) the scheduler counters. It is attached to
// the Series and JSON-exportable for the benchmark trajectory.
type RunReport struct {
	Build  obs.BuildInfo `json:"build"`
	Config ConfigInfo    `json:"config"`
	// Workers is the pool size (0 = fully serial run).
	Workers int     `json:"workers"`
	Phases  []Phase `json:"phases"`

	Windows         int            `json:"windows"`
	TotalIterations int            `json:"total_iterations"`
	WarmStart       WarmStartStats `json:"warm_start"`
	// MWSweeps[i] counts sweeps of multi-window graph i's shared CSR:
	// for SpMM the per-batch iteration maxima (one sweep advances all
	// live windows of the batch), for SpMV the summed per-window
	// iterations (each window sweeps alone).
	MWSweeps    []int64       `json:"mw_sweeps"`
	TotalSweeps int64         `json:"total_sweeps"`
	Residuals   ResidualStats `json:"residuals"`

	// WindowWallSeconds[w] is window w's solve wall time; for the SpMM
	// kernel every window of a batch reports the batch's wall time.
	WindowWallSeconds []float64 `json:"window_wall_seconds"`
	// WindowWorkers[w] is the pool worker that solved window w (-1 when
	// the window loop ran outside the pool, e.g. serial or app-level).
	WindowWorkers []int `json:"window_workers"`

	// WindowWallPercentiles summarizes the tail of the per-window wall
	// times (from the solve stage's histogram, this run only).
	WindowWallPercentiles Percentiles `json:"window_wall_percentiles"`

	// Sched holds the pool counter delta for this run; nil unless
	// Pool.EnableMetrics was on.
	Sched *SchedReport `json:"sched,omitempty"`

	// Scratch holds the arena counter delta for this run.
	Scratch *ScratchReport `json:"scratch,omitempty"`

	// Fault summarizes retries, degrades, resumes, and quarantines.
	Fault FaultReport `json:"fault"`

	WallSeconds float64 `json:"wall_seconds"`
}

// SetPhase records (or overwrites) a named phase timer. The pipeline
// fills "tcsr_build", "plan", "solve", and "publish"; callers that time
// surrounding stages (event load, symmetrization) can add theirs before
// exporting.
func (r *RunReport) SetPhase(name string, seconds float64) {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			r.Phases[i].Seconds = seconds
			return
		}
	}
	r.Phases = append(r.Phases, Phase{Name: name, Seconds: seconds})
}

// PhaseSeconds returns a named phase timer.
func (r *RunReport) PhaseSeconds(name string) (float64, bool) {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return r.Phases[i].Seconds, true
		}
	}
	return 0, false
}

// JSON renders the report with indentation.
func (r *RunReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// WriteJSON writes the indented report followed by a newline.
func (r *RunReport) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteJSONFile writes the report to path.
func (r *RunReport) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
