package core

import (
	"context"

	"fmt"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

// equivCfg returns a config that converges far past the default
// tolerance, so runs that take different warm-start paths (work
// stealing moves range boundaries) still land within 1e-12 of the same
// fixed point and the series are comparable entry-wise.
func equivCfg(kernel KernelID, mode ParallelMode, partial bool) Config {
	cfg := DefaultConfig()
	cfg.Kernel = kernel
	cfg.Mode = mode
	cfg.PartialInit = partial
	cfg.NumMultiWindows = 3
	cfg.Directed = true
	cfg.VectorLen = 4
	cfg.Opts.Tol = 1e-14
	cfg.Opts.MaxIter = 2000
	return cfg
}

func denseSeries(t *testing.T, s *Series, label string) [][]float64 {
	t.Helper()
	out := make([][]float64, s.Len())
	for w := 0; w < s.Len(); w++ {
		r := s.Window(w)
		if !r.HasRanks() {
			t.Fatalf("%s: window %d has no ranks", label, w)
		}
		out[w] = r.Dense(s.NumVertices)
	}
	return out
}

// TestScratchRewriteMatchesSerial pins the arena-backed kernels to the
// serial execution of the same configuration: every kernel, parallel
// mode, and PartialInit setting must produce the same rank series to
// within 1e-12 on a work-stealing pool.
func TestScratchRewriteMatchesSerial(t *testing.T) {
	l := randomLog(t, 77, 30, 300, 900)
	spec := events.WindowSpec{T0: 0, Delta: 180, Slide: 95, Count: 8}
	pool := sched.NewPool(4)
	defer pool.Close()

	for _, kernel := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		for _, partial := range []bool{false, true} {
			cfg := equivCfg(kernel, AppLevel, partial)
			serialEng, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("serial NewEngine: %v", err)
			}
			serialSeries, err := serialEng.Run(context.Background())
			if err != nil {
				t.Fatalf("serial Run: %v", err)
			}
			want := denseSeries(t, serialSeries, "serial")

			for _, mode := range []ParallelMode{AppLevel, WindowLevel, Nested} {
				label := fmt.Sprintf("%v/%v/partial=%v", kernel, mode, partial)
				t.Run(label, func(t *testing.T) {
					eng, err := NewEngine(l, spec, equivCfg(kernel, mode, partial), pool)
					if err != nil {
						t.Fatalf("NewEngine: %v", err)
					}
					s, err := eng.Run(context.Background())
					if err != nil {
						t.Fatalf("Run: %v", err)
					}
					got := denseSeries(t, s, label)
					for w := range want {
						for v := range want[w] {
							d := got[w][v] - want[w][v]
							if d < 0 {
								d = -d
							}
							if d > 1e-12 {
								t.Fatalf("window %d vertex %d: got %v want %v (|diff|=%v)",
									w, v, got[w][v], want[w][v], d)
							}
						}
					}
				})
			}
		}
	}
}

// TestSerialRunTwiceBitIdentical reruns the same serial engine and
// demands bit-identical ranks. The second run executes entirely on
// recycled arena buffers, so any stale state surviving a buffer's
// round trip through the free lists would show up here.
func TestSerialRunTwiceBitIdentical(t *testing.T) {
	l := randomLog(t, 78, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		eng, err := NewEngine(l, spec, equivCfg(kernel, AppLevel, true), nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s1, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("first Run: %v", err)
		}
		first := denseSeries(t, s1, "first")
		s2, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("second Run: %v", err)
		}
		second := denseSeries(t, s2, "second")
		for w := range first {
			for v := range first[w] {
				if first[w][v] != second[w][v] {
					t.Fatalf("%v: window %d vertex %d differs across runs: %v vs %v",
						kernel, w, v, first[w][v], second[w][v])
				}
			}
		}
	}
}

// TestDiscardRanksSteadyStateHasZeroMisses is the regression test for
// the final-batch rank leak: under DiscardRanks every buffer — the
// SpMM staging vectors of the last batch included — must return to the
// arena, so a second Run is served entirely from the free lists.
func TestDiscardRanksSteadyStateHasZeroMisses(t *testing.T) {
	if raceEnabled {
		// The serial engine's scratch buffer travels through a
		// sync.Pool, and under the race detector sync.Pool randomly
		// drops a fraction of Puts by design, so miss counts are not
		// deterministic here.
		t.Skip("sync.Pool drops Puts at random under the race detector")
	}
	l := randomLog(t, 79, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 7}
	for _, kernel := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		cfg := equivCfg(kernel, AppLevel, true)
		cfg.DiscardRanks = true
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatalf("warm-up Run: %v", err)
		}
		before := eng.ScratchStats()
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("second Run: %v", err)
		}
		d := eng.ScratchStats().Delta(before)
		if d.Gets == 0 {
			t.Fatalf("%v: second run made no buffer requests", kernel)
		}
		if d.Misses != 0 {
			t.Fatalf("%v: second run allocated %d fresh buffers (leak): %+v", kernel, d.Misses, d)
		}
		if s.Report.Scratch == nil || s.Report.Scratch.HitRate != 1 {
			t.Fatalf("%v: report scratch = %+v, want hit rate 1", kernel, s.Report.Scratch)
		}
	}
}

// TestSteadyStateIterationsDoNotAllocate compares the allocation count
// of a 1-iteration run against a 101-iteration run of the same warmed
// engine: the difference is what the 100 extra steady-state iterations
// allocated, and it must be zero for every kernel.
func TestSteadyStateIterationsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	l := randomLog(t, 80, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		measure := func(maxIter int) float64 {
			cfg := equivCfg(kernel, AppLevel, true)
			cfg.DiscardRanks = true
			cfg.Opts.Tol = 1e-300 // never converge early; iterate MaxIter times
			cfg.Opts.MaxIter = maxIter
			eng, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if _, err := eng.Run(context.Background()); err != nil { // warm the arena
				t.Fatalf("warm-up Run: %v", err)
			}
			return testing.AllocsPerRun(3, func() {
				if _, err := eng.Run(context.Background()); err != nil {
					t.Fatalf("Run: %v", err)
				}
			})
		}
		short := measure(1)
		long := measure(101)
		if long != short {
			t.Errorf("%v: 100 extra iterations allocated %.1f objects (run allocs %.1f -> %.1f)",
				kernel, long-short, short, long)
		}
	}
}
