package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"pmpr/internal/obs"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// SolveStage executes solve plans on a pool. It owns the scratch arena
// (kernel working memory, reused across Run calls, so steady-state
// iteration is allocation-free from the second window onward) and the
// optional trace writer. One stage solves many plans sequentially;
// concurrent Run calls on the same stage are not allowed (the Engine
// guards this with ErrConcurrentRun).
type SolveStage struct {
	pool  *sched.Pool
	arena *scratchArena
	trace *obs.Trace // optional; nil = no trace events
	fault obs.FaultCounters
	hist  *obs.SolveHistograms
	ckpt  *ckptRun // optional; nil = no checkpointing

	// cur points at the in-flight (or most recent) run so live surfaces
	// (/status via Engine.Progress) can read its progress atomics
	// without touching Run's state machine.
	cur atomic.Pointer[solveRun]
}

// NewSolveStage creates a solve stage for pool (nil = serial
// execution).
func NewSolveStage(pool *sched.Pool) *SolveStage {
	return &SolveStage{pool: pool, arena: newArena(pool), hist: obs.NewSolveHistograms()}
}

// SetTrace attaches a Chrome trace writer; pass nil to detach. Do not
// call concurrently with Run.
func (st *SolveStage) SetTrace(t *obs.Trace) { st.trace = t }

// FaultCounters exposes the stage's fault-tolerance counters (panics
// recovered, retries, degrades, quarantines, checkpoint traffic) for
// metrics registration (see obs.FaultCounters.RegisterOn).
func (st *SolveStage) FaultCounters() *obs.FaultCounters { return &st.fault }

// Histograms exposes the stage's per-window distributions (wall time,
// iterations, residual) for metrics registration (see
// obs.SolveHistograms.RegisterOn). They are cumulative across runs; use
// SolveOutput.WindowWall for a single run's delta.
func (st *SolveStage) Histograms() *obs.SolveHistograms { return st.hist }

// Completed reports how many windows the in-flight (or most recent)
// Run has decided. Safe to call concurrently with Run.
func (st *SolveStage) Completed() int {
	if r := st.cur.Load(); r != nil {
		return int(r.completed.Load())
	}
	return 0
}

// setCheckpoint attaches per-run checkpoint state (Engine.SetCheckpoint
// builds it). Do not call concurrently with Run.
func (st *SolveStage) setCheckpoint(c *ckptRun) { st.ckpt = c }

// ScratchStats snapshots the scratch arena's buffer-reuse counters.
func (st *SolveStage) ScratchStats() ScratchStats { return st.arena.stats() }

// SolveOutput is the solve stage's product: per-window results plus the
// counter deltas the publish stage folds into the report.
type SolveOutput struct {
	// Results holds one entry per global window.
	Results []WindowResult
	// MWSweeps[i] counts shared-CSR sweeps of multi-window graph i; for
	// width-1 kernels the publish stage recomputes it from iterations.
	MWSweeps []int64
	// Seconds is the solve wall time (phase "solve").
	Seconds float64
	// Sched is the pool counter delta; nil unless Pool.EnableMetrics.
	Sched *SchedReport
	// Scratch is the arena counter delta for this run.
	Scratch *ScratchReport
	// WindowWall is this run's window wall-time distribution (the
	// stage histogram's delta), the source of the report's percentiles.
	WindowWall obs.HistogramSnapshot
}

// Run executes the plan. On cancellation it returns a *CanceledError
// (matching ErrCanceled) carrying how many windows completed; the
// scratch arena is left consistent — every kernel's Finalize runs even
// on the cancel path — so the stage can be reused immediately. Window
// faults (panics, injected errors) are absorbed by the fault policy:
// failed windows retry, degrade to the serial SpMV kernel, and finally
// quarantine in the results, so the only error paths out of a started
// run are cancellation, fail-fast (a *WindowError when
// Cfg.Fault.FailFast is set), and validation.
func (st *SolveStage) Run(ctx context.Context, plan *SolvePlan) (out SolveOutput, err error) {
	defer emitStage(plan.Cfg.Journal, "solve", &err)()
	r := &solveRun{
		plan:     plan,
		arena:    st.arena,
		trace:    st.trace,
		kern:     plan.Kernel,
		fault:    &st.fault,
		hist:     st.hist,
		journal:  plan.Cfg.Journal,
		ckpt:     st.ckpt,
		results:  make([]WindowResult, plan.Windows),
		mwSweeps: make([]int64, len(plan.Temporal.MWs)),
	}
	st.cur.Store(r)
	if dk, ok := LookupKernel(SpMV.String()); ok {
		r.degrade = dk
	}
	if plan.Cfg.Validate {
		r.val = &runValidator{}
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return SolveOutput{}, &CanceledError{Total: plan.Windows, Cause: err}
		}
		// One AfterFunc per Run (not per loop) keeps the per-iteration
		// cancel check down to an atomic load, preserving the kernels'
		// 0 allocs/op steady state.
		stop := context.AfterFunc(ctx, func() { r.canceledFlag.Store(true) })
		defer stop()
	}
	var before sched.Stats
	metrics := st.pool != nil && st.pool.MetricsEnabled()
	if metrics {
		before = st.pool.Stats()
	}
	scratchBefore := st.arena.stats()
	wallBefore := st.hist.WindowWall.Snapshot()
	start := time.Now()
	r.dispatch(ctx, st.pool)
	dur := time.Since(start)
	if st.trace != nil {
		st.trace.Complete("solve", "phase", 0, start, dur, nil)
	}
	if r.canceledFlag.Load() || (ctx != nil && ctx.Err() != nil) {
		var cause error
		if ctx != nil {
			cause = ctx.Err()
		}
		ce := &CanceledError{
			Completed: int(r.completed.Load()),
			Total:     plan.Windows,
			Cause:     cause,
		}
		if st.ckpt != nil {
			// Every window counted in Completed was flushed before the
			// count moved, so the caller can report a resumable path.
			ce.Checkpoint = st.ckpt.store.Dir()
		}
		r.journal.EmitCancel(ce.Completed, ce.Total)
		return SolveOutput{}, ce
	}
	if we := r.abort.Load(); we != nil {
		return SolveOutput{}, we
	}
	if r.val != nil {
		if err := r.val.err(); err != nil {
			return SolveOutput{}, err
		}
	}
	out = SolveOutput{
		Results:    r.results,
		MWSweeps:   r.mwSweeps,
		Seconds:    dur.Seconds(),
		WindowWall: st.hist.WindowWall.Snapshot().Delta(wallBefore),
	}
	if metrics {
		d := st.pool.Stats().Delta(before)
		out.Sched = &SchedReport{
			Workers:       d.Workers,
			TotalTasks:    d.TotalTasks(),
			TotalSteals:   d.TotalSteals(),
			TotalSplits:   d.TotalSplits(),
			LoadImbalance: d.Imbalance(),
		}
	}
	sd := st.arena.stats().Delta(scratchBefore)
	sr := &ScratchReport{Gets: sd.Gets, Hits: sd.Hits, Misses: sd.Misses}
	if sd.Gets > 0 {
		sr.HitRate = float64(sd.Hits) / float64(sd.Gets)
	}
	out.Scratch = sr
	return out, nil
}

// solveRun is the per-Run state of the solve stage: the plan being
// executed, the result sink, and the cancellation flag the drivers
// poll between windows, batches, and iterations.
type solveRun struct {
	plan     *SolvePlan
	arena    *scratchArena
	trace    *obs.Trace
	val      *runValidator // nil unless Cfg.Validate
	kern     Kernel
	degrade  Kernel               // serial fallback kernel (spmv); nil if unregistered
	fault    *obs.FaultCounters   // stage-owned fault/checkpoint counters
	hist     *obs.SolveHistograms // stage-owned per-window distributions
	journal  *obs.Journal         // nil = no event emission
	ckpt     *ckptRun             // nil = no checkpointing
	results  []WindowResult
	mwSweeps []int64

	canceledFlag atomic.Bool
	completed    atomic.Int64
	// abort carries the first fail-fast quarantine; drivers poll it like
	// the cancel flag and Run returns it as the run's error.
	abort atomic.Pointer[WindowError]
}

func (r *solveRun) canceled() bool { return r.canceledFlag.Load() }

// windowDecided records a decided window on the stage's histograms and
// the journal. Wall time is always observed; iterations only for
// windows a kernel actually ran (quarantined windows may have died
// before the first sweep), residuals only at convergence. Runs once per
// window at batch boundaries — never inside iteration loops — so the
// kernels' steady-state allocation guarantees are untouched.
func (r *solveRun) windowDecided(res *WindowResult) {
	if r.hist != nil {
		r.hist.WindowWall.Observe(res.WallSeconds)
		if res.Status != WindowFailed {
			r.hist.Iterations.Observe(float64(res.Iterations))
		}
		if res.Converged {
			r.hist.Residual.Observe(res.FinalResidual)
		}
	}
	r.journal.EmitWindowDone(res.Window, res.Worker, res.Status.String(),
		res.Iterations, res.FinalResidual, res.WallSeconds)
}

// traceTID maps a window-loop worker id to a trace thread id (tid 0 is
// the main/serial thread, workers start at 1).
func traceTID(wid int) int { return wid + 1 }

// dispatch fans the plan's work units out according to the parallel
// mode. Width-1 kernels parallelize over window ranges (warm-start
// chains form inside each range); wider kernels parallelize over
// multi-window units, whose batches are sequentially dependent through
// partial initialization but mutually independent across units (this
// is why Fig. 8's window-level runs improve with more multi-window
// graphs).
func (r *solveRun) dispatch(ctx context.Context, pool *sched.Pool) {
	cfg := &r.plan.Cfg
	grain := cfg.grain()
	part := cfg.Partitioner
	count := r.plan.Windows
	fn := r.windowRange
	outerGrain := grain
	if r.plan.Width > 1 {
		count = len(r.plan.Units)
		fn = r.unitRange
		if cfg.Mode == Nested {
			outerGrain = 1
		}
	}
	switch {
	case pool == nil:
		fn(0, count, -1, serialLoop)
	case cfg.Mode == AppLevel:
		// Windows strictly in order; all parallelism inside the kernel.
		// The outer loop runs on one pool worker (via RunCtx) so the
		// inner loops fork from a worker context instead of paying the
		// external-submission path per parallel region.
		pool.RunCtx(ctx, func(w *sched.Worker) {
			fn(0, count, -1, workerLoop(ctx, w, grain, part))
		})
	case cfg.Mode == WindowLevel:
		pool.ParallelForCtx(ctx, count, outerGrain, part, func(w *sched.Worker, lo, hi int) {
			fn(lo, hi, w.ID(), serialLoop)
		})
	default: // Nested
		pool.ParallelForCtx(ctx, count, outerGrain, part, func(w *sched.Worker, lo, hi int) {
			fn(lo, hi, w.ID(), workerLoop(ctx, w, grain, part))
		})
	}
}

// windowRange processes windows [lo, hi) in order with a width-1
// kernel, chaining partial initialization inside the range: a window
// warm-starts iff its predecessor was computed in this same range and
// lives in the same multi-window graph — exactly the paper's "if the
// same thread processes Gi-1 and Gi, partial initialization occurs".
// Each window runs under the fault policy (solveBatchFT): a failed
// window retries, degrades, or quarantines, and its successor then
// warm-starts from whatever vector survived (a quarantined window
// leaves nil, so the successor cold-starts from the uniform vector).
// Windows held by a resume checkpoint are restored instead of solved.
func (r *solveRun) windowRange(lo, hi, wid int, loop forLoop) {
	sb, release := r.arena.acquire(wid)
	defer release()
	cfg := &r.plan.Cfg
	b := Batch{
		cfg:     cfg,
		scratch: sb,
		loop:    loop,
		views:   sb.getViews(1),
		inits:   sb.getVecs(1),
		isLive:  sb.getBool(1),
	}
	liveBuf := sb.getInt(1)
	var prev []float64
	var prevMW *tcsr.MultiWindow
	// stage is the (single, hoisted) re-staging closure solveBatchFT
	// calls before every attempt; cur* carry the window being attempted.
	var curW, curWid int
	var curMW *tcsr.MultiWindow
	var curInit []float64
	stage := func() {
		b.mw = curMW
		b.views[0] = curMW.ViewOf(curW)
		b.inits[0] = curInit
		b.results[0] = WindowResult{Window: curW, Worker: curWid, mw: curMW}
		b.live = liveBuf[:0]
		b.isLive[0] = false
	}
	for w := lo; w < hi; w++ {
		if r.canceled() || r.aborted() {
			break
		}
		mw := r.plan.Temporal.ForWindow(w)
		if cw := r.resumedWindow(w); cw != nil {
			res := &r.results[w]
			restoreResult(res, cw, mw, wid)
			r.fault.CheckpointResumed.Inc()
			r.journal.EmitCheckpointResume(w)
			prev, prevMW = res.ranks, mw
			r.completed.Add(1)
			continue
		}
		if cfg.PartialInit && prevMW == mw && prev != nil {
			curInit = prev
		} else {
			curInit = nil
		}
		curW, curWid, curMW = w, wid, mw
		b.results = r.results[w : w+1]
		stage()
		r.journal.EmitWindowStart(w, wid)
		t0 := time.Now()
		if !r.solveBatchFT(&b, stage, PointSolveWindow) {
			break // canceled or fail-fast aborted mid-attempt
		}
		dur := time.Since(t0)
		res := &b.results[0]
		res.WallSeconds = dur.Seconds()
		if r.trace != nil {
			r.trace.Complete(fmt.Sprintf("window %d", w), "window", traceTID(wid), t0, dur,
				map[string]interface{}{
					"window": w, "iterations": res.Iterations,
					"active": res.ActiveVertices, "warm_start": res.UsedPartialInit,
				})
		}
		if res.Status != WindowFailed {
			r.validateWindow(res)
		}
		r.windowDecided(res)
		if cfg.DiscardRanks && prev != nil {
			// The predecessor vector has served its warm start; recycle.
			sb.putF64(prev)
		}
		prev, prevMW = res.ranks, mw
		if cfg.DiscardRanks {
			res.ranks = nil
		}
		r.checkpointWindow(res)
		r.completed.Add(1)
	}
	if cfg.DiscardRanks && prev != nil {
		sb.putF64(prev)
	}
	sb.putInt(liveBuf)
	sb.putBool(b.isLive)
	sb.putVecs(b.inits)
	sb.putViews(b.views)
}

// unitRange processes multi-window units [lo, hi) with a batched
// kernel.
func (r *solveRun) unitRange(lo, hi, wid int, loop forLoop) {
	for i := lo; i < hi; i++ {
		if r.canceled() || r.aborted() {
			return
		}
		r.solveUnit(i, wid, loop)
	}
}

// solveUnit runs one multi-window graph's batch sequence. Batch j
// gathers the j-th window of every region (layout precomputed by the
// plan stage), so one kernel batch advances up to K windows and every
// batch after the first warm-starts from its region predecessors.
// Under Cfg.DiscardRanks a batch's rank vectors are recycled as soon
// as the next batch has consumed them — including the final batch's
// vectors after the loop.
func (r *solveRun) solveUnit(ui, wid int, loop forLoop) {
	u := &r.plan.Units[ui]
	mw := u.MW
	W := mw.NumWindows()
	if W == 0 {
		return
	}
	sb, release := r.arena.acquire(wid)
	defer release()
	cfg := &r.plan.Cfg
	K := u.K

	// ranksByOffset[o] is the rank vector of window mw.WinLo+o, kept
	// until batch o+1 has consumed it for partial initialization.
	ranksByOffset := sb.getVecs(W)
	viewsBuf := sb.getViews(K)
	initsBuf := sb.getVecs(K)
	resultsBuf := sb.getResults(K)
	liveBuf := sb.getInt(K)
	isLiveBuf := sb.getBool(K)
	b := Batch{cfg: cfg, scratch: sb, loop: loop, mw: mw}

	// stage re-stages batch curJ from scratch; solveBatchFT calls it
	// before every attempt, so retries see the exact inputs (including
	// warm-start vectors from ranksByOffset) of the first attempt.
	var curJ int
	stage := func() {
		slots := 0
		for reg := 0; reg < K; reg++ {
			off := u.RegionStart[reg] + curJ
			if off >= u.RegionStart[reg+1] {
				continue
			}
			w := mw.WinLo + off
			viewsBuf[slots] = mw.ViewOf(w)
			if curJ > 0 && cfg.PartialInit {
				initsBuf[slots] = ranksByOffset[off-1]
			} else {
				initsBuf[slots] = nil
			}
			resultsBuf[slots] = WindowResult{Window: w, Worker: wid, mw: mw}
			isLiveBuf[slots] = false
			slots++
		}
		b.views = viewsBuf[:slots]
		b.inits = initsBuf[:slots]
		b.results = resultsBuf[:slots]
		b.isLive = isLiveBuf[:slots]
		b.live = liveBuf[:0]
	}
	for j := 0; j < u.NumBatches; j++ {
		if r.canceled() || r.aborted() {
			break
		}
		if r.restoreBatch(u, j, wid, ranksByOffset) {
			continue
		}
		curJ = j
		stage()
		if r.journal != nil {
			for s := range b.results {
				r.journal.EmitWindowStart(b.results[s].Window, wid)
			}
		}
		t0 := time.Now()
		if !r.solveBatchFT(&b, stage, PointSolveBatch) {
			break // canceled or fail-fast aborted mid-attempt
		}
		dur := time.Since(t0)
		// One SpMM sweep of the shared CSR advances every live window
		// of the batch, so the batch's sweep count is its iteration
		// maximum.
		var sweeps int64
		for s := range b.results {
			res := &b.results[s]
			if it := int64(res.Iterations); it > sweeps {
				sweeps = it
			}
			res.WallSeconds = dur.Seconds()
			if res.Status != WindowFailed {
				r.validateWindow(res)
			}
			r.windowDecided(res)
			ranksByOffset[res.Window-mw.WinLo] = res.ranks
			if cfg.DiscardRanks {
				res.ranks = nil
			}
			r.results[res.Window] = *res
			r.checkpointWindow(&r.results[res.Window])
			r.completed.Add(1)
		}
		r.mwSweeps[ui] += sweeps
		if r.trace != nil {
			r.trace.Complete(fmt.Sprintf("mw %d batch %d", ui, j), "batch", traceTID(wid), t0, dur,
				map[string]interface{}{
					"mw": ui, "batch": j, "windows": len(b.results),
					"first_window": b.results[0].Window, "sweeps": sweeps,
				})
		}
		if cfg.DiscardRanks && j > 0 {
			// Batch j-1's vectors have been consumed; recycle them.
			for reg := 0; reg < K; reg++ {
				if off := u.RegionStart[reg] + j - 1; off < u.RegionStart[reg+1] {
					sb.putF64(ranksByOffset[off])
					ranksByOffset[off] = nil
				}
			}
		}
	}
	if cfg.DiscardRanks {
		// The final batch's vectors have no consumer; recycle whatever
		// is still staged so a multi-window graph does not hold K rank
		// vectors past its solve.
		for off := range ranksByOffset {
			if ranksByOffset[off] != nil {
				sb.putF64(ranksByOffset[off])
				ranksByOffset[off] = nil
			}
		}
	}
	sb.putBool(isLiveBuf)
	sb.putInt(liveBuf)
	sb.putResults(resultsBuf)
	sb.putVecs(initsBuf)
	sb.putViews(viewsBuf)
	sb.putVecs(ranksByOffset)
}

// runBatch is the shared convergence loop every kernel executes under:
// Init stages and marks live slots, each iteration advances the live
// set and retires slots whose residual drops below the tolerance, and
// Finalize always runs — cancellation included — so the scratch lease
// is returned on every exit path. kern is the attempting kernel: the
// plan's on the normal path, the serial SpMV fallback on the degrade
// path.
func (r *solveRun) runBatch(kern Kernel, b *Batch) {
	b.truncated = false
	if r.canceled() {
		// Canceled before staging: leave the batch undecided instead of
		// letting a trivially convergent one (e.g. all-empty windows,
		// whose loop below never runs) complete after the cancel landed.
		b.truncated = true
		return
	}
	kern.Init(b)
	opt := b.cfg.Opts
	for it := 0; it < opt.MaxIter && len(b.live) > 0; it++ {
		if r.canceled() {
			b.truncated = true
			break
		}
		for _, s := range b.live {
			b.results[s].Iterations = it + 1
		}
		kern.Iterate(b)
		next := b.live[:0]
		for _, s := range b.live {
			res := kern.Residual(b, s)
			b.results[s].FinalResidual = res
			if res < opt.Tol {
				b.results[s].Converged = true
				b.isLive[s] = false
			} else {
				next = append(next, s)
			}
		}
		b.live = next
	}
	kern.Finalize(b)
}

// validateWindow checks a freshly solved window's rank vector against
// the invariant catalog. It must run before DiscardRanks nils the
// vector. No-op unless the run set up a validator (Cfg.Validate).
func (r *solveRun) validateWindow(res *WindowResult) {
	if r.val == nil {
		return
	}
	if err := checkWindowRanks(res); err != nil {
		r.val.addf("core: window %d: %w", res.Window, err)
	}
}
