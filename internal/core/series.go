package core

import (
	"fmt"
	"sort"

	"pmpr/internal/events"
	"pmpr/internal/tcsr"
)

// WindowStatus classifies how a window's result was obtained under the
// solve stage's fault-tolerance policy.
type WindowStatus uint8

const (
	// WindowOK is a first-attempt solve with the configured kernel.
	WindowOK WindowStatus = iota
	// WindowResumed was loaded from a checkpoint instead of solved.
	WindowResumed
	// WindowRetried succeeded with the configured kernel after at least
	// one failed attempt.
	WindowRetried
	// WindowDegraded succeeded only on the serial-SpMV fallback after
	// the configured kernel failed every attempt.
	WindowDegraded
	// WindowFailed is quarantined: every attempt (including the degrade
	// fallback) failed. The result carries no ranks and Err is set.
	WindowFailed
)

// String names the status for reports and logs.
func (s WindowStatus) String() string {
	switch s {
	case WindowOK:
		return "ok"
	case WindowResumed:
		return "resumed"
	case WindowRetried:
		return "retried"
	case WindowDegraded:
		return "degraded"
	case WindowFailed:
		return "failed"
	default:
		return fmt.Sprintf("WindowStatus(%d)", int(s))
	}
}

// WindowResult holds the PageRank outcome for one window of the
// sequence.
type WindowResult struct {
	// Window is the global window index.
	Window int
	// Iterations performed until convergence (or MaxIter).
	Iterations int
	// Converged reports whether the kernel reached the tolerance.
	Converged bool
	// ActiveVertices is |V_i| of the window graph.
	ActiveVertices int32
	// UsedPartialInit reports whether this window warm-started from its
	// predecessor (Eq. 4) rather than the uniform vector.
	UsedPartialInit bool
	// FinalResidual is the L1 delta of the last iteration performed
	// (below the tolerance iff Converged).
	FinalResidual float64
	// WallSeconds is the solve wall time of this window; for the SpMM
	// kernel it is the wall time of the batch that advanced it.
	WallSeconds float64
	// Worker is the pool worker id whose window-loop range solved this
	// window, or -1 when the window loop ran outside the pool (serial
	// and app-level runs).
	Worker int
	// Status records how the result was obtained (ok, resumed from a
	// checkpoint, retried, degraded to the serial fallback, or failed).
	Status WindowStatus
	// Attempts counts solve attempts; 0 for resumed windows, 1 for a
	// clean first-attempt solve.
	Attempts int
	// Err is the terminal failure of a quarantined window (Status ==
	// WindowFailed); nil otherwise.
	Err error

	ranks []float64 // local-id ranks; nil when discarded or failed
	mw    *tcsr.MultiWindow
}

// Rank returns the PageRank of the global vertex id in this window; 0
// for vertices outside the window graph. It panics if the ranks were
// discarded (Config.DiscardRanks); callers that cannot statically rule
// out a discard (anything downstream of a user-supplied Config) must
// use RankOK instead — see cmd/pmrank's -out guard.
func (r *WindowResult) Rank(global int32) float64 {
	if r.ranks == nil {
		// The discard/retain decision is made once, at Config time, so
		// reading a discarded vector is a programming error at the call
		// site, not a runtime condition to handle; RankOK is the
		// non-panicking variant for dynamic configs.
		//pmvet:ignore panic -- documented misuse contract; RankOK is the error-safe accessor
		panic("core: ranks were discarded (Config.DiscardRanks)")
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return 0
	}
	return r.ranks[local]
}

// RankOK is the non-panicking variant of Rank: ok is false when the
// ranks were discarded (Config.DiscardRanks), and the rank is 0 for
// vertices outside the window graph.
func (r *WindowResult) RankOK(global int32) (rank float64, ok bool) {
	if r.ranks == nil {
		return 0, false
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return 0, true
	}
	return r.ranks[local], true
}

// HasRanks reports whether the rank vector was retained.
func (r *WindowResult) HasRanks() bool { return r.ranks != nil }

// ForEach calls f for every vertex with a positive rank, in ascending
// global-id order. Like Rank it panics when the ranks were discarded
// (Config.DiscardRanks); check HasRanks first when the config is not
// statically known.
func (r *WindowResult) ForEach(f func(global int32, rank float64)) {
	if r.ranks == nil {
		// Same contract as Rank: HasRanks/RankOK are the guards for
		// dynamically-configured callers.
		//pmvet:ignore panic -- documented misuse contract; HasRanks is the guard
		panic("core: ranks were discarded (Config.DiscardRanks)")
	}
	for local, rank := range r.ranks {
		if rank > 0 {
			f(r.mw.GlobalID(int32(local)), rank)
		}
	}
}

// Dense expands the window's ranks to a dense vector over the global
// vertex universe.
func (r *WindowResult) Dense(numVertices int32) []float64 {
	out := make([]float64, numVertices)
	r.ForEach(func(g int32, rank float64) { out[g] = rank })
	return out
}

// Ranked is a (vertex, rank) pair.
type Ranked struct {
	Vertex int32
	Rank   float64
}

// TopK returns the k highest-ranked vertices of the window, descending
// by rank with ascending vertex id as the tie-break.
func (r *WindowResult) TopK(k int) []Ranked {
	var all []Ranked
	r.ForEach(func(g int32, rank float64) { all = append(all, Ranked{g, rank}) })
	sort.Slice(all, func(i, j int) bool {
		if all[i].Rank > all[j].Rank {
			return true
		}
		if all[i].Rank < all[j].Rank {
			return false
		}
		return all[i].Vertex < all[j].Vertex
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Series is the postmortem analysis output: one WindowResult per window
// of the sliding sequence.
type Series struct {
	Spec        events.WindowSpec
	NumVertices int32
	Results     []WindowResult
	// Report carries the run's observability rollup (phase timers,
	// warm-start hit rate, sweep counts, scheduler stats).
	Report *RunReport
}

// Window returns the result for window i.
func (s *Series) Window(i int) *WindowResult { return &s.Results[i] }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Results) }

// TotalIterations sums the PageRank iterations over all windows — the
// work measure partial initialization reduces.
func (s *Series) TotalIterations() int {
	t := 0
	for i := range s.Results {
		t += s.Results[i].Iterations
	}
	return t
}

// AllConverged reports whether every window reached the tolerance.
func (s *Series) AllConverged() bool {
	for i := range s.Results {
		if !s.Results[i].Converged {
			return false
		}
	}
	return true
}

// Quarantined returns the indices of windows that failed terminally
// (Status == WindowFailed), in ascending order. An empty slice means
// every window holds a usable result.
func (s *Series) Quarantined() []int {
	var out []int
	for i := range s.Results {
		if s.Results[i].Status == WindowFailed {
			out = append(out, i)
		}
	}
	return out
}

// AllOK reports whether no window was quarantined.
func (s *Series) AllOK() bool { return len(s.Quarantined()) == 0 }

// String summarizes the series for logs and test failures.
func (s *Series) String() string {
	return fmt.Sprintf("series{windows=%d iterations=%d converged=%v}",
		s.Len(), s.TotalIterations(), s.AllConverged())
}
