// This file implements the solve stage's per-window fault tolerance
// and checkpoint/resume plumbing. The drivers in solve.go stage each
// batch and hand it to solveBatchFT, which owns the failure ladder:
//
//	attempt   — run the batch under recover(), so a kernel panic (or a
//	            sched.PanicError propagated from a nested vertex loop)
//	            becomes an ordinary error instead of killing the run
//	retry     — re-stage and re-run with exponential backoff, up to
//	            Config.Fault.MaxRetries times; a retried attempt sees
//	            inputs identical to the first, so a transient fault
//	            leaves no trace in the results
//	degrade   — solve each window of the batch alone on the serial
//	            SpMV kernel, the simplest execution path available
//	quarantine— mark the window WindowFailed with a *WindowError and
//	            move on (or abort the run under Fault.FailFast)
//
// Checkpointing rides the same per-window boundary: every decided
// window is flushed before it is counted completed, and a resumed run
// restores checkpointed windows (Status WindowResumed) into the
// warm-start chains exactly where solving would have placed them.

package core

import (
	"errors"
	"time"

	"pmpr/internal/checkpoint"
	"pmpr/internal/fault"
	"pmpr/internal/tcsr"
)

// Fault-injection points covering the pipeline stages (see
// internal/fault). The solve points fire once per attempt, before the
// kernel runs, so count/after rules map directly onto attempts.
const (
	// PointBuild fires at the top of BuildStage.Run.
	PointBuild = "core.build"
	// PointPlan fires at the top of PlanStage.Run.
	PointPlan = "core.plan"
	// PointSolveWindow fires before each width-1 window attempt.
	PointSolveWindow = "core.solve.window"
	// PointSolveBatch fires before each SpMM batch attempt.
	PointSolveBatch = "core.solve.batch"
	// PointSolveDegrade fires before each serial-fallback attempt.
	PointSolveDegrade = "core.solve.degrade"
	// PointPublish fires at the top of PublishStage.Run.
	PointPublish = "core.publish"
)

func init() {
	fault.RegisterPoint(PointBuild, "build stage entry (temporal CSR construction)")
	fault.RegisterPoint(PointPlan, "plan stage entry (kernel resolution, batch layout)")
	fault.RegisterPoint(PointSolveWindow, "width-1 window solve attempt")
	fault.RegisterPoint(PointSolveBatch, "SpMM batch solve attempt")
	fault.RegisterPoint(PointSolveDegrade, "serial-SpMV degrade attempt")
	fault.RegisterPoint(PointPublish, "publish stage entry (series/report assembly)")
}

// ckptRun is the per-engine checkpoint state the solve stage consults:
// the store decided windows are flushed to, and the windows a resumed
// run restores instead of solving.
type ckptRun struct {
	store   *checkpoint.Store
	resumed map[int]*checkpoint.Window
}

// attempt runs one staged batch on kern with panic isolation: a panic
// anywhere in the kernel (including a sched.PanicError rethrown from a
// nested vertex loop) is converted into a *RecoveredPanic error. The
// injection point fires before the kernel, so armed faults count solve
// attempts.
func (r *solveRun) attempt(kern Kernel, b *Batch, point string) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			r.fault.PanicsRecovered.Inc()
			err = recoveredError(rec)
		}
	}()
	if ferr := fault.Inject(point); ferr != nil {
		return ferr
	}
	r.runBatch(kern, b)
	return nil
}

// isPanicErr reports whether err records a recovered panic.
func isPanicErr(err error) bool {
	var rp *RecoveredPanic
	return errors.As(err, &rp)
}

// solveBatchFT runs one staged batch under the fault policy and stamps
// every slot's Status, Attempts, and (for quarantined slots) Err.
// reset must re-stage the batch to the exact state it had before the
// first attempt — same views, same warm-start vectors, zeroed results
// — so a retried attempt computes the identical solution a fault-free
// run would have. It returns false when the run was canceled (or
// fail-fast aborted) before the batch could be decided; the caller
// must then stop without consuming the batch's results.
func (r *solveRun) solveBatchFT(b *Batch, reset func(), point string) bool {
	pol := &r.plan.Cfg.Fault
	attempts := 0
	var err error
	for try := 0; try <= pol.MaxRetries; try++ {
		if try > 0 {
			r.fault.Retries.Inc()
			if r.journal != nil {
				for s := range b.results {
					r.journal.EmitRetry(b.results[s].Window, b.results[s].Worker, try, errString(err))
				}
			}
			if d := pol.backoffFor(try); d > 0 {
				time.Sleep(d)
			}
			if r.canceled() || r.aborted() {
				return false
			}
			reset()
		}
		attempts++
		err = r.attempt(r.kern, b, point)
		if err == nil {
			if b.truncated {
				// Cancellation broke the convergence loop mid-batch; the
				// staged results are partial, so the batch is undecided.
				return false
			}
			status := WindowOK
			if attempts > 1 {
				status = WindowRetried
			}
			for s := range b.results {
				b.results[s].Status = status
				b.results[s].Attempts = attempts
			}
			return true
		}
		if r.canceled() {
			return false
		}
	}
	panicked := isPanicErr(err)
	if !pol.DisableDegrade && r.degrade != nil {
		if r.canceled() || r.aborted() {
			return false
		}
		reset()
		r.degradeBatch(b, attempts, panicked)
		return !b.truncated
	}
	for s := range b.results {
		r.quarantine(&b.results[s], attempts, err, panicked)
	}
	return true
}

// degradeBatch re-solves each window of a freshly re-staged batch
// alone on the serial SpMV kernel — the simplest execution path, with
// no batching and no nested parallelism — quarantining only the slots
// that fail even there. Allocation here is fine: degrade is the cold
// path of a cold path.
func (r *solveRun) degradeBatch(b *Batch, priorAttempts int, panicked bool) {
	attempts := priorAttempts + 1
	live := make([]int, 0, 1)
	for s := range b.views {
		db := Batch{
			cfg:     b.cfg,
			scratch: b.scratch,
			loop:    serialLoop,
			mw:      b.mw,
			views:   b.views[s : s+1],
			inits:   b.inits[s : s+1],
			results: b.results[s : s+1],
			isLive:  b.isLive[s : s+1],
			live:    live[:0],
		}
		db.isLive[0] = false
		res := &b.results[s]
		serr := r.attempt(r.degrade, &db, PointSolveDegrade)
		if db.truncated {
			// Cancellation cut this slot's convergence loop; taint the
			// outer batch so the driver does not checkpoint it.
			b.truncated = true
		}
		if serr != nil {
			r.quarantine(res, attempts, serr, panicked || isPanicErr(serr))
			continue
		}
		res.Status = WindowDegraded
		res.Attempts = attempts
		r.fault.Degraded.Inc()
		r.journal.EmitDegrade(res.Window, res.Worker)
	}
}

// quarantine marks res terminally failed with a *WindowError and, under
// Fault.FailFast, arms the run-wide abort.
func (r *solveRun) quarantine(res *WindowResult, attempts int, cause error, panicked bool) {
	we := &WindowError{Window: res.Window, Attempts: attempts, Panicked: panicked, Err: cause}
	res.Status = WindowFailed
	res.Attempts = attempts
	res.Err = we
	res.Converged = false
	res.ranks = nil
	r.fault.Quarantined.Inc()
	r.journal.EmitQuarantine(res.Window, res.Worker, attempts, errString(cause))
	if r.plan.Cfg.Fault.FailFast {
		r.abort.CompareAndSwap(nil, we)
	}
}

// aborted reports whether a fail-fast quarantine has armed the
// run-wide abort; the drivers poll it alongside canceled().
func (r *solveRun) aborted() bool { return r.abort.Load() != nil }

// resumedWindow returns window w's checkpointed result when this run
// is resuming and the checkpoint holds one.
func (r *solveRun) resumedWindow(w int) *checkpoint.Window {
	if r.ckpt == nil {
		return nil
	}
	return r.ckpt.resumed[w]
}

// restoreResult fills res from a checkpointed window. The restored
// ranks are the original run's exact bits, so successors warm-start
// from the same vectors they would have seen live.
func restoreResult(res *WindowResult, cw *checkpoint.Window, mw *tcsr.MultiWindow, wid int) {
	*res = WindowResult{
		Window:          cw.Index,
		Iterations:      cw.Iterations,
		Converged:       cw.Converged,
		ActiveVertices:  cw.ActiveVertices,
		UsedPartialInit: cw.UsedPartialInit,
		FinalResidual:   cw.FinalResidual,
		WallSeconds:     cw.WallSeconds,
		Worker:          wid,
		Status:          WindowResumed,
		ranks:           cw.Ranks,
		mw:              mw,
	}
}

// checkpointWindow flushes a decided window to the checkpoint store.
// Failed windows are not written (a resumed run gets another chance at
// them) and write errors never fail the run — the window's result is
// already in memory; a resume would simply re-solve it.
func (r *solveRun) checkpointWindow(res *WindowResult) {
	if r.ckpt == nil || res.Status == WindowFailed || res.Status == WindowResumed {
		return
	}
	cw := &checkpoint.Window{
		Index:           res.Window,
		Iterations:      res.Iterations,
		Converged:       res.Converged,
		UsedPartialInit: res.UsedPartialInit,
		ActiveVertices:  res.ActiveVertices,
		FinalResidual:   res.FinalResidual,
		WallSeconds:     res.WallSeconds,
		Ranks:           res.ranks,
	}
	if err := r.ckpt.store.WriteWindow(cw); err != nil {
		r.fault.CheckpointErrors.Inc()
		return
	}
	r.fault.CheckpointWindows.Inc()
	r.journal.EmitCheckpointWrite(res.Window)
}

// restoreBatch restores SpMM batch j of unit u when every one of its
// windows is checkpointed; a partially checkpointed batch re-solves
// whole (its checkpointed members are simply overwritten), keeping the
// batch the unit of work on the SpMM path. Restored vectors are staged
// into ranksByOffset so the next batch warm-starts from them.
func (r *solveRun) restoreBatch(u *SolveUnit, j, wid int, ranksByOffset [][]float64) bool {
	if r.ckpt == nil {
		return false
	}
	mw := u.MW
	for reg := 0; reg < u.K; reg++ {
		off := u.RegionStart[reg] + j
		if off >= u.RegionStart[reg+1] {
			continue
		}
		if r.ckpt.resumed[mw.WinLo+off] == nil {
			return false
		}
	}
	for reg := 0; reg < u.K; reg++ {
		off := u.RegionStart[reg] + j
		if off >= u.RegionStart[reg+1] {
			continue
		}
		w := mw.WinLo + off
		cw := r.ckpt.resumed[w]
		restoreResult(&r.results[w], cw, mw, wid)
		ranksByOffset[off] = cw.Ranks
		r.fault.CheckpointResumed.Inc()
		r.journal.EmitCheckpointResume(w)
		r.completed.Add(1)
	}
	return true
}
