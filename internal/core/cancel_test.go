package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

// slowEngine builds an engine whose solve takes long enough (many
// windows, unreachable tolerance) that a cancellation reliably lands
// mid-solve.
func slowEngine(t *testing.T, cfg Config, pool *sched.Pool) (*Engine, events.WindowSpec) {
	t.Helper()
	l := randomLog(t, 7, 200, 20000, 200000)
	spec, err := events.Span(l, 10000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Opts.Tol = 1e-300 // unreachable: every window runs MaxIter sweeps
	cfg.Opts.MaxIter = 120
	cfg.DiscardRanks = true
	eng, err := NewEngine(l, spec, cfg, pool)
	if err != nil {
		t.Fatal(err)
	}
	return eng, spec
}

func cancelConfigs() map[string]Config {
	out := map[string]Config{}
	for _, kern := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		for _, mode := range []ParallelMode{AppLevel, WindowLevel, Nested} {
			cfg := DefaultConfig()
			cfg.Kernel = kern
			cfg.Mode = mode
			cfg.VectorLen = 8
			out[kern.String()+"/"+mode.String()] = cfg
		}
	}
	return out
}

func TestRunCancelMidSolve(t *testing.T) {
	for name, cfg := range cancelConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			pool := sched.NewPool(4)
			defer pool.Close()
			eng, spec := slowEngine(t, cfg, pool)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			s, err := eng.Run(ctx)
			returned := time.Since(start)
			if s != nil {
				t.Fatal("canceled run returned a series")
			}
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CanceledError", err)
			}
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("err %v must match ErrCanceled and context.Canceled", err)
			}
			if ce.Total != spec.Count || ce.Completed < 0 || ce.Completed >= ce.Total {
				t.Fatalf("progress %d/%d out of range (windows=%d)", ce.Completed, ce.Total, spec.Count)
			}
			// Cancellation is cooperative at window/batch/iteration
			// boundaries; with this workload's tiny windows the solve must
			// stop well inside 100ms of the cancel signal.
			if returned > 110*time.Millisecond {
				t.Fatalf("Run returned %v after cancel; want < 100ms past the signal", returned)
			}
			if got := eng.Counters().Canceled.Value(); got != 1 {
				t.Fatalf("canceled counter = %d, want 1", got)
			}

			// The arena must be consistent after the cancel path: every
			// buffer the kernels drew was returned, so a full re-run on
			// the same engine succeeds and ends with zero outstanding
			// buffers relative to its own steady state.
			s, err = eng.Run(context.Background())
			if err != nil {
				t.Fatalf("re-run after cancel: %v", err)
			}
			if s.Len() != spec.Count {
				t.Fatalf("re-run solved %d of %d windows", s.Len(), spec.Count)
			}
			if got := eng.Counters().Completed.Value(); got != 1 {
				t.Fatalf("completed counter = %d, want 1", got)
			}
		})
	}
}

func TestRunCancelNoGoroutineLeak(t *testing.T) {
	pool := sched.NewPool(4)
	cfg := DefaultConfig()
	cfg.Kernel = SpMM
	cfg.Mode = Nested
	cfg.VectorLen = 8
	eng, _ := slowEngine(t, cfg, pool)
	// Warm up: pool workers and the runtime's background goroutines
	// settle before we take the baseline.
	ctx0, cancel0 := context.WithCancel(context.Background())
	cancel0()
	_, _ = eng.Run(ctx0)
	time.Sleep(20 * time.Millisecond)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(5 * time.Millisecond)
			cancel()
		}()
		if _, err := eng.Run(ctx); err == nil {
			// The workload is sized to outlast 5ms, but a loaded CI
			// machine could finish first; that's not a leak.
			t.Log("run finished before cancel; continuing")
		}
		cancel()
	}
	pool.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestRunCancelScratchConsistent(t *testing.T) {
	// Two identical runs after a canceled one must hit the free lists
	// for every request (miss delta zero): Finalize ran on the cancel
	// path and returned every kernel buffer.
	pool := sched.NewPool(4)
	defer pool.Close()
	cfg := DefaultConfig()
	cfg.Kernel = SpMM
	cfg.Mode = Nested
	cfg.VectorLen = 8
	eng, _ := slowEngine(t, cfg, pool)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := eng.Run(ctx); err == nil {
		t.Skip("workload finished before cancel; nothing to verify")
	}
	st := eng.ScratchStats()
	if st.Gets != st.Hits+st.Misses {
		t.Fatalf("inconsistent arena stats after cancel: %+v", st)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	warm := eng.ScratchStats()
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	steady := eng.ScratchStats()
	if d := steady.Misses - warm.Misses; d != 0 {
		t.Fatalf("steady-state run after cancel still missed %d buffer requests", d)
	}
}

func TestRunSequentialRerunsSupported(t *testing.T) {
	// Run twice on one engine: both must succeed and agree (the
	// representation is read-only; the arena recycles between runs).
	l := randomLog(t, 11, 60, 3000, 30000)
	spec, err := events.Span(l, 6000, 1500)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("second Run on the same engine: %v", err)
	}
	if s1.Len() != s2.Len() {
		t.Fatalf("run lengths differ: %d vs %d", s1.Len(), s2.Len())
	}
	for w := 0; w < s1.Len(); w++ {
		a, b := s1.Window(w), s2.Window(w)
		if a.Iterations != b.Iterations || a.ActiveVertices != b.ActiveVertices {
			t.Fatalf("window %d: runs disagree (%+v vs %+v)", w, a, b)
		}
		av, bv := a.Dense(l.NumVertices()), b.Dense(l.NumVertices())
		for v := range av {
			if av[v] != bv[v] {
				t.Fatalf("window %d vertex %d: %v vs %v", w, v, av[v], bv[v])
			}
		}
	}
	if got := eng.Counters().Started.Value(); got != 2 {
		t.Fatalf("started counter = %d, want 2", got)
	}
}

func TestRunConcurrentCallsRejected(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.Mode = WindowLevel
	eng, _ := slowEngine(t, cfg, pool)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := eng.Run(ctx)
		done <- err
	}()
	<-started
	// Poll until the overlapping call observes the running flag; the
	// first Run is busy for much longer than this loop.
	var overlapped bool
	for i := 0; i < 1000; i++ {
		if _, err := eng.Run(ctx); errors.Is(err, ErrConcurrentRun) {
			overlapped = true
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	<-done
	if !overlapped {
		t.Fatal("overlapping Run never returned ErrConcurrentRun")
	}
	// The flag clears once the first call returns.
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatalf("run after overlap rejection: %v", err)
	}
}

func TestCanceledErrorUnwrap(t *testing.T) {
	ce := &CanceledError{Completed: 3, Total: 10, Cause: context.DeadlineExceeded}
	if !errors.Is(ce, ErrCanceled) {
		t.Fatal("CanceledError must match ErrCanceled")
	}
	if !errors.Is(ce, context.DeadlineExceeded) {
		t.Fatal("CanceledError must expose its cause")
	}
	bare := &CanceledError{Completed: 0, Total: 5}
	if !errors.Is(bare, ErrCanceled) {
		t.Fatal("cause-less CanceledError must still match ErrCanceled")
	}
}
