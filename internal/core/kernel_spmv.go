package core

import (
	"math"
	"sync/atomic"

	"pmpr/internal/tcsr"
)

// windowState holds the per-window quantities a PageRank iteration
// needs: inverse out-degrees (0 for dangling or absent vertices),
// activity flags, and |V_i|.
type windowState struct {
	invdeg []float64
	active []bool
	na     int32
}

// computeWindowState fills the state for global window w of mw. The
// degree pass runs over the out-CSR partitioned by source vertex; the
// activity pass runs over the in-CSR partitioned by target vertex, so
// both are race-free under loop.
func computeWindowState(mw *tcsr.MultiWindow, w int, directed bool, loop forLoop) windowState {
	n := int(mw.NumLocal())
	ts, te := mw.Window(w)
	st := windowState{
		invdeg: make([]float64, n),
		active: make([]bool, n),
	}
	loop(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			deg := 0
			i := start
			for i < end {
				j := i + 1
				for j < end && mw.OutCol[j] == mw.OutCol[i] {
					j++
				}
				if tcsr.RunActive(mw.OutTime[i:j], ts, te) {
					deg++
				}
				i = j
			}
			if deg > 0 {
				st.invdeg[u] = 1 / float64(deg)
			}
		}
	})
	var na atomic.Int32
	loop(n, func(lo, hi int) {
		var cnt int32
		for v := lo; v < hi; v++ {
			act := st.invdeg[v] > 0
			if !act && directed {
				// A vertex with only in-edges is active too; scan its
				// in-runs for one live edge.
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && !act {
					j := i + 1
					for j < end && mw.InCol[j] == mw.InCol[i] {
						j++
					}
					act = tcsr.RunActive(mw.InTime[i:j], ts, te)
					i = j
				}
			}
			st.active[v] = act
			if act {
				cnt++
			}
		}
		na.Add(cnt)
	})
	st.na = na.Load()
	return st
}

// initVector fills x with the starting PageRank values: the partial
// initialization of Eq. 4 when prev is available, otherwise the uniform
// 1/|V_i| over active vertices. It reports whether partial
// initialization was actually used (it falls back to uniform when the
// windows share no active vertices).
func initVector(x, prev []float64, st windowState, loop forLoop) bool {
	n := len(x)
	if st.na == 0 {
		for v := range x {
			x[v] = 0
		}
		return false
	}
	uniform := 1 / float64(st.na)
	if prev == nil {
		loop(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if st.active[v] {
					x[v] = uniform
				} else {
					x[v] = 0
				}
			}
		})
		return false
	}
	// Eq. 4: shared vertices are scaled by |Vi ∩ Vi-1| / |Vi| and
	// renormalized by their previous mass; vertices new to the window
	// start at the uniform value, so the vector still sums to 1.
	var sharedN atomic.Int64
	var sharedSum atomicFloat64
	loop(n, func(lo, hi int) {
		var cnt int64
		var sum float64
		for v := lo; v < hi; v++ {
			if st.active[v] && prev[v] > 0 {
				cnt++
				sum += prev[v]
			}
		}
		sharedN.Add(cnt)
		sharedSum.Add(sum)
	})
	shared, sum := sharedN.Load(), sharedSum.Load()
	if shared == 0 || sum <= 0 {
		loop(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if st.active[v] {
					x[v] = uniform
				} else {
					x[v] = 0
				}
			}
		})
		return false
	}
	scale := float64(shared) / float64(st.na) / sum
	loop(n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			switch {
			case !st.active[v]:
				x[v] = 0
			case prev[v] > 0:
				x[v] = prev[v] * scale
			default:
				x[v] = uniform
			}
		}
	})
	return true
}

// solveWindow runs the SpMV-style PageRank on global window w of mw.
// prev, when non-nil, is the predecessor window's rank vector in the
// same multi-window local id space and enables partial initialization.
func (e *Engine) solveWindow(mw *tcsr.MultiWindow, w int, prev []float64, loop forLoop) WindowResult {
	n := int(mw.NumLocal())
	st := computeWindowState(mw, w, e.cfg.Directed, loop)
	res := WindowResult{Window: w, ActiveVertices: st.na, mw: mw}
	x := make([]float64, n)
	if st.na == 0 {
		res.Converged = true
		res.ranks = x
		return res
	}
	res.UsedPartialInit = initVector(x, prev, st, loop)

	y := make([]float64, n)
	z := make([]float64, n)
	ts, te := mw.Window(w)
	opt := e.cfg.Opts
	invNA := 1 / float64(st.na)

	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		// Pass 1 (by source): scale ranks by inverse out-degree and
		// collect dangling mass.
		var danglingAcc atomicFloat64
		loop(n, func(lo, hi int) {
			var d float64
			for u := lo; u < hi; u++ {
				z[u] = x[u] * st.invdeg[u]
				if st.active[u] && st.invdeg[u] == 0 {
					d += x[u]
				}
			}
			danglingAcc.Add(d)
		})
		base := opt.Alpha*invNA + (1-opt.Alpha)*danglingAcc.Load()*invNA

		// Pass 2 (by target): pull contributions along active runs.
		var deltaAcc atomicFloat64
		inRow, inCol, inTime := mw.InRow, mw.InCol, mw.InTime
		loop(n, func(lo, hi int) {
			var delta float64
			for v := lo; v < hi; v++ {
				if !st.active[v] {
					y[v] = 0
					continue
				}
				var acc float64
				i, end := inRow[v], inRow[v+1]
				for i < end {
					j := i + 1
					c := inCol[i]
					for j < end && inCol[j] == c {
						j++
					}
					if tcsr.RunActive(inTime[i:j], ts, te) {
						acc += z[c]
					}
					i = j
				}
				nv := base + (1-opt.Alpha)*acc
				delta += math.Abs(nv - x[v])
				y[v] = nv
			}
			deltaAcc.Add(delta)
		})
		x, y = y, x
		res.FinalResidual = deltaAcc.Load()
		if res.FinalResidual < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.ranks = x
	return res
}
