package core

import (
	"math"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// windowState holds the per-window quantities a PageRank iteration
// needs: inverse out-degrees (0 for dangling or absent vertices),
// activity flags, and |V_i|. The slices are scratch-arena buffers;
// release them with releaseWindowState when the solve is done.
type windowState struct {
	invdeg []float64
	active []bool
	na     int32
}

// computeWindowState fills the state for global window w of mw with
// buffers drawn from sb. The degree pass runs over the out-CSR
// partitioned by source vertex; the activity pass runs over the in-CSR
// partitioned by target vertex, so both are race-free under loop.
// Cross-leaf counting reduces through per-lane slots instead of an
// atomic, keeping the leaves allocation- and contention-free.
func computeWindowState(mw *tcsr.MultiWindow, w int, directed bool, loop forLoop, sb *scratchBuf) windowState {
	n := int(mw.NumLocal())
	ts, te := mw.Window(w)
	st := windowState{
		invdeg: sb.getF64(n),
		active: sb.getBool(n),
	}
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			deg := 0
			i := start
			for i < end {
				j := i + 1
				for j < end && mw.OutCol[j] == mw.OutCol[i] {
					j++
				}
				if tcsr.RunActive(mw.OutTime[i:j], ts, te) {
					deg++
				}
				i = j
			}
			if deg > 0 {
				st.invdeg[u] = 1 / float64(deg)
			}
		}
	})
	laneNA := sb.getI32(sb.lanes())
	loop(n, func(wk *sched.Worker, lo, hi int) {
		var cnt int32
		for v := lo; v < hi; v++ {
			act := st.invdeg[v] > 0
			if !act && directed {
				// A vertex with only in-edges is active too; scan its
				// in-runs for one live edge.
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && !act {
					j := i + 1
					for j < end && mw.InCol[j] == mw.InCol[i] {
						j++
					}
					act = tcsr.RunActive(mw.InTime[i:j], ts, te)
					i = j
				}
			}
			st.active[v] = act
			if act {
				cnt++
			}
		}
		laneNA[laneOf(wk)] += cnt
	})
	for _, c := range laneNA {
		st.na += c
	}
	sb.putI32(laneNA)
	return st
}

// releaseWindowState returns the state's buffers to the arena.
func releaseWindowState(sb *scratchBuf, st windowState) {
	sb.putF64(st.invdeg)
	sb.putBool(st.active)
}

// initVector fills x with the starting PageRank values: the partial
// initialization of Eq. 4 when prev is available, otherwise the uniform
// 1/|V_i| over active vertices. It reports whether partial
// initialization was actually used (it falls back to uniform when the
// windows share no active vertices).
func initVector(x, prev []float64, st windowState, loop forLoop, sb *scratchBuf) bool {
	n := len(x)
	if st.na == 0 {
		for v := range x {
			x[v] = 0
		}
		return false
	}
	uniform := 1 / float64(st.na)
	fillUniform := func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			if st.active[v] {
				x[v] = uniform
			} else {
				x[v] = 0
			}
		}
	}
	if prev == nil {
		loop(n, fillUniform)
		return false
	}
	// Eq. 4: shared vertices are scaled by |Vi ∩ Vi-1| / |Vi| and
	// renormalized by their previous mass; vertices new to the window
	// start at the uniform value, so the vector still sums to 1.
	lanes := sb.lanes()
	laneCnt := sb.getI64(lanes)
	laneSum := sb.getF64(lanes)
	loop(n, func(wk *sched.Worker, lo, hi int) {
		var cnt int64
		var sum float64
		for v := lo; v < hi; v++ {
			if st.active[v] && prev[v] > 0 {
				cnt++
				sum += prev[v]
			}
		}
		lane := laneOf(wk)
		laneCnt[lane] += cnt
		laneSum[lane] += sum
	})
	var shared int64
	var sum float64
	for l := 0; l < lanes; l++ {
		shared += laneCnt[l]
		sum += laneSum[l]
	}
	sb.putI64(laneCnt)
	sb.putF64(laneSum)
	if shared == 0 || sum <= 0 {
		loop(n, fillUniform)
		return false
	}
	scale := float64(shared) / float64(st.na) / sum
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			switch {
			case !st.active[v]:
				x[v] = 0
			case prev[v] > 0:
				x[v] = prev[v] * scale
			default:
				x[v] = uniform
			}
		}
	})
	return true
}

// solveWindow runs the SpMV-style PageRank on global window w of mw.
// prev, when non-nil, is the predecessor window's rank vector in the
// same multi-window local id space and enables partial initialization.
// All working memory comes from sb; only the returned rank vector
// stays checked out (the caller recycles it once consumed, see
// spmvRange). The iteration loop allocates nothing: both loop bodies
// are bound once before it and cross-leaf sums reduce via lanes.
func (e *Engine) solveWindow(mw *tcsr.MultiWindow, w int, prev []float64, sb *scratchBuf, loop forLoop) WindowResult {
	n := int(mw.NumLocal())
	st := computeWindowState(mw, w, e.cfg.Directed, loop, sb)
	res := WindowResult{Window: w, ActiveVertices: st.na, mw: mw}
	x := sb.getF64(n)
	if st.na == 0 {
		releaseWindowState(sb, st)
		res.Converged = true
		res.ranks = x
		return res
	}
	res.UsedPartialInit = initVector(x, prev, st, loop, sb)

	y := sb.getF64(n)
	z := sb.getF64(n)
	lanes := sb.lanes()
	laneDangling := sb.getF64(lanes)
	laneDelta := sb.getF64(lanes)
	ts, te := mw.Window(w)
	opt := e.cfg.Opts
	invNA := 1 / float64(st.na)
	invdeg, active := st.invdeg, st.active
	inRow, inCol, inTime := mw.InRow, mw.InCol, mw.InTime

	// Pass 1 (by source): scale ranks by inverse out-degree and collect
	// dangling mass. The closures capture x and y as variables, so the
	// swap at the end of each iteration retargets them for free.
	var base float64
	pass1 := func(wk *sched.Worker, lo, hi int) {
		var d float64
		for u := lo; u < hi; u++ {
			z[u] = x[u] * invdeg[u]
			if active[u] && invdeg[u] == 0 {
				d += x[u]
			}
		}
		laneDangling[laneOf(wk)] += d
	}
	// Pass 2 (by target): pull contributions along active runs.
	pass2 := func(wk *sched.Worker, lo, hi int) {
		var delta float64
		for v := lo; v < hi; v++ {
			if !active[v] {
				y[v] = 0
				continue
			}
			var acc float64
			i, end := inRow[v], inRow[v+1]
			for i < end {
				j := i + 1
				c := inCol[i]
				for j < end && inCol[j] == c {
					j++
				}
				if tcsr.RunActive(inTime[i:j], ts, te) {
					acc += z[c]
				}
				i = j
			}
			nv := base + (1-opt.Alpha)*acc
			delta += math.Abs(nv - x[v])
			y[v] = nv
		}
		laneDelta[laneOf(wk)] += delta
	}

	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		clear(laneDangling)
		clear(laneDelta)
		loop(n, pass1)
		var dangling float64
		for _, d := range laneDangling {
			dangling += d
		}
		base = opt.Alpha*invNA + (1-opt.Alpha)*dangling*invNA
		loop(n, pass2)
		x, y = y, x
		var delta float64
		for _, d := range laneDelta {
			delta += d
		}
		res.FinalResidual = delta
		if delta < opt.Tol {
			res.Converged = true
			break
		}
	}
	sb.putF64(y)
	sb.putF64(z)
	sb.putF64(laneDangling)
	sb.putF64(laneDelta)
	releaseWindowState(sb, st)
	res.ranks = x
	return res
}
