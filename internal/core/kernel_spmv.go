package core

import (
	"math"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// windowState holds the per-window quantities a PageRank iteration
// needs: inverse out-degrees (0 for dangling or absent vertices),
// activity flags, and |V_i|. The slices are scratch-arena buffers;
// release them with releaseWindowState when the solve is done.
type windowState struct {
	invdeg []float64
	active []bool
	na     int32
}

// computeWindowState fills the state for the window of view with
// buffers drawn from sb. The degree pass runs over the out-CSR
// partitioned by source vertex; the activity pass runs over the in-CSR
// partitioned by target vertex, so both are race-free under loop.
// Cross-leaf counting reduces through per-lane slots instead of an
// atomic, keeping the leaves allocation- and contention-free.
func computeWindowState(view tcsr.SolveView, directed bool, loop forLoop, sb *scratchBuf) windowState {
	mw := view.MW
	n := int(mw.NumLocal())
	ts, te := view.Ts, view.Te
	st := windowState{
		invdeg: sb.getF64(n),
		active: sb.getBool(n),
	}
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			start, end := mw.OutRow[u], mw.OutRow[u+1]
			deg := 0
			i := start
			for i < end {
				j := i + 1
				for j < end && mw.OutCol[j] == mw.OutCol[i] {
					j++
				}
				if tcsr.RunActive(mw.OutTime[i:j], ts, te) {
					deg++
				}
				i = j
			}
			if deg > 0 {
				st.invdeg[u] = 1 / float64(deg)
			}
		}
	})
	laneNA := sb.getI32(sb.lanes())
	loop(n, func(wk *sched.Worker, lo, hi int) {
		var cnt int32
		for v := lo; v < hi; v++ {
			act := st.invdeg[v] > 0
			if !act && directed {
				// A vertex with only in-edges is active too; scan its
				// in-runs for one live edge.
				start, end := mw.InRow[v], mw.InRow[v+1]
				i := start
				for i < end && !act {
					j := i + 1
					for j < end && mw.InCol[j] == mw.InCol[i] {
						j++
					}
					act = tcsr.RunActive(mw.InTime[i:j], ts, te)
					i = j
				}
			}
			st.active[v] = act
			if act {
				cnt++
			}
		}
		laneNA[laneOf(wk)] += cnt
	})
	for _, c := range laneNA {
		st.na += c
	}
	sb.putI32(laneNA)
	return st
}

// releaseWindowState returns the state's buffers to the arena.
func releaseWindowState(sb *scratchBuf, st windowState) {
	sb.putF64(st.invdeg)
	sb.putBool(st.active)
}

// initVector fills x with the starting PageRank values: the partial
// initialization of Eq. 4 when prev is available, otherwise the uniform
// 1/|V_i| over active vertices. It reports whether partial
// initialization was actually used (it falls back to uniform when the
// windows share no active vertices).
func initVector(x, prev []float64, st windowState, loop forLoop, sb *scratchBuf) bool {
	n := len(x)
	if st.na == 0 {
		for v := range x {
			x[v] = 0
		}
		return false
	}
	uniform := 1 / float64(st.na)
	fillUniform := func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			if st.active[v] {
				x[v] = uniform
			} else {
				x[v] = 0
			}
		}
	}
	if prev == nil {
		loop(n, fillUniform)
		return false
	}
	// Eq. 4: shared vertices are scaled by |Vi ∩ Vi-1| / |Vi| and
	// renormalized by their previous mass; vertices new to the window
	// start at the uniform value, so the vector still sums to 1.
	lanes := sb.lanes()
	laneCnt := sb.getI64(lanes)
	laneSum := sb.getF64(lanes)
	loop(n, func(wk *sched.Worker, lo, hi int) {
		var cnt int64
		var sum float64
		for v := lo; v < hi; v++ {
			if st.active[v] && prev[v] > 0 {
				cnt++
				sum += prev[v]
			}
		}
		lane := laneOf(wk)
		laneCnt[lane] += cnt
		laneSum[lane] += sum
	})
	var shared int64
	var sum float64
	for l := 0; l < lanes; l++ {
		shared += laneCnt[l]
		sum += laneSum[l]
	}
	sb.putI64(laneCnt)
	sb.putF64(laneSum)
	if shared == 0 || sum <= 0 {
		loop(n, fillUniform)
		return false
	}
	scale := float64(shared) / float64(st.na) / sum
	loop(n, func(_ *sched.Worker, lo, hi int) {
		for v := lo; v < hi; v++ {
			switch {
			case !st.active[v]:
				x[v] = 0
			case prev[v] > 0:
				x[v] = prev[v] * scale
			default:
				x[v] = uniform
			}
		}
	})
	return true
}

// spmvKernel is the SpMV-style PageRank kernel: one window per batch,
// pulled along active in-runs. prev ranks, when staged by the driver,
// enable the partial initialization of Eq. 4. All working memory comes
// from the batch's scratch lease; only the rank vector stays checked
// out after Finalize (the driver recycles it once consumed). The
// iteration loop allocates nothing: both loop bodies are bound once in
// Init and cross-leaf sums reduce via lanes.
type spmvKernel struct{}

func init() { RegisterKernel(spmvKernel{}) }

// spmvState is the kernel's per-batch working set. x and y live here
// (not in closure variables) so the swap at the end of each iteration
// retargets the passes through the state pointer for free.
type spmvState struct {
	st           windowState
	x, y, z      []float64
	laneDangling []float64
	laneDelta    []float64
	base         float64
	invNA        float64
	pass1, pass2 sched.Body
	empty        bool
}

// Name is the registry key.
func (spmvKernel) Name() string { return "spmv" }

// BatchWidth is 1: SpMV advances one window at a time.
func (spmvKernel) BatchWidth(*Config) int { return 1 }

// Init computes the window state, draws the iteration vectors, and
// binds the two passes.
func (spmvKernel) Init(b *Batch) {
	view := b.views[0]
	mw := view.MW
	n := int(mw.NumLocal())
	sb, loop := b.scratch, b.loop
	st := computeWindowState(view, b.cfg.Directed, loop, sb)
	res := &b.results[0]
	res.ActiveVertices = st.na
	s := &spmvState{st: st}
	b.state = s
	s.x = sb.getF64(n)
	if st.na == 0 {
		res.Converged = true
		s.empty = true
		return
	}
	res.UsedPartialInit = initVector(s.x, b.inits[0], st, loop, sb)

	s.y = sb.getF64(n)
	s.z = sb.getF64(n)
	lanes := sb.lanes()
	s.laneDangling = sb.getF64(lanes)
	s.laneDelta = sb.getF64(lanes)
	s.invNA = 1 / float64(st.na)

	ts, te := view.Ts, view.Te
	opt := b.cfg.Opts
	invdeg, active := st.invdeg, st.active
	inRow, inCol, inTime := mw.InRow, mw.InCol, mw.InTime
	laneDangling, laneDelta := s.laneDangling, s.laneDelta

	// Pass 1 (by source): scale ranks by inverse out-degree and collect
	// dangling mass.
	s.pass1 = func(wk *sched.Worker, lo, hi int) {
		x, z := s.x, s.z
		var d float64
		for u := lo; u < hi; u++ {
			z[u] = x[u] * invdeg[u]
			if active[u] && invdeg[u] == 0 {
				d += x[u]
			}
		}
		laneDangling[laneOf(wk)] += d
	}
	// Pass 2 (by target): pull contributions along active runs.
	s.pass2 = func(wk *sched.Worker, lo, hi int) {
		x, y, z := s.x, s.y, s.z
		base := s.base
		var delta float64
		for v := lo; v < hi; v++ {
			if !active[v] {
				y[v] = 0
				continue
			}
			var acc float64
			i, end := inRow[v], inRow[v+1]
			for i < end {
				j := i + 1
				c := inCol[i]
				for j < end && inCol[j] == c {
					j++
				}
				if tcsr.RunActive(inTime[i:j], ts, te) {
					acc += z[c]
				}
				i = j
			}
			nv := base + (1-opt.Alpha)*acc
			delta += math.Abs(nv - x[v])
			y[v] = nv
		}
		laneDelta[laneOf(wk)] += delta
	}
	b.markLive(0)
}

// Iterate runs one power-iteration sweep: pass 1, the dangling
// reduction, pass 2, and the vector swap.
func (spmvKernel) Iterate(b *Batch) {
	s := b.state.(*spmvState)
	n := len(s.x)
	clear(s.laneDangling)
	clear(s.laneDelta)
	b.loop(n, s.pass1)
	var dangling float64
	for _, d := range s.laneDangling {
		dangling += d
	}
	alpha := b.cfg.Opts.Alpha
	s.base = alpha*s.invNA + (1-alpha)*dangling*s.invNA
	b.loop(n, s.pass2)
	s.x, s.y = s.y, s.x
}

// Residual sums the lane deltas of the last sweep.
func (spmvKernel) Residual(b *Batch, _ int) float64 {
	s := b.state.(*spmvState)
	var delta float64
	for _, d := range s.laneDelta {
		delta += d
	}
	return delta
}

// Finalize publishes the rank vector and returns all working memory.
func (spmvKernel) Finalize(b *Batch) {
	s := b.state.(*spmvState)
	sb := b.scratch
	if !s.empty {
		sb.putF64(s.y)
		sb.putF64(s.z)
		sb.putF64(s.laneDangling)
		sb.putF64(s.laneDelta)
	}
	releaseWindowState(sb, s.st)
	b.results[0].ranks = s.x
	b.state = nil
}
