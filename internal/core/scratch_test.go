package core

import "testing"

func TestFreeListReuseAndZeroing(t *testing.T) {
	a := newScratchArena(0)
	sb, release := a.acquire(-1)
	defer release()

	s := sb.getF64(64)
	if len(s) != 64 {
		t.Fatalf("len = %d, want 64", len(s))
	}
	for i := range s {
		s[i] = float64(i) + 1
	}
	p := &s[0]
	sb.putF64(s)

	got := sb.getF64(32)
	if &got[0] != p {
		t.Fatalf("expected the recycled backing array to be reused")
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	if st := a.stats(); st.Gets != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 hit / 1 miss", st)
	}
}

func TestFreeListPrefersMostRecent(t *testing.T) {
	a := newScratchArena(0)
	sb, release := a.acquire(-1)
	defer release()

	first := sb.getF64(16)
	second := sb.getF64(16)
	p1, p2 := &first[0], &second[0]
	sb.putF64(first)
	sb.putF64(second)
	if got := sb.getF64(16); &got[0] != p2 {
		t.Fatalf("expected LIFO reuse of the last returned buffer")
	}
	if got := sb.getF64(16); &got[0] != p1 {
		t.Fatalf("expected the older buffer next")
	}
}

func TestFreeListSkipsTooSmall(t *testing.T) {
	a := newScratchArena(0)
	sb, release := a.acquire(-1)
	defer release()

	small := sb.getInt(4)
	sb.putInt(small)
	big := sb.getInt(1024) // small buffer can't serve this
	if cap(big) < 1024 {
		t.Fatalf("cap = %d, want >= 1024", cap(big))
	}
	if st := a.stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (both gets had to allocate)", st.Misses)
	}
}

func TestAcquirePerWorkerIdentity(t *testing.T) {
	a := newScratchArena(3)
	b0, rel0 := a.acquire(0)
	b0again, rel0again := a.acquire(0)
	b1, rel1 := a.acquire(1)
	defer rel0()
	defer rel0again()
	defer rel1()
	if b0 != b0again {
		t.Fatalf("acquire(0) must return the same per-worker buffer")
	}
	if b0 == b1 {
		t.Fatalf("workers 0 and 1 must not share a buffer")
	}
	if b0.lanes() != 3 {
		t.Fatalf("lanes = %d, want 3", b0.lanes())
	}
}

func TestAcquirePooledPathRoundTrips(t *testing.T) {
	a := newScratchArena(2)
	sb, release := a.acquire(-1)
	for i := 0; i < 2; i++ {
		if sb == &a.perWorker[i] {
			t.Fatalf("pooled acquire must not hand out a per-worker buffer")
		}
	}
	// Warm the buffer, return it, and re-acquire: the free list travels
	// with the scratchBuf through the sync.Pool.
	s := sb.getF64(8)
	sb.putF64(s)
	release()
	sb2, release2 := a.acquire(-1)
	defer release2()
	if sb2 != sb {
		// sync.Pool may drop entries; only check behavior when it kept it.
		t.Skip("sync.Pool did not return the same buffer")
	}
	before := a.stats()
	sb2.putF64(sb2.getF64(8))
	if d := a.stats().Delta(before); d.Misses != 0 {
		t.Fatalf("re-acquired pooled buffer lost its free list: %+v", d)
	}
}

func TestPutVecsDropsReferences(t *testing.T) {
	a := newScratchArena(0)
	sb, release := a.acquire(-1)
	defer release()

	vecs := sb.getVecs(4)
	vecs[2] = []float64{1, 2, 3}
	sb.putVecs(vecs)
	got := sb.getVecs(4)
	for i, v := range got {
		if v != nil {
			t.Fatalf("recycled vec holder still pins a vector at %d", i)
		}
	}
}
