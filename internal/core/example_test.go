package core_test

import (
	"context"

	"fmt"
	"log"

	"pmpr/internal/core"
	"pmpr/internal/events"
)

// Example computes PageRank over a three-window sliding sequence of a
// tiny temporal graph and prints each window's top vertex.
func Example() {
	evs := []events.Event{
		{U: 0, V: 1, T: 0},
		{U: 1, V: 2, T: 5},
		{U: 2, V: 0, T: 10},
		{U: 3, V: 2, T: 22},
		{U: 1, V: 2, T: 25},
		{U: 0, V: 2, T: 28},
	}
	l, err := events.NewLog(evs, 4)
	if err != nil {
		log.Fatal(err)
	}
	l = l.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 12, Slide: 9, Count: 3}

	cfg := core.DefaultConfig()
	cfg.Directed = false
	eng, err := core.NewEngine(l, spec, cfg, nil) // nil pool: serial
	if err != nil {
		log.Fatal(err)
	}
	series, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < series.Len(); w++ {
		top := series.Window(w).TopK(1)
		fmt.Printf("window %d: vertex %d leads with %.3f\n", w, top[0].Vertex, top[0].Rank)
	}
	// Output:
	// window 0: vertex 0 leads with 0.333
	// window 1: vertex 0 leads with 0.500
	// window 2: vertex 2 leads with 0.480
}
