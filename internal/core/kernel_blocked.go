package core

import (
	"math"
	"sync/atomic"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// blockedKernel runs one window's PageRank with propagation blocking
// (Beamer, Asanović, Patterson, IPDPS'17 — cited in the paper Sec. 2.2
// as compatible with the postmortem scheme). Instead of pulling along
// in-edges with random reads of z, contributions are pushed in two
// phases: phase 1 streams the out-CSR once and appends (destination,
// contribution) pairs into destination-range bins; phase 2 drains each
// bin, touching only a cache-sized slice of the rank vector. The
// random access pattern of SpMV becomes two mostly sequential passes.
//
// Bin capacities are the per-bin counts of active edges, which are
// fixed for the window, so the buffers are sized once (from the
// scratch lease) and reused across iterations; parallel phase 1 claims
// slots with atomic cursors. The bin-counting pass reduces through
// per-lane slots — lane l owns counts [l*numBins, (l+1)*numBins) — so
// its leaves neither allocate nor contend.
type blockedKernel struct{}

func init() { RegisterKernel(blockedKernel{}) }

// binShift gives 4096 vertices per destination bin, so phase 2 writes
// stay within a cache-friendly stripe of y.
const binShift = 12

// blockedState is the kernel's per-batch working set; x and y swap
// through the state pointer so the bound passes track them for free.
type blockedState struct {
	st           windowState
	x, y, z      []float64
	laneDangling []float64
	laneDelta    []float64
	binOffsets   []int64
	binDst       []int32
	binVal       []float64
	cursors      []atomic.Int64
	numBins      int
	base         float64
	invNA        float64
	pass1        sched.Body
	binPass      sched.Body
	drainPass    sched.Body
	empty        bool
}

// Name is the registry key.
func (blockedKernel) Name() string { return "spmv-blocked" }

// BatchWidth is 1: propagation blocking advances one window at a time.
func (blockedKernel) BatchWidth(*Config) int { return 1 }

// Init computes the window state, sizes the destination bins from the
// window's active edge counts, and binds the three passes.
func (blockedKernel) Init(b *Batch) {
	view := b.views[0]
	mw := view.MW
	n := int(mw.NumLocal())
	sb, loop := b.scratch, b.loop
	st := computeWindowState(view, b.cfg.Directed, loop, sb)
	res := &b.results[0]
	res.ActiveVertices = st.na
	s := &blockedState{st: st}
	b.state = s
	s.x = sb.getF64(n)
	if st.na == 0 {
		res.Converged = true
		s.empty = true
		return
	}
	res.UsedPartialInit = initVector(s.x, b.inits[0], st, loop, sb)

	ts, te := view.Ts, view.Te
	opt := b.cfg.Opts
	s.invNA = 1 / float64(st.na)
	lanes := sb.lanes()

	numBins := (n + (1 << binShift) - 1) >> binShift
	if numBins == 0 {
		numBins = 1
	}
	s.numBins = numBins

	// Count active out-edges per bin (constant across iterations).
	binOffsets := sb.getI64(numBins + 1)
	laneBins := sb.getI64(lanes * numBins)
	outRow, outCol, outTime := mw.OutRow, mw.OutCol, mw.OutTime
	loop(n, func(wk *sched.Worker, lo, hi int) {
		local := laneBins[laneOf(wk)*numBins:][:numBins]
		for u := lo; u < hi; u++ {
			i, end := outRow[u], outRow[u+1]
			for i < end {
				j := i + 1
				c := outCol[i]
				for j < end && outCol[j] == c {
					j++
				}
				if tcsr.RunActive(outTime[i:j], ts, te) {
					local[c>>binShift]++
				}
				i = j
			}
		}
	})
	total := int64(0)
	for bin := 0; bin < numBins; bin++ {
		binOffsets[bin] = total
		for l := 0; l < lanes; l++ {
			total += laneBins[l*numBins+bin]
		}
	}
	binOffsets[numBins] = total
	sb.putI64(laneBins)
	s.binOffsets = binOffsets

	s.binDst = sb.getI32(int(total))
	s.binVal = sb.getF64(int(total))
	s.cursors = sb.getAtomicI64(numBins)

	s.y = sb.getF64(n)
	s.z = sb.getF64(n)
	s.laneDangling = sb.getF64(lanes)
	s.laneDelta = sb.getF64(lanes)
	invdeg, active := st.invdeg, st.active
	laneDangling, laneDelta := s.laneDangling, s.laneDelta
	binDst, binVal, cursors := s.binDst, s.binVal, s.cursors
	z := s.z

	s.pass1 = func(wk *sched.Worker, lo, hi int) {
		x := s.x
		var d float64
		for u := lo; u < hi; u++ {
			z[u] = x[u] * invdeg[u]
			if active[u] && invdeg[u] == 0 {
				d += x[u]
			}
		}
		laneDangling[laneOf(wk)] += d
	}
	// Phase 1: bin the contributions, streaming the out-CSR.
	s.binPass = func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			zu := z[u]
			if zu == 0 {
				continue
			}
			i, end := outRow[u], outRow[u+1]
			for i < end {
				j := i + 1
				c := outCol[i]
				for j < end && outCol[j] == c {
					j++
				}
				if tcsr.RunActive(outTime[i:j], ts, te) {
					slot := cursors[c>>binShift].Add(1) - 1
					binDst[slot] = c
					binVal[slot] = zu
				}
				i = j
			}
		}
	}
	// Phase 2: drain bins into y; bins own disjoint vertex stripes,
	// so the pass is race-free when parallelized over bins.
	s.drainPass = func(wk *sched.Worker, blo, bhi int) {
		x, y := s.x, s.y
		base := s.base
		var delta float64
		for bin := blo; bin < bhi; bin++ {
			vLo := bin << binShift
			vHi := vLo + (1 << binShift)
			if vHi > n {
				vHi = n
			}
			for v := vLo; v < vHi; v++ {
				if active[v] {
					y[v] = base
				} else {
					y[v] = 0
				}
			}
			// Note: a vertex can appear only up to cursors[bin];
			// z contributions of zero sources were skipped in
			// phase 1, which is correct since they add nothing.
			end := cursors[bin].Load()
			for slot := binOffsets[bin]; slot < end; slot++ {
				y[binDst[slot]] += (1 - opt.Alpha) * binVal[slot]
			}
			for v := vLo; v < vHi; v++ {
				delta += math.Abs(y[v] - x[v])
			}
		}
		laneDelta[laneOf(wk)] += delta
	}
	b.markLive(0)
}

// Iterate runs one blocked sweep: pass 1, the dangling reduction, the
// bin pass behind reset cursors, the drain pass, and the vector swap.
func (blockedKernel) Iterate(b *Batch) {
	s := b.state.(*blockedState)
	n := len(s.x)
	clear(s.laneDangling)
	clear(s.laneDelta)
	b.loop(n, s.pass1)
	var dangling float64
	for _, d := range s.laneDangling {
		dangling += d
	}
	alpha := b.cfg.Opts.Alpha
	s.base = alpha*s.invNA + (1-alpha)*dangling*s.invNA

	for bin := 0; bin < s.numBins; bin++ {
		s.cursors[bin].Store(s.binOffsets[bin])
	}
	b.loop(n, s.binPass)
	b.loop(s.numBins, s.drainPass)
	s.x, s.y = s.y, s.x
}

// Residual sums the lane deltas of the last sweep.
func (blockedKernel) Residual(b *Batch, _ int) float64 {
	s := b.state.(*blockedState)
	var delta float64
	for _, d := range s.laneDelta {
		delta += d
	}
	return delta
}

// Finalize publishes the rank vector and returns all working memory.
func (blockedKernel) Finalize(b *Batch) {
	s := b.state.(*blockedState)
	sb := b.scratch
	if !s.empty {
		sb.putF64(s.y)
		sb.putF64(s.z)
		sb.putF64(s.laneDangling)
		sb.putF64(s.laneDelta)
		sb.putF64(s.binVal)
		sb.putI32(s.binDst)
		sb.putI64(s.binOffsets)
		sb.putAtomicI64(s.cursors)
	}
	releaseWindowState(sb, s.st)
	b.results[0].ranks = s.x
	b.state = nil
}
