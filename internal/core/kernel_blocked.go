package core

import (
	"math"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// solveWindowBlocked runs one window's PageRank with propagation
// blocking (Beamer, Asanović, Patterson, IPDPS'17 — cited in the paper
// Sec. 2.2 as compatible with the postmortem scheme). Instead of
// pulling along in-edges with random reads of z, contributions are
// pushed in two phases: phase 1 streams the out-CSR once and appends
// (destination, contribution) pairs into destination-range bins; phase
// 2 drains each bin, touching only a cache-sized slice of the rank
// vector. The random access pattern of SpMV becomes two mostly
// sequential passes.
//
// Bin capacities are the per-bin counts of active edges, which are
// fixed for the window, so the buffers are sized once (from the
// scratch arena) and reused across iterations; parallel phase 1 claims
// slots with atomic cursors. The bin-counting pass reduces through
// per-lane slots — lane l owns counts [l*numBins, (l+1)*numBins) — so
// its leaves neither allocate nor contend.
func (e *Engine) solveWindowBlocked(mw *tcsr.MultiWindow, w int, prev []float64, sb *scratchBuf, loop forLoop) WindowResult {
	n := int(mw.NumLocal())
	st := computeWindowState(mw, w, e.cfg.Directed, loop, sb)
	res := WindowResult{Window: w, ActiveVertices: st.na, mw: mw}
	x := sb.getF64(n)
	if st.na == 0 {
		releaseWindowState(sb, st)
		res.Converged = true
		res.ranks = x
		return res
	}
	res.UsedPartialInit = initVector(x, prev, st, loop, sb)

	ts, te := mw.Window(w)
	opt := e.cfg.Opts
	invNA := 1 / float64(st.na)
	lanes := sb.lanes()

	// Destination bins: binWidth vertices each, so phase 2 writes stay
	// within a cache-friendly stripe of y.
	const binShift = 12 // 4096 vertices per bin
	numBins := (n + (1 << binShift) - 1) >> binShift
	if numBins == 0 {
		numBins = 1
	}

	// Count active out-edges per bin (constant across iterations).
	binOffsets := sb.getI64(numBins + 1)
	laneBins := sb.getI64(lanes * numBins)
	outRow, outCol, outTime := mw.OutRow, mw.OutCol, mw.OutTime
	loop(n, func(wk *sched.Worker, lo, hi int) {
		local := laneBins[laneOf(wk)*numBins:][:numBins]
		for u := lo; u < hi; u++ {
			i, end := outRow[u], outRow[u+1]
			for i < end {
				j := i + 1
				c := outCol[i]
				for j < end && outCol[j] == c {
					j++
				}
				if tcsr.RunActive(outTime[i:j], ts, te) {
					local[c>>binShift]++
				}
				i = j
			}
		}
	})
	total := int64(0)
	for b := 0; b < numBins; b++ {
		binOffsets[b] = total
		for l := 0; l < lanes; l++ {
			total += laneBins[l*numBins+b]
		}
	}
	binOffsets[numBins] = total
	sb.putI64(laneBins)

	binDst := sb.getI32(int(total))
	binVal := sb.getF64(int(total))
	cursors := sb.getAtomicI64(numBins)

	y := sb.getF64(n)
	z := sb.getF64(n)
	laneDangling := sb.getF64(lanes)
	laneDelta := sb.getF64(lanes)
	invdeg, active := st.invdeg, st.active

	var base float64
	pass1 := func(wk *sched.Worker, lo, hi int) {
		var d float64
		for u := lo; u < hi; u++ {
			z[u] = x[u] * invdeg[u]
			if active[u] && invdeg[u] == 0 {
				d += x[u]
			}
		}
		laneDangling[laneOf(wk)] += d
	}
	// Phase 1: bin the contributions, streaming the out-CSR.
	binPass := func(_ *sched.Worker, lo, hi int) {
		for u := lo; u < hi; u++ {
			zu := z[u]
			if zu == 0 {
				continue
			}
			i, end := outRow[u], outRow[u+1]
			for i < end {
				j := i + 1
				c := outCol[i]
				for j < end && outCol[j] == c {
					j++
				}
				if tcsr.RunActive(outTime[i:j], ts, te) {
					slot := cursors[c>>binShift].Add(1) - 1
					binDst[slot] = c
					binVal[slot] = zu
				}
				i = j
			}
		}
	}
	// Phase 2: drain bins into y; bins own disjoint vertex stripes,
	// so the pass is race-free when parallelized over bins.
	drainPass := func(wk *sched.Worker, blo, bhi int) {
		var delta float64
		for b := blo; b < bhi; b++ {
			vLo := b << binShift
			vHi := vLo + (1 << binShift)
			if vHi > n {
				vHi = n
			}
			for v := vLo; v < vHi; v++ {
				if active[v] {
					y[v] = base
				} else {
					y[v] = 0
				}
			}
			// Note: a vertex can appear only up to cursors[b];
			// z contributions of zero sources were skipped in
			// phase 1, which is correct since they add nothing.
			end := cursors[b].Load()
			for s := binOffsets[b]; s < end; s++ {
				y[binDst[s]] += (1 - opt.Alpha) * binVal[s]
			}
			for v := vLo; v < vHi; v++ {
				delta += math.Abs(y[v] - x[v])
			}
		}
		laneDelta[laneOf(wk)] += delta
	}

	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		clear(laneDangling)
		clear(laneDelta)
		loop(n, pass1)
		var dangling float64
		for _, d := range laneDangling {
			dangling += d
		}
		base = opt.Alpha*invNA + (1-opt.Alpha)*dangling*invNA

		for b := 0; b < numBins; b++ {
			cursors[b].Store(binOffsets[b])
		}
		loop(n, binPass)
		loop(numBins, drainPass)
		x, y = y, x
		var delta float64
		for _, d := range laneDelta {
			delta += d
		}
		res.FinalResidual = delta
		if delta < opt.Tol {
			res.Converged = true
			break
		}
	}
	sb.putF64(y)
	sb.putF64(z)
	sb.putF64(laneDangling)
	sb.putF64(laneDelta)
	sb.putF64(binVal)
	sb.putI32(binDst)
	sb.putI64(binOffsets)
	sb.putAtomicI64(cursors)
	releaseWindowState(sb, st)
	res.ranks = x
	return res
}
