package core

import (
	"math"
	"sync/atomic"

	"pmpr/internal/tcsr"
)

// solveWindowBlocked runs one window's PageRank with propagation
// blocking (Beamer, Asanović, Patterson, IPDPS'17 — cited in the paper
// Sec. 2.2 as compatible with the postmortem scheme). Instead of
// pulling along in-edges with random reads of z, contributions are
// pushed in two phases: phase 1 streams the out-CSR once and appends
// (destination, contribution) pairs into destination-range bins; phase
// 2 drains each bin, touching only a cache-sized slice of the rank
// vector. The random access pattern of SpMV becomes two mostly
// sequential passes.
//
// Bin capacities are the per-bin counts of active edges, which are
// fixed for the window, so the buffers are sized once and reused across
// iterations; parallel phase 1 claims slots with atomic cursors.
func (e *Engine) solveWindowBlocked(mw *tcsr.MultiWindow, w int, prev []float64, loop forLoop) WindowResult {
	n := int(mw.NumLocal())
	st := computeWindowState(mw, w, e.cfg.Directed, loop)
	res := WindowResult{Window: w, ActiveVertices: st.na, mw: mw}
	x := make([]float64, n)
	if st.na == 0 {
		res.Converged = true
		res.ranks = x
		return res
	}
	res.UsedPartialInit = initVector(x, prev, st, loop)

	ts, te := mw.Window(w)
	opt := e.cfg.Opts
	invNA := 1 / float64(st.na)

	// Destination bins: binWidth vertices each, so phase 2 writes stay
	// within a cache-friendly stripe of y.
	const binShift = 12 // 4096 vertices per bin
	numBins := (n + (1 << binShift) - 1) >> binShift
	if numBins == 0 {
		numBins = 1
	}

	// Count active out-edges per bin (constant across iterations).
	binOffsets := make([]int64, numBins+1)
	countsPerBin := make([]atomic.Int64, numBins)
	outRow, outCol, outTime := mw.OutRow, mw.OutCol, mw.OutTime
	loop(n, func(lo, hi int) {
		local := make([]int64, numBins)
		for u := lo; u < hi; u++ {
			i, end := outRow[u], outRow[u+1]
			for i < end {
				j := i + 1
				c := outCol[i]
				for j < end && outCol[j] == c {
					j++
				}
				if tcsr.RunActive(outTime[i:j], ts, te) {
					local[c>>binShift]++
				}
				i = j
			}
		}
		for b := 0; b < numBins; b++ {
			if local[b] != 0 {
				countsPerBin[b].Add(local[b])
			}
		}
	})
	total := int64(0)
	for b := 0; b < numBins; b++ {
		binOffsets[b] = total
		total += countsPerBin[b].Load()
	}
	binOffsets[numBins] = total

	binDst := make([]int32, total)
	binVal := make([]float64, total)
	cursors := make([]atomic.Int64, numBins)

	y := make([]float64, n)
	z := make([]float64, n)

	for it := 0; it < opt.MaxIter; it++ {
		res.Iterations = it + 1
		var danglingAcc atomicFloat64
		loop(n, func(lo, hi int) {
			var d float64
			for u := lo; u < hi; u++ {
				z[u] = x[u] * st.invdeg[u]
				if st.active[u] && st.invdeg[u] == 0 {
					d += x[u]
				}
			}
			danglingAcc.Add(d)
		})
		base := opt.Alpha*invNA + (1-opt.Alpha)*danglingAcc.Load()*invNA

		// Phase 1: bin the contributions, streaming the out-CSR.
		for b := 0; b < numBins; b++ {
			cursors[b].Store(binOffsets[b])
		}
		loop(n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				zu := z[u]
				if zu == 0 {
					continue
				}
				i, end := outRow[u], outRow[u+1]
				for i < end {
					j := i + 1
					c := outCol[i]
					for j < end && outCol[j] == c {
						j++
					}
					if tcsr.RunActive(outTime[i:j], ts, te) {
						slot := cursors[c>>binShift].Add(1) - 1
						binDst[slot] = c
						binVal[slot] = zu
					}
					i = j
				}
			}
		})

		// Phase 2: drain bins into y; bins own disjoint vertex stripes,
		// so the pass is race-free when parallelized over bins.
		var deltaAcc atomicFloat64
		loop(numBins, func(blo, bhi int) {
			var delta float64
			for b := blo; b < bhi; b++ {
				vLo := b << binShift
				vHi := vLo + (1 << binShift)
				if vHi > n {
					vHi = n
				}
				for v := vLo; v < vHi; v++ {
					if st.active[v] {
						y[v] = base
					} else {
						y[v] = 0
					}
				}
				// Note: a vertex can appear only up to cursors[b];
				// z contributions of zero sources were skipped in
				// phase 1, which is correct since they add nothing.
				end := cursors[b].Load()
				for s := binOffsets[b]; s < end; s++ {
					y[binDst[s]] += (1 - opt.Alpha) * binVal[s]
				}
				for v := vLo; v < vHi; v++ {
					delta += math.Abs(y[v] - x[v])
				}
			}
			deltaAcc.Add(delta)
		})
		x, y = y, x
		res.FinalResidual = deltaAcc.Load()
		if res.FinalResidual < opt.Tol {
			res.Converged = true
			break
		}
	}
	res.ranks = x
	return res
}
