// Package core implements the paper's primary contribution: postmortem
// PageRank over a temporal graph (Sec. 4). An Engine owns a temporal
// CSR representation partitioned into multi-window graphs and computes
// the PageRank vector of every sliding window using
//
//   - partial initialization from the previous window (Sec. 4.2),
//   - window-level, application-level, or nested parallelism on a
//     work-stealing pool (Sec. 4.3), and
//   - an SpMV-style kernel (one window at a time) or the SpMM-inspired
//     kernel that advances several windows per sweep (Sec. 4.4).
package core

import (
	"fmt"
	"time"

	"pmpr/internal/obs"
	"pmpr/internal/pagerank"
	"pmpr/internal/sched"
)

// FaultPolicy controls the solve stage's per-window fault tolerance.
// The zero value retries nothing but still recovers panics, degrades
// failed windows to the serial SpMV fallback, and quarantines windows
// that fail even there — a run never aborts on a single bad window
// unless FailFast asks it to.
type FaultPolicy struct {
	// MaxRetries is how many times a failed window or batch solve is
	// re-attempted with the configured kernel before degrading.
	MaxRetries int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Zero means no backoff sleep.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (default: 32*Backoff when
	// zero).
	MaxBackoff time.Duration
	// DisableDegrade skips the serial-SpMV fallback: windows whose
	// retries are exhausted quarantine immediately.
	DisableDegrade bool
	// FailFast aborts the run with the first *WindowError instead of
	// quarantining and continuing.
	FailFast bool
}

// DefaultFaultPolicy retries twice with a 1ms..50ms exponential
// backoff and degrades to serial SpMV before quarantining.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{MaxRetries: 2, Backoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// backoffFor returns the sleep before retry attempt n (1-based).
func (p FaultPolicy) backoffFor(n int) time.Duration {
	if p.Backoff <= 0 || n < 1 {
		return 0
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 32 * p.Backoff
	}
	d := p.Backoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= maxB {
			return maxB
		}
	}
	if d > maxB {
		return maxB
	}
	return d
}

// ParallelMode selects which level(s) of parallelism the engine uses
// (paper Sec. 4.3).
type ParallelMode int

const (
	// AppLevel processes windows one at a time, in order, and
	// parallelizes inside the PageRank kernel (over vertices).
	AppLevel ParallelMode = iota
	// WindowLevel parallelizes across time windows; each window's
	// kernel runs serially.
	WindowLevel
	// Nested combines both: windows in parallel, and each kernel's
	// vertex loops forked on the same pool.
	Nested
)

// String names the mode the way the paper's figures do.
func (m ParallelMode) String() string {
	switch m {
	case AppLevel:
		return "app-level"
	case WindowLevel:
		return "window-level"
	case Nested:
		return "nested"
	default:
		return fmt.Sprintf("ParallelMode(%d)", int(m))
	}
}

// KernelID selects the iteration kernel (paper Sec. 4.4). The id is a
// stable enum for configs and CLI flags; its String form is the key the
// plan stage resolves through the kernel registry (see kernel.go).
type KernelID int

const (
	// SpMV computes one window's PageRank at a time.
	SpMV KernelID = iota
	// SpMM advances VectorLen windows of a multi-window graph per sweep
	// of the shared temporal CSR.
	SpMM
	// SpMVBlocked is SpMV with propagation blocking (Beamer et al.,
	// cited in Sec. 2.2): contributions are pushed into
	// destination-range bins and drained in a second, cache-friendly
	// pass instead of pulled with random reads.
	SpMVBlocked
)

// String names the kernel as used in reports, CLI flags, and the
// kernel registry.
func (k KernelID) String() string {
	switch k {
	case SpMV:
		return "spmv"
	case SpMM:
		return "spmm"
	case SpMVBlocked:
		return "spmv-blocked"
	default:
		return fmt.Sprintf("KernelID(%d)", int(k))
	}
}

// Config controls an Engine.
type Config struct {
	// Opts are the PageRank iteration parameters shared by all models.
	Opts pagerank.Options
	// NumMultiWindows is the number of multi-window graphs the window
	// sequence is partitioned into (paper default: 6).
	NumMultiWindows int
	// BalancedPartition splits the window sequence by event load instead
	// of uniformly by window count — the non-uniform decomposition the
	// paper's conclusion suggests as future work. It evens the
	// per-window sweep cost on temporally bursty datasets.
	BalancedPartition bool
	// Mode is the parallelization level.
	Mode ParallelMode
	// Kernel selects SpMV or SpMM iteration.
	Kernel KernelID
	// VectorLen is the number of PageRank vectors an SpMM sweep
	// advances simultaneously (the paper uses 8 or 16).
	VectorLen int
	// PartialInit enables warm-starting a window from its predecessor
	// (Eq. 4). Disabled, every window starts from the uniform vector.
	PartialInit bool
	// Partitioner and Grain configure the scheduler's range splitting
	// for both the window loop and the vertex loops.
	Partitioner sched.Partitioner
	// Grain is the scheduler grain size (the figures' "WS granularity").
	Grain int
	// Directed keeps edge direction; when false the caller is expected
	// to have symmetrized the log.
	Directed bool
	// DiscardRanks drops each window's rank vector once its successor
	// has consumed it, keeping only the per-window statistics. Used by
	// benchmarks to avoid measuring result-retention memory traffic.
	DiscardRanks bool
	// Fault is the per-window fault-tolerance policy (retries, backoff,
	// degrade, fail-fast). See FaultPolicy; the zero value never aborts
	// a run on a single bad window.
	Fault FaultPolicy
	// Validate enables the structural invariant checks from
	// internal/invariant: the temporal CSR layout and window coverage
	// are validated when the engine is constructed, and every window's
	// rank vector is validated (stochasticity, non-negativity, active
	// count) after its solve. Validation is read-only and adds O(events
	// + windows*vertices) work, so it is meant for tests, fuzzing, and
	// debugging rather than benchmark runs.
	Validate bool
	// Journal receives the run's structured event stream: run and stage
	// lifecycle, per-window start/done with status and residuals,
	// fault-ladder transitions (retry, degrade, quarantine), and
	// checkpoint IO. nil (the default) disables emission entirely —
	// every emit site is a single nil check. Events fire only at
	// window, batch, and stage boundaries, never inside kernel
	// iteration loops, so the steady-state allocation guarantees hold
	// with a journal attached.
	Journal *obs.Journal
}

// DefaultConfig returns the paper's suggested parameters (Sec. 6.3.6):
// SpMM kernel, auto partitioner with a small grain, nested parallelism,
// partial initialization on, 6 multi-window graphs.
func DefaultConfig() Config {
	return Config{
		Opts:            pagerank.Defaults(),
		NumMultiWindows: 6,
		Mode:            Nested,
		Kernel:          SpMM,
		VectorLen:       8,
		PartialInit:     true,
		Partitioner:     sched.Auto,
		Grain:           2,
		Fault:           DefaultFaultPolicy(),
	}
}

// Check verifies the configuration parameters are usable.
func (c Config) Check() error {
	if err := c.Opts.Validate(); err != nil {
		return err
	}
	if c.NumMultiWindows < 1 {
		return fmt.Errorf("core: NumMultiWindows %d must be >= 1", c.NumMultiWindows)
	}
	if c.Mode < AppLevel || c.Mode > Nested {
		return fmt.Errorf("core: unknown parallel mode %d", int(c.Mode))
	}
	if c.Kernel != SpMV && c.Kernel != SpMM && c.Kernel != SpMVBlocked {
		return fmt.Errorf("core: unknown kernel %d", int(c.Kernel))
	}
	if c.Kernel == SpMM && c.VectorLen < 1 {
		return fmt.Errorf("core: VectorLen %d must be >= 1 for the SpMM kernel", c.VectorLen)
	}
	if c.Grain < 0 {
		return fmt.Errorf("core: Grain %d must be >= 0", c.Grain)
	}
	if c.Fault.MaxRetries < 0 {
		return fmt.Errorf("core: Fault.MaxRetries %d must be >= 0", c.Fault.MaxRetries)
	}
	if c.Fault.Backoff < 0 || c.Fault.MaxBackoff < 0 {
		return fmt.Errorf("core: Fault backoff durations must be >= 0")
	}
	return nil
}

// ConfigInfo is the JSON-friendly rendering of a Config, stamped into
// RunReport and trace metadata so results are attributable to the
// parameters that produced them.
type ConfigInfo struct {
	Kernel            string  `json:"kernel"`
	Mode              string  `json:"mode"`
	Partitioner       string  `json:"partitioner"`
	Grain             int     `json:"grain"`
	VectorLen         int     `json:"vector_len,omitempty"`
	NumMultiWindows   int     `json:"num_multi_windows"`
	BalancedPartition bool    `json:"balanced_partition"`
	PartialInit       bool    `json:"partial_init"`
	Directed          bool    `json:"directed"`
	DiscardRanks      bool    `json:"discard_ranks"`
	MaxRetries        int     `json:"max_retries"`
	FailFast          bool    `json:"fail_fast,omitempty"`
	Validate          bool    `json:"validate,omitempty"`
	Alpha             float64 `json:"alpha"`
	Tol               float64 `json:"tol"`
	MaxIter           int     `json:"max_iter"`
}

// Info summarizes the configuration for reports and trace metadata.
func (c Config) Info() ConfigInfo {
	info := ConfigInfo{
		Kernel:            c.Kernel.String(),
		Mode:              c.Mode.String(),
		Partitioner:       c.Partitioner.String(),
		Grain:             c.Grain,
		NumMultiWindows:   c.NumMultiWindows,
		BalancedPartition: c.BalancedPartition,
		PartialInit:       c.PartialInit,
		Directed:          c.Directed,
		DiscardRanks:      c.DiscardRanks,
		MaxRetries:        c.Fault.MaxRetries,
		FailFast:          c.Fault.FailFast,
		Validate:          c.Validate,
		Alpha:             c.Opts.Alpha,
		Tol:               c.Opts.Tol,
		MaxIter:           c.Opts.MaxIter,
	}
	if c.Kernel == SpMM {
		info.VectorLen = c.VectorLen
	}
	return info
}

func (c Config) grain() int {
	if c.Grain < 1 {
		return 1
	}
	return c.Grain
}
