// This file defines the staged solve pipeline the Engine orchestrates:
//
//	build   — temporal CSR construction + multi-window partitioning
//	plan    — kernel resolution, batch layout, worker layout
//	solve   — kernel execution on the pool (solve.go)
//	publish — Series + RunReport assembly
//
// Each stage is a value with typed inputs and outputs, so stages can be
// re-run, swapped, or cached independently: build once, plan/solve many
// times with different kernels or configs, publish only when a report
// is wanted.

package core

import (
	"errors"
	"fmt"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/fault"
	"pmpr/internal/invariant"
	"pmpr/internal/obs"
	"pmpr/internal/tcsr"
)

// BuildStage turns an event log into the postmortem representation:
// the temporal CSR partitioned into multi-window graphs, optionally
// validated against the structural invariant catalog.
type BuildStage struct{}

// BuildInput is what the build stage consumes.
type BuildInput struct {
	// Log is the temporal edge log to represent.
	Log *events.Log
	// Spec is the sliding-window sequence.
	Spec events.WindowSpec
	// Cfg supplies NumMultiWindows, BalancedPartition, Directed, and
	// Validate; the solve-side fields are ignored here.
	Cfg Config
}

// BuildOutput is the build stage's product.
type BuildOutput struct {
	// Temporal is the built representation.
	Temporal *tcsr.Temporal
	// Seconds is the build wall time (reported as phase "tcsr_build").
	Seconds float64
}

// errString renders an error for journal events ("" for nil).
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// emitStage brackets a stage's execution on the journal: it emits
// stage_start immediately and returns the deferred stage_end emitter,
// which reads *err after any recoverStage conversion has run (register
// it before recoverStage so it executes after).
func emitStage(j *obs.Journal, stage string, err *error) func() {
	j.EmitStageStart(stage)
	start := time.Now()
	return func() {
		j.EmitStageEnd(stage, time.Since(start).Seconds(), errString(*err))
	}
}

// Run builds (and when Cfg.Validate is set, validates) the temporal
// representation. A panic inside the build (e.g. on a malformed log a
// caller constructed by hand) is converted into a *StageError instead
// of crashing the process.
func (BuildStage) Run(in BuildInput) (out BuildOutput, err error) {
	defer emitStage(in.Cfg.Journal, "build", &err)()
	defer recoverStage("build", &err)
	if err := fault.Inject(PointBuild); err != nil {
		return BuildOutput{}, err
	}
	if err := in.Cfg.Check(); err != nil {
		return BuildOutput{}, err
	}
	build := tcsr.Build
	if in.Cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	start := time.Now()
	tg, err := build(in.Log, in.Spec, in.Cfg.NumMultiWindows, in.Cfg.Directed)
	if err != nil {
		return BuildOutput{}, err
	}
	if in.Cfg.Validate {
		if err := invariant.CheckTemporal(tg); err != nil {
			return BuildOutput{}, err
		}
		if err := invariant.CheckCoverage(tg, in.Log); err != nil {
			return BuildOutput{}, err
		}
	}
	return BuildOutput{Temporal: tg, Seconds: time.Since(start).Seconds()}, nil
}

// PlanStage resolves a configuration against a built representation:
// it looks the kernel up in the registry, decides the batch width, and
// precomputes each multi-window graph's region/batch layout so the
// solve stage's hot path does no layout arithmetic.
type PlanStage struct{}

// PlanInput is what the plan stage consumes.
type PlanInput struct {
	// Temporal is the build stage's product.
	Temporal *tcsr.Temporal
	// Cfg is the full solve configuration.
	Cfg Config
	// Workers is the pool size the plan lays work out for (0 = serial).
	Workers int
}

// SolveUnit is one multi-window graph's precomputed batch layout. For
// width-1 kernels units are not materialized (the window-chain driver
// needs no layout); for the SpMM kernel a unit's windows are split into
// K contiguous regions and batch j gathers the j-th window of every
// region, so every batch after the first warm-starts from its region
// predecessors.
type SolveUnit struct {
	// MW is the multi-window graph this unit solves.
	MW *tcsr.MultiWindow
	// K is the unit's batch width: min(plan width, window count).
	K int
	// RegionStart[r] is the window offset (within MW) where region r
	// starts; RegionStart[K] is the window count.
	RegionStart []int
	// NumBatches is ceil(windows / K).
	NumBatches int
}

// SolvePlan is the plan stage's product: everything the solve stage
// needs, precomputed and immutable, so one plan can be solved many
// times (and concurrently on distinct SolveStages).
type SolvePlan struct {
	// Cfg is the configuration the plan was laid out for.
	Cfg Config
	// Temporal is the representation being solved.
	Temporal *tcsr.Temporal
	// Kernel is the registry-resolved kernel implementation.
	Kernel Kernel
	// Width is the kernel's batch width under Cfg (>= 1).
	Width int
	// Units is the per-multi-window batch layout; empty when Width is 1.
	Units []SolveUnit
	// Windows is the total window count.
	Windows int
	// Workers is the pool size the plan assumed (0 = serial).
	Workers int
	// Seconds is the planning wall time (reported as phase "plan").
	Seconds float64
}

// Run lays out the solve. It fails when Cfg is invalid, Temporal is
// nil, or Cfg.Kernel has no registered implementation; a panic during
// layout becomes a *StageError.
func (PlanStage) Run(in PlanInput) (plan *SolvePlan, err error) {
	defer emitStage(in.Cfg.Journal, "plan", &err)()
	defer recoverStage("plan", &err)
	if err := fault.Inject(PointPlan); err != nil {
		return nil, err
	}
	if err := in.Cfg.Check(); err != nil {
		return nil, err
	}
	if in.Temporal == nil {
		return nil, errors.New("core: nil temporal representation")
	}
	start := time.Now()
	name := in.Cfg.Kernel.String()
	kern, ok := LookupKernel(name)
	if !ok {
		return nil, fmt.Errorf("core: no kernel registered under %q (have %v)", name, RegisteredKernels())
	}
	cfg := in.Cfg
	width := kern.BatchWidth(&cfg)
	if width < 1 {
		width = 1
	}
	p := &SolvePlan{
		Cfg:      cfg,
		Temporal: in.Temporal,
		Kernel:   kern,
		Width:    width,
		Windows:  in.Temporal.Spec.Count,
		Workers:  in.Workers,
	}
	if width > 1 {
		p.Units = make([]SolveUnit, len(in.Temporal.MWs))
		for i, mw := range in.Temporal.MWs {
			p.Units[i] = planUnit(mw, width)
		}
	}
	p.Seconds = time.Since(start).Seconds()
	return p, nil
}

// planUnit splits mw's windows into min(width, W) contiguous regions of
// near-equal size (the first W mod K regions get the extra window).
func planUnit(mw *tcsr.MultiWindow, width int) SolveUnit {
	W := mw.NumWindows()
	u := SolveUnit{MW: mw}
	if W == 0 {
		return u
	}
	K := width
	if K > W {
		K = W
	}
	base := W / K
	rem := W % K
	u.K = K
	u.RegionStart = make([]int, K+1)
	for r := 0; r < K; r++ {
		size := base
		if r < rem {
			size++
		}
		u.RegionStart[r+1] = u.RegionStart[r] + size
	}
	u.NumBatches = base
	if rem > 0 {
		u.NumBatches++
	}
	return u
}

// PublishStage assembles the user-facing Series and its RunReport from
// a solve output. It is a pure aggregation over the per-window results
// and the counter deltas the solve stage collected.
type PublishStage struct{}

// PublishInput is what the publish stage consumes.
type PublishInput struct {
	// Plan is the plan the solve executed.
	Plan *SolvePlan
	// Solve is the solve stage's output.
	Solve SolveOutput
	// BuildSeconds is the build stage's wall time (phase "tcsr_build").
	BuildSeconds float64
}

// Run assembles the Series with its observability rollup. A panic
// during aggregation becomes a *StageError.
func (PublishStage) Run(in PublishInput) (series *Series, err error) {
	defer emitStage(in.Plan.Cfg.Journal, "publish", &err)()
	defer recoverStage("publish", &err)
	if err := fault.Inject(PointPublish); err != nil {
		return nil, err
	}
	plan := in.Plan
	results := in.Solve.Results
	mwSweeps := in.Solve.MWSweeps
	rep := &RunReport{
		Build:       obs.CollectBuildInfo(),
		Config:      plan.Cfg.Info(),
		Workers:     plan.Workers,
		Windows:     len(results),
		MWSweeps:    mwSweeps,
		WallSeconds: in.Solve.Seconds,
	}
	rep.SetPhase("tcsr_build", in.BuildSeconds)
	rep.SetPhase("plan", plan.Seconds)
	rep.SetPhase("solve", in.Solve.Seconds)

	// Warm-start eligibility: every window whose predecessor is in the
	// same multi-window graph, when partial initialization is on.
	if plan.Cfg.PartialInit {
		for _, mw := range plan.Temporal.MWs {
			if n := mw.NumWindows(); n > 1 {
				rep.WarmStart.Eligible += n - 1
			}
		}
	}

	rep.WindowWallSeconds = make([]float64, len(results))
	rep.WindowWorkers = make([]int, len(results))
	var resSum float64
	for i := range results {
		r := &results[i]
		rep.TotalIterations += r.Iterations
		if r.UsedPartialInit {
			rep.WarmStart.Hits++
		}
		if !r.Converged {
			rep.Residuals.Unconverged++
		}
		switch r.Status {
		case WindowRetried:
			rep.Fault.Retried++
		case WindowDegraded:
			rep.Fault.Degraded++
		case WindowResumed:
			rep.Fault.Resumed++
		case WindowFailed:
			rep.Fault.Quarantined = append(rep.Fault.Quarantined, r.Window)
		}
		if r.FinalResidual > rep.Residuals.Max {
			rep.Residuals.Max = r.FinalResidual
		}
		resSum += r.FinalResidual
		rep.WindowWallSeconds[i] = r.WallSeconds
		rep.WindowWorkers[i] = r.Worker
	}
	if rep.WarmStart.Eligible > 0 {
		rep.WarmStart.HitRate = float64(rep.WarmStart.Hits) / float64(rep.WarmStart.Eligible)
	}
	if len(results) > 0 {
		rep.Residuals.Mean = resSum / float64(len(results))
	}
	// Width-1 kernels sweep the CSR once per window iteration; the
	// batched driver filled mwSweeps with per-batch maxima already.
	if plan.Width == 1 {
		for mwIdx, mw := range plan.Temporal.MWs {
			var s int64
			for w := mw.WinLo; w < mw.WinHi; w++ {
				s += int64(results[w].Iterations)
			}
			mwSweeps[mwIdx] = s
		}
	}
	for _, s := range mwSweeps {
		rep.TotalSweeps += s
	}
	rep.Sched = in.Solve.Sched
	rep.Scratch = in.Solve.Scratch
	ww := in.Solve.WindowWall
	rep.WindowWallPercentiles = Percentiles{
		P50: ww.Quantile(0.50),
		P95: ww.Quantile(0.95),
		P99: ww.Quantile(0.99),
	}
	return &Series{
		Spec:        plan.Temporal.Spec,
		NumVertices: plan.Temporal.NumVertices(),
		Results:     results,
		Report:      rep,
	}, nil
}
