package core

import (
	"context"

	"fmt"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

// benchSetup builds a shared log/spec for the kernel microbenchmarks:
// big enough that an iteration does real work, small enough that the
// full matrix of kernel×mode benchmarks stays fast.
func benchLogSpec(b *testing.B) (*events.Log, events.WindowSpec) {
	b.Helper()
	l := benchRandomLog(b, 7, 2000, 40000, 20000)
	return l, events.WindowSpec{T0: 0, Delta: 5000, Slide: 2500, Count: 6}
}

func benchRandomLog(b *testing.B, seed int64, n int32, m int, span int64) *events.Log {
	b.Helper()
	evs := make([]events.Event, m)
	state := uint64(seed)
	next := func(mod int64) int64 {
		state = state*6364136223846793005 + 1442695040888963407
		v := int64(state >> 33)
		return v % mod
	}
	tcur := int64(0)
	for i := range evs {
		tcur += next(span/int64(m) + 1)
		evs[i] = events.Event{U: int32(next(int64(n))), V: int32(next(int64(n))), T: tcur}
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		b.Fatalf("NewLog: %v", err)
	}
	return l
}

func benchConfig(kernel KernelID, mode ParallelMode) Config {
	cfg := DefaultConfig()
	cfg.Kernel = kernel
	cfg.Mode = mode
	cfg.NumMultiWindows = 2
	cfg.Directed = true
	cfg.DiscardRanks = true
	cfg.VectorLen = 3
	return cfg
}

var benchKernels = []KernelID{SpMV, SpMVBlocked, SpMM}

type benchMode struct {
	name    string
	mode    ParallelMode
	workers int
}

var benchModes = []benchMode{
	{"serial", AppLevel, 0},
	{"app-level", AppLevel, 4},
	{"window-level", WindowLevel, 4},
	{"nested", Nested, 4},
}

// BenchmarkIter measures one steady-state PageRank iteration per op for
// every kernel×mode pair: MaxIter is set to b.N with a tolerance no run
// reaches, so one Run performs exactly b.N iterations per window chain
// and the per-solve setup cost amortizes away. ReportAllocs makes the
// headline claim measurable: allocs/op is 0 once the arena is warm.
func BenchmarkIter(b *testing.B) {
	l, spec := benchLogSpec(b)
	for _, kernel := range benchKernels {
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("%v/%s", kernel, m.name), func(b *testing.B) {
				var pool *sched.Pool
				if m.workers > 0 {
					pool = sched.NewPool(m.workers)
					defer pool.Close()
				}
				cfg := benchConfig(kernel, m.mode)
				cfg.Opts.Tol = 1e-300
				cfg.Opts.MaxIter = b.N
				eng, err := NewEngine(l, spec, cfg, pool)
				if err != nil {
					b.Fatalf("NewEngine: %v", err)
				}
				// Warm the arena (and the scheduler's job pool) outside
				// the measured region.
				warm := cfg
				warm.Opts.MaxIter = 2
				wEng, err := NewEngineFromTemporal(eng.Temporal(), warm, pool)
				if err != nil {
					b.Fatalf("warm engine: %v", err)
				}
				if _, err := wEng.Run(context.Background()); err != nil {
					b.Fatalf("warm Run: %v", err)
				}
				eng.solve.arena = wEng.solve.arena // share the warmed arena
				b.ReportAllocs()
				b.ResetTimer()
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatalf("Run: %v", err)
				}
			})
		}
	}
}

// BenchmarkRun measures a whole converging Run (default tolerance,
// DiscardRanks) per op for every kernel×mode pair — the end-to-end
// number the perf trajectory tracks.
func BenchmarkRun(b *testing.B) {
	l, spec := benchLogSpec(b)
	for _, kernel := range benchKernels {
		for _, m := range benchModes {
			b.Run(fmt.Sprintf("%v/%s", kernel, m.name), func(b *testing.B) {
				var pool *sched.Pool
				if m.workers > 0 {
					pool = sched.NewPool(m.workers)
					defer pool.Close()
				}
				eng, err := NewEngine(l, spec, benchConfig(kernel, m.mode), pool)
				if err != nil {
					b.Fatalf("NewEngine: %v", err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatalf("warm Run: %v", err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(context.Background()); err != nil {
						b.Fatalf("Run: %v", err)
					}
				}
			})
		}
	}
}
