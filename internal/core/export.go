package core

import (
	"pmpr/internal/events"
	"pmpr/internal/results"
)

// Export adapts the series to the results serialization interface. It
// requires retained ranks (not Config.DiscardRanks).
func (s *Series) Export() results.SeriesSource { return seriesSource{s} }

type seriesSource struct{ s *Series }

func (x seriesSource) SpecAndSize() (events.WindowSpec, int32) {
	return x.s.Spec, x.s.NumVertices
}

func (x seriesSource) WindowAt(i int) results.WindowRanks {
	r := x.s.Window(i)
	wr := results.WindowRanks{
		Window:          r.Window,
		Iterations:      r.Iterations,
		Converged:       r.Converged,
		UsedPartialInit: r.UsedPartialInit,
	}
	r.ForEach(func(g int32, rank float64) {
		wr.Vertices = append(wr.Vertices, g)
		wr.Ranks = append(wr.Ranks, rank)
	})
	return wr
}
