package core

import (
	"context"

	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmpr/internal/csr"
	"pmpr/internal/events"
	"pmpr/internal/pagerank"
	"pmpr/internal/results"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

// checkAgainstOracle verifies every window of a series against the
// independent dense reference on the rebuilt window graph.
func checkAgainstOracle(t *testing.T, l *events.Log, spec events.WindowSpec, s *Series, label string) {
	t.Helper()
	for w := 0; w < spec.Count; w++ {
		g, err := csr.FromLogWindow(l, spec.Start(w), spec.End(w))
		if err != nil {
			t.Fatalf("%s: oracle graph window %d: %v", label, w, err)
		}
		want, err := pagerank.Reference(g, pagerank.Defaults())
		if err != nil {
			t.Fatalf("%s: oracle window %d: %v", label, w, err)
		}
		res := s.Window(w)
		if res.ActiveVertices != g.ActiveCount() {
			t.Fatalf("%s: window %d: active = %d, oracle %d", label, w, res.ActiveVertices, g.ActiveCount())
		}
		got := res.Dense(l.NumVertices())
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-5 {
				t.Fatalf("%s: window %d vertex %d: got %v, oracle %v", label, w, v, got[v], want[v])
			}
		}
	}
}

func TestAllConfigurationsMatchOracle(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	l := randomLog(t, 31, 25, 600, 3000)
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	if spec.Count < 8 {
		t.Fatalf("want a reasonable window count, got %d", spec.Count)
	}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		for _, mode := range []ParallelMode{AppLevel, WindowLevel, Nested} {
			for _, part := range []sched.Partitioner{sched.Auto, sched.Simple, sched.Static} {
				for _, partial := range []bool{false, true} {
					for _, numMW := range []int{1, 3} {
						cfg := DefaultConfig()
						cfg.Kernel = kernel
						cfg.Mode = mode
						cfg.Partitioner = part
						cfg.PartialInit = partial
						cfg.NumMultiWindows = numMW
						cfg.Directed = true
						cfg.VectorLen = 4
						eng, err := NewEngine(l, spec, cfg, pool)
						if err != nil {
							t.Fatalf("NewEngine: %v", err)
						}
						s, err := eng.Run(context.Background())
						if err != nil {
							t.Fatalf("Run: %v", err)
						}
						label := kernel.String() + "/" + mode.String() + "/" + part.String()
						checkAgainstOracle(t, l, spec, s, label)
					}
				}
			}
		}
	}
}

func TestSerialNilPoolMatchesOracle(t *testing.T) {
	l := randomLog(t, 32, 20, 300, 2000)
	spec, _ := events.Span(l, 300, 100)
	for _, kernel := range []KernelID{SpMV, SpMM} {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.NumMultiWindows = 2
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		checkAgainstOracle(t, l, spec, s, "serial/"+kernel.String())
	}
}

func TestUndirectedSymmetrizedMatchesOracle(t *testing.T) {
	l := randomLog(t, 33, 18, 250, 1500).Symmetrize()
	spec, _ := events.Span(l, 250, 90)
	cfg := DefaultConfig()
	cfg.Directed = false
	cfg.NumMultiWindows = 2
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkAgainstOracle(t, l, spec, s, "undirected")
}

func TestPartialInitReducesIterations(t *testing.T) {
	// Overlapping windows on a slowly-evolving graph: warm starts must
	// reduce total iterations (the effect Fig. 6 measures).
	l := randomLog(t, 34, 40, 3000, 5000)
	spec, _ := events.Span(l, 2000, 100)
	run := func(partial bool) *Series {
		cfg := DefaultConfig()
		cfg.Kernel = SpMV
		cfg.Directed = true
		cfg.PartialInit = partial
		cfg.NumMultiWindows = 1
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	full := run(false)
	partial := run(true)
	if partial.TotalIterations() >= full.TotalIterations() {
		t.Fatalf("partial init did not reduce iterations: %d vs %d",
			partial.TotalIterations(), full.TotalIterations())
	}
	// And the first window never warm-starts.
	if partial.Window(0).UsedPartialInit {
		t.Fatal("window 0 claims partial initialization")
	}
	used := 0
	for w := 1; w < partial.Len(); w++ {
		if partial.Window(w).UsedPartialInit {
			used++
		}
	}
	if used == 0 {
		t.Fatal("no window used partial initialization")
	}
}

func TestPartialInitNotAcrossMultiWindowBoundary(t *testing.T) {
	l := randomLog(t, 35, 20, 500, 2000)
	spec, _ := events.SpanCount(l, 500, 100, 12)
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.Directed = true
	cfg.PartialInit = true
	cfg.NumMultiWindows = 4 // windows 0-2, 3-5, 6-8, 9-11
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, first := range []int{0, 3, 6, 9} {
		if s.Window(first).UsedPartialInit {
			t.Fatalf("window %d is first of its multi-window graph but warm-started", first)
		}
	}
}

func TestSpMMEqualsSpMVExactlySerial(t *testing.T) {
	// With full init (no partial), serial SpMM and SpMV perform the
	// same floating-point operations per window, so the iterates agree
	// to near-machine precision.
	l := randomLog(t, 36, 30, 800, 4000)
	spec, _ := events.Span(l, 600, 150)
	mk := func(kernel KernelID) *Series {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.PartialInit = false
		cfg.NumMultiWindows = 2
		cfg.VectorLen = 8
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	a, b := mk(SpMV), mk(SpMM)
	for w := 0; w < spec.Count; w++ {
		ra, rb := a.Window(w), b.Window(w)
		if ra.Iterations != rb.Iterations {
			t.Fatalf("window %d: SpMV %d iterations, SpMM %d", w, ra.Iterations, rb.Iterations)
		}
		da := ra.Dense(l.NumVertices())
		db := rb.Dense(l.NumVertices())
		for v := range da {
			if math.Abs(da[v]-db[v]) > 1e-12 {
				t.Fatalf("window %d vertex %d: SpMV %v, SpMM %v", w, v, da[v], db[v])
			}
		}
	}
}

func TestDiscardRanks(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	l := randomLog(t, 37, 15, 200, 1000)
	spec, _ := events.Span(l, 200, 80)
	for _, kernel := range []KernelID{SpMV, SpMM} {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.DiscardRanks = true
		cfg.NumMultiWindows = 2
		eng, err := NewEngine(l, spec, cfg, pool)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for w := 0; w < s.Len(); w++ {
			if s.Window(w).HasRanks() {
				t.Fatalf("%v: window %d retained ranks despite DiscardRanks", kernel, w)
			}
		}
		// Iterations statistics must still be present.
		if s.TotalIterations() == 0 {
			t.Fatalf("%v: no iteration statistics", kernel)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: Rank on discarded result did not panic", kernel)
				}
			}()
			s.Window(0).Rank(0)
		}()
	}
}

func TestEmptyWindowsHandled(t *testing.T) {
	// Events only at the start; later windows are empty.
	evs := []events.Event{ev(0, 1, 0), ev(1, 2, 5)}
	l, _ := events.NewLog(evs, 3)
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 100, Count: 5}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.NumMultiWindows = 2
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !s.AllConverged() {
			t.Fatalf("%v: empty windows did not converge", kernel)
		}
		for w := 1; w < 5; w++ {
			if s.Window(w).ActiveVertices != 0 {
				t.Fatalf("%v: window %d should be empty", kernel, w)
			}
		}
	}
}

func TestSingleWindow(t *testing.T) {
	l := randomLog(t, 38, 10, 100, 50)
	spec := events.WindowSpec{T0: 0, Delta: 100, Slide: 1000, Count: 1}
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkAgainstOracle(t, l, spec, s, "single-window")
}

func TestConfigValidation(t *testing.T) {
	l := randomLog(t, 39, 5, 20, 100)
	spec, _ := events.Span(l, 50, 20)
	bad := []func(*Config){
		func(c *Config) { c.Opts.Alpha = 2 },
		func(c *Config) { c.NumMultiWindows = 0 },
		func(c *Config) { c.Mode = ParallelMode(9) },
		func(c *Config) { c.Kernel = KernelID(7) },
		func(c *Config) { c.Kernel = SpMM; c.VectorLen = 0 },
		func(c *Config) { c.Grain = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := NewEngine(l, spec, cfg, nil); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewEngineFromTemporalChecksDirection(t *testing.T) {
	l := randomLog(t, 40, 5, 20, 100)
	spec, _ := events.Span(l, 50, 20)
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg2 := cfg
	cfg2.Directed = false
	if _, err := NewEngineFromTemporal(eng.Temporal(), cfg2, nil); err == nil {
		t.Fatal("direction mismatch accepted")
	}
	if _, err := NewEngineFromTemporal(nil, cfg, nil); err == nil {
		t.Fatal("nil temporal accepted")
	}
	if _, err := NewEngineFromTemporal(eng.Temporal(), cfg, nil); err != nil {
		t.Fatalf("valid reuse rejected: %v", err)
	}
}

func TestSeriesAPI(t *testing.T) {
	l := randomLog(t, 41, 12, 150, 500)
	spec, _ := events.Span(l, 200, 100)
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Window(0)
	top := r.TopK(3)
	if len(top) == 0 {
		t.Fatal("TopK empty on non-empty window")
	}
	for i := 1; i < len(top); i++ {
		if top[i].Rank > top[i-1].Rank {
			t.Fatal("TopK not descending")
		}
	}
	if r.Rank(top[0].Vertex) != top[0].Rank {
		t.Fatal("Rank lookup disagrees with TopK")
	}
	var sum float64
	r.ForEach(func(_ int32, rank float64) { sum += rank })
	if math.Abs(sum-1) > 1e-8 {
		t.Fatalf("ranks sum to %v", sum)
	}
	if s.String() == "" {
		t.Fatal("empty series string")
	}
}

func TestModeAndKernelStrings(t *testing.T) {
	if AppLevel.String() != "app-level" || WindowLevel.String() != "window-level" || Nested.String() != "nested" {
		t.Fatal("mode names wrong")
	}
	if SpMV.String() != "spmv" || SpMM.String() != "spmm" {
		t.Fatal("kernel names wrong")
	}
	if ParallelMode(9).String() == "" || KernelID(9).String() == "" {
		t.Fatal("unknown values should still format")
	}
}

func TestPaperExampleSeries(t *testing.T) {
	// The Fig. 2 graph: vertex 7 joins in T2 and becomes well-connected
	// (4 incident edges); vertex 1 is absent from T2.
	raw := []events.Event{
		ev(1, 2, 20), ev(3, 5, 24), ev(4, 6, 40), ev(2, 3, 61), ev(2, 4, 71),
		ev(5, 6, 104), ev(2, 7, 123), ev(4, 7, 126), ev(5, 7, 127), ev(6, 7, 130),
		ev(1, 2, 157), ev(1, 3, 158), ev(2, 5, 161), ev(3, 5, 164),
	}
	l, err := events.NewLog(raw, 8)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	sym := l.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 106, Slide: 30, Count: 3}
	cfg := DefaultConfig()
	cfg.Directed = false
	eng, err := NewEngine(sym, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).Rank(7) != 0 {
		t.Fatal("vertex 7 should be absent in T1")
	}
	if s.Window(1).Rank(7) <= 0 {
		t.Fatal("vertex 7 should be active in T2")
	}
	if s.Window(1).Rank(1) != 0 {
		t.Fatal("vertex 1 should be absent in T2")
	}
	// Vertex 2 is the top hub in T3 (degree 5).
	top := s.Window(2).TopK(1)
	if len(top) != 1 || top[0].Vertex != 2 {
		t.Fatalf("T3 top vertex = %v, want 2", top)
	}
	checkAgainstOracle(t, sym, spec, s, "paper-example")
}

func TestBalancedPartitionMatchesOracle(t *testing.T) {
	// Bursty log: the balanced partition must not change results.
	rng := rand.New(rand.NewSource(44))
	var evs []events.Event
	tcur := int64(0)
	add := func(n int, step int64) {
		for i := 0; i < n; i++ {
			tcur += rng.Int63n(step) + 1
			evs = append(evs, ev(int32(rng.Intn(30)), int32(rng.Intn(30)), tcur))
		}
	}
	add(60, 40)
	add(600, 1)
	add(60, 40)
	l, err := events.NewLog(evs, 30)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.NumMultiWindows = 4
		cfg.BalancedPartition = true
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		checkAgainstOracle(t, l, spec, s, "balanced/"+kernel.String())
	}
}

func TestExportRoundTrip(t *testing.T) {
	l := randomLog(t, 45, 15, 200, 800)
	spec, _ := events.Span(l, 200, 100)
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := results.Write(&buf, s.Export()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := results.Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Spec != spec || got.NumVertices != l.NumVertices() {
		t.Fatalf("header mismatch: %+v", got.Spec)
	}
	for w := 0; w < spec.Count; w++ {
		want := s.Window(w).Dense(l.NumVertices())
		gotDense := got.Windows[w].Dense(l.NumVertices())
		for v := range want {
			if want[v] != gotDense[v] {
				t.Fatalf("window %d vertex %d: %v != %v", w, v, want[v], gotDense[v])
			}
		}
		if got.Windows[w].Iterations != s.Window(w).Iterations ||
			got.Windows[w].Converged != s.Window(w).Converged {
			t.Fatalf("window %d metadata mismatch", w)
		}
	}
}

func TestSpMMRegionStridedOrder(t *testing.T) {
	// One multi-window graph, 16 windows, vector length 4: regions are
	// {0..3},{4..7},{8..11},{12..15}. Batch 0 takes the first window of
	// each region (0,4,8,12) with full initialization; every later
	// batch warm-starts from its region predecessor (paper Sec. 4.4).
	l := randomLog(t, 46, 30, 2000, 40000)
	_, last, _ := l.TimeRange()
	slide := last / 20
	spec, _ := events.SpanCount(l, 6*slide, slide, 16)
	cfg := DefaultConfig()
	cfg.Kernel = SpMM
	cfg.VectorLen = 4
	cfg.NumMultiWindows = 1
	cfg.Directed = true
	cfg.PartialInit = true
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for w := 0; w < 16; w++ {
		isRegionFirst := w%4 == 0
		got := s.Window(w).UsedPartialInit
		if isRegionFirst && got {
			t.Fatalf("window %d is a region head but warm-started", w)
		}
		if !isRegionFirst && !got {
			t.Fatalf("window %d should warm-start from window %d", w, w-1)
		}
	}
}

func TestRankSumsInvariantQuick(t *testing.T) {
	// Every window's retained ranks must sum to 1 (or 0 when empty),
	// across random configurations.
	l := randomLog(t, 47, 20, 400, 2000)
	spec, _ := events.Span(l, 300, 150)
	f := func(kernelRaw, modeRaw, mwRaw, vlRaw uint8, partial bool) bool {
		cfg := DefaultConfig()
		cfg.Kernel = KernelID(kernelRaw % 2)
		cfg.Mode = ParallelMode(modeRaw % 3)
		cfg.NumMultiWindows = int(mwRaw%4) + 1
		cfg.VectorLen = int(vlRaw%8) + 1
		cfg.PartialInit = partial
		cfg.Directed = true
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			return false
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			return false
		}
		for w := 0; w < s.Len(); w++ {
			var sum float64
			if s.Window(w).ActiveVertices == 0 {
				continue
			}
			s.Window(w).ForEach(func(_ int32, r float64) { sum += r })
			if math.Abs(sum-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	l := randomLog(t, 48, 8, 40, 100)
	spec := events.WindowSpec{T0: 0, Delta: 100, Slide: 200, Count: 1}
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Window(0)
	if got := r.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %v", got)
	}
	all := r.TopK(1 << 20)
	if int32(len(all)) != r.ActiveVertices {
		t.Fatalf("TopK(huge) returned %d, active %d", len(all), r.ActiveVertices)
	}
}

func TestBlockedKernelMatchesOracle(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	l := randomLog(t, 49, 25, 600, 3000)
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	for _, mode := range []ParallelMode{AppLevel, WindowLevel, Nested} {
		for _, partial := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Kernel = SpMVBlocked
			cfg.Mode = mode
			cfg.PartialInit = partial
			cfg.Directed = true
			cfg.NumMultiWindows = 3
			eng, err := NewEngine(l, spec, cfg, pool)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			s, err := eng.Run(context.Background())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			checkAgainstOracle(t, l, spec, s, "blocked/"+mode.String())
		}
	}
}

func TestBlockedEqualsPlainSpMVSerial(t *testing.T) {
	// Same per-window iteration counts and near-identical iterates: the
	// blocked kernel reorders additions but performs the same update.
	l := randomLog(t, 50, 30, 800, 4000)
	spec, _ := events.Span(l, 600, 150)
	mk := func(kernel KernelID) *Series {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.Directed = true
		cfg.NumMultiWindows = 2
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	a, b := mk(SpMV), mk(SpMVBlocked)
	for w := 0; w < spec.Count; w++ {
		if a.Window(w).Iterations != b.Window(w).Iterations {
			t.Fatalf("window %d: %d vs %d iterations", w, a.Window(w).Iterations, b.Window(w).Iterations)
		}
		da := a.Window(w).Dense(l.NumVertices())
		db := b.Window(w).Dense(l.NumVertices())
		for v := range da {
			if math.Abs(da[v]-db[v]) > 1e-12 {
				t.Fatalf("window %d vertex %d: %v vs %v", w, v, da[v], db[v])
			}
		}
	}
}

func TestBlockedKernelString(t *testing.T) {
	if SpMVBlocked.String() != "spmv-blocked" {
		t.Fatal("kernel name wrong")
	}
}
