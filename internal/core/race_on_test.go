//go:build race

package core

// raceEnabled mirrors the race build tag so allocation-count tests can
// skip themselves: the race runtime allocates shadow state on its own
// schedule and makes testing.AllocsPerRun meaningless.
const raceEnabled = true
