package core

import (
	"sync"
	"sync/atomic"

	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// This file implements the engine's scratch-memory arena. The kernels
// used to allocate their working vectors (x/y/z, inverse out-degrees,
// activity flags, per-leaf accumulators) on every window or batch
// solve; under the default nested mode with a small grain that is
// millions of short-lived allocations per run. The arena replaces all
// of them with reusable per-worker buffers:
//
//   - Every buffer that does not escape a solve is taken from a
//     free list and returned when the solve finishes.
//   - Rank vectors escape (they become WindowResult.ranks and feed the
//     next window's partial initialization), so they stay checked out
//     until the consumer recycles them — immediately under
//     Config.DiscardRanks, never when results are retained.
//   - Leaf closures never allocate: cross-leaf reductions write into
//     lane-indexed slots (one lane per pool worker) that are summed
//     serially after the loop, replacing the old atomic accumulators.
//
// Ownership: a scratchBuf is confined to the goroutine of the
// window-loop worker that acquired it (buffers are keyed by
// sched.Worker ID), so its free lists need no locking — including
// under re-entrancy, when a worker helping a nested loop steals
// another window-range span and starts a second solve on the same
// scratchBuf: the inner solve simply pops further buffers while the
// outer solve's remain checked out. Serial and app-level callers have
// no worker identity and draw a scratchBuf from a sync.Pool instead.

// scratchArena owns one scratchBuf per pool worker plus a pooled path
// for loops running outside the pool. An Engine creates one arena and
// keeps it across Run calls, so steady-state iteration is
// allocation-free from the second window onward.
type scratchArena struct {
	perWorker []scratchBuf
	pooled    sync.Pool
	lanes     int // reduction lanes (pool workers, min 1)

	gets   atomic.Int64 // buffer requests served
	misses atomic.Int64 // requests that had to allocate fresh memory
}

// ScratchStats is a snapshot of the arena's buffer-reuse counters.
// Hits = Gets - Misses; a warmed-up engine solving with DiscardRanks
// should report a miss delta of zero across Run calls.
type ScratchStats struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Delta returns the counter movement since before.
func (s ScratchStats) Delta(before ScratchStats) ScratchStats {
	return ScratchStats{
		Gets:   s.Gets - before.Gets,
		Hits:   s.Hits - before.Hits,
		Misses: s.Misses - before.Misses,
	}
}

func newScratchArena(workers int) *scratchArena {
	lanes := workers
	if lanes < 1 {
		lanes = 1
	}
	a := &scratchArena{perWorker: make([]scratchBuf, workers), lanes: lanes}
	for i := range a.perWorker {
		a.perWorker[i].arena = a
	}
	a.pooled.New = func() interface{} { return &scratchBuf{arena: a} }
	return a
}

// stats snapshots the reuse counters.
func (a *scratchArena) stats() ScratchStats {
	gets, misses := a.gets.Load(), a.misses.Load()
	return ScratchStats{Gets: gets, Hits: gets - misses, Misses: misses}
}

// acquire returns the scratch buffer of window-loop worker wid and a
// release function. wid < 0 (serial and app-level ranges, which run
// without a worker identity) takes the sync.Pool-backed path; release
// is a no-op for the per-worker path.
func (a *scratchArena) acquire(wid int) (*scratchBuf, func()) {
	if wid >= 0 && wid < len(a.perWorker) {
		return &a.perWorker[wid], func() {}
	}
	sb := a.pooled.Get().(*scratchBuf)
	return sb, func() { a.pooled.Put(sb) }
}

// laneOf maps the worker executing a leaf to its reduction lane; nil
// (a serial loop) is lane 0.
func laneOf(w *sched.Worker) int {
	if w == nil {
		return 0
	}
	return w.ID()
}

// freeList holds reusable slices of one element type. get returns a
// zeroed slice of length n using best fit — the smallest sufficient
// capacity, most recently returned among equals — so a small request
// never consumes a large buffer that a later request (e.g. the blocked
// kernel's edge-sized bins) needs; under a repeated request sequence
// the steady state then has zero misses. put makes a slice available
// for reuse. Not safe for concurrent use — each scratchBuf is
// goroutine-confined (see the file comment).
type freeList[T any] struct {
	free [][]T
}

func (l *freeList[T]) get(a *scratchArena, n int) []T {
	a.gets.Add(1)
	best := -1
	for i := len(l.free) - 1; i >= 0; i-- {
		c := cap(l.free[i])
		if c < n {
			continue
		}
		if best < 0 || c < cap(l.free[best]) {
			best = i
		}
		if c == n {
			break // exact fit; scanning back-to-front keeps LIFO ties
		}
	}
	if best >= 0 {
		s := l.free[best][:n]
		l.free[best] = l.free[len(l.free)-1]
		l.free[len(l.free)-1] = nil
		l.free = l.free[:len(l.free)-1]
		clear(s)
		return s
	}
	a.misses.Add(1)
	return make([]T, n)
}

func (l *freeList[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	l.free = append(l.free, s)
}

// scratchBuf bundles the free lists of every buffer shape the kernels
// use. Acquired via scratchArena.acquire; see the file comment for the
// confinement rules that make it lock-free.
type scratchBuf struct {
	arena *scratchArena

	f64     freeList[float64]
	i64     freeList[int64]
	i32     freeList[int32]
	ints    freeList[int]
	bools   freeList[bool]
	a64     freeList[atomic.Int64]
	vecs    freeList[[]float64]
	results freeList[WindowResult]
	views   freeList[tcsr.SolveView]
}

// lanes returns the number of reduction lanes leaf bodies may index.
func (b *scratchBuf) lanes() int { return b.arena.lanes }

func (b *scratchBuf) getF64(n int) []float64 { return b.f64.get(b.arena, n) }
func (b *scratchBuf) putF64(s []float64)     { b.f64.put(s) }

func (b *scratchBuf) getI64(n int) []int64 { return b.i64.get(b.arena, n) }
func (b *scratchBuf) putI64(s []int64)     { b.i64.put(s) }

func (b *scratchBuf) getI32(n int) []int32 { return b.i32.get(b.arena, n) }
func (b *scratchBuf) putI32(s []int32)     { b.i32.put(s) }

func (b *scratchBuf) getInt(n int) []int { return b.ints.get(b.arena, n) }
func (b *scratchBuf) putInt(s []int)     { b.ints.put(s) }

func (b *scratchBuf) getBool(n int) []bool { return b.bools.get(b.arena, n) }
func (b *scratchBuf) putBool(s []bool)     { b.bools.put(s) }

func (b *scratchBuf) getAtomicI64(n int) []atomic.Int64 { return b.a64.get(b.arena, n) }
func (b *scratchBuf) putAtomicI64(s []atomic.Int64)     { b.a64.put(s) }

// getVecs/putVecs manage [][]float64 holders (SpMM rank staging). put
// clears the elements first so the free list never pins rank vectors.
func (b *scratchBuf) getVecs(n int) [][]float64 { return b.vecs.get(b.arena, n) }
func (b *scratchBuf) putVecs(s [][]float64) {
	clear(s)
	b.vecs.put(s)
}

// getResults/putResults manage []WindowResult staging for SpMM batches.
// put clears the elements so recycled entries never pin rank vectors.
func (b *scratchBuf) getResults(n int) []WindowResult { return b.results.get(b.arena, n) }
func (b *scratchBuf) putResults(s []WindowResult) {
	clear(s)
	b.results.put(s)
}

// getViews/putViews manage the batch drivers' []tcsr.SolveView staging.
// put clears the elements so the free list never pins a multi-window
// graph through its view pointers.
func (b *scratchBuf) getViews(n int) []tcsr.SolveView { return b.views.get(b.arena, n) }
func (b *scratchBuf) putViews(s []tcsr.SolveView) {
	clear(s)
	b.views.put(s)
}
