package core

import (
	"context"

	"pmpr/internal/sched"
)

// forLoop abstracts "run body over [0, n)" so each kernel is written
// once and executed serially (window-level mode), or forked on the pool
// from the calling worker (app-level and nested modes). The body is a
// sched.Body so loop implementations hand it to the scheduler without
// wrapping it in a fresh closure — kernels bind their bodies once per
// solve and the steady-state iteration loop stays allocation-free. A
// serial loop invokes the body with a nil worker; bodies that reduce
// across leaves index their lane with laneOf.
type forLoop func(n int, body sched.Body)

func serialLoop(n int, body sched.Body) {
	if n > 0 {
		body(nil, 0, n)
	}
}

// workerLoop forks vertex loops on w's pool. ctx (nil = never
// canceled) threads the run's cancellation into every nested loop, so
// a canceled solve stops splitting and skips remaining spans at the
// next steal boundary even inside a kernel pass.
func workerLoop(ctx context.Context, w *sched.Worker, grain int, part sched.Partitioner) forLoop {
	return func(n int, body sched.Body) {
		w.ParallelForCtx(ctx, n, grain, part, body)
	}
}
