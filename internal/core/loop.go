package core

import (
	"math"
	"sync/atomic"

	"pmpr/internal/sched"
)

// forLoop abstracts "run body over [0, n)" so each kernel is written
// once and executed serially (window-level mode), on the pool
// (app-level mode), or on the calling worker (nested mode).
type forLoop func(n int, body func(lo, hi int))

func serialLoop(n int, body func(lo, hi int)) {
	if n > 0 {
		body(0, n)
	}
}

func poolLoop(p *sched.Pool, grain int, part sched.Partitioner) forLoop {
	return func(n int, body func(lo, hi int)) {
		p.ParallelFor(n, grain, part, func(_ *sched.Worker, lo, hi int) { body(lo, hi) })
	}
}

func workerLoop(w *sched.Worker, grain int, part sched.Partitioner) forLoop {
	return func(n int, body func(lo, hi int)) {
		w.ParallelFor(n, grain, part, func(_ *sched.Worker, lo, hi int) { body(lo, hi) })
	}
}

// atomicFloat64 is an accumulator safe for concurrent leaf reductions.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) Add(delta float64) {
	if delta == 0 {
		return
	}
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat64) Store(v float64) { a.bits.Store(math.Float64bits(v)) }
