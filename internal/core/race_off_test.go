//go:build !race

package core

// raceEnabled mirrors the race build tag; see race_on_test.go.
const raceEnabled = false
