package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"pmpr/internal/checkpoint"
	"pmpr/internal/events"
	"pmpr/internal/fault"
	"pmpr/internal/sched"
)

// ftCfg is equivCfg with the default fault policy made explicit: two
// retries, no backoff sleep (tests should not wait), degrade enabled.
func ftCfg(kernel KernelID, mode ParallelMode) Config {
	cfg := equivCfg(kernel, mode, true)
	cfg.Fault = FaultPolicy{MaxRetries: 2}
	return cfg
}

// oracleSeries solves the log serially, fault-free, and returns the
// dense per-window rank vectors.
func oracleSeries(t *testing.T, l *events.Log, spec events.WindowSpec, cfg Config) [][]float64 {
	t.Helper()
	fault.Reset()
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("oracle NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("oracle Run: %v", err)
	}
	return denseSeries(t, s, "oracle")
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// TestInjectedFaultsAreRetriedTransparently arms a transient fault
// (error and panic modes) at each solve injection point and verifies
// the run completes with every window's ranks within 1e-12 of the
// fault-free oracle — a retried attempt reuses identical inputs, so a
// transient fault must leave no numerical trace.
func TestInjectedFaultsAreRetriedTransparently(t *testing.T) {
	l := randomLog(t, 91, 30, 300, 900)
	spec := events.WindowSpec{T0: 0, Delta: 180, Slide: 95, Count: 8}
	pool := sched.NewPool(4)
	defer pool.Close()

	for _, tc := range []struct {
		kernel KernelID
		point  string
	}{
		{SpMV, PointSolveWindow},
		{SpMVBlocked, PointSolveWindow},
		{SpMM, PointSolveBatch},
	} {
		want := oracleSeries(t, l, spec, ftCfg(tc.kernel, AppLevel))
		for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
			for _, par := range []ParallelMode{AppLevel, Nested} {
				label := fmt.Sprintf("%v/%v/%v", tc.kernel, tc.point, mode)
				t.Run(label, func(t *testing.T) {
					defer fault.Reset()
					fault.Reset()
					eng, err := NewEngine(l, spec, ftCfg(tc.kernel, par), pool)
					if err != nil {
						t.Fatalf("NewEngine: %v", err)
					}
					// One fault on the third attempt-eligible hit: exercises a
					// mid-run window, not just the first.
					cancel := fault.Arm(fault.Rule{Point: tc.point, Mode: mode, After: 2, Count: 1})
					defer cancel()
					s, err := eng.Run(context.Background())
					if err != nil {
						t.Fatalf("Run with injected %v: %v", mode, err)
					}
					if fault.Injected() == 0 {
						t.Fatal("fault was never injected; test exercised nothing")
					}
					if !s.AllOK() {
						t.Fatalf("quarantined windows %v after a transient fault", s.Quarantined())
					}
					retried := 0
					for w := 0; w < s.Len(); w++ {
						if st := s.Window(w).Status; st == WindowRetried || st == WindowDegraded {
							retried++
						}
					}
					if retried == 0 {
						t.Fatal("no window reports a retried/degraded status")
					}
					if s.Report.Fault.Retried+s.Report.Fault.Degraded == 0 {
						t.Fatalf("report fault rollup empty: %+v", s.Report.Fault)
					}
					got := denseSeries(t, s, label)
					for w := range want {
						if d := maxAbsDiff(got[w], want[w]); d > 1e-12 {
							t.Fatalf("window %d diverges from oracle by %v", w, d)
						}
					}
					if eng.FaultCounters().PanicsRecovered.Value() == 0 && mode == fault.ModePanic {
						t.Fatal("panic mode injected but no panic recovered")
					}
				})
			}
		}
	}
}

// TestPersistentFaultDegradesToSerialKernel arms a persistent fault on
// the SpMM batch point; every batch then falls back to the serial SpMV
// kernel, and the results must still match the oracle (same math,
// simpler path).
func TestPersistentFaultDegradesToSerialKernel(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 92, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	want := oracleSeries(t, l, spec, ftCfg(SpMM, AppLevel))

	cfg := ftCfg(SpMM, AppLevel)
	cfg.Fault.MaxRetries = 1
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cancel := fault.Arm(fault.Rule{Point: PointSolveBatch, Mode: fault.ModePanic, Count: 0})
	defer cancel()
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.AllOK() {
		t.Fatalf("quarantined windows %v; degrade should have rescued them", s.Quarantined())
	}
	for w := 0; w < s.Len(); w++ {
		if st := s.Window(w).Status; st != WindowDegraded {
			t.Fatalf("window %d status %v, want degraded", w, st)
		}
	}
	if eng.FaultCounters().Degraded.Value() != int64(s.Len()) {
		t.Fatalf("Degraded counter %d, want %d", eng.FaultCounters().Degraded.Value(), s.Len())
	}
	got := denseSeries(t, s, "degraded")
	for w := range want {
		if d := maxAbsDiff(got[w], want[w]); d > 1e-12 {
			t.Fatalf("window %d diverges from oracle by %v", w, d)
		}
	}
}

// TestPersistentFaultQuarantinesWindow makes both the window solve and
// the degrade fallback fail persistently for exactly one window: the
// run must complete with that window quarantined (structured
// *WindowError, no ranks) and every other window matching the oracle.
func TestPersistentFaultQuarantinesWindow(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 93, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	want := oracleSeries(t, l, spec, ftCfg(SpMV, AppLevel))

	cfg := ftCfg(SpMV, AppLevel)
	cfg.Fault.MaxRetries = 1
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// The serial run hits the window point once per attempt in window
	// order, so After=3 lands on window 2's first attempt; Count=2 also
	// fails its retry, and the always-armed degrade rule finishes it off.
	c1 := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeError, After: 3, Count: 2})
	defer c1()
	c2 := fault.Arm(fault.Rule{Point: PointSolveDegrade, Mode: fault.ModePanic, Count: 0})
	defer c2()
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := s.Quarantined()
	if len(q) != 1 || q[0] != 2 {
		t.Fatalf("quarantined = %v, want [2]", q)
	}
	res := s.Window(2)
	if res.Status != WindowFailed || res.Err == nil || res.HasRanks() {
		t.Fatalf("window 2 = status %v err %v hasRanks %v", res.Status, res.Err, res.HasRanks())
	}
	var we *WindowError
	if !errors.As(res.Err, &we) || we.Window != 2 || !we.Panicked {
		t.Fatalf("window 2 error %v is not a panicked *WindowError for window 2", res.Err)
	}
	if got := s.Report.Fault.Quarantined; len(got) != 1 || got[0] != 2 {
		t.Fatalf("report quarantined = %v, want [2]", got)
	}
	got := denseSeries4Quarantine(t, s)
	for w := range want {
		if w == 2 {
			continue
		}
		if d := maxAbsDiff(got[w], want[w]); d > 1e-12 {
			t.Fatalf("window %d diverges from oracle by %v", w, d)
		}
	}
}

// denseSeries4Quarantine densifies every window that has ranks,
// leaving nil for quarantined ones.
func denseSeries4Quarantine(t *testing.T, s *Series) [][]float64 {
	t.Helper()
	out := make([][]float64, s.Len())
	for w := 0; w < s.Len(); w++ {
		if r := s.Window(w); r.HasRanks() {
			out[w] = r.Dense(s.NumVertices)
		}
	}
	return out
}

// TestFailFastAbortsRun verifies Fault.FailFast turns the first
// quarantine into a run error.
func TestFailFastAbortsRun(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 94, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg := ftCfg(SpMV, AppLevel)
	cfg.Fault.MaxRetries = 0
	cfg.Fault.FailFast = true
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	c1 := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeError, Count: 0})
	defer c1()
	c2 := fault.Arm(fault.Rule{Point: PointSolveDegrade, Mode: fault.ModeError, Count: 0})
	defer c2()
	_, err = eng.Run(context.Background())
	var we *WindowError
	if !errors.As(err, &we) {
		t.Fatalf("Run error %v, want *WindowError", err)
	}
}

// TestStagePanicsBecomeStageErrors verifies the build/plan/publish
// stages convert injected panics into *StageError instead of crashing.
func TestStagePanicsBecomeStageErrors(t *testing.T) {
	defer fault.Reset()
	l := randomLog(t, 95, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	for _, point := range []string{PointBuild, PointPlan} {
		fault.Reset()
		cancel := fault.Arm(fault.Rule{Point: point, Mode: fault.ModePanic, Count: 1})
		_, err := NewEngine(l, spec, ftCfg(SpMV, AppLevel), nil)
		cancel()
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("%s: NewEngine error %v, want *StageError", point, err)
		}
		var rp *RecoveredPanic
		if !errors.As(err, &rp) {
			t.Fatalf("%s: StageError does not wrap the recovered panic: %v", point, err)
		}
	}
	fault.Reset()
	eng, err := NewEngine(l, spec, ftCfg(SpMV, AppLevel), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cancel := fault.Arm(fault.Rule{Point: PointPublish, Mode: fault.ModePanic, Count: 1})
	defer cancel()
	_, err = eng.Run(context.Background())
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "publish" {
		t.Fatalf("Run error %v, want publish *StageError", err)
	}
}

// TestCheckpointResumeBitIdentical runs with checkpointing, cancels
// mid-run, then resumes on a fresh engine and requires (a) the resumed
// run to restore rather than re-solve the completed windows and (b)
// the final ranks to be bit-identical to an uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	fault.Reset()
	l := randomLog(t, 96, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		t.Run(kernel.String(), func(t *testing.T) {
			cfg := ftCfg(kernel, AppLevel)
			dir := filepath.Join(t.TempDir(), "ck")

			// Uninterrupted reference.
			ref, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			refSeries, err := ref.Run(context.Background())
			if err != nil {
				t.Fatalf("reference Run: %v", err)
			}

			// Interrupted run: cancel once half the windows completed.
			store, err := checkpoint.Open(dir)
			if err != nil {
				t.Fatalf("checkpoint.Open: %v", err)
			}
			eng1, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if _, err := eng1.SetCheckpoint(store, false); err != nil {
				t.Fatalf("SetCheckpoint: %v", err)
			}
			// Slow every attempt down so the watcher's cancel reliably
			// lands mid-run rather than after the final window.
			slow1 := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeDelay, Delay: 20 * time.Millisecond, Count: 0})
			slow2 := fault.Arm(fault.Rule{Point: PointSolveBatch, Mode: fault.ModeDelay, Delay: 20 * time.Millisecond, Count: 0})
			ctx, stop := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				for eng1.FaultCounters().CheckpointWindows.Value() < 3 {
					runtime.Gosched()
				}
				stop()
			}()
			_, err = eng1.Run(ctx)
			<-done
			slow1()
			slow2()
			var ce *CanceledError
			if !errors.As(err, &ce) {
				// The run may have finished before the cancel landed; then
				// there is nothing to resume and the test is vacuous.
				t.Fatalf("interrupted Run returned %v, want *CanceledError", err)
			}
			if ce.Checkpoint != dir {
				t.Fatalf("CanceledError.Checkpoint = %q, want %q", ce.Checkpoint, dir)
			}
			if ce.Completed == 0 || ce.Completed >= spec.Count {
				t.Fatalf("cancel landed at %d/%d windows; test needs a partial run (ckpt=%d injected=%d)",
					ce.Completed, spec.Count, eng1.FaultCounters().CheckpointWindows.Value(), fault.Injected())
			}

			// Resume on a fresh engine.
			store2, err := checkpoint.Open(dir)
			if err != nil {
				t.Fatalf("checkpoint.Open: %v", err)
			}
			eng2, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			resumed, err := eng2.SetCheckpoint(store2, true)
			if err != nil {
				t.Fatalf("SetCheckpoint(resume): %v", err)
			}
			if resumed == 0 {
				t.Fatal("resume found no checkpointed windows")
			}
			s, err := eng2.Run(context.Background())
			if err != nil {
				t.Fatalf("resumed Run: %v", err)
			}
			gotResumed := 0
			for w := 0; w < s.Len(); w++ {
				if s.Window(w).Status == WindowResumed {
					gotResumed++
				}
			}
			if gotResumed != resumed {
				t.Fatalf("series reports %d resumed windows, SetCheckpoint promised %d", gotResumed, resumed)
			}
			if s.Report.Fault.Resumed != resumed {
				t.Fatalf("report resumed = %d, want %d", s.Report.Fault.Resumed, resumed)
			}
			want := denseSeries(t, refSeries, "reference")
			got := denseSeries(t, s, "resumed")
			for w := range want {
				for v := range want[w] {
					if got[w][v] != want[w][v] {
						t.Fatalf("window %d vertex %d: resumed %v != reference %v (must be bit-identical)",
							w, v, got[w][v], want[w][v])
					}
				}
			}
		})
	}
}

// TestCheckpointManifestMismatch verifies a checkpoint taken under a
// different configuration refuses to resume.
func TestCheckpointManifestMismatch(t *testing.T) {
	fault.Reset()
	l := randomLog(t, 97, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	dir := t.TempDir()
	store, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	eng1, err := NewEngine(l, spec, ftCfg(SpMV, AppLevel), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := eng1.SetCheckpoint(store, false); err != nil {
		t.Fatalf("SetCheckpoint: %v", err)
	}
	if _, err := eng1.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Same log, different kernel => manifest mismatch.
	eng2, err := NewEngine(l, spec, ftCfg(SpMM, AppLevel), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	store2, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := eng2.SetCheckpoint(store2, true); err == nil {
		t.Fatal("SetCheckpoint(resume) accepted a mismatched manifest")
	}
}

// TestCheckpointRejectsDiscardRanks verifies the retained-ranks
// requirement is enforced.
func TestCheckpointRejectsDiscardRanks(t *testing.T) {
	fault.Reset()
	l := randomLog(t, 98, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg := ftCfg(SpMV, AppLevel)
	cfg.DiscardRanks = true
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := eng.SetCheckpoint(store, false); err == nil {
		t.Fatal("SetCheckpoint accepted Config.DiscardRanks")
	}
}

// TestChaosAllPointsAllModes is the chaos matrix CI runs under -race:
// every registered injection point, in both error and panic mode, with
// a transient (count-limited) fault, on a pooled nested run. The run
// must either complete (solve-point faults are absorbed; windows may
// quarantine) or fail with a structured error (stage/build points) —
// never crash the process.
func TestChaosAllPointsAllModes(t *testing.T) {
	l := randomLog(t, 99, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	pool := sched.NewPool(4)
	defer pool.Close()
	defer fault.Reset()

	points := []string{
		PointBuild, PointPlan, PointSolveWindow, PointSolveBatch,
		PointSolveDegrade, PointPublish,
	}
	for _, point := range points {
		for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
			for _, kernel := range []KernelID{SpMV, SpMM} {
				label := fmt.Sprintf("%s/%v/%v", point, mode, kernel)
				t.Run(label, func(t *testing.T) {
					fault.Reset()
					cancel := fault.Arm(fault.Rule{Point: point, Mode: mode, Count: 2})
					defer cancel()
					defer fault.Reset()
					eng, err := NewEngine(l, spec, ftCfg(kernel, Nested), pool)
					if err != nil {
						if !isStructuredFault(err) {
							t.Fatalf("NewEngine: unstructured error %v", err)
						}
						return
					}
					s, err := eng.Run(context.Background())
					if err != nil {
						if !isStructuredFault(err) {
							t.Fatalf("Run: unstructured error %v", err)
						}
						return
					}
					if s == nil || s.Len() != spec.Count {
						t.Fatalf("series incomplete: %v", s)
					}
				})
			}
		}
	}
}

// isStructuredFault reports whether err is one of the typed failures
// the fault machinery is allowed to surface: a *StageError (stage
// panic converted), a *WindowError (fail-fast quarantine), or a bare
// *fault.Error (an error-mode injection at a non-recovering seam).
func isStructuredFault(err error) bool {
	var se *StageError
	var we *WindowError
	var fe *fault.Error
	return errors.As(err, &se) || errors.As(err, &we) || errors.As(err, &fe)
}
