package core

import (
	"context"

	"strings"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// TestRunWithValidation is the end-to-end invariant gate: a multi-window
// series computed with Config.Validate on must pass every structural
// check (TCSR layout, window coverage, per-window rank stochasticity)
// for each kernel and parallel mode.
func TestRunWithValidation(t *testing.T) {
	l := randomLog(t, 11, 40, 400, 1000)
	spec := events.WindowSpec{T0: 0, Delta: 200, Slide: 90, Count: 10}
	pool := sched.NewPool(3)
	defer pool.Close()

	for _, directed := range []bool{true, false} {
		log := l
		if !directed {
			log = l.Symmetrize()
		}
		for _, kernel := range []KernelID{SpMV, SpMM, SpMVBlocked} {
			for _, mode := range []ParallelMode{AppLevel, WindowLevel, Nested} {
				cfg := DefaultConfig()
				cfg.Kernel = kernel
				cfg.Mode = mode
				cfg.NumMultiWindows = 3
				cfg.Directed = directed
				cfg.Validate = true
				eng, err := NewEngine(log, spec, cfg, pool)
				if err != nil {
					t.Fatalf("%v/%v directed=%v: NewEngine: %v", kernel, mode, directed, err)
				}
				s, err := eng.Run(context.Background())
				if err != nil {
					t.Fatalf("%v/%v directed=%v: Run: %v", kernel, mode, directed, err)
				}
				if len(s.Results) != spec.Count {
					t.Fatalf("%v/%v: %d results, want %d", kernel, mode, len(s.Results), spec.Count)
				}
			}
		}
	}
}

// TestRunWithValidationDiscardRanks exercises the ordering constraint:
// ranks must be validated before DiscardRanks drops them.
func TestRunWithValidationDiscardRanks(t *testing.T) {
	l := randomLog(t, 12, 30, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 150, Slide: 80, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.NumMultiWindows = 2
		cfg.Directed = true
		cfg.Validate = true
		cfg.DiscardRanks = true
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("%v: NewEngine: %v", kernel, err)
		}
		s, err := eng.Run(context.Background())
		if err != nil {
			t.Fatalf("%v: Run with DiscardRanks: %v", kernel, err)
		}
		if s.Window(0).HasRanks() {
			t.Fatalf("%v: ranks retained despite DiscardRanks", kernel)
		}
	}
}

// TestNewEngineRejectsCorruptTemporal verifies the construction-time
// half of the hook: a representation corrupted after build must be
// rejected by NewEngineFromTemporal when Validate is on, and accepted
// (garbage in, garbage out) when it is off.
func TestNewEngineRejectsCorruptTemporal(t *testing.T) {
	l := randomLog(t, 13, 20, 100, 400)
	spec := events.WindowSpec{T0: 0, Delta: 120, Slide: 70, Count: 5}
	tg, err := tcsr.Build(l, spec, 2, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mw := tg.MWs[0]
	mw.OutRow[1], mw.OutRow[2] = mw.OutRow[2], mw.OutRow[1]

	cfg := DefaultConfig()
	cfg.Directed = true
	if _, err := NewEngineFromTemporal(tg, cfg, nil); err != nil {
		t.Fatalf("Validate off must not reject: %v", err)
	}
	cfg.Validate = true
	_, err = NewEngineFromTemporal(tg, cfg, nil)
	if err == nil {
		t.Fatal("corrupted temporal CSR accepted with Validate on")
	}
	if !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("unexpected rejection: %v", err)
	}
}

// TestConfigCheck covers the renamed parameter checker.
func TestConfigCheck(t *testing.T) {
	if err := DefaultConfig().Check(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := DefaultConfig()
	bad.NumMultiWindows = 0
	if err := bad.Check(); err == nil {
		t.Error("NumMultiWindows=0 accepted")
	}
	bad = DefaultConfig()
	bad.Kernel = KernelID(99)
	if err := bad.Check(); err == nil {
		t.Error("unknown kernel accepted")
	}
}
