package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/fault"
	"pmpr/internal/obs"
)

// journalCfg attaches a fresh journal to an equivalence config.
func journalCfg(kernel KernelID, mode ParallelMode) (Config, *obs.Journal) {
	cfg := equivCfg(kernel, mode, true)
	j := obs.NewJournal(4096)
	cfg.Journal = j
	return cfg, j
}

// eventsByType indexes a journal drain per event type, preserving order.
func eventsByType(evs []obs.Event) map[obs.EventType][]obs.Event {
	out := map[obs.EventType][]obs.Event{}
	for _, e := range evs {
		out[e.Type] = append(out[e.Type], e)
	}
	return out
}

// TestRunEmitsOrderedJournal runs a full engine with a journal attached
// and checks the event stream's shape: contiguous sequence numbers, the
// documented lifecycle order (stages, run_start before windows, run_end
// last), and one window_start/window_done pair per window.
func TestRunEmitsOrderedJournal(t *testing.T) {
	fault.Reset()
	l := randomLog(t, 101, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMM} {
		t.Run(kernel.String(), func(t *testing.T) {
			cfg, j := journalCfg(kernel, AppLevel)
			eng, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if _, err := eng.Run(context.Background()); err != nil {
				t.Fatalf("Run: %v", err)
			}
			evs, complete := j.Since(0)
			if !complete {
				t.Fatal("journal evicted events; ring sized too small for the run")
			}
			for i, e := range evs {
				if e.Seq != uint64(i+1) {
					t.Fatalf("event %d has seq %d; want contiguous from 1", i, e.Seq)
				}
				if e.TimeUnixNano == 0 {
					t.Fatalf("event %d has no timestamp", i)
				}
			}
			byType := eventsByType(evs)

			// NewEngine ran build and plan; Run ran solve and publish.
			stages := map[string]bool{}
			for _, e := range byType[obs.EvStageEnd] {
				if e.Err != "" {
					t.Fatalf("stage %s ended with error %q", e.Stage, e.Err)
				}
				stages[e.Stage] = true
			}
			for _, want := range []string{"build", "plan", "solve", "publish"} {
				if !stages[want] {
					t.Fatalf("no stage_end for %q (have %v)", want, stages)
				}
			}
			if len(byType[obs.EvStageStart]) != len(byType[obs.EvStageEnd]) {
				t.Fatalf("%d stage_start vs %d stage_end events",
					len(byType[obs.EvStageStart]), len(byType[obs.EvStageEnd]))
			}

			windows := spec.Count
			if got := len(byType[obs.EvWindowStart]); got != windows {
				t.Fatalf("window_start count = %d, want %d", got, windows)
			}
			if got := len(byType[obs.EvWindowDone]); got != windows {
				t.Fatalf("window_done count = %d, want %d", got, windows)
			}
			seen := map[int]bool{}
			for _, e := range byType[obs.EvWindowDone] {
				if seen[e.Window] {
					t.Fatalf("window %d decided twice", e.Window)
				}
				seen[e.Window] = true
				if e.Status != WindowOK.String() {
					t.Fatalf("window %d status %q, want %q", e.Window, e.Status, WindowOK)
				}
				// Empty windows legitimately decide in 0 iterations.
				if e.Iterations < 0 || e.Seconds < 0 {
					t.Fatalf("window %d: iterations=%d seconds=%g", e.Window, e.Iterations, e.Seconds)
				}
			}

			starts := byType[obs.EvRunStart]
			if len(starts) != 1 {
				t.Fatalf("run_start count = %d", len(starts))
			}
			rs := starts[0]
			if rs.Windows != windows || rs.Kernel != kernel.String() {
				t.Fatalf("run_start = %+v", rs)
			}
			ends := byType[obs.EvRunEnd]
			if len(ends) != 1 {
				t.Fatalf("run_end count = %d", len(ends))
			}
			re := ends[0]
			if re.Status != "completed" || re.Done != windows || re.Windows != windows {
				t.Fatalf("run_end = %+v", re)
			}
			if evs[len(evs)-1].Type != obs.EvRunEnd {
				t.Fatalf("last event is %s, want run_end", evs[len(evs)-1].Type)
			}
			// Every window event happens between run_start and run_end.
			for _, e := range append(byType[obs.EvWindowStart], byType[obs.EvWindowDone]...) {
				if e.Seq < rs.Seq || e.Seq > re.Seq {
					t.Fatalf("window event seq %d outside run bounds [%d,%d]", e.Seq, rs.Seq, re.Seq)
				}
			}
		})
	}
}

// TestJournalRecordsRetries verifies a transient injected fault leaves
// a retry event carrying the failing window and the attempt number.
func TestJournalRecordsRetries(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 102, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg, j := journalCfg(SpMV, AppLevel)
	cfg.Fault = FaultPolicy{MaxRetries: 2}
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cancel := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeError, After: 2, Count: 1})
	defer cancel()
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.AllOK() {
		t.Fatalf("transient fault quarantined windows %v", s.Quarantined())
	}
	evs, _ := j.Since(0)
	byType := eventsByType(evs)
	retries := byType[obs.EvRetry]
	if len(retries) == 0 {
		t.Fatal("no retry event recorded")
	}
	if r := retries[0]; r.Attempt < 1 || r.Err == "" || r.Window < 0 {
		t.Fatalf("retry event = %+v", r)
	}
	// The retried window still decides exactly once.
	if got := len(byType[obs.EvWindowDone]); got != spec.Count {
		t.Fatalf("window_done count = %d, want %d", got, spec.Count)
	}
}

// TestJournalRecordsDegrade verifies a persistent primary-kernel fault
// with a healthy serial fallback leaves one degrade event per degraded
// window.
func TestJournalRecordsDegrade(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 106, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg, j := journalCfg(SpMV, AppLevel)
	cfg.Fault = FaultPolicy{MaxRetries: 1}
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cancel := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeError, Count: 0})
	defer cancel()
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	degraded := 0
	for w := 0; w < s.Len(); w++ {
		if s.Window(w).Status == WindowDegraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no window degraded; injection exercised nothing")
	}
	evs, _ := j.Since(0)
	byType := eventsByType(evs)
	if got := len(byType[obs.EvDegrade]); got != degraded {
		t.Fatalf("%d degrade events for %d degraded windows", got, degraded)
	}
	if len(byType[obs.EvRetry]) == 0 {
		t.Fatal("no retry events before degrading")
	}
}

// TestJournalRecordsQuarantine verifies a persistent fault (primary and
// degraded paths both failing) produces quarantine events — degrade
// events are absent because the fallback never succeeds — and the
// run_end still reports completion.
func TestJournalRecordsQuarantine(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 103, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg, j := journalCfg(SpMV, AppLevel)
	cfg.Fault = FaultPolicy{MaxRetries: 1}
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	c1 := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeError, Count: 0})
	defer c1()
	c2 := fault.Arm(fault.Rule{Point: PointSolveDegrade, Mode: fault.ModeError, Count: 0})
	defer c2()
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(s.Quarantined()) == 0 {
		t.Fatal("no windows quarantined; injection exercised nothing")
	}
	evs, _ := j.Since(0)
	byType := eventsByType(evs)
	q := byType[obs.EvQuarantine]
	if len(q) != len(s.Quarantined()) {
		t.Fatalf("%d quarantine events for %d quarantined windows", len(q), len(s.Quarantined()))
	}
	if q[0].Err == "" || q[0].Attempt < 1 {
		t.Fatalf("quarantine event = %+v", q[0])
	}
	if ends := byType[obs.EvRunEnd]; len(ends) != 1 || ends[0].Status != "completed" {
		t.Fatalf("run_end = %+v", ends)
	}
}

// TestJournalRecordsCancel cancels mid-run — the journal's own event
// stream is the trigger: the context is canceled when the first
// window_done arrives, while a delay fault keeps the remaining windows
// pending — and verifies a cancel event plus a run_end with status
// "canceled" land in the journal.
func TestJournalRecordsCancel(t *testing.T) {
	defer fault.Reset()
	fault.Reset()
	l := randomLog(t, 104, 20, 200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 5}
	cfg, j := journalCfg(SpMV, AppLevel)
	eng, err := NewEngine(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	slow := fault.Arm(fault.Rule{Point: PointSolveWindow, Mode: fault.ModeDelay, Delay: 20 * time.Millisecond, Count: 0})
	defer slow()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub := j.Subscribe(64)
	defer sub.Close()
	go func() {
		for e := range sub.C() {
			if e.Type == obs.EvWindowDone {
				cancel()
				return
			}
		}
	}()
	if _, err := eng.Run(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run: %v, want ErrCanceled", err)
	}
	evs, _ := j.Since(0)
	byType := eventsByType(evs)
	if len(byType[obs.EvCancel]) == 0 {
		t.Fatal("no cancel event recorded")
	}
	ends := byType[obs.EvRunEnd]
	if len(ends) != 1 || ends[0].Status != "canceled" {
		t.Fatalf("run_end = %+v, want status canceled", ends)
	}
	if done := len(byType[obs.EvWindowDone]); done == 0 || done >= spec.Count {
		t.Fatalf("window_done count = %d, want partial progress (0 < n < %d)", done, spec.Count)
	}
}

// TestJournalAttachedSteadyStateDoesNotAllocate is the journal's
// counterpart of TestSteadyStateIterationsDoNotAllocate: with a journal
// attached, 100 extra steady-state iterations must still allocate
// nothing (events fire at window boundaries only, and Append itself is
// allocation-free: a ring-slot copy plus non-blocking sends).
func TestJournalAttachedSteadyStateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	fault.Reset()
	l := randomLog(t, 105, 25, 250, 700)
	spec := events.WindowSpec{T0: 0, Delta: 160, Slide: 90, Count: 6}
	for _, kernel := range []KernelID{SpMV, SpMVBlocked, SpMM} {
		measure := func(maxIter int) float64 {
			cfg := equivCfg(kernel, AppLevel, true)
			cfg.DiscardRanks = true
			cfg.Opts.Tol = 1e-300 // never converge early; iterate MaxIter times
			cfg.Opts.MaxIter = maxIter
			cfg.Journal = obs.NewJournal(256)
			eng, err := NewEngine(l, spec, cfg, nil)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			if _, err := eng.Run(context.Background()); err != nil { // warm the arena
				t.Fatalf("warm-up Run: %v", err)
			}
			return testing.AllocsPerRun(3, func() {
				if _, err := eng.Run(context.Background()); err != nil {
					t.Fatalf("Run: %v", err)
				}
			})
		}
		short := measure(1)
		long := measure(101)
		if long != short {
			t.Errorf("%v: with journal, 100 extra iterations allocated %.1f objects (run allocs %.1f -> %.1f)",
				kernel, long-short, short, long)
		}
	}
}
