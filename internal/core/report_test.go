package core

import (
	"context"

	"bytes"
	"encoding/json"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/obs"
	"pmpr/internal/sched"
)

// reportFixture runs the engine on an overlap-heavy log where every
// window is nonempty, so warm-start behavior is deterministic.
func reportFixture(t *testing.T, cfg Config, pool *sched.Pool) (*Series, events.WindowSpec, *Engine) {
	t.Helper()
	l := randomLog(t, 31, 25, 600, 3000)
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	eng, err := NewEngine(l, spec, cfg, pool)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s, spec, eng
}

func TestRunReportSerialSpMVWarmStartIsPerfect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.NumMultiWindows = 3
	cfg.Directed = true
	s, spec, _ := reportFixture(t, cfg, nil)

	rep := s.Report
	if rep == nil {
		t.Fatal("Run produced no report")
	}
	// A serial run chains partial initialization through every window of
	// each multi-window graph: the hit rate must be exactly 1.
	if want := spec.Count - cfg.NumMultiWindows; rep.WarmStart.Eligible != want {
		t.Fatalf("eligible = %d, want %d", rep.WarmStart.Eligible, want)
	}
	if rep.WarmStart.Hits != rep.WarmStart.Eligible || rep.WarmStart.HitRate != 1.0 {
		t.Fatalf("serial warm-start rate = %v (%d/%d), want 1.0",
			rep.WarmStart.HitRate, rep.WarmStart.Hits, rep.WarmStart.Eligible)
	}
	if rep.TotalIterations != s.TotalIterations() {
		t.Fatalf("report iterations %d != series %d", rep.TotalIterations, s.TotalIterations())
	}
	if rep.Windows != spec.Count || rep.Workers != 0 {
		t.Fatalf("windows=%d workers=%d, want %d/0", rep.Windows, rep.Workers, spec.Count)
	}
	if solve, ok := rep.PhaseSeconds("solve"); !ok || solve <= 0 {
		t.Fatalf("missing solve phase: %v %v", solve, ok)
	}
	if _, ok := rep.PhaseSeconds("tcsr_build"); !ok {
		t.Fatal("missing tcsr_build phase")
	}
	// SpMV sweeps the CSR once per window iteration.
	if len(rep.MWSweeps) != cfg.NumMultiWindows {
		t.Fatalf("MWSweeps len = %d, want %d", len(rep.MWSweeps), cfg.NumMultiWindows)
	}
	if rep.TotalSweeps != int64(rep.TotalIterations) {
		t.Fatalf("spmv sweeps %d != iterations %d", rep.TotalSweeps, rep.TotalIterations)
	}
	if s.AllConverged() {
		if rep.Residuals.Unconverged != 0 || rep.Residuals.Max >= cfg.Opts.Tol {
			t.Fatalf("residual summary inconsistent with convergence: %+v", rep.Residuals)
		}
	}
	for w, wid := range rep.WindowWorkers {
		if wid != -1 {
			t.Fatalf("serial run attributed window %d to worker %d", w, wid)
		}
	}
	if rep.Sched != nil {
		t.Fatal("serial run must not carry scheduler stats")
	}
	if rep.Build.GoVersion == "" || rep.Config.Kernel != "spmv" {
		t.Fatalf("missing build/config stamp: %+v %+v", rep.Build, rep.Config)
	}
}

func TestRunReportSerialSpMMWarmStart(t *testing.T) {
	// VectorLen 1 degenerates SpMM to a serial chain: hit rate 1.
	cfg := DefaultConfig()
	cfg.Kernel = SpMM
	cfg.VectorLen = 1
	cfg.NumMultiWindows = 3
	cfg.Directed = true
	s, _, _ := reportFixture(t, cfg, nil)
	if s.Report.WarmStart.HitRate != 1.0 {
		t.Fatalf("spmm K=1 serial hit rate = %v, want 1.0", s.Report.WarmStart.HitRate)
	}
	if s.Report.TotalSweeps <= 0 || s.Report.TotalSweeps > int64(s.Report.TotalIterations) {
		t.Fatalf("sweeps %d outside (0, iterations=%d]", s.Report.TotalSweeps, s.Report.TotalIterations)
	}

	// With K regions per multi-window graph, the K-1 region-first
	// windows (beyond the graph's own first window) cannot warm-start:
	// hits = sum over graphs of W - min(K, W).
	cfg.VectorLen = 4
	s, _, eng := reportFixture(t, cfg, nil)
	wantHits := 0
	for _, mw := range eng.Temporal().MWs {
		k := cfg.VectorLen
		if w := mw.NumWindows(); w > 0 {
			if k > w {
				k = w
			}
			wantHits += w - k
		}
	}
	if s.Report.WarmStart.Hits != wantHits {
		t.Fatalf("spmm K=4 hits = %d, want %d", s.Report.WarmStart.Hits, wantHits)
	}
}

func TestRunReportSchedStatsDelta(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	pool.EnableMetrics(true)
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.Mode = WindowLevel
	cfg.NumMultiWindows = 3
	cfg.Directed = true

	s1, _, eng := reportFixture(t, cfg, pool)
	if s1.Report.Sched == nil {
		t.Fatal("no scheduler stats despite metrics enabled")
	}
	if s1.Report.Sched.TotalTasks <= 0 {
		t.Fatalf("no tasks recorded: %+v", s1.Report.Sched)
	}
	if len(s1.Report.Sched.Workers) != 4 || s1.Report.Workers != 4 {
		t.Fatalf("worker counts wrong: %d/%d", len(s1.Report.Sched.Workers), s1.Report.Workers)
	}
	// The report carries the delta for this run, not the pool lifetime:
	// a second run must not report accumulated counters.
	s2, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	total := pool.Stats().TotalTasks()
	if s2.Report.Sched.TotalTasks <= 0 || s2.Report.Sched.TotalTasks >= total {
		t.Fatalf("second run delta %d not in (0, pool total %d)",
			s2.Report.Sched.TotalTasks, total)
	}
	// Window-level runs attribute every window to a real worker.
	for w, wid := range s2.Report.WindowWorkers {
		if wid < 0 || wid >= 4 {
			t.Fatalf("window %d attributed to worker %d", w, wid)
		}
	}
}

func TestRunReportJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.NumMultiWindows = 2
	cfg.Directed = true
	s, _, _ := reportFixture(t, cfg, nil)
	var buf bytes.Buffer
	if err := s.Report.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Windows != s.Report.Windows || back.Config.Kernel != "spmv" ||
		back.WarmStart.HitRate != s.Report.WarmStart.HitRate {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}

func TestEngineTraceRecordsWindowSpans(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.Mode = Nested
	cfg.NumMultiWindows = 2
	cfg.Directed = true

	l := randomLog(t, 31, 25, 600, 3000)
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	eng, err := NewEngine(l, spec, cfg, pool)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	tr := obs.NewTrace()
	eng.SetTrace(tr)
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	var obj struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	windows, phases := 0, 0
	for _, e := range obj.TraceEvents {
		switch e.Cat {
		case "window":
			windows++
			if e.TID < 1 || e.TID > 2 {
				t.Fatalf("window span on tid %d, want pool worker tids", e.TID)
			}
		case "phase":
			phases++
		}
	}
	if windows != spec.Count {
		t.Fatalf("trace has %d window spans, want %d", windows, spec.Count)
	}
	if phases == 0 {
		t.Fatal("no phase spans in trace")
	}

	// SpMM traces batch spans instead.
	cfgM := DefaultConfig()
	cfgM.NumMultiWindows = 2
	cfgM.VectorLen = 4
	cfgM.Directed = true
	engM, err := NewEngine(l, spec, cfgM, pool)
	if err != nil {
		t.Fatalf("NewEngine spmm: %v", err)
	}
	trM := obs.NewTrace()
	engM.SetTrace(trM)
	if _, err := engM.Run(context.Background()); err != nil {
		t.Fatalf("Run spmm: %v", err)
	}
	buf.Reset()
	if err := trM.Write(&buf); err != nil {
		t.Fatalf("trace write: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	batches := 0
	for _, e := range obj.TraceEvents {
		if e.Cat == "batch" {
			batches++
		}
	}
	if batches == 0 {
		t.Fatal("spmm trace has no batch spans")
	}
}

func TestRankOK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kernel = SpMV
	cfg.NumMultiWindows = 2
	cfg.Directed = true
	s, _, _ := reportFixture(t, cfg, nil)
	r := s.Window(0)
	var probed int32 = -1
	r.ForEach(func(g int32, rank float64) {
		if probed < 0 {
			probed = g
		}
	})
	if probed < 0 {
		t.Fatal("window 0 has no ranked vertices")
	}
	got, ok := r.RankOK(probed)
	if !ok || got != r.Rank(probed) {
		t.Fatalf("RankOK(%d) = (%v, %v), Rank = %v", probed, got, ok, r.Rank(probed))
	}

	cfg.DiscardRanks = true
	s, _, _ = reportFixture(t, cfg, nil)
	if _, ok := s.Window(0).RankOK(probed); ok {
		t.Fatal("RankOK reported ok on discarded ranks")
	}
}
