package core

import (
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel a canceled solve wraps: callers match it
// with errors.Is regardless of whether the cancellation came from a
// deadline, an explicit cancel, or a signal-driven shutdown.
var ErrCanceled = errors.New("core: run canceled")

// ErrConcurrentRun is returned when Engine.Run is entered while another
// Run on the same engine is still in flight. The engine's scratch arena
// and trace writer are single-run state; sequential re-runs are
// supported, overlapping ones are a caller bug.
var ErrConcurrentRun = errors.New("core: Engine.Run called concurrently on the same engine")

// CanceledError reports a solve cut short by context cancellation. It
// carries how far the run got so callers (pmrank's SIGINT handler, a
// serving layer's request teardown) can surface partial progress.
// errors.Is matches both ErrCanceled and the context's own error
// (context.Canceled or context.DeadlineExceeded) through Cause.
type CanceledError struct {
	// Completed is the number of windows fully solved before the cancel
	// took effect.
	Completed int
	// Total is the number of windows the run was asked to solve.
	Total int
	// Cause is the context's error at the time the cancel was observed.
	Cause error
}

// Error renders the cancellation with its partial progress.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled after %d/%d windows: %v", e.Completed, e.Total, e.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the underlying
// context error to errors.Is / errors.As.
func (e *CanceledError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrCanceled}
	}
	return []error{ErrCanceled, e.Cause}
}
