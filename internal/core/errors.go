package core

import (
	"errors"
	"fmt"
)

// RecoveredPanic wraps a panic value caught by the solve stage's
// per-window isolation (or a sched.PanicError propagated from a nested
// vertex loop) so it can travel as an ordinary error through the
// retry/degrade/quarantine machinery.
type RecoveredPanic struct {
	// Value is the original panic value.
	Value any
}

// Error renders the recovered panic.
func (e *RecoveredPanic) Error() string { return fmt.Sprintf("core: recovered panic: %v", e.Value) }

// Unwrap exposes an underlying error panic value to errors.Is/As.
func (e *RecoveredPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// recoveredError converts a recover() value into an error.
func recoveredError(rec any) error { return &RecoveredPanic{Value: rec} }

// WindowError reports one window's solve failing terminally: every
// retry (and, unless disabled, the serial-SpMV degrade attempt) failed.
// The window is quarantined — its WindowResult carries WindowFailed and
// this error — and, under Config.Fault.FailFast, the run aborts with
// the first WindowError instead.
type WindowError struct {
	// Window is the global index of the failed window.
	Window int
	// Attempts is how many solve attempts were made (including the
	// degrade attempt when one ran).
	Attempts int
	// Panicked reports whether any attempt failed by panic (as opposed
	// to a returned error).
	Panicked bool
	// Err is the terminal attempt's failure.
	Err error
}

// Error renders the quarantine with its cause.
func (e *WindowError) Error() string {
	return fmt.Sprintf("core: window %d failed after %d attempts: %v", e.Window, e.Attempts, e.Err)
}

// Unwrap exposes the terminal cause to errors.Is/As.
func (e *WindowError) Unwrap() error { return e.Err }

// StageError reports a pipeline stage (build, plan, publish) failing by
// panic: the stage's recover converts the crash into a structured error
// so a corrupt input segment or a stage bug fails the one run, not the
// process.
type StageError struct {
	// Stage names the pipeline stage ("build", "plan", "publish").
	Stage string
	// Err is the recovered cause (usually a *RecoveredPanic).
	Err error
}

// Error renders the stage failure.
func (e *StageError) Error() string { return fmt.Sprintf("core: %s stage: %v", e.Stage, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// recoverStage converts a stage panic into a *StageError on the named
// return. Use as: defer recoverStage("build", &err).
func recoverStage(stage string, err *error) {
	if rec := recover(); rec != nil {
		*err = &StageError{Stage: stage, Err: recoveredError(rec)}
	}
}

// ErrCanceled is the sentinel a canceled solve wraps: callers match it
// with errors.Is regardless of whether the cancellation came from a
// deadline, an explicit cancel, or a signal-driven shutdown.
var ErrCanceled = errors.New("core: run canceled")

// ErrConcurrentRun is returned when Engine.Run is entered while another
// Run on the same engine is still in flight. The engine's scratch arena
// and trace writer are single-run state; sequential re-runs are
// supported, overlapping ones are a caller bug.
var ErrConcurrentRun = errors.New("core: Engine.Run called concurrently on the same engine")

// CanceledError reports a solve cut short by context cancellation. It
// carries how far the run got so callers (pmrank's SIGINT handler, a
// serving layer's request teardown) can surface partial progress.
// errors.Is matches both ErrCanceled and the context's own error
// (context.Canceled or context.DeadlineExceeded) through Cause.
type CanceledError struct {
	// Completed is the number of windows fully solved before the cancel
	// took effect.
	Completed int
	// Total is the number of windows the run was asked to solve.
	Total int
	// Cause is the context's error at the time the cancel was observed.
	Cause error
	// Checkpoint is the checkpoint directory holding the completed
	// windows, when the run had checkpointing enabled ("" otherwise).
	// Every window counted in Completed was flushed to it before the
	// count moved (barring checkpoint write errors, which are counted in
	// the fault metrics), so a resumed run re-solves only the remainder.
	Checkpoint string
}

// Error renders the cancellation with its partial progress.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("core: run canceled after %d/%d windows: %v", e.Completed, e.Total, e.Cause)
}

// Unwrap exposes both the ErrCanceled sentinel and the underlying
// context error to errors.Is / errors.As.
func (e *CanceledError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrCanceled}
	}
	return []error{ErrCanceled, e.Cause}
}
