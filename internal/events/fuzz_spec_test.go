package events_test

import (
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/invariant"
)

// FuzzWindowSpec asserts the sliding-window arithmetic invariants for
// arbitrary parameters: Start/End/Interval agreement, the Covering
// closed form, and its boundary behavior at a fuzzed probe timestamp.
// The test package is external because internal/invariant imports
// events.
func FuzzWindowSpec(f *testing.F) {
	f.Add(int64(0), int64(6), int64(4), 4, int64(7))
	f.Add(int64(-100), int64(0), int64(1), 50, int64(-100))
	f.Add(int64(10), int64(3), int64(9), 12, int64(55))
	f.Fuzz(func(t *testing.T, t0, delta, slide int64, count int, probe int64) {
		spec := events.WindowSpec{T0: t0, Delta: delta, Slide: slide, Count: count}
		if spec.Validate() != nil {
			// Invalid parameters must also be rejected by the checker.
			if err := invariant.CheckWindowSpec(spec); err == nil {
				t.Fatal("checker accepted a spec Validate rejects")
			}
			return
		}
		// Bound the arithmetic so Start/End cannot overflow int64.
		if count > 1<<16 || delta > 1<<30 || slide > 1<<30 || t0 > 1<<40 || t0 < -(1<<40) {
			return
		}
		if probe > 1<<50 || probe < -(1<<50) {
			probe %= 1 << 50
		}
		if err := invariant.CheckWindowSpec(spec); err != nil {
			t.Fatalf("window arithmetic invariants violated: %v", err)
		}
		for _, probeT := range []int64{probe, t0 - 1, t0, spec.SpanEnd(), spec.SpanEnd() + 1} {
			if err := invariant.CheckCoveringAt(spec, probeT); err != nil {
				t.Fatalf("Covering(%d) invariants violated: %v", probeT, err)
			}
		}
	})
}
