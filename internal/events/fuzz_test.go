package events

import (
	"bytes"
	"testing"
)

// FuzzReadText asserts the text parser never panics and that anything
// it accepts round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("1 2 3\n4 5 6\n")
	f.Add("# comment\n\n7\t8\t-9\n")
	f.Add("a b c")
	f.Add("1 2 99999999999999999999")
	f.Fuzz(func(t *testing.T, in string) {
		l, err := ReadText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, l); err != nil {
			t.Fatalf("WriteText after successful parse: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output: %v", err)
		}
		if back.Len() != l.Len() {
			t.Fatalf("round trip changed length %d -> %d", l.Len(), back.Len())
		}
	})
}

// FuzzReadBinary asserts the binary decoder never panics on corrupt
// input and round-trips what it accepts.
func FuzzReadBinary(f *testing.F) {
	l, _ := NewLog([]Event{{U: 0, V: 1, T: 7}, {U: 2, V: 3, T: 9}}, 4)
	var buf bytes.Buffer
	_ = WriteBinary(&buf, l)
	f.Add(buf.Bytes())
	f.Add([]byte("PMEV"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		got, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("WriteBinary after successful parse: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil || back.Len() != got.Len() {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
