package events_test

import (
	"fmt"
	"log"

	"pmpr/internal/events"
)

// ExampleWindowSpec shows the sliding-window arithmetic: the windows a
// timestamp belongs to, per the closed form the SpMM kernel uses.
func ExampleWindowSpec() {
	w := events.WindowSpec{T0: 0, Delta: 10, Slide: 4, Count: 5}
	for _, t := range []int64{0, 7, 13} {
		lo, hi, ok := w.Covering(t)
		fmt.Printf("t=%d in windows [%d, %d] (ok=%v)\n", t, lo, hi, ok)
	}
	// Output:
	// t=0 in windows [0, 0] (ok=true)
	// t=7 in windows [0, 1] (ok=true)
	// t=13 in windows [1, 3] (ok=true)
}

// ExampleSpan derives a window sequence covering a dataset.
func ExampleSpan() {
	l, err := events.NewLog([]events.Event{
		{U: 0, V: 1, T: 100},
		{U: 1, V: 2, T: 160},
		{U: 2, V: 0, T: 219},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := events.Span(l, 50, 25) // delta=50, sw=25
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d windows starting at t=%d\n", spec.Count, spec.T0)
	fmt.Printf("window 2 covers [%d, %d] with %d events\n",
		spec.Start(2), spec.End(2), len(l.Slice(spec.Start(2), spec.End(2))))
	// Output:
	// 5 windows starting at t=100
	// window 2 covers [150, 200] with 1 events
}
