package events

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWindowSpecValidate(t *testing.T) {
	good := WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []WindowSpec{
		{Delta: -1, Slide: 1, Count: 1},
		{Delta: 1, Slide: 0, Count: 1},
		{Delta: 1, Slide: -3, Count: 1},
		{Delta: 1, Slide: 1, Count: 0},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, w)
		}
	}
}

func TestWindowIntervals(t *testing.T) {
	w := WindowSpec{T0: 100, Delta: 30, Slide: 10, Count: 4}
	wantStarts := []int64{100, 110, 120, 130}
	for i, s := range wantStarts {
		if got := w.Start(i); got != s {
			t.Errorf("Start(%d) = %d, want %d", i, got, s)
		}
		if got := w.End(i); got != s+30 {
			t.Errorf("End(%d) = %d, want %d", i, got, s+30)
		}
	}
	if got := w.SpanEnd(); got != 160 {
		t.Fatalf("SpanEnd = %d, want 160", got)
	}
}

func TestContains(t *testing.T) {
	w := WindowSpec{T0: 0, Delta: 10, Slide: 4, Count: 5}
	if !w.Contains(0, 0) || !w.Contains(0, 10) {
		t.Fatal("window bounds should be inclusive")
	}
	if w.Contains(0, 11) || w.Contains(1, 3) {
		t.Fatal("Contains accepted out-of-window timestamps")
	}
}

func TestCoveringMatchesContains(t *testing.T) {
	specs := []WindowSpec{
		{T0: 0, Delta: 10, Slide: 4, Count: 8},   // overlapping windows
		{T0: 50, Delta: 3, Slide: 7, Count: 6},   // gaps (slide > delta)
		{T0: -20, Delta: 5, Slide: 5, Count: 4},  // negative origin, tiling
		{T0: 0, Delta: 0, Slide: 1, Count: 10},   // instantaneous windows
		{T0: 7, Delta: 100, Slide: 1, Count: 30}, // heavily overlapping
	}
	for _, w := range specs {
		for t64 := w.T0 - 15; t64 <= w.SpanEnd()+15; t64++ {
			lo, hi, ok := w.Covering(t64)
			// Oracle: linear scan over windows.
			oLo, oHi := -1, -1
			for i := 0; i < w.Count; i++ {
				if w.Contains(i, t64) {
					if oLo < 0 {
						oLo = i
					}
					oHi = i
				}
			}
			if (oLo >= 0) != ok {
				t.Fatalf("%v Covering(%d): ok=%v, oracle found=%v", w, t64, ok, oLo >= 0)
			}
			if ok && (lo != oLo || hi != oHi) {
				t.Fatalf("%v Covering(%d) = [%d,%d], oracle [%d,%d]", w, t64, lo, hi, oLo, oHi)
			}
			// Covering ranges are contiguous for a fixed t: verify no
			// window strictly inside [lo,hi] misses t.
			if ok {
				for i := lo; i <= hi; i++ {
					if !w.Contains(i, t64) {
						t.Fatalf("%v Covering(%d) includes window %d which does not contain t", w, t64, i)
					}
				}
			}
		}
	}
}

func TestCoveringQuick(t *testing.T) {
	f := func(t0 int16, deltaRaw, slideRaw uint8, countRaw uint8, off int16) bool {
		w := WindowSpec{
			T0:    int64(t0),
			Delta: int64(deltaRaw % 50),
			Slide: int64(slideRaw%20) + 1,
			Count: int(countRaw%40) + 1,
		}
		tt := w.T0 + int64(off)
		lo, hi, ok := w.Covering(tt)
		any := false
		for i := 0; i < w.Count; i++ {
			if w.Contains(i, tt) {
				if !ok || i < lo || i > hi {
					return false
				}
				any = true
			} else if ok && i >= lo && i <= hi {
				return false
			}
		}
		return any == ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSub(t *testing.T) {
	w := WindowSpec{T0: 100, Delta: 30, Slide: 10, Count: 20}
	s := w.Sub(5, 12)
	if s.Count != 7 {
		t.Fatalf("Sub count = %d, want 7", s.Count)
	}
	for i := 0; i < s.Count; i++ {
		if s.Start(i) != w.Start(5+i) || s.End(i) != w.End(5+i) {
			t.Fatalf("Sub window %d = [%d,%d], want [%d,%d]",
				i, s.Start(i), s.End(i), w.Start(5+i), w.End(5+i))
		}
	}
}

func TestSpan(t *testing.T) {
	l := mustLog(t, []Event{
		{U: 0, V: 1, T: 100},
		{U: 1, V: 2, T: 150},
		{U: 2, V: 3, T: 199},
	}, 0)
	w, err := Span(l, 30, 10)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	if w.T0 != 100 {
		t.Fatalf("T0 = %d, want 100", w.T0)
	}
	// Last window must start at or before the last event (199):
	// starts 100,110,...,190 -> 10 windows.
	if w.Count != 10 {
		t.Fatalf("Count = %d, want 10", w.Count)
	}
	if _, err := Span(mustLog(t, nil, 0), 30, 10); err == nil {
		t.Fatal("Span accepted an empty log")
	}
	if _, err := Span(l, 30, 0); err == nil {
		t.Fatal("Span accepted slide=0")
	}
}

func TestSpanCoversAllEventsWhenTiling(t *testing.T) {
	// With slide <= delta every event of the log lies in some window.
	rng := rand.New(rand.NewSource(7))
	evs := make([]Event, 300)
	tcur := int64(1000)
	for i := range evs {
		tcur += int64(rng.Intn(20))
		evs[i] = Event{U: int32(rng.Intn(30)), V: int32(rng.Intn(30)), T: tcur}
	}
	l := mustLog(t, evs, 0)
	w, err := Span(l, 50, 25)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	for _, e := range evs {
		if _, _, ok := w.Covering(e.T); !ok {
			t.Fatalf("event at t=%d not covered by %v", e.T, w)
		}
	}
}

func TestSpanCount(t *testing.T) {
	l := mustLog(t, []Event{{U: 0, V: 1, T: 100}}, 0)
	w, err := SpanCount(l, 10, 5, 64)
	if err != nil {
		t.Fatalf("SpanCount: %v", err)
	}
	if w.Count != 64 || w.T0 != 100 {
		t.Fatalf("got %+v", w)
	}
}

func TestFloorCeilDiv(t *testing.T) {
	cases := []struct {
		a, b, floor, ceil int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 5, 0, 1},
		{-1, 5, -1, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.floor {
			t.Errorf("floorDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.floor)
		}
		if got := ceilDiv(c.a, c.b); got != c.ceil {
			t.Errorf("ceilDiv(%d, %d) = %d, want %d", c.a, c.b, got, c.ceil)
		}
	}
}

func TestWindowSpecString(t *testing.T) {
	w := WindowSpec{T0: 5, Delta: 10, Slide: 3, Count: 4}
	if s := w.String(); s != "windows{t0=5 delta=10 sw=3 count=4}" {
		t.Fatalf("String = %q", s)
	}
}

func TestIntervalConsistencyQuick(t *testing.T) {
	f := func(t0 int32, d, sl uint16, c uint8) bool {
		w := WindowSpec{
			T0:    int64(t0),
			Delta: int64(d),
			Slide: int64(sl%500) + 1,
			Count: int(c%50) + 1,
		}
		for i := 0; i < w.Count; i++ {
			ts, te := w.Interval(i)
			if te-ts != w.Delta {
				return false
			}
			if i > 0 && ts-w.Start(i-1) != w.Slide {
				return false
			}
		}
		return w.SpanEnd() == w.End(w.Count-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
