package events

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pmpr/internal/fault"
)

// Text format: one event per line, "u v t" separated by whitespace or
// tabs (the layout of SNAP temporal edge lists). Lines that are empty or
// start with '#' or '%' are skipped.
//
// Binary format: little-endian; header magic "PMEV", version uint32,
// numVertices int32 (with 4 bytes padding), count uint64, then count
// records of (u int32, v int32, t int64).

const (
	binaryMagic   = "PMEV"
	binaryVersion = 1
)

// Fault-injection points covering event-log IO (see internal/fault).
const (
	// PointReadText fires at the top of ReadText.
	PointReadText = "events.read_text"
	// PointReadBinary fires at the top of ReadBinary.
	PointReadBinary = "events.read_binary"
)

func init() {
	fault.RegisterPoint(PointReadText, "text event-log parse entry")
	fault.RegisterPoint(PointReadBinary, "binary event-log parse entry")
}

// WriteText writes the log in text form.
func WriteText(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pmpr temporal edge list: %d vertices, %d events\n", l.NumVertices(), l.Len())
	for _, e := range l.Events() {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", e.U, e.V, e.T); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a text event list. The result is sorted by timestamp
// if the input is not already sorted.
func ReadText(r io.Reader) (*Log, error) {
	if err := fault.Inject(PointReadText); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var evs []Event
	sorted := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("events: line %d: want 3 fields \"u v t\", got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: bad source id: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: bad target id: %v", lineNo, err)
		}
		t, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: bad timestamp: %v", lineNo, err)
		}
		if len(evs) > 0 && t < evs[len(evs)-1].T {
			sorted = false
		}
		evs = append(evs, Event{U: int32(u), V: int32(v), T: t})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if sorted {
		return NewLog(evs, 0)
	}
	return NewLogSorted(evs, 0)
}

// WriteBinary writes the log in the compact binary form.
func WriteBinary(w io.Writer, l *Log) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint32(hdr[0:4], binaryVersion)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(l.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(l.Len()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, e := range l.Events() {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:16], uint64(e.T))
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary form written by WriteBinary. Every
// header field is validated before use and the stream must end exactly
// after the last record, so a truncated, padded, or corrupted file is
// reported as an error instead of yielding a silently wrong log.
func ReadBinary(r io.Reader) (*Log, error) {
	if err := fault.Inject(PointReadBinary); err != nil {
		return nil, err
	}
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("events: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("events: bad magic %q, want %q", magic, binaryMagic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("events: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:4]); v != binaryVersion {
		return nil, fmt.Errorf("events: unsupported version %d", v)
	}
	numVertices := int32(binary.LittleEndian.Uint32(hdr[4:8]))
	if numVertices < 0 {
		return nil, fmt.Errorf("events: negative vertex count %d", numVertices)
	}
	count := binary.LittleEndian.Uint64(hdr[8:16])
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("events: implausible event count %d", count)
	}
	// Grow incrementally rather than trusting the header's count: a
	// corrupt count must fail with a truncation error, not an
	// out-of-memory allocation.
	var evs []Event
	rec := make([]byte, 16)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("events: reading event %d of %d: %w", i, count, err)
		}
		evs = append(evs, Event{
			U: int32(binary.LittleEndian.Uint32(rec[0:4])),
			V: int32(binary.LittleEndian.Uint32(rec[4:8])),
			T: int64(binary.LittleEndian.Uint64(rec[8:16])),
		})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("events: trailing bytes after %d events", count)
	}
	return NewLog(evs, numVertices)
}
