// Package events defines the temporal edge set model of the paper's
// Section 2.1: an input is a sequence of events <u, v, t> sorted by
// non-decreasing timestamp, and analyses run over a sliding sequence of
// window graphs G_i = G(T_i, T_i+delta) with T_i = T_0 + i*sw.
//
// The package provides the Event and Log types, sliding-window
// arithmetic (WindowSpec), and text/binary serialization of event logs.
package events

import (
	"errors"
	"fmt"
	"sort"
)

// Event is a single temporal relational event: an edge from U to V that
// occurred at integer timestamp T. Timestamps are opaque integers; the
// interpretation (seconds, days, ...) belongs to the dataset.
type Event struct {
	U, V int32
	T    int64
}

// Log is a temporal edge set: a sequence of events sorted by
// non-decreasing timestamp, over the vertex set [0, NumVertices).
//
// A Log is immutable once constructed; all derived structures (temporal
// CSR, streaming batches, offline slices) read from the same backing
// slice without copying.
type Log struct {
	events      []Event
	numVertices int32
}

// ErrUnsorted is returned by NewLog when the event sequence is not in
// non-decreasing timestamp order.
var ErrUnsorted = errors.New("events: log is not sorted by timestamp")

// NewLog validates evs and wraps it as a Log. The slice is retained; the
// caller must not modify it afterwards. Events must be sorted by
// non-decreasing T (the paper's input assumption) and vertex ids must be
// non-negative. numVertices must be larger than every vertex id; pass 0
// to infer it as max(id)+1.
func NewLog(evs []Event, numVertices int32) (*Log, error) {
	maxID := int32(-1)
	for i, e := range evs {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("events: event %d has negative vertex id (%d, %d)", i, e.U, e.V)
		}
		if i > 0 && e.T < evs[i-1].T {
			return nil, ErrUnsorted
		}
		if e.U > maxID {
			maxID = e.U
		}
		if e.V > maxID {
			maxID = e.V
		}
	}
	if numVertices == 0 {
		numVertices = maxID + 1
	}
	if maxID >= numVertices {
		return nil, fmt.Errorf("events: vertex id %d out of range [0, %d)", maxID, numVertices)
	}
	return &Log{events: evs, numVertices: numVertices}, nil
}

// NewLogSorted sorts evs by timestamp (stably, preserving input order of
// simultaneous events) and wraps it as a Log. Unlike NewLog it never
// returns ErrUnsorted.
func NewLogSorted(evs []Event, numVertices int32) (*Log, error) {
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
	return NewLog(evs, numVertices)
}

// Len reports the number of events |Events|.
func (l *Log) Len() int { return len(l.events) }

// NumVertices reports the size of the vertex set V.
func (l *Log) NumVertices() int32 { return l.numVertices }

// Events exposes the underlying time-sorted slice. Callers must treat
// it as read-only.
func (l *Log) Events() []Event { return l.events }

// At returns the i-th event.
func (l *Log) At(i int) Event { return l.events[i] }

// TimeRange returns the timestamps of the first and last event. It
// returns (0, 0, false) when the log is empty.
func (l *Log) TimeRange() (first, last int64, ok bool) {
	if len(l.events) == 0 {
		return 0, 0, false
	}
	return l.events[0].T, l.events[len(l.events)-1].T, true
}

// Slice returns the contiguous sub-slice of events with ts <= T <= te.
// Because the log is time-sorted this is two binary searches; the
// offline execution model uses it to extract each window's events.
func (l *Log) Slice(ts, te int64) []Event {
	if te < ts {
		return nil
	}
	lo := sort.Search(len(l.events), func(i int) bool { return l.events[i].T >= ts })
	hi := sort.Search(len(l.events), func(i int) bool { return l.events[i].T > te })
	return l.events[lo:hi]
}

// CountInRange reports how many events have ts <= T <= te.
func (l *Log) CountInRange(ts, te int64) int { return len(l.Slice(ts, te)) }

// Symmetrize returns a new Log in which every event (u, v, t) with
// u != v is accompanied by (v, u, t). The paper's running example
// (Fig. 3) stores the graph this way: 14 events become 28 CSR entries.
// Self-loops are kept single. The result is sorted and shares no backing
// storage with the receiver.
func (l *Log) Symmetrize() *Log {
	out := make([]Event, 0, 2*len(l.events))
	for _, e := range l.events {
		out = append(out, e)
		if e.U != e.V {
			out = append(out, Event{U: e.V, V: e.U, T: e.T})
		}
	}
	// The input is time-sorted and we emit pairs at equal T, so the
	// output is already time-sorted.
	return &Log{events: out, numVertices: l.numVertices}
}

// Clone returns a deep copy of the log.
func (l *Log) Clone() *Log {
	evs := make([]Event, len(l.events))
	copy(evs, l.events)
	return &Log{events: evs, numVertices: l.numVertices}
}
