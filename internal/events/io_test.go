package events

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randomLog(t *testing.T, seed int64, n int) *Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]Event, n)
	tcur := int64(rng.Intn(1000))
	for i := range evs {
		tcur += int64(rng.Intn(10))
		evs[i] = Event{U: int32(rng.Intn(100)), V: int32(rng.Intn(100)), T: tcur}
	}
	return mustLog(t, evs, 128)
}

func TestTextRoundTrip(t *testing.T) {
	l := randomLog(t, 1, 250)
	var buf bytes.Buffer
	if err := WriteText(&buf, l); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !reflect.DeepEqual(got.Events(), l.Events()) {
		t.Fatal("text round trip changed events")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l := randomLog(t, 2, 1000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got.Events(), l.Events()) {
		t.Fatal("binary round trip changed events")
	}
	if got.NumVertices() != l.NumVertices() {
		t.Fatalf("NumVertices %d -> %d", l.NumVertices(), got.NumVertices())
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	l := mustLog(t, nil, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Len() != 0 || got.NumVertices() != 7 {
		t.Fatalf("got len=%d n=%d", got.Len(), got.NumVertices())
	}
}

func TestReadTextSkipsCommentsAndSortsUnsorted(t *testing.T) {
	in := `# header comment
% another comment style

3 4 50
1 2 10
`
	l, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	want := []Event{{U: 1, V: 2, T: 10}, {U: 3, V: 4, T: 50}}
	if !reflect.DeepEqual(l.Events(), want) {
		t.Fatalf("got %v, want %v", l.Events(), want)
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 2",             // missing timestamp
		"a 2 3",           // non-numeric source
		"1 b 3",           // non-numeric target
		"1 2 c",           // non-numeric time
		"1 2 3.5",         // float time
		"99999999999 2 3", // overflows int32
	}
	for _, in := range bad {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("malformed line %q accepted", in)
		}
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	l := randomLog(t, 3, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNK"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:10])); err == nil {
		t.Error("truncated header accepted")
	}
	// Corrupt the version field.
	bad := append([]byte(nil), full...)
	bad[4] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Implausible count.
	bad2 := append([]byte(nil), full...)
	for i := 12; i < 20; i++ {
		bad2[i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("implausible count accepted")
	}
}
