package events

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"pmpr/internal/fault"
)

func randomLog(t *testing.T, seed int64, n int) *Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]Event, n)
	tcur := int64(rng.Intn(1000))
	for i := range evs {
		tcur += int64(rng.Intn(10))
		evs[i] = Event{U: int32(rng.Intn(100)), V: int32(rng.Intn(100)), T: tcur}
	}
	return mustLog(t, evs, 128)
}

func TestTextRoundTrip(t *testing.T) {
	l := randomLog(t, 1, 250)
	var buf bytes.Buffer
	if err := WriteText(&buf, l); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if !reflect.DeepEqual(got.Events(), l.Events()) {
		t.Fatal("text round trip changed events")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	l := randomLog(t, 2, 1000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got.Events(), l.Events()) {
		t.Fatal("binary round trip changed events")
	}
	if got.NumVertices() != l.NumVertices() {
		t.Fatalf("NumVertices %d -> %d", l.NumVertices(), got.NumVertices())
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	l := mustLog(t, nil, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.Len() != 0 || got.NumVertices() != 7 {
		t.Fatalf("got len=%d n=%d", got.Len(), got.NumVertices())
	}
}

func TestReadTextSkipsCommentsAndSortsUnsorted(t *testing.T) {
	in := `# header comment
% another comment style

3 4 50
1 2 10
`
	l, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	want := []Event{{U: 1, V: 2, T: 10}, {U: 3, V: 4, T: 50}}
	if !reflect.DeepEqual(l.Events(), want) {
		t.Fatalf("got %v, want %v", l.Events(), want)
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"1 2",             // missing timestamp
		"a 2 3",           // non-numeric source
		"1 b 3",           // non-numeric target
		"1 2 c",           // non-numeric time
		"1 2 3.5",         // float time
		"99999999999 2 3", // overflows int32
	}
	for _, in := range bad {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("malformed line %q accepted", in)
		}
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	l := randomLog(t, 3, 10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	full := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNK"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("truncated body accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(full[:10])); err == nil {
		t.Error("truncated header accepted")
	}
	// Corrupt the version field.
	bad := append([]byte(nil), full...)
	bad[4] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
	// Implausible count.
	bad2 := append([]byte(nil), full...)
	for i := 12; i < 20; i++ {
		bad2[i] = 0xFF
	}
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("implausible count accepted")
	}
	// Negative vertex count (top bit of the int32 field set).
	bad3 := append([]byte(nil), full...)
	bad3[11] |= 0x80
	if _, err := ReadBinary(bytes.NewReader(bad3)); err == nil {
		t.Error("negative vertex count accepted")
	}
	// Trailing garbage after the final record.
	padded := append(append([]byte(nil), full...), 0xAB)
	if _, err := ReadBinary(bytes.NewReader(padded)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// An event whose vertex id exceeds the header's vertex count must be
	// rejected by log construction, not silently produce an oversized
	// graph. Record layout: u at offset 20 of the first record.
	bad4 := append([]byte(nil), full...)
	binary.LittleEndian.PutUint32(bad4[20:24], 1<<30)
	if _, err := ReadBinary(bytes.NewReader(bad4)); err == nil {
		t.Error("out-of-range vertex id accepted")
	}
	// A record with a timestamp before its predecessor breaks the
	// sortedness invariant every consumer relies on.
	if l.Len() >= 2 {
		bad5 := append([]byte(nil), full...)
		binary.LittleEndian.PutUint64(bad5[28:36], uint64(1<<40)) // first record's T
		if _, err := ReadBinary(bytes.NewReader(bad5)); err == nil {
			t.Error("unsorted events accepted")
		}
	}
}

// TestReadBinaryFaultInjection verifies the IO fault points surface as
// ordinary errors.
func TestReadBinaryFaultInjection(t *testing.T) {
	defer fault.Reset()
	l := randomLog(t, 4, 5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, l); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	cancel := fault.Arm(fault.Rule{Point: PointReadBinary, Mode: fault.ModeError, Count: 1})
	defer cancel()
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("armed read_binary fault did not surface")
	}
	cancel2 := fault.Arm(fault.Rule{Point: PointReadText, Mode: fault.ModeError, Count: 1})
	defer cancel2()
	if _, err := ReadText(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("armed read_text fault did not surface")
	}
}
