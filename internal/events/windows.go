package events

import (
	"errors"
	"fmt"
)

// WindowSpec describes the sliding-window derivation of a temporal graph
// (paper Sec. 2.1): window i covers the closed time interval
// [Start(i), End(i)] = [T0 + i*Slide, T0 + i*Slide + Delta], for
// i in [0, Count).
type WindowSpec struct {
	// T0 is the start time of the first window (usually the timestamp
	// of the first event in the dataset).
	T0 int64
	// Delta is the window size delta (inclusive width of each window).
	Delta int64
	// Slide is the sliding offset sw between consecutive windows.
	Slide int64
	// Count is the number of windows in the sequence (m+1 in the paper).
	Count int
}

var (
	errBadDelta = errors.New("events: window size delta must be >= 0")
	errBadSlide = errors.New("events: sliding offset must be > 0")
	errBadCount = errors.New("events: window count must be > 0")
)

// Validate checks the spec parameters.
func (w WindowSpec) Validate() error {
	if w.Delta < 0 {
		return errBadDelta
	}
	if w.Slide <= 0 {
		return errBadSlide
	}
	if w.Count <= 0 {
		return errBadCount
	}
	return nil
}

// Start returns T_i, the beginning of window i.
func (w WindowSpec) Start(i int) int64 { return w.T0 + int64(i)*w.Slide }

// End returns T_i + delta, the inclusive end of window i.
func (w WindowSpec) End(i int) int64 { return w.Start(i) + w.Delta }

// Interval returns [Start(i), End(i)].
func (w WindowSpec) Interval(i int) (ts, te int64) { return w.Start(i), w.End(i) }

// Contains reports whether timestamp t falls inside window i.
func (w WindowSpec) Contains(i int, t int64) bool {
	return t >= w.Start(i) && t <= w.End(i)
}

// Covering returns the closed range [lo, hi] of window indices whose
// interval contains timestamp t, clamped to [0, Count). ok is false when
// no window contains t (possible when Slide > Delta leaves gaps, or t is
// outside the analyzed span).
//
// The closed form is the one the SpMM kernel relies on: t is in window i
// iff T0 + i*Slide <= t <= T0 + i*Slide + Delta, i.e.
// ceil((t-T0-Delta)/Slide) <= i <= floor((t-T0)/Slide).
func (w WindowSpec) Covering(t int64) (lo, hi int, ok bool) {
	d := t - w.T0
	if d < 0 {
		return 0, -1, false
	}
	hi64 := floorDiv(d, w.Slide)
	lo64 := ceilDiv(d-w.Delta, w.Slide)
	if lo64 < 0 {
		lo64 = 0
	}
	if hi64 >= int64(w.Count) {
		hi64 = int64(w.Count) - 1
	}
	if lo64 > hi64 {
		return 0, -1, false
	}
	return int(lo64), int(hi64), true
}

// Sub returns the spec describing windows [from, to) of w as a
// standalone sequence. Multi-window graphs use it to reason about their
// share of the window sequence.
func (w WindowSpec) Sub(from, to int) WindowSpec {
	return WindowSpec{
		T0:    w.Start(from),
		Delta: w.Delta,
		Slide: w.Slide,
		Count: to - from,
	}
}

// SpanEnd returns the inclusive end of the last window.
func (w WindowSpec) SpanEnd() int64 { return w.End(w.Count - 1) }

// String renders the spec compactly for logs and errors.
func (w WindowSpec) String() string {
	return fmt.Sprintf("windows{t0=%d delta=%d sw=%d count=%d}", w.T0, w.Delta, w.Slide, w.Count)
}

// Span constructs the spec the paper implies for a dataset: the first
// window starts at the dataset's first timestamp and windows are added
// while their start lies at or before the last timestamp. It returns an
// error for an empty log or invalid parameters.
func Span(l *Log, delta, slide int64) (WindowSpec, error) {
	first, last, ok := l.TimeRange()
	if !ok {
		return WindowSpec{}, errors.New("events: cannot derive windows from an empty log")
	}
	if delta < 0 {
		return WindowSpec{}, errBadDelta
	}
	if slide <= 0 {
		return WindowSpec{}, errBadSlide
	}
	count := int(floorDiv(last-first, slide)) + 1
	w := WindowSpec{T0: first, Delta: delta, Slide: slide, Count: count}
	if err := w.Validate(); err != nil {
		return WindowSpec{}, err
	}
	return w, nil
}

// SpanCount is like Span but fixes the number of windows and derives no
// relationship to the last event; windows may extend past the data.
func SpanCount(l *Log, delta, slide int64, count int) (WindowSpec, error) {
	first, _, ok := l.TimeRange()
	if !ok {
		return WindowSpec{}, errors.New("events: cannot derive windows from an empty log")
	}
	w := WindowSpec{T0: first, Delta: delta, Slide: slide, Count: count}
	if err := w.Validate(); err != nil {
		return WindowSpec{}, err
	}
	return w, nil
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
