package events

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustLog(t *testing.T, evs []Event, n int32) *Log {
	t.Helper()
	l, err := NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

func TestNewLogValidates(t *testing.T) {
	if _, err := NewLog([]Event{{U: 0, V: 1, T: 5}, {U: 1, V: 2, T: 3}}, 0); err != ErrUnsorted {
		t.Fatalf("unsorted log: got err %v, want ErrUnsorted", err)
	}
	if _, err := NewLog([]Event{{U: -1, V: 1, T: 5}}, 0); err == nil {
		t.Fatal("negative vertex id accepted")
	}
	if _, err := NewLog([]Event{{U: 0, V: 7, T: 5}}, 4); err == nil {
		t.Fatal("vertex id beyond declared NumVertices accepted")
	}
}

func TestNewLogInfersNumVertices(t *testing.T) {
	l := mustLog(t, []Event{{U: 3, V: 9, T: 1}, {U: 2, V: 2, T: 4}}, 0)
	if got := l.NumVertices(); got != 10 {
		t.Fatalf("NumVertices = %d, want 10 (max id + 1)", got)
	}
}

func TestNewLogEmpty(t *testing.T) {
	l := mustLog(t, nil, 0)
	if l.Len() != 0 {
		t.Fatalf("Len = %d, want 0", l.Len())
	}
	if _, _, ok := l.TimeRange(); ok {
		t.Fatal("TimeRange on empty log reported ok")
	}
	if got := l.Slice(0, 100); len(got) != 0 {
		t.Fatalf("Slice on empty log returned %d events", len(got))
	}
}

func TestNewLogSortedSorts(t *testing.T) {
	evs := []Event{{U: 0, V: 1, T: 9}, {U: 1, V: 2, T: 3}, {U: 2, V: 3, T: 7}}
	l, err := NewLogSorted(evs, 0)
	if err != nil {
		t.Fatalf("NewLogSorted: %v", err)
	}
	got := l.Events()
	for i := 1; i < len(got); i++ {
		if got[i].T < got[i-1].T {
			t.Fatalf("not sorted at %d: %v", i, got)
		}
	}
}

func TestNewLogSortedStable(t *testing.T) {
	// Simultaneous events must keep their input order.
	evs := []Event{{U: 5, V: 6, T: 2}, {U: 1, V: 2, T: 1}, {U: 3, V: 4, T: 1}}
	l, err := NewLogSorted(evs, 0)
	if err != nil {
		t.Fatalf("NewLogSorted: %v", err)
	}
	want := []Event{{U: 1, V: 2, T: 1}, {U: 3, V: 4, T: 1}, {U: 5, V: 6, T: 2}}
	if !reflect.DeepEqual(l.Events(), want) {
		t.Fatalf("got %v, want %v", l.Events(), want)
	}
}

func TestSliceBoundsInclusive(t *testing.T) {
	l := mustLog(t, []Event{
		{U: 0, V: 1, T: 10},
		{U: 1, V: 2, T: 20},
		{U: 2, V: 3, T: 20},
		{U: 3, V: 4, T: 30},
	}, 0)
	cases := []struct {
		ts, te int64
		want   int
	}{
		{10, 30, 4},
		{10, 29, 3},
		{11, 30, 3},
		{20, 20, 2},
		{31, 40, 0},
		{0, 9, 0},
		{30, 10, 0}, // inverted range
	}
	for _, c := range cases {
		if got := len(l.Slice(c.ts, c.te)); got != c.want {
			t.Errorf("Slice(%d, %d) has %d events, want %d", c.ts, c.te, got, c.want)
		}
	}
}

func TestSliceMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	evs := make([]Event, 500)
	tcur := int64(0)
	for i := range evs {
		tcur += int64(rng.Intn(5))
		evs[i] = Event{U: int32(rng.Intn(50)), V: int32(rng.Intn(50)), T: tcur}
	}
	l := mustLog(t, evs, 0)
	for trial := 0; trial < 200; trial++ {
		ts := int64(rng.Intn(int(tcur) + 10))
		te := ts + int64(rng.Intn(100))
		want := 0
		for _, e := range evs {
			if e.T >= ts && e.T <= te {
				want++
			}
		}
		if got := l.CountInRange(ts, te); got != want {
			t.Fatalf("CountInRange(%d, %d) = %d, want %d", ts, te, got, want)
		}
	}
}

func TestSymmetrize(t *testing.T) {
	l := mustLog(t, []Event{
		{U: 0, V: 1, T: 1},
		{U: 2, V: 2, T: 2}, // self-loop stays single
		{U: 1, V: 3, T: 3},
	}, 0)
	s := l.Symmetrize()
	if s.Len() != 5 {
		t.Fatalf("symmetrized length = %d, want 5", s.Len())
	}
	want := []Event{
		{U: 0, V: 1, T: 1}, {U: 1, V: 0, T: 1},
		{U: 2, V: 2, T: 2},
		{U: 1, V: 3, T: 3}, {U: 3, V: 1, T: 3},
	}
	if !reflect.DeepEqual(s.Events(), want) {
		t.Fatalf("got %v, want %v", s.Events(), want)
	}
	if s.NumVertices() != l.NumVertices() {
		t.Fatalf("NumVertices changed: %d -> %d", l.NumVertices(), s.NumVertices())
	}
}

func TestSymmetrizePaperExampleCardinality(t *testing.T) {
	// The paper's Fig. 3: 14 directed-free events become 28 CSR entries.
	evs := make([]Event, 14)
	for i := range evs {
		evs[i] = Event{U: int32(i % 7), V: int32((i + 1) % 7), T: int64(i)}
	}
	l := mustLog(t, evs, 0)
	if got := l.Symmetrize().Len(); got != 28 {
		t.Fatalf("symmetrized length = %d, want 28", got)
	}
}

func TestSymmetrizeSortedProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		evs := make([]Event, len(raw))
		for i, r := range raw {
			evs[i] = Event{U: int32(r % 97), V: int32(r / 97 % 97), T: int64(i)}
		}
		l, err := NewLog(evs, 0)
		if err != nil {
			return len(evs) == 0 // only empty inference edge cases
		}
		s := l.Symmetrize()
		for i := 1; i < s.Len(); i++ {
			if s.At(i).T < s.At(i-1).T {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	l := mustLog(t, []Event{{U: 0, V: 1, T: 1}}, 5)
	c := l.Clone()
	c.events[0].T = 99
	if l.At(0).T != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if c.NumVertices() != 5 {
		t.Fatalf("Clone NumVertices = %d, want 5", c.NumVertices())
	}
}
