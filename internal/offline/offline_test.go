package offline

import (
	"math"
	"math/rand"
	"testing"

	"pmpr/internal/csr"
	"pmpr/internal/events"
	"pmpr/internal/pagerank"
	"pmpr/internal/sched"
)

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = events.Event{U: int32(rng.Intn(int(n))), V: int32(rng.Intn(int(n))), T: tcur}
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

func TestOfflineMatchesOracle(t *testing.T) {
	l := randomLog(t, 71, 20, 500, 2000)
	spec, err := events.Span(l, 400, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	stats, err := Run(l, spec, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(stats) != spec.Count {
		t.Fatalf("got %d windows, want %d", len(stats), spec.Count)
	}
	for w := 0; w < spec.Count; w++ {
		g, err := csr.FromLogWindow(l, spec.Start(w), spec.End(w))
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		want, err := pagerank.Reference(g, pagerank.Defaults())
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		if stats[w].Edges != g.NumEdges() {
			t.Fatalf("window %d: %d edges, oracle %d", w, stats[w].Edges, g.NumEdges())
		}
		for v := range want {
			if math.Abs(stats[w].Ranks[v]-want[v]) > 1e-5 {
				t.Fatalf("window %d vertex %d: got %v, oracle %v", w, v, stats[w].Ranks[v], want[v])
			}
		}
	}
}

func TestOfflineParallelMatchesSerial(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	l := randomLog(t, 72, 25, 700, 2500)
	spec, _ := events.Span(l, 500, 100)
	serial, err := Run(l, spec, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, part := range []sched.Partitioner{sched.Auto, sched.Simple, sched.Static} {
		cfg := DefaultConfig()
		cfg.Partitioner = part
		par, err := Run(l, spec, cfg, pool)
		if err != nil {
			t.Fatalf("parallel: %v", err)
		}
		for w := range serial {
			if serial[w].Iterations != par[w].Iterations {
				t.Fatalf("%v window %d: iterations %d vs %d", part, w, serial[w].Iterations, par[w].Iterations)
			}
			for v := range serial[w].Ranks {
				if serial[w].Ranks[v] != par[w].Ranks[v] {
					t.Fatalf("%v window %d vertex %d differs", part, w, v)
				}
			}
		}
	}
}

func TestOfflineDiscardRanks(t *testing.T) {
	l := randomLog(t, 73, 10, 100, 500)
	spec, _ := events.Span(l, 100, 50)
	cfg := DefaultConfig()
	cfg.DiscardRanks = true
	stats, err := Run(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, st := range stats {
		if st.Ranks != nil {
			t.Fatal("ranks retained despite DiscardRanks")
		}
		if st.Iterations == 0 && st.ActiveVertices > 0 {
			t.Fatal("missing iteration stats")
		}
	}
}

func TestOfflineValidation(t *testing.T) {
	l := randomLog(t, 74, 5, 10, 50)
	cfg := DefaultConfig()
	cfg.Opts.Tol = -1
	if _, err := Run(l, events.WindowSpec{T0: 0, Delta: 5, Slide: 5, Count: 1}, cfg, nil); err == nil {
		t.Fatal("bad options accepted")
	}
	if _, err := Run(l, events.WindowSpec{}, DefaultConfig(), nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}
