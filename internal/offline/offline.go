// Package offline implements the offline execution model of the paper
// (Sec. 3.3.1): every window graph is rebuilt independently from the
// event database and PageRank starts from scratch on it. The rebuild
// cost dominates, but the model is embarrassingly parallel across
// windows.
package offline

import (
	"time"

	"pmpr/internal/csr"
	"pmpr/internal/events"
	"pmpr/internal/pagerank"
	"pmpr/internal/sched"
)

// Config controls an offline run.
type Config struct {
	// Opts are the shared PageRank parameters.
	Opts pagerank.Options
	// Partitioner and Grain configure the window-level loop when a pool
	// is supplied.
	Partitioner sched.Partitioner
	Grain       int
	// DiscardRanks keeps only per-window statistics.
	DiscardRanks bool
}

// DefaultConfig returns the standard offline setup.
func DefaultConfig() Config {
	return Config{Opts: pagerank.Defaults(), Partitioner: sched.Auto, Grain: 1}
}

// WindowStats describes one independently computed window.
type WindowStats struct {
	Window         int
	Iterations     int
	Converged      bool
	ActiveVertices int32
	Edges          int64
	// Elapsed is the wall time of this window (rebuild + solve); the
	// distribution across windows exposes the load imbalance the
	// paper's Sec. 6.1 attributes to the temporal edge distribution.
	Elapsed time.Duration
	// Ranks is the dense PageRank vector (nil when discarded).
	Ranks []float64
}

// Run computes PageRank for every window of the sequence. With a pool,
// windows are processed in parallel (each kernel runs serially — the
// model's parallelism is across windows, as on the paper's cloud
// scenario); with a nil pool everything is serial.
func Run(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) ([]WindowStats, error) {
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	out := make([]WindowStats, spec.Count)
	solve := func(w int) error {
		start := time.Now()
		// The per-window rebuild the offline model pays for: extract
		// the window's events and construct a fresh CSR.
		g, err := csr.FromLogWindow(l, spec.Start(w), spec.End(w))
		if err != nil {
			return err
		}
		res, err := pagerank.Run(g, nil, cfg.Opts)
		if err != nil {
			return err
		}
		st := WindowStats{
			Window:         w,
			Iterations:     res.Iterations,
			Converged:      res.Converged,
			ActiveVertices: res.ActiveVertices,
			Edges:          g.NumEdges(),
			Elapsed:        time.Since(start),
		}
		if !cfg.DiscardRanks {
			st.Ranks = res.Ranks
		}
		out[w] = st
		return nil
	}
	if pool == nil {
		for w := 0; w < spec.Count; w++ {
			if err := solve(w); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	grain := cfg.Grain
	if grain < 1 {
		grain = 1
	}
	errs := make([]error, spec.Count)
	pool.ParallelFor(spec.Count, grain, cfg.Partitioner, func(_ *sched.Worker, lo, hi int) {
		for w := lo; w < hi; w++ {
			errs[w] = solve(w)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
