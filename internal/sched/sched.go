// Package sched provides the work-stealing fork-join scheduler that
// plays the role of Intel TBB in the paper (Sec. 4.3). Both levels of
// parallelism — across time windows and inside a PageRank kernel — run
// on one shared Pool, and nested parallel-for is supported re-entrantly
// so the paper's "nested parallelization" maps onto it directly.
//
// Ranges are split lazily: a worker owning [lo, hi) splits it in half
// when the partitioning policy says so, keeps one half, and exposes the
// other for thieves. Because splits preserve contiguity, the worker that
// processed window Gi-1 usually also processes Gi, which is what makes
// partial initialization effective under window-level parallelism
// (the paper's argument for a work-stealing scheduler over OpenMP's
// dynamic scheduler).
//
// Three partitioners mirror TBB's:
//
//   - Simple: always split until a range is at most the grain size.
//   - Auto: split only while there is demand (idle workers), except that
//     ranges above an initial chunk (len/4P) are always split; large
//     grains therefore behave like coarse static chunks.
//   - Static: ranges are pre-assigned to workers contiguously and are
//     never stolen.
package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError carries a panic recovered from a loop body that executed
// on a pool worker. Leaf bodies run on whichever worker pops their
// span, so an unhandled panic would unwind an unrelated worker
// goroutine and kill the process; instead the pool captures the first
// panic of a job, abandons the job's remaining spans, and re-raises a
// *PanicError at the submitting ParallelFor/Run call site — the
// goroutine whose defers can actually handle it. Value is the original
// panic value and Stack the stack of the panicking leaf.
type PanicError struct {
	Value any
	Stack []byte
}

// Error renders the captured panic.
func (e *PanicError) Error() string { return fmt.Sprintf("sched: panic in loop body: %v", e.Value) }

// Unwrap exposes an underlying error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Partitioner selects the range-splitting policy of a parallel loop.
type Partitioner int

const (
	// Auto splits on demand, like tbb::auto_partitioner.
	Auto Partitioner = iota
	// Simple always splits down to the grain, like tbb::simple_partitioner.
	Simple
	// Static pre-assigns contiguous blocks to workers with no stealing,
	// like tbb::static_partitioner.
	Static
)

// String names the partitioner as used in reports and CLI flags.
func (p Partitioner) String() string {
	switch p {
	case Auto:
		return "auto"
	case Simple:
		return "simple"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Partitioner(%d)", int(p))
	}
}

// Body is the leaf function of a parallel loop; it receives the worker
// executing it (for nested ParallelFor calls) and a half-open index
// range [lo, hi).
type Body func(w *Worker, lo, hi int)

type job struct {
	body    Body
	grain   int
	part    Partitioner
	initial int // auto: ranges longer than this always split
	// ctx carries the loop's cancellation signal; nil means the loop can
	// never be canceled (the zero-overhead path of ParallelFor). Spans of
	// a canceled job are still popped and finished — so pending drains
	// and submitters unblock — but their bodies are skipped.
	ctx     context.Context
	pending atomic.Int64
	// doneFlag is the completion signal polled by nested submitters
	// (helpUntil); done is non-nil only for external submissions, which
	// block on the channel instead of spinning. Keeping nested loops
	// channel-free lets job objects be pooled, so a steady state of
	// nested ParallelFor calls (the kernels' inner vertex loops) does
	// not allocate.
	doneFlag atomic.Bool
	done     chan struct{}
	// panicVal holds the first panic captured from a leaf body; later
	// spans of the job are drained without executing (like a canceled
	// job) and the submitter re-raises the value after the join.
	panicVal atomic.Pointer[PanicError]
}

// execBody runs one leaf call of the job's body, capturing a panic
// into panicVal (first one wins) instead of letting it unwind the
// worker goroutine.
func (j *job) execBody(w *Worker, lo, hi int) {
	defer func() {
		if rec := recover(); rec != nil {
			j.panicVal.CompareAndSwap(nil, &PanicError{Value: rec, Stack: debug.Stack()})
		}
	}()
	j.body(w, lo, hi)
}

// rethrow re-raises a captured leaf panic at the submitter, after the
// join has drained every span. Callers must not touch j afterwards.
func (j *job) rethrow(p *Pool) {
	if pe := j.panicVal.Load(); pe != nil {
		p.recycleJob(j)
		// Deliberate propagation: the panic originated in caller-supplied
		// code and belongs on the caller's goroutine.
		//pmvet:ignore panic -- re-raising a captured loop-body panic at the submitting call site
		panic(pe)
	}
}

func (j *job) finish(leaves int64) {
	if j.pending.Add(-leaves) == 0 {
		// Read the channel before publishing completion: the waiter may
		// recycle the job the instant doneFlag is set, so this is the
		// last access to j's fields.
		done := j.done
		j.doneFlag.Store(true)
		if done != nil {
			close(done)
		}
	}
}

// canceled reports whether the job should stop executing leaves: its
// context has been canceled, or a leaf already panicked (a panicked
// job abandons its remaining work the same way a canceled one does).
// It is polled cooperatively by the work-stealing loop before every
// leaf execution, so an abandoned loop stops promptly at the next span
// boundary (already-running leaf bodies finish).
func (j *job) canceled() bool {
	if j.panicVal.Load() != nil {
		return true
	}
	return j.ctx != nil && j.ctx.Err() != nil
}

type span struct {
	lo, hi int
	job    *job
}

type deque struct {
	mu    sync.Mutex
	items []span
}

func (d *deque) pushBottom(s span) {
	d.mu.Lock()
	d.items = append(d.items, s)
	d.mu.Unlock()
}

func (d *deque) popBottom() (span, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return span{}, false
	}
	s := d.items[len(d.items)-1]
	d.items = d.items[:len(d.items)-1]
	return s, true
}

// stealTop removes the oldest stealable span. Spans of Static jobs are
// pinned to their worker and skipped.
func (d *deque) stealTop() (span, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < len(d.items); i++ {
		if d.items[i].job.part == Static {
			continue
		}
		s := d.items[i]
		d.items = append(d.items[:i], d.items[i+1:]...)
		return s, true
	}
	return span{}, false
}

// Pool is a fixed set of workers processing fork-join range tasks.
type Pool struct {
	workers []*Worker

	// jobPool recycles job descriptors: a job is returned once its
	// submitter has observed completion, at which point no span, deque,
	// or worker references it (pending counts every pushed span, so
	// pending reaching zero means every span was popped and finished).
	jobPool sync.Pool

	mu      sync.Mutex
	cond    *sync.Cond
	sleeper int
	closed  bool

	idle atomic.Int32 // workers currently out of work (demand signal for Auto)

	metricsOn atomic.Bool
	metrics   []workerMetrics // one padded slot per worker
}

// Worker is one of the pool's executors. The Body of a loop may call
// ParallelFor on its Worker to fork a nested loop on the same pool.
type Worker struct {
	pool *Pool
	id   int
	dq   deque
	rng  *rand.Rand
	// depth tracks process() nesting (single goroutine, no atomics):
	// busy time is only accumulated at depth 1 so spans executed while
	// helping a nested loop are not double-counted.
	depth int
}

// ID returns the worker index in [0, Pool.NumWorkers()).
func (w *Worker) ID() int { return w.id }

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// NewPool starts a pool with the given number of workers; n <= 0 means
// runtime.GOMAXPROCS(0). Call Close when done.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.metrics = make([]workerMetrics, n)
	p.workers = make([]*Worker, n)
	for i := 0; i < n; i++ {
		p.workers[i] = &Worker{pool: p, id: i, rng: rand.New(rand.NewSource(int64(i)*0x9E3779B9 + 1))}
	}
	for _, w := range p.workers {
		//pmvet:ignore goleak -- workers exit via the pool's closed flag: Close sets it under p.mu and Broadcasts; run re-checks it at every sleep/wake edge
		go w.run()
	}
	return p
}

// NumWorkers returns the number of workers.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Close shuts the workers down. Pending work is abandoned; only call
// Close after all ParallelFor calls have returned.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *Pool) wake() {
	p.mu.Lock()
	sleeping := p.sleeper > 0
	p.mu.Unlock()
	if sleeping {
		p.cond.Broadcast()
	}
}

func (w *Worker) run() {
	p := w.pool
	for {
		if s, ok := w.findWork(); ok {
			w.process(s)
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		// Re-check under the lock to avoid missing a wake between the
		// failed search and the wait.
		if s, ok := w.findWork(); ok {
			p.mu.Unlock()
			w.process(s)
			continue
		}
		p.sleeper++
		p.idle.Add(1)
		var t0 time.Time
		if timed := p.metricsOn.Load(); timed {
			t0 = time.Now()
		}
		p.cond.Wait()
		if !t0.IsZero() {
			p.metrics[w.id].idleNanos.Add(int64(time.Since(t0)))
		}
		p.idle.Add(-1)
		p.sleeper--
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// findWork pops from the worker's own deque, then tries to steal.
func (w *Worker) findWork() (span, bool) {
	if s, ok := w.dq.popBottom(); ok {
		return s, true
	}
	p := w.pool
	n := len(p.workers)
	off := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		victim := p.workers[(off+i)%n]
		if victim == w {
			continue
		}
		if s, ok := victim.dq.stealTop(); ok {
			if p.metricsOn.Load() {
				p.metrics[w.id].steals.Add(1)
			}
			return s, true
		}
	}
	return span{}, false
}

// shouldSplit decides whether the owning worker should split s before
// executing, per the job's partitioner.
func (w *Worker) shouldSplit(s span) bool {
	length := s.hi - s.lo
	j := s.job
	if length <= j.grain || length < 2 {
		return false
	}
	switch j.part {
	case Simple:
		return true
	case Static:
		return false
	default: // Auto
		if length > j.initial {
			return true
		}
		return w.pool.idle.Load() > 0
	}
}

func (w *Worker) process(s span) {
	if s.job.canceled() {
		// Cooperative cancellation: drain the span without executing its
		// body, so pending reaches zero and the submitter unblocks.
		s.job.finish(1)
		return
	}
	var m *workerMetrics
	var t0 time.Time
	if w.pool.metricsOn.Load() {
		m = &w.pool.metrics[w.id]
		w.depth++
		if w.depth == 1 {
			t0 = time.Now()
		}
	}
	for w.shouldSplit(s) {
		mid := s.lo + (s.hi-s.lo)/2
		s.job.pending.Add(1)
		w.dq.pushBottom(span{lo: mid, hi: s.hi, job: s.job})
		w.pool.wake()
		s.hi = mid
		if m != nil {
			m.splits.Add(1)
		}
	}
	j := s.job
	leaves := int64(1)
	if j.part == Static && s.hi-s.lo > j.grain {
		// Execute in grain-size leaf calls, mirroring how TBB's static
		// partitioner still honors the range grain.
		leaves = 0
		for lo := s.lo; lo < s.hi; lo += j.grain {
			hi := lo + j.grain
			if hi > s.hi {
				hi = s.hi
			}
			if j.canceled() {
				// Remaining leaves of a canceled static span are dropped;
				// the single span-level finish below still runs.
				break
			}
			j.execBody(w, lo, hi)
			leaves++
		}
	} else {
		j.execBody(w, s.lo, s.hi)
	}
	if m != nil {
		m.tasks.Add(leaves)
		if w.depth == 1 {
			m.busyNanos.Add(int64(time.Since(t0)))
		}
		w.depth--
	}
	j.finish(1)
}

// helpUntil processes available work until the job completes. It is the
// blocking point for nested ParallelFor calls: the worker keeps the pool
// busy (possibly with spans of other jobs) instead of sleeping.
func (w *Worker) helpUntil(j *job) {
	for !j.doneFlag.Load() {
		if s, ok := w.findWork(); ok {
			w.process(s)
		} else if !j.doneFlag.Load() {
			runtime.Gosched()
		}
	}
}

// newJob prepares a (possibly recycled) job descriptor. The returned
// job has no completion channel; external submitters attach one before
// seeding.
func (p *Pool) newJob(ctx context.Context, n, grain int, part Partitioner, body Body) *job {
	if grain < 1 {
		grain = 1
	}
	initial := n / (4 * len(p.workers))
	if initial < grain {
		initial = grain
	}
	j, _ := p.jobPool.Get().(*job)
	if j == nil {
		j = &job{}
	}
	j.body, j.grain, j.part, j.initial = body, grain, part, initial
	j.ctx = ctx
	j.doneFlag.Store(false)
	j.done = nil
	j.panicVal.Store(nil)
	return j
}

// recycleJob returns a completed job to the pool. Only the submitter
// may call it, after <-j.done or helpUntil has returned.
func (p *Pool) recycleJob(j *job) {
	j.body = nil
	j.done = nil
	j.ctx = nil
	p.jobPool.Put(j)
}

// seed distributes the root spans of a job. For Static the range is cut
// into one contiguous block per worker (no stealing); otherwise the
// whole range is a single span pushed to the submitting worker (or
// worker 0 for external submissions) and thieves carve it up.
func (p *Pool) seed(j *job, n int, home *Worker) {
	if j.part == Static {
		nw := len(p.workers)
		per := (n + nw - 1) / nw
		if per < j.grain {
			per = j.grain
		}
		// Publish the full span count on pending BEFORE pushing any
		// span (mirroring the non-static path's increment-then-push
		// order): a worker that pops and finishes an early span while
		// later spans are still unpushed must never observe a transient
		// count that lets its finish reach zero and close the job with
		// leaves still pending.
		count := int64((n + per - 1) / per)
		j.pending.Add(count)
		for lo, i := 0, 0; lo < n; lo, i = lo+per, i+1 {
			hi := lo + per
			if hi > n {
				hi = n
			}
			p.workers[i%len(p.workers)].dq.pushBottom(span{lo: lo, hi: hi, job: j})
		}
		// Broadcast under the lock: a worker between its last failed
		// work search and cond.Wait holds p.mu, so acquiring it here
		// guarantees the worker either saw the pushed spans or is
		// already waiting and receives this wakeup.
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	j.pending.Add(1)
	target := home
	if target == nil {
		target = p.workers[0]
	}
	target.dq.pushBottom(span{lo: 0, hi: n, job: j})
	p.wake()
}

// ParallelFor runs body over [0, n) using the pool and blocks until all
// leaves have executed. It is safe to call from any goroutine that is
// not a pool worker; inside a Body, call Worker.ParallelFor instead.
func (p *Pool) ParallelFor(n, grain int, part Partitioner, body Body) {
	p.ParallelForCtx(nil, n, grain, part, body)
}

// ParallelForCtx is ParallelFor with cooperative cancellation: once ctx
// is canceled, workers stop executing this loop's remaining leaves
// (leaf bodies already running finish) and the call returns ctx.Err().
// A nil ctx never cancels. After a non-nil error the loop's side
// effects are partial; callers must discard them.
func (p *Pool) ParallelForCtx(ctx context.Context, n, grain int, part Partitioner, body Body) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if n <= 0 {
		return nil
	}
	j := p.newJob(ctx, n, grain, part, body)
	j.done = make(chan struct{})
	p.seed(j, n, nil)
	<-j.done
	j.rethrow(p)
	p.recycleJob(j)
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// ParallelFor runs a nested loop from inside a Body. The calling worker
// participates: it processes spans (of this or other jobs) until the
// nested loop completes.
func (w *Worker) ParallelFor(n, grain int, part Partitioner, body Body) {
	w.ParallelForCtx(nil, n, grain, part, body)
}

// ParallelForCtx is Worker.ParallelFor with cooperative cancellation,
// with the same contract as Pool.ParallelForCtx. It stays on the
// nested (channel-free, allocation-free) completion path, so the
// kernels' per-iteration vertex loops can carry a context without
// giving up the pooled-job steady state.
func (w *Worker) ParallelForCtx(ctx context.Context, n, grain int, part Partitioner, body Body) error {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	if n <= 0 {
		return nil
	}
	j := w.pool.newJob(ctx, n, grain, part, body)
	w.pool.seed(j, n, w)
	w.helpUntil(j)
	j.rethrow(w.pool)
	w.pool.recycleJob(j)
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Run executes fn on some pool worker and waits for it; it is a
// convenience for moving a serial computation onto the pool so that
// nested ParallelFor calls have a Worker context.
func (p *Pool) Run(fn func(w *Worker)) {
	p.ParallelFor(1, 1, Auto, func(w *Worker, _, _ int) { fn(w) })
}

// RunCtx is Run with a context: fn still runs to completion once
// started (cancellation inside fn is fn's business, via the loops it
// forks), but a ctx canceled before a worker picks the task up skips
// fn entirely and RunCtx returns ctx.Err(). A nil ctx never cancels.
func (p *Pool) RunCtx(ctx context.Context, fn func(w *Worker)) error {
	return p.ParallelForCtx(ctx, 1, 1, Auto, func(w *Worker, _, _ int) { fn(w) })
}
