package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// catchPanic runs fn and returns the recovered panic value (nil if fn
// returned normally).
func catchPanic(fn func()) (rec any) {
	defer func() { rec = recover() }()
	fn()
	return nil
}

func TestLeafPanicPropagatesToSubmitter(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	boom := errors.New("boom")
	rec := catchPanic(func() {
		p.ParallelFor(1000, 1, Simple, func(_ *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 537 {
					panic(boom)
				}
			}
		})
	})
	pe, ok := rec.(*PanicError)
	if !ok {
		t.Fatalf("recovered %#v, want *PanicError", rec)
	}
	if pe.Value != boom {
		t.Fatalf("PanicError.Value = %v, want %v", pe.Value, boom)
	}
	if !errors.Is(pe, boom) {
		t.Fatal("errors.Is(pe, boom) = false; Unwrap broken")
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty")
	}

	// The pool must remain fully usable after a panicked job.
	var sum atomic.Int64
	p.ParallelFor(100, 1, Auto, func(_ *Worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 4950 {
		t.Fatalf("pool broken after panic: sum = %d, want 4950", sum.Load())
	}
}

func TestLeafPanicAbandonsRemainingSpans(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	var executed atomic.Int64
	rec := catchPanic(func() {
		p.ParallelFor(10000, 1, Simple, func(_ *Worker, lo, hi int) {
			executed.Add(int64(hi - lo))
			panic("first leaf dies")
		})
	})
	if rec == nil {
		t.Fatal("no panic propagated")
	}
	// Some leaves may already be in flight on other workers when the
	// first panic lands, but the vast majority must be skipped.
	if n := executed.Load(); n > 5000 {
		t.Fatalf("%d of 10000 indices executed after a leaf panic; spans were not abandoned", n)
	}
}

func TestNestedLeafPanicPropagatesThroughForkChain(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	// Outer body catches the inner loop's re-raised panic: this is the
	// seam core's per-window isolation relies on — a panic in a nested
	// vertex loop surfaces at the worker that forked it, not on the
	// thief that executed the leaf.
	var caught atomic.Int64
	p.ParallelFor(8, 1, Simple, func(w *Worker, lo, hi int) {
		rec := catchPanic(func() {
			w.ParallelFor(256, 1, Simple, func(_ *Worker, ilo, ihi int) {
				if ilo <= 100 && 100 < ihi {
					panic(fmt.Sprintf("inner %d", lo))
				}
			})
		})
		if rec != nil {
			caught.Add(1)
		}
	})
	if caught.Load() != int64(8) {
		t.Fatalf("caught %d inner panics, want 8", caught.Load())
	}
}

func TestStaticLeafPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	rec := catchPanic(func() {
		p.ParallelFor(1000, 10, Static, func(_ *Worker, lo, hi int) {
			if lo <= 500 && 500 < hi {
				panic("static leaf")
			}
		})
	})
	if _, ok := rec.(*PanicError); !ok {
		t.Fatalf("recovered %#v, want *PanicError", rec)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	rec := catchPanic(func() {
		p.Run(func(*Worker) { panic("run body") })
	})
	pe, ok := rec.(*PanicError)
	if !ok || pe.Value != "run body" {
		t.Fatalf("recovered %#v, want *PanicError{run body}", rec)
	}
}

func TestPanicThenReuseUnderLoad(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 50; round++ {
		rec := catchPanic(func() {
			p.ParallelFor(64, 1, Auto, func(_ *Worker, lo, hi int) {
				if lo == 0 {
					panic(round)
				}
			})
		})
		if rec == nil {
			t.Fatalf("round %d: panic lost", round)
		}
		var n atomic.Int64
		p.ParallelFor(64, 1, Auto, func(_ *Worker, lo, hi int) { n.Add(int64(hi - lo)) })
		if n.Load() != 64 {
			t.Fatalf("round %d: pool degraded, %d/64 leaves ran", round, n.Load())
		}
	}
}
