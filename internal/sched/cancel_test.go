package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelForCtxNilContextCompletes(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	//nolint — nil ctx is the documented "never cancels" form.
	if err := p.ParallelForCtx(nil, 1000, 10, Auto, func(_ *Worker, lo, hi int) {
		n.Add(int64(hi - lo))
	}); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if n.Load() != 1000 {
		t.Fatalf("covered %d of 1000", n.Load())
	}
}

func TestParallelForCtxPreCanceled(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	err := p.ParallelForCtx(ctx, 1000, 10, Auto, func(_ *Worker, lo, hi int) {
		n.Add(int64(hi - lo))
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n.Load() != 0 {
		t.Fatalf("pre-canceled loop still ran %d items", n.Load())
	}
}

func TestParallelForCtxMidLoopCancel(t *testing.T) {
	for _, part := range []Partitioner{Auto, Simple, Static} {
		t.Run(part.String(), func(t *testing.T) {
			p := NewPool(4)
			defer p.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var n atomic.Int64
			err := p.ParallelForCtx(ctx, 1<<16, 1, part, func(_ *Worker, lo, hi int) {
				if n.Add(int64(hi-lo)) > 100 {
					cancel()
				}
				time.Sleep(time.Microsecond)
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if n.Load() >= 1<<16 {
				t.Fatal("cancellation did not skip any work")
			}
		})
	}
}

func TestParallelForCtxCancelStillJoins(t *testing.T) {
	// After a canceled loop returns, no leaf of that loop may still be
	// running: launch a second loop writing the same cells and look for
	// overlap.
	p := NewPool(4)
	defer p.Close()
	cells := make([]atomic.Int32, 1<<12)
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	_ = p.ParallelForCtx(ctx, len(cells), 1, Auto, func(_ *Worker, lo, hi int) {
		if n.Add(1) == 10 {
			cancel()
		}
		for i := lo; i < hi; i++ {
			cells[i].Add(1)
			time.Sleep(time.Microsecond)
			cells[i].Add(-1)
		}
	})
	// The join guarantee: every span either ran to completion or was
	// skipped, so all cells are back to zero the moment the call returns.
	for i := range cells {
		if v := cells[i].Load(); v != 0 {
			t.Fatalf("cell %d still mid-flight after return (v=%d)", i, v)
		}
	}
}

func TestRunCtxCancel(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := p.RunCtx(ctx, func(_ *Worker) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("pre-canceled RunCtx still executed fn")
	}
	if err := p.RunCtx(context.Background(), func(_ *Worker) { ran = true }); err != nil {
		t.Fatalf("live ctx: %v", err)
	}
	if !ran {
		t.Fatal("RunCtx did not execute fn")
	}
}

func TestWorkerParallelForCtxNestedCancel(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var inner atomic.Int64
	err := p.RunCtx(ctx, func(w *Worker) {
		_ = w.ParallelForCtx(ctx, 1<<16, 1, Auto, func(_ *Worker, lo, hi int) {
			if inner.Add(int64(hi-lo)) > 50 {
				cancel()
			}
			time.Sleep(time.Microsecond)
		})
	})
	// The outer RunCtx span had already started when cancel hit, so the
	// outer error may be nil or Canceled; the inner loop must have
	// short-circuited either way.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	if inner.Load() >= 1<<16 {
		t.Fatal("nested cancellation did not skip any work")
	}
}

func TestCancelLeavesPoolUsable(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 50; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		_ = p.ParallelForCtx(ctx, 4096, 1, Auto, func(_ *Worker, lo, hi int) {
			if n.Add(1) == 3 {
				cancel()
			}
		})
		cancel()
		// A plain loop right after must still cover everything.
		var m atomic.Int64
		p.ParallelFor(4096, 64, Auto, func(_ *Worker, lo, hi int) { m.Add(int64(hi - lo)) })
		if m.Load() != 4096 {
			t.Fatalf("round %d: post-cancel loop covered %d of 4096", round, m.Load())
		}
	}
}

func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		_ = p.ParallelForCtx(ctx, 1<<14, 1, Auto, func(_ *Worker, lo, hi int) {
			if n.Add(1) == 2 {
				cancel()
			}
		})
		cancel()
	}
	p.Close()
	// Workers park and exit on Close; give the runtime a moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}
