package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStatsTasksEqualLeaves checks the core invariant: with metrics
// enabled, TotalTasks equals the number of leaf body invocations, for
// every partitioner, and Static performs no steals and no splits.
func TestStatsTasksEqualLeaves(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		p.EnableMetrics(true)
		for _, part := range []Partitioner{Auto, Simple, Static} {
			for _, n := range []int{1, 7, 100, 1000} {
				for _, grain := range []int{1, 8, 1000} {
					p.ResetMetrics()
					var leaves int64
					p.ParallelFor(n, grain, part, func(_ *Worker, lo, hi int) {
						atomic.AddInt64(&leaves, 1)
					})
					st := p.Stats()
					if st.TotalTasks() != leaves {
						t.Fatalf("part=%v n=%d grain=%d: TotalTasks=%d, leaves=%d",
							part, n, grain, st.TotalTasks(), leaves)
					}
					if part == Static {
						if st.TotalSteals() != 0 {
							t.Fatalf("static: %d steals, want 0", st.TotalSteals())
						}
						if st.TotalSplits() != 0 {
							t.Fatalf("static: %d splits, want 0", st.TotalSplits())
						}
					}
				}
			}
		}
	})
}

func TestStatsNestedParallelFor(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		p.EnableMetrics(true)
		p.ResetMetrics()
		var leaves int64
		const outer, inner = 12, 64
		p.ParallelFor(outer, 1, Auto, func(w *Worker, lo, hi int) {
			atomic.AddInt64(&leaves, 1)
			for i := lo; i < hi; i++ {
				w.ParallelFor(inner, 4, Auto, func(_ *Worker, _, _ int) {
					atomic.AddInt64(&leaves, 1)
				})
			}
		})
		st := p.Stats()
		if st.TotalTasks() != leaves {
			t.Fatalf("nested: TotalTasks=%d, leaves=%d", st.TotalTasks(), leaves)
		}
		if st.TotalBusy() <= 0 {
			t.Fatal("no busy time recorded")
		}
		// Busy time is only accumulated at the outermost nesting level,
		// so the per-worker sum must not exceed the wall time budget by
		// double-counting: each worker's busy must be under the test's
		// total runtime. Weak but catches gross double-counting.
		for i, w := range st.Workers {
			if w.BusyNanos < 0 {
				t.Fatalf("worker %d negative busy %d", i, w.BusyNanos)
			}
		}
	})
}

func TestStatsDisabledCollectsNothing(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		p.ParallelFor(500, 2, Simple, func(_ *Worker, _, _ int) {})
		st := p.Stats()
		if st.TotalTasks() != 0 || st.TotalSteals() != 0 || st.TotalSplits() != 0 || st.TotalBusy() != 0 {
			t.Fatalf("disabled pool recorded counters: %+v", st)
		}
	})
}

func TestStatsResetAndDelta(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		p.EnableMetrics(true)
		p.ParallelFor(100, 1, Simple, func(_ *Worker, _, _ int) {})
		before := p.Stats()
		if before.TotalTasks() == 0 {
			t.Fatal("no tasks recorded")
		}
		p.ParallelFor(40, 1, Simple, func(_ *Worker, _, _ int) {})
		delta := p.Stats().Delta(before)
		if delta.TotalTasks() != 40 {
			t.Fatalf("delta tasks = %d, want 40", delta.TotalTasks())
		}
		p.ResetMetrics()
		if st := p.Stats(); st.TotalTasks() != 0 {
			t.Fatalf("reset left %d tasks", st.TotalTasks())
		}
	})
}

func TestStatsImbalance(t *testing.T) {
	var s Stats
	if got := s.Imbalance(); got != 0 {
		t.Fatalf("empty stats imbalance = %v, want 0", got)
	}
	s = Stats{Workers: []WorkerStats{{BusyNanos: 100}, {BusyNanos: 100}}}
	if got := s.Imbalance(); got != 1 {
		t.Fatalf("balanced imbalance = %v, want 1", got)
	}
	s = Stats{Workers: []WorkerStats{{BusyNanos: 200}, {BusyNanos: 0}}}
	if got := s.Imbalance(); got != 2 {
		t.Fatalf("one-sided imbalance = %v, want 2", got)
	}
}

func TestStatsIdleTimeRecorded(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		p.EnableMetrics(true)
		// Run one loop so workers cycle through the park path, then give
		// them time to sit idle and wake them with a second loop.
		p.ParallelFor(8, 1, Simple, func(_ *Worker, _, _ int) {})
		time.Sleep(20 * time.Millisecond)
		p.ParallelFor(8, 1, Simple, func(_ *Worker, _, _ int) {})
		var idle int64
		for _, w := range p.Stats().Workers {
			idle += w.IdleNanos
		}
		if idle <= 0 {
			t.Fatal("no idle time recorded")
		}
	})
}

func TestStatsStealsHappenUnderImbalance(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		p.EnableMetrics(true)
		p.ResetMetrics()
		// A grain-1 simple loop with blocking leaves forces demand and
		// therefore splits + steals on a multi-worker pool.
		p.ParallelFor(256, 1, Simple, func(_ *Worker, lo, _ int) {
			if lo == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		})
		st := p.Stats()
		if st.TotalSplits() == 0 {
			t.Fatal("simple partitioner recorded no splits")
		}
		if st.TotalSteals() == 0 {
			t.Fatal("no steals recorded despite imbalance")
		}
	})
}
