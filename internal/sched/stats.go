package sched

import (
	"sync/atomic"
	"time"
)

// workerMetrics is one worker's counter slot. Each worker writes only
// its own slot; Stats snapshots read across slots. The struct is padded
// to two cache lines so neighboring workers never false-share.
type workerMetrics struct {
	tasks     atomic.Int64 // leaf body invocations
	steals    atomic.Int64 // spans taken from another worker's deque
	splits    atomic.Int64 // spans divided before execution
	busyNanos atomic.Int64 // time inside process() at nesting depth 0
	idleNanos atomic.Int64 // time parked in cond.Wait
	_         [88]byte
}

func (m *workerMetrics) reset() {
	m.tasks.Store(0)
	m.steals.Store(0)
	m.splits.Store(0)
	m.busyNanos.Store(0)
	m.idleNanos.Store(0)
}

// WorkerStats is one worker's share of a Stats snapshot.
type WorkerStats struct {
	// Tasks is the number of leaf body invocations the worker executed.
	Tasks int64 `json:"tasks"`
	// Steals counts spans the worker took from another worker's deque.
	Steals int64 `json:"steals"`
	// Splits counts spans the worker divided before executing.
	Splits int64 `json:"splits"`
	// BusyNanos is time spent executing spans (outermost nesting level
	// only, so nested ParallelFor work is not double-counted).
	BusyNanos int64 `json:"busy_nanos"`
	// IdleNanos is time spent parked waiting for work.
	IdleNanos int64 `json:"idle_nanos"`
}

// Stats is a snapshot of the pool's per-worker counters, taken with
// Pool.Stats. Counters only advance while metrics collection is enabled
// (Pool.EnableMetrics).
type Stats struct {
	Workers []WorkerStats `json:"workers"`
}

// TotalTasks sums leaf executions across workers.
func (s Stats) TotalTasks() int64 {
	var t int64
	for _, w := range s.Workers {
		t += w.Tasks
	}
	return t
}

// TotalSteals sums steals across workers.
func (s Stats) TotalSteals() int64 {
	var t int64
	for _, w := range s.Workers {
		t += w.Steals
	}
	return t
}

// TotalSplits sums span splits across workers.
func (s Stats) TotalSplits() int64 {
	var t int64
	for _, w := range s.Workers {
		t += w.Splits
	}
	return t
}

// TotalBusy sums busy time across workers.
func (s Stats) TotalBusy() time.Duration {
	var t int64
	for _, w := range s.Workers {
		t += w.BusyNanos
	}
	return time.Duration(t)
}

// Imbalance is the load-balance summary: max worker busy time divided
// by the mean busy time over all workers (1.0 = perfectly balanced,
// NumWorkers = one worker did everything). Returns 0 when no busy time
// was recorded.
func (s Stats) Imbalance() float64 {
	var max, sum int64
	for _, w := range s.Workers {
		sum += w.BusyNanos
		if w.BusyNanos > max {
			max = w.BusyNanos
		}
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(s.Workers))
	return float64(max) / mean
}

// Delta returns this snapshot minus an earlier one, so a caller sharing
// a long-lived pool can attribute counters to one run.
func (s Stats) Delta(prev Stats) Stats {
	out := Stats{Workers: make([]WorkerStats, len(s.Workers))}
	copy(out.Workers, s.Workers)
	for i := range out.Workers {
		if i >= len(prev.Workers) {
			break
		}
		out.Workers[i].Tasks -= prev.Workers[i].Tasks
		out.Workers[i].Steals -= prev.Workers[i].Steals
		out.Workers[i].Splits -= prev.Workers[i].Splits
		out.Workers[i].BusyNanos -= prev.Workers[i].BusyNanos
		out.Workers[i].IdleNanos -= prev.Workers[i].IdleNanos
	}
	return out
}

// EnableMetrics turns per-worker counter collection on or off. The
// disabled path costs one atomic load per span, so the default
// configuration measures nothing and pays nothing. Toggle while the
// pool is quiescent (between ParallelFor calls) for exact counts.
func (p *Pool) EnableMetrics(on bool) { p.metricsOn.Store(on) }

// MetricsEnabled reports whether collection is on.
func (p *Pool) MetricsEnabled() bool { return p.metricsOn.Load() }

// ResetMetrics zeroes all per-worker counters.
func (p *Pool) ResetMetrics() {
	for i := range p.metrics {
		p.metrics[i].reset()
	}
}

// Stats snapshots the per-worker counters.
func (p *Pool) Stats() Stats {
	st := Stats{Workers: make([]WorkerStats, len(p.metrics))}
	for i := range p.metrics {
		m := &p.metrics[i]
		st.Workers[i] = WorkerStats{
			Tasks:     m.tasks.Load(),
			Steals:    m.steals.Load(),
			Splits:    m.splits.Load(),
			BusyNanos: m.busyNanos.Load(),
			IdleNanos: m.idleNanos.Load(),
		}
	}
	return st
}
