package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func withPool(t *testing.T, n int, fn func(p *Pool)) {
	t.Helper()
	p := NewPool(n)
	defer p.Close()
	fn(p)
}

// coverageCheck runs a parallel loop and verifies every index is
// executed exactly once.
func coverageCheck(t *testing.T, p *Pool, n, grain int, part Partitioner) {
	t.Helper()
	counts := make([]int32, n)
	p.ParallelFor(n, grain, part, func(_ *Worker, lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("bad leaf range [%d, %d) for n=%d", lo, hi, n)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("part=%v n=%d grain=%d: index %d executed %d times", part, n, grain, i, c)
		}
	}
}

func TestParallelForCoverage(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		for _, part := range []Partitioner{Auto, Simple, Static} {
			for _, n := range []int{1, 2, 3, 7, 64, 1000, 4096} {
				for _, grain := range []int{1, 2, 16, 1000, 100000} {
					coverageCheck(t, p, n, grain, part)
				}
			}
		}
	})
}

func TestParallelForZeroAndNegative(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		ran := false
		p.ParallelFor(0, 1, Auto, func(_ *Worker, _, _ int) { ran = true })
		p.ParallelFor(-5, 1, Simple, func(_ *Worker, _, _ int) { ran = true })
		if ran {
			t.Fatal("body ran for empty range")
		}
	})
}

func TestGrainBoundsLeafSize(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const n, grain = 1000, 8
		var maxLeaf int64
		p.ParallelFor(n, grain, Simple, func(_ *Worker, lo, hi int) {
			for {
				cur := atomic.LoadInt64(&maxLeaf)
				if int64(hi-lo) <= cur || atomic.CompareAndSwapInt64(&maxLeaf, cur, int64(hi-lo)) {
					break
				}
			}
		})
		if maxLeaf > grain {
			t.Fatalf("simple partitioner produced leaf of %d > grain %d", maxLeaf, grain)
		}
	})
}

func TestStaticLeavesRespectGrainCalls(t *testing.T) {
	withPool(t, 3, func(p *Pool) {
		const n, grain = 100, 7
		var leaves int64
		p.ParallelFor(n, grain, Static, func(_ *Worker, lo, hi int) {
			if hi-lo > grain {
				t.Errorf("static leaf [%d,%d) exceeds grain %d", lo, hi, grain)
			}
			atomic.AddInt64(&leaves, 1)
		})
		if leaves == 0 {
			t.Fatal("no leaves executed")
		}
	})
}

func TestSingleWorkerPool(t *testing.T) {
	withPool(t, 1, func(p *Pool) {
		for _, part := range []Partitioner{Auto, Simple, Static} {
			coverageCheck(t, p, 257, 4, part)
		}
	})
}

func TestNestedParallelFor(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		const outer, inner = 20, 100
		counts := make([][]int32, outer)
		for i := range counts {
			counts[i] = make([]int32, inner)
		}
		p.ParallelFor(outer, 1, Auto, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				i := i
				w.ParallelFor(inner, 8, Auto, func(_ *Worker, jlo, jhi int) {
					for j := jlo; j < jhi; j++ {
						atomic.AddInt32(&counts[i][j], 1)
					}
				})
			}
		})
		for i := range counts {
			for j, c := range counts[i] {
				if c != 1 {
					t.Fatalf("nested index (%d, %d) executed %d times", i, j, c)
				}
			}
		}
	})
}

func TestDeeplyNested(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var total int64
		p.ParallelFor(4, 1, Simple, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				w.ParallelFor(4, 1, Simple, func(w2 *Worker, lo2, hi2 int) {
					for j := lo2; j < hi2; j++ {
						w2.ParallelFor(4, 1, Simple, func(_ *Worker, lo3, hi3 int) {
							atomic.AddInt64(&total, int64(hi3-lo3))
						})
					}
				})
			}
		})
		if total != 64 {
			t.Fatalf("3-deep nest executed %d leaves, want 64", total)
		}
	})
}

func TestNestedMixedPartitioners(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var total int64
		p.ParallelFor(8, 1, Static, func(w *Worker, lo, hi int) {
			for i := lo; i < hi; i++ {
				w.ParallelFor(50, 5, Simple, func(_ *Worker, jlo, jhi int) {
					atomic.AddInt64(&total, int64(jhi-jlo))
				})
			}
		})
		if total != 400 {
			t.Fatalf("total = %d, want 400", total)
		}
	})
}

func TestConcurrentExternalLoops(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var wg sync.WaitGroup
		var total int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p.ParallelFor(500, 10, Auto, func(_ *Worker, lo, hi int) {
					atomic.AddInt64(&total, int64(hi-lo))
				})
			}()
		}
		wg.Wait()
		if total != 8*500 {
			t.Fatalf("total = %d, want %d", total, 8*500)
		}
	})
}

func TestWorkIsActuallyParallel(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		var concurrent, peak int32
		p.ParallelFor(64, 1, Simple, func(_ *Worker, lo, hi int) {
			c := atomic.AddInt32(&concurrent, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if c <= old || atomic.CompareAndSwapInt32(&peak, old, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt32(&concurrent, -1)
		})
		if peak < 2 {
			t.Fatalf("peak concurrency %d; work did not run in parallel", peak)
		}
	})
}

func TestImbalancedLoadIsStolen(t *testing.T) {
	// One heavy index among many light ones: with stealing, the wall
	// time should be near the heavy index cost, not heavy+light serial.
	withPool(t, 4, func(p *Pool) {
		workerSet := make(map[int]bool)
		var mu sync.Mutex
		p.ParallelFor(256, 1, Auto, func(w *Worker, lo, hi int) {
			mu.Lock()
			workerSet[w.ID()] = true
			mu.Unlock()
			if lo == 0 {
				time.Sleep(20 * time.Millisecond)
			}
		})
		if len(workerSet) < 2 {
			t.Fatalf("only %d workers participated; stealing broken", len(workerSet))
		}
	})
}

func TestWorkerIDsInRange(t *testing.T) {
	withPool(t, 3, func(p *Pool) {
		if p.NumWorkers() != 3 {
			t.Fatalf("NumWorkers = %d", p.NumWorkers())
		}
		p.ParallelFor(100, 1, Simple, func(w *Worker, _, _ int) {
			if w.ID() < 0 || w.ID() >= 3 {
				t.Errorf("worker id %d out of range", w.ID())
			}
			if w.Pool() != p {
				t.Error("worker reports wrong pool")
			}
		})
	})
}

func TestRunExecutesOnWorker(t *testing.T) {
	withPool(t, 2, func(p *Pool) {
		var ran int64
		p.Run(func(w *Worker) {
			w.ParallelFor(10, 1, Auto, func(_ *Worker, lo, hi int) {
				atomic.AddInt64(&ran, int64(hi-lo))
			})
		})
		if ran != 10 {
			t.Fatalf("nested loop from Run executed %d, want 10", ran)
		}
	})
}

func TestDefaultPoolSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.NumWorkers() < 1 {
		t.Fatalf("NumWorkers = %d", p.NumWorkers())
	}
}

func TestCoverageQuick(t *testing.T) {
	withPool(t, 4, func(p *Pool) {
		f := func(nRaw uint16, grainRaw uint8, partRaw uint8) bool {
			n := int(nRaw%2000) + 1
			grain := int(grainRaw%64) + 1
			part := Partitioner(partRaw % 3)
			counts := make([]int32, n)
			p.ParallelFor(n, grain, part, func(_ *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for _, c := range counts {
				if c != 1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCloseStopsWorkers(t *testing.T) {
	p := NewPool(2)
	p.ParallelFor(10, 1, Auto, func(_ *Worker, _, _ int) {})
	p.Close()
	// Closing twice must not panic or hang.
	p.Close()
}

func TestPartitionerString(t *testing.T) {
	if Auto.String() != "auto" || Simple.String() != "simple" || Static.String() != "static" {
		t.Fatal("partitioner names wrong")
	}
	if Partitioner(9).String() == "" {
		t.Fatal("unknown partitioner should still format")
	}
}

func TestStaticSeedNoLostWakeup(t *testing.T) {
	// Regression: static seeding used to broadcast without holding the
	// pool mutex, losing the wakeup when a worker sat between its last
	// failed work search and cond.Wait — deadlocking 1-worker pools.
	withPool(t, 1, func(p *Pool) {
		for i := 0; i < 5000; i++ {
			var n int64
			p.ParallelFor(3, 1, Static, func(_ *Worker, lo, hi int) {
				atomic.AddInt64(&n, int64(hi-lo))
			})
			if n != 3 {
				t.Fatalf("iteration %d: covered %d of 3", i, n)
			}
		}
	})
}

func TestStaticSeedStressMultiWorker(t *testing.T) {
	withPool(t, 3, func(p *Pool) {
		for i := 0; i < 2000; i++ {
			var n int64
			p.ParallelFor(17, 2, Static, func(_ *Worker, lo, hi int) {
				atomic.AddInt64(&n, int64(hi-lo))
			})
			if n != 17 {
				t.Fatalf("iteration %d: covered %d of 17", i, n)
			}
		}
	})
}

func TestStaticPartitionerNeverSteals(t *testing.T) {
	// With the static partitioner, the worker executing an index is a
	// pure function of the block layout: runs must be identical across
	// repetitions even under load.
	withPool(t, 3, func(p *Pool) {
		const n, grain = 90, 5
		record := func() []int {
			owner := make([]int, n)
			p.ParallelFor(n, grain, Static, func(w *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					owner[i] = w.ID()
				}
			})
			return owner
		}
		first := record()
		for rep := 0; rep < 20; rep++ {
			got := record()
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("rep %d: index %d moved from worker %d to %d (static must not steal)",
						rep, i, first[i], got[i])
				}
			}
		}
	})
}

func TestAutoCoarsensWithLargeGrain(t *testing.T) {
	// A grain covering the whole range must produce a single leaf call.
	withPool(t, 4, func(p *Pool) {
		var leaves int64
		p.ParallelFor(1000, 1<<20, Auto, func(_ *Worker, lo, hi int) {
			atomic.AddInt64(&leaves, 1)
			if lo != 0 || hi != 1000 {
				t.Errorf("leaf [%d,%d), want whole range", lo, hi)
			}
		})
		if leaves != 1 {
			t.Fatalf("got %d leaves, want 1", leaves)
		}
	})
}

func TestStaticSeedConcurrentStress(t *testing.T) {
	// Regression for the static seeding race: spans used to be pushed
	// before the span count was added to pending, so a worker that
	// popped and finished an early span could drive pending negative
	// and the later bulk increment could return 0 without closing the
	// job — a ParallelFor that hangs or returns with leaves unexecuted.
	// Many small static loops submitted from several goroutines at once
	// maximize the window; run under -race in CI.
	withPool(t, 4, func(p *Pool) {
		const submitters = 8
		const rounds = 400
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					n := 1 + (g+i)%9
					var covered int64
					p.ParallelFor(n, 1, Static, func(_ *Worker, lo, hi int) {
						atomic.AddInt64(&covered, int64(hi-lo))
					})
					if got := atomic.LoadInt64(&covered); got != int64(n) {
						t.Errorf("goroutine %d round %d: covered %d of %d", g, i, got, n)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

func TestStaticSeedNestedStress(t *testing.T) {
	// The same race, exercised through the nested path: workers inside a
	// body fork small static loops while helping, so early finishes race
	// the seeding worker's remaining pushes.
	withPool(t, 4, func(p *Pool) {
		for i := 0; i < 200; i++ {
			var covered int64
			p.ParallelFor(8, 1, Auto, func(w *Worker, lo, hi int) {
				for j := lo; j < hi; j++ {
					w.ParallelFor(5, 1, Static, func(_ *Worker, slo, shi int) {
						atomic.AddInt64(&covered, int64(shi-slo))
					})
				}
			})
			if got := atomic.LoadInt64(&covered); got != 8*5 {
				t.Fatalf("round %d: covered %d of %d", i, got, 8*5)
			}
		}
	})
}

func TestNestedParallelForDoesNotAllocate(t *testing.T) {
	// Nested loops run on pooled job descriptors with a flag-based
	// completion signal; after warm-up the steady state must not
	// allocate at all on the submitting worker.
	withPool(t, 2, func(p *Pool) {
		var sink int64
		p.Run(func(w *Worker) {
			inner := func(_ *Worker, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&sink, 1)
				}
			}
			for i := 0; i < 10; i++ { // warm the job pool and deques
				w.ParallelFor(64, 8, Auto, inner)
			}
			allocs := testing.AllocsPerRun(100, func() {
				w.ParallelFor(64, 8, Auto, inner)
			})
			if allocs != 0 {
				t.Errorf("nested ParallelFor allocates %.1f objects/op, want 0", allocs)
			}
		})
	})
}
