// Package cliutil holds the command-line plumbing shared by the cmd/
// front-ends: the engine flag set (kernel, parallel mode, partitioner,
// multi-window and scheduler knobs) that pmrank and pmserve register
// identically, the string-to-enum parsers behind those flags, and the
// format-sniffing event-log reader. Keeping this in one place means a
// flag added for the solver is immediately available to the serving
// daemon's -solve mode with the same name, default, and semantics.
package cliutil

import (
	"flag"
	"fmt"
	"os"

	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/sched"
)

// EngineFlags carries the values of the shared engine flag set after
// parsing. Field defaults mirror core.DefaultConfig.
type EngineFlags struct {
	// Kernel is the kernel name: spmm, spmv, or spmv-blocked.
	Kernel string
	// Mode is the parallelism mode: nested, app, or window.
	Mode string
	// Partitioner selects the scheduler partitioner: auto, simple, or
	// static.
	Partitioner string
	// MW is the number of multi-window graphs.
	MW int
	// VecLen is the SpMM vector length.
	VecLen int
	// Grain is the scheduler grain size.
	Grain int
	// NoPartial disables partial initialization.
	NoPartial bool
	// Directed treats events as directed (no symmetrization).
	Directed bool
	// Workers is the pool size (0 = GOMAXPROCS).
	Workers int
}

// RegisterEngineFlags registers the shared engine flag set on fs with
// the canonical names and defaults (-kernel, -mode, -partitioner, -mw,
// -veclen, -grain, -no-partial, -directed, -workers) and returns the
// struct the parsed values land in.
func RegisterEngineFlags(fs *flag.FlagSet) *EngineFlags {
	ef := &EngineFlags{}
	fs.StringVar(&ef.Kernel, "kernel", "spmm", "kernel: spmm, spmv or spmv-blocked")
	fs.StringVar(&ef.Mode, "mode", "nested", "parallelism: nested, app or window")
	fs.StringVar(&ef.Partitioner, "partitioner", "auto", "partitioner: auto, simple or static")
	fs.IntVar(&ef.MW, "mw", 6, "number of multi-window graphs")
	fs.IntVar(&ef.VecLen, "veclen", 8, "SpMM vector length")
	fs.IntVar(&ef.Grain, "grain", 2, "scheduler grain size")
	fs.BoolVar(&ef.NoPartial, "no-partial", false, "disable partial initialization")
	fs.BoolVar(&ef.Directed, "directed", false, "treat events as directed (default: symmetrize)")
	fs.IntVar(&ef.Workers, "workers", 0, "pool size (0 = GOMAXPROCS)")
	return ef
}

// KernelID resolves the -kernel flag value.
func (ef *EngineFlags) KernelID() core.KernelID { return ParseKernel(ef.Kernel) }

// ParallelMode resolves the -mode flag value.
func (ef *EngineFlags) ParallelMode() core.ParallelMode { return ParseMode(ef.Mode) }

// SchedPartitioner resolves the -partitioner flag value.
func (ef *EngineFlags) SchedPartitioner() sched.Partitioner { return ParsePartitioner(ef.Partitioner) }

// ApplyTo copies the flag values into an engine config.
func (ef *EngineFlags) ApplyTo(cfg *core.Config) {
	cfg.Kernel = ef.KernelID()
	cfg.Mode = ef.ParallelMode()
	cfg.Partitioner = ef.SchedPartitioner()
	cfg.NumMultiWindows = ef.MW
	cfg.VectorLen = ef.VecLen
	cfg.Grain = ef.Grain
	cfg.PartialInit = !ef.NoPartial
	cfg.Directed = ef.Directed
}

// ParseKernel maps a kernel flag value to its id (unknown values fall
// back to SpMM, the paper's primary kernel).
func ParseKernel(s string) core.KernelID {
	switch s {
	case "spmv":
		return core.SpMV
	case "spmv-blocked":
		return core.SpMVBlocked
	default:
		return core.SpMM
	}
}

// ParseMode maps a mode flag value to its id (default nested).
func ParseMode(s string) core.ParallelMode {
	switch s {
	case "app":
		return core.AppLevel
	case "window":
		return core.WindowLevel
	default:
		return core.Nested
	}
}

// ParsePartitioner maps a partitioner flag value to its id (default
// auto).
func ParsePartitioner(s string) sched.Partitioner {
	switch s {
	case "simple":
		return sched.Simple
	case "static":
		return sched.Static
	default:
		return sched.Auto
	}
}

// ReadLog opens and decodes an event file, sniffing the binary magic
// to pick the decoder; "-" reads stdin (which must be seekable — pipe
// through a file when it is not).
func ReadLog(path string) (*events.Log, error) {
	f := os.Stdin
	if path != "-" {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
		//pmvet:ignore closecheck -- read-only input; decode errors already surface via the reader
		defer f.Close()
	}
	// Sniff the magic to pick the decoder.
	head := make([]byte, 4)
	n, _ := f.Read(head)
	if _, err := f.Seek(0, 0); err != nil && path == "-" {
		return nil, fmt.Errorf("stdin must be seekable; pipe to a file first")
	}
	if n == 4 && string(head) == "PMEV" {
		return events.ReadBinary(f)
	}
	return events.ReadText(f)
}
