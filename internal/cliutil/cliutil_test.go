package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/sched"
)

func TestEngineFlagDefaultsMatchConfig(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ef := RegisterEngineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	def := core.DefaultConfig()
	cfg := core.DefaultConfig()
	ef.ApplyTo(&cfg)
	if cfg.Kernel != def.Kernel || cfg.Mode != def.Mode || cfg.Partitioner != def.Partitioner {
		t.Fatalf("default engine flags diverge from DefaultConfig: %+v vs %+v", cfg, def)
	}
	if cfg.NumMultiWindows != 6 || cfg.VectorLen != 8 || cfg.Grain != 2 {
		t.Fatalf("unexpected defaults: mw=%d veclen=%d grain=%d", cfg.NumMultiWindows, cfg.VectorLen, cfg.Grain)
	}
	if !cfg.PartialInit || cfg.Directed {
		t.Fatalf("partial=%v directed=%v, want true/false", cfg.PartialInit, cfg.Directed)
	}
}

func TestEngineFlagsApplyTo(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	ef := RegisterEngineFlags(fs)
	args := []string{
		"-kernel", "spmv-blocked", "-mode", "window", "-partitioner", "static",
		"-mw", "3", "-veclen", "4", "-grain", "7", "-no-partial", "-directed",
		"-workers", "2",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	ef.ApplyTo(&cfg)
	if cfg.Kernel != core.SpMVBlocked || cfg.Mode != core.WindowLevel || cfg.Partitioner != sched.Static {
		t.Fatalf("enum flags not applied: %+v", cfg)
	}
	if cfg.NumMultiWindows != 3 || cfg.VectorLen != 4 || cfg.Grain != 7 {
		t.Fatalf("numeric flags not applied: %+v", cfg)
	}
	if cfg.PartialInit || !cfg.Directed {
		t.Fatalf("bool flags not applied: partial=%v directed=%v", cfg.PartialInit, cfg.Directed)
	}
	if ef.Workers != 2 {
		t.Fatalf("workers = %d, want 2", ef.Workers)
	}
}

func TestParsersFallBackToDefaults(t *testing.T) {
	if ParseKernel("nonsense") != core.SpMM {
		t.Fatal("unknown kernel should fall back to SpMM")
	}
	if ParseMode("nonsense") != core.Nested {
		t.Fatal("unknown mode should fall back to Nested")
	}
	if ParsePartitioner("nonsense") != sched.Auto {
		t.Fatal("unknown partitioner should fall back to Auto")
	}
}

// TestReadLogSniffsFormat round-trips the same log through the text and
// binary encoders and checks ReadLog picks the right decoder for each
// from the file contents alone.
func TestReadLogSniffsFormat(t *testing.T) {
	evs := []events.Event{{U: 0, V: 1, T: 10}, {U: 1, V: 2, T: 20}, {U: 2, V: 0, T: 30}}
	l, err := events.NewLog(evs, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, enc func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	textPath := write("events.txt", func(f *os.File) error { return events.WriteText(f, l) })
	binPath := write("events.bin", func(f *os.File) error { return events.WriteBinary(f, l) })
	for _, path := range []string{textPath, binPath} {
		got, err := ReadLog(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.Len() != l.Len() || got.NumVertices() != l.NumVertices() {
			t.Fatalf("%s: decoded %d events / %d vertices, want %d / %d",
				path, got.Len(), got.NumVertices(), l.Len(), l.NumVertices())
		}
	}
}

func TestReadLogMissingFile(t *testing.T) {
	if _, err := ReadLog(filepath.Join(t.TempDir(), "absent.ev")); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}
