// Package csr implements static compressed-sparse-row graphs, the
// substrate of the offline execution model (paper Sec. 3.3.1) and of
// the reference PageRank kernels used as correctness oracles.
//
// A Graph stores out-adjacency in the usual (Row, Col) pair plus the
// in-adjacency of the same edge set (needed by pull-style PageRank) and
// per-vertex out-degrees over the deduplicated edge set.
package csr

import (
	"fmt"
	"sort"

	"pmpr/internal/events"
)

// Graph is a static directed graph in CSR form over vertices
// [0, NumVertices). Parallel edges are removed at construction: the
// sliding-window model treats an edge as present when at least one of
// its events lies in the window, so window graphs are simple graphs.
type Graph struct {
	n int32

	// Out-adjacency: out-neighbors of u are OutCol[OutRow[u]:OutRow[u+1]],
	// sorted ascending.
	OutRow []int64
	OutCol []int32

	// In-adjacency of the same edges: in-neighbors of v are
	// InCol[InRow[v]:InRow[v+1]], sorted ascending.
	InRow []int64
	InCol []int32
}

// NumVertices returns the size of the vertex universe.
func (g *Graph) NumVertices() int32 { return g.n }

// NumEdges returns the number of (deduplicated) directed edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.OutCol)) }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u int32) int64 { return g.OutRow[u+1] - g.OutRow[u] }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v int32) int64 { return g.InRow[v+1] - g.InRow[v] }

// OutNeighbors returns the sorted out-neighbor slice of u (read-only).
func (g *Graph) OutNeighbors(u int32) []int32 { return g.OutCol[g.OutRow[u]:g.OutRow[u+1]] }

// InNeighbors returns the sorted in-neighbor slice of v (read-only).
func (g *Graph) InNeighbors(v int32) []int32 { return g.InCol[g.InRow[v]:g.InRow[v+1]] }

// Active reports whether vertex v is incident to at least one edge.
func (g *Graph) Active(v int32) bool {
	return g.OutDegree(v) > 0 || g.InDegree(v) > 0
}

// ActiveCount returns |V_i|: the number of vertices incident to at
// least one edge.
func (g *Graph) ActiveCount() int32 {
	var c int32
	for v := int32(0); v < g.n; v++ {
		if g.Active(v) {
			c++
		}
	}
	return c
}

// FromEvents builds the window graph induced by evs over numVertices
// vertices. Duplicate (u, v) pairs collapse to a single edge; the
// timestamps are ignored (the caller has already selected the window's
// events, e.g. with Log.Slice). This is exactly the per-window rebuild
// the offline model pays for.
func FromEvents(evs []events.Event, numVertices int32) (*Graph, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("csr: negative vertex count %d", numVertices)
	}
	for i, e := range evs {
		if e.U < 0 || e.U >= numVertices || e.V < 0 || e.V >= numVertices {
			return nil, fmt.Errorf("csr: event %d (%d -> %d) out of range [0, %d)", i, e.U, e.V, numVertices)
		}
	}
	g := &Graph{n: numVertices}
	g.OutRow, g.OutCol = buildSide(evs, numVertices, false)
	g.InRow, g.InCol = buildSide(evs, numVertices, true)
	return g, nil
}

// buildSide builds one CSR side with a counting sort by source (or by
// target when reversed), then sorts and deduplicates each adjacency run.
func buildSide(evs []events.Event, n int32, reversed bool) ([]int64, []int32) {
	row := make([]int64, n+1)
	for _, e := range evs {
		src := e.U
		if reversed {
			src = e.V
		}
		row[src+1]++
	}
	for i := int32(0); i < n; i++ {
		row[i+1] += row[i]
	}
	col := make([]int32, len(evs))
	next := make([]int64, n)
	for i := int32(0); i < n; i++ {
		next[i] = row[i]
	}
	for _, e := range evs {
		src, dst := e.U, e.V
		if reversed {
			src, dst = dst, src
		}
		col[next[src]] = dst
		next[src]++
	}
	// Sort and deduplicate each run, compacting in place.
	w := int64(0)
	newRow := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		run := col[row[u]:row[u+1]]
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
		newRow[u] = w
		var prev int32 = -1
		for _, v := range run {
			if v != prev {
				col[w] = v
				w++
				prev = v
			}
		}
	}
	newRow[n] = w
	return newRow, col[:w:w]
}

// FromLogWindow builds the graph of window [ts, te] of the log.
func FromLogWindow(l *events.Log, ts, te int64) (*Graph, error) {
	return FromEvents(l.Slice(ts, te), l.NumVertices())
}
