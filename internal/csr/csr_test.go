package csr

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"pmpr/internal/events"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func TestFromEventsSmall(t *testing.T) {
	g, err := FromEvents([]events.Event{
		ev(0, 1, 1),
		ev(0, 2, 2),
		ev(1, 2, 3),
		ev(0, 1, 9), // duplicate edge, later event
	}, 4)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (duplicates removed)", g.NumEdges())
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if got := g.InNeighbors(2); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("InNeighbors(2) = %v", got)
	}
	if g.OutDegree(3) != 0 || g.InDegree(3) != 0 || g.Active(3) {
		t.Fatal("isolated vertex 3 should be inactive with zero degrees")
	}
	if g.ActiveCount() != 3 {
		t.Fatalf("ActiveCount = %d, want 3", g.ActiveCount())
	}
}

func TestFromEventsEmpty(t *testing.T) {
	g, err := FromEvents(nil, 5)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if g.NumEdges() != 0 || g.ActiveCount() != 0 {
		t.Fatal("empty graph should have no edges and no active vertices")
	}
	for v := int32(0); v < 5; v++ {
		if len(g.OutNeighbors(v)) != 0 {
			t.Fatalf("vertex %d has phantom neighbors", v)
		}
	}
}

func TestFromEventsRejectsOutOfRange(t *testing.T) {
	if _, err := FromEvents([]events.Event{ev(0, 5, 1)}, 5); err == nil {
		t.Fatal("target id == numVertices accepted")
	}
	if _, err := FromEvents([]events.Event{ev(-1, 0, 1)}, 5); err == nil {
		t.Fatal("negative id accepted")
	}
	if _, err := FromEvents(nil, -1); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestSelfLoop(t *testing.T) {
	g, err := FromEvents([]events.Event{ev(2, 2, 1)}, 3)
	if err != nil {
		t.Fatalf("FromEvents: %v", err)
	}
	if g.OutDegree(2) != 1 || g.InDegree(2) != 1 {
		t.Fatal("self-loop should appear once in each direction")
	}
	if !g.Active(2) || g.ActiveCount() != 1 {
		t.Fatal("self-loop vertex should be active")
	}
}

// naiveEdges builds the deduplicated edge set with maps.
func naiveEdges(evs []events.Event) map[[2]int32]bool {
	m := make(map[[2]int32]bool)
	for _, e := range evs {
		m[[2]int32{e.U, e.V}] = true
	}
	return m
}

func TestFromEventsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := int32(rng.Intn(40) + 1)
		evs := make([]events.Event, rng.Intn(300))
		for i := range evs {
			evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), int64(i))
		}
		g, err := FromEvents(evs, n)
		if err != nil {
			t.Fatalf("FromEvents: %v", err)
		}
		want := naiveEdges(evs)
		if g.NumEdges() != int64(len(want)) {
			t.Fatalf("trial %d: NumEdges = %d, want %d", trial, g.NumEdges(), len(want))
		}
		for u := int32(0); u < n; u++ {
			ns := g.OutNeighbors(u)
			if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
				t.Fatalf("trial %d: OutNeighbors(%d) unsorted: %v", trial, u, ns)
			}
			for _, v := range ns {
				if !want[[2]int32{u, v}] {
					t.Fatalf("trial %d: phantom edge %d -> %d", trial, u, v)
				}
			}
		}
		// Every naive edge appears, and in-adjacency mirrors it.
		for e := range want {
			found := false
			for _, v := range g.OutNeighbors(e[0]) {
				if v == e[1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: missing edge %v", trial, e)
			}
			found = false
			for _, u := range g.InNeighbors(e[1]) {
				if u == e[0] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: missing in-edge %v", trial, e)
			}
		}
	}
}

func TestInOutEdgeCountsAgreeQuick(t *testing.T) {
	f := func(raw []uint32) bool {
		n := int32(17)
		evs := make([]events.Event, len(raw))
		for i, r := range raw {
			evs[i] = ev(int32(r%uint32(n)), int32(r/31%uint32(n)), int64(i))
		}
		g, err := FromEvents(evs, n)
		if err != nil {
			return false
		}
		if int64(len(g.InCol)) != g.NumEdges() {
			return false
		}
		var sumOut, sumIn int64
		for v := int32(0); v < n; v++ {
			sumOut += g.OutDegree(v)
			sumIn += g.InDegree(v)
		}
		return sumOut == g.NumEdges() && sumIn == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromLogWindow(t *testing.T) {
	l, err := events.NewLog([]events.Event{
		ev(0, 1, 10), ev(1, 2, 20), ev(2, 3, 30),
	}, 0)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	g, err := FromLogWindow(l, 15, 25)
	if err != nil {
		t.Fatalf("FromLogWindow: %v", err)
	}
	if g.NumEdges() != 1 || g.OutDegree(1) != 1 {
		t.Fatalf("window [15,25] should contain exactly edge 1->2; got %d edges", g.NumEdges())
	}
}
