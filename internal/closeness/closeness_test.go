package closeness

import (
	"math"
	"math/rand"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

// naiveHarmonic computes exact harmonic closeness of a window by
// Floyd-style BFS over the undirected deduplicated edge set.
func naiveHarmonic(l *events.Log, ts, te int64) map[int32]float64 {
	adj := make(map[int32]map[int32]bool)
	add := func(a, b int32) {
		if adj[a] == nil {
			adj[a] = make(map[int32]bool)
		}
		adj[a][b] = true
	}
	for _, e := range l.Slice(ts, te) {
		add(e.U, e.V)
		add(e.V, e.U)
	}
	out := make(map[int32]float64)
	for src := range adj {
		dist := map[int32]int{src: 0}
		queue := []int32{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for u := range adj[v] {
				if _, ok := dist[u]; !ok {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		var c float64
		for v, d := range dist {
			if v != src && d > 0 {
				c += 1 / float64(d)
			}
		}
		out[src] = c
	}
	return out
}

func TestExactMatchesOracle(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(800 + trial)))
		n := int32(rng.Intn(30) + 3)
		l := randomLog(t, int64(900+trial), n, rng.Intn(200)+10, 1500)
		spec, err := events.Span(l, int64(rng.Intn(400)+1), int64(rng.Intn(150)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, usePool := range []bool{false, true} {
			p := pool
			if !usePool {
				p = nil
			}
			cfg := DefaultConfig()
			cfg.Directed = true
			cfg.NumMultiWindows = 2
			cfg.KeepScores = true
			eng, err := NewEngine(l, spec, cfg, p)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			s, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for w := 0; w < spec.Count; w++ {
				want := naiveHarmonic(l, spec.Start(w), spec.End(w))
				r := s.Window(w)
				if int(r.ActiveVertices) != len(want) {
					t.Fatalf("trial %d w %d: active %d, oracle %d", trial, w, r.ActiveVertices, len(want))
				}
				if int(r.SampledSources) != len(want) {
					t.Fatalf("trial %d w %d: exact run sampled %d of %d", trial, w, r.SampledSources, len(want))
				}
				for v, c := range want {
					if got := r.Score(v); math.Abs(got-c) > 1e-12 {
						t.Fatalf("trial %d w %d vertex %d: %v, oracle %v", trial, w, v, got, c)
					}
				}
			}
		}
	}
}

func TestPathGraphValues(t *testing.T) {
	// Path 0-1-2: C(0) = 1 + 1/2 = 1.5, C(1) = 2, C(2) = 1.5.
	raw, _ := events.NewLog([]events.Event{ev(0, 1, 0), ev(1, 2, 1)}, 3)
	l := raw.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 10, Count: 1}
	cfg := DefaultConfig()
	cfg.KeepScores = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Window(0)
	for v, want := range []float64{1.5, 2, 1.5} {
		if got := r.Score(int32(v)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("C(%d) = %v, want %v", v, got, want)
		}
	}
	if r.Top != 1 || math.Abs(r.TopScore-2) > 1e-12 {
		t.Fatalf("top = %d (%v), want 1 (2)", r.Top, r.TopScore)
	}
}

func TestSamplingDeterministicAndScaled(t *testing.T) {
	l := randomLog(t, 901, 40, 600, 2000)
	spec, _ := events.Span(l, 500, 250)
	mk := func(seed int64) *Series {
		cfg := DefaultConfig()
		cfg.Directed = true
		cfg.SampleSources = 8
		cfg.Seed = seed
		cfg.KeepScores = true
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	a, b := mk(7), mk(7)
	c := mk(8)
	differs := false
	for w := 0; w < spec.Count; w++ {
		if a.Window(w).SampledSources > 8 {
			t.Fatalf("window %d sampled %d sources", w, a.Window(w).SampledSources)
		}
		for v := int32(0); v < l.NumVertices(); v++ {
			if a.Window(w).Score(v) != b.Window(w).Score(v) {
				t.Fatalf("sampling not deterministic at window %d vertex %d", w, v)
			}
			if a.Window(w).Score(v) != c.Window(w).Score(v) {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical samples (suspicious)")
	}
}

func TestSamplingApproximatesExact(t *testing.T) {
	// On a dense-ish window, half-sampling must correlate with exact:
	// the top-ranked vertex should be in the exact top fraction.
	l := randomLog(t, 902, 25, 1500, 500)
	spec := events.WindowSpec{T0: 0, Delta: 500, Slide: 600, Count: 1}
	exactCfg := DefaultConfig()
	exactCfg.Directed = true
	exactCfg.KeepScores = true
	exEng, _ := NewEngine(l, spec, exactCfg, nil)
	exact, err := exEng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	apxCfg := exactCfg
	apxCfg.SampleSources = 12
	apEng, _ := NewEngine(l, spec, apxCfg, nil)
	approx, err := apEng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Mean relative error over active vertices should be modest.
	var relErr float64
	var count int
	for v := int32(0); v < l.NumVertices(); v++ {
		e := exact.Window(0).Score(v)
		a := approx.Window(0).Score(v)
		if e > 0 {
			relErr += math.Abs(a-e) / e
			count++
		}
	}
	if count == 0 {
		t.Fatal("no active vertices")
	}
	if relErr/float64(count) > 0.5 {
		t.Fatalf("mean relative error %v too large", relErr/float64(count))
	}
}

func TestEmptyWindowCloseness(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 1, Slide: 100, Count: 2}
	cfg := DefaultConfig()
	cfg.Directed = true
	cfg.KeepScores = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(1).Top != -1 || s.Window(1).ActiveVertices != 0 {
		t.Fatalf("empty window: %+v", s.Window(1))
	}
}

func TestClosenessValidation(t *testing.T) {
	l := randomLog(t, 903, 5, 10, 50)
	spec, _ := events.Span(l, 20, 10)
	cfg := DefaultConfig()
	cfg.NumMultiWindows = 0
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("bad NumMultiWindows accepted")
	}
	cfg = DefaultConfig()
	cfg.SampleSources = -1
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("negative SampleSources accepted")
	}
	if _, err := NewEngineFromTemporal(nil, DefaultConfig(), nil); err == nil {
		t.Fatal("nil temporal accepted")
	}
}

func TestScoresNotKeptByDefault(t *testing.T) {
	l := randomLog(t, 904, 10, 50, 200)
	spec, _ := events.Span(l, 100, 50)
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).Score(0) != -1 {
		t.Fatal("scores should be absent without KeepScores")
	}
	// But the Top summary is still available.
	if s.Window(0).ActiveVertices > 0 && s.Window(0).Top < 0 {
		t.Fatal("Top missing despite active window")
	}
}
