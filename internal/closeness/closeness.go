// Package closeness computes harmonic closeness centrality on every
// window of a temporal graph, postmortem-style — the centrality family
// the paper names alongside PageRank for the sliding-window model
// (Sec. 3.1; the streaming incremental variants it cites are Sariyüce
// et al.'s). Harmonic closeness,
//
//	C(v) = sum_{u != v, d(v,u) < inf} 1 / d(v,u),
//
// is used instead of classic closeness because window graphs are
// routinely disconnected.
//
// Exact computation runs one BFS per active vertex per window. Because
// that is Theta(V*E) per window, the engine also supports the standard
// sampled approximation (Eppstein–Wang style): BFS from k sampled
// sources and scale by |V_active|/k. Sampling is deterministic per
// (window, seed).
package closeness

import (
	"fmt"
	"math/rand"

	"pmpr/internal/events"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Config controls a closeness run.
type Config struct {
	// NumMultiWindows partitions the window sequence (see tcsr.Build).
	NumMultiWindows int
	// BalancedPartition splits by event load instead of uniformly.
	BalancedPartition bool
	// Directed controls the representation build; distances always use
	// the undirected view.
	Directed bool
	// Partitioner and Grain configure the window-level loop.
	Partitioner sched.Partitioner
	Grain       int
	// SampleSources > 0 approximates: per window, BFS only from that
	// many sampled active sources. 0 computes exactly.
	SampleSources int
	// Seed drives source sampling.
	Seed int64
	// KeepScores retains each window's centrality vector.
	KeepScores bool
}

// DefaultConfig matches the other engines' defaults, with exact
// computation.
func DefaultConfig() Config {
	return Config{NumMultiWindows: 6, Partitioner: sched.Auto, Grain: 2}
}

// WindowResult summarizes one window.
type WindowResult struct {
	Window         int
	ActiveVertices int32
	// Top is the vertex with the highest harmonic closeness (global
	// id), -1 for an empty window.
	Top int32
	// TopScore is Top's score.
	TopScore float64
	// SampledSources is the number of BFS sources used (== active count
	// when exact).
	SampledSources int32

	scores []float64
	mw     *tcsr.MultiWindow
}

// Score returns the (possibly approximated) harmonic closeness of the
// global vertex, or -1 when inactive or scores were not kept.
func (r *WindowResult) Score(global int32) float64 {
	if r.scores == nil {
		return -1
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return -1
	}
	return r.scores[local]
}

// Series is the per-window sequence.
type Series struct {
	Spec    events.WindowSpec
	Results []WindowResult
}

// Window returns the result for window i.
func (s *Series) Window(i int) *WindowResult { return &s.Results[i] }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Results) }

// Engine computes the series.
type Engine struct {
	tg   *tcsr.Temporal
	cfg  Config
	pool *sched.Pool
}

// NewEngine builds the temporal representation for l under spec.
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	if cfg.NumMultiWindows < 1 {
		return nil, fmt.Errorf("closeness: NumMultiWindows %d must be >= 1", cfg.NumMultiWindows)
	}
	if cfg.SampleSources < 0 {
		return nil, fmt.Errorf("closeness: SampleSources %d must be >= 0", cfg.SampleSources)
	}
	build := tcsr.Build
	if cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	tg, err := build(l, spec, cfg.NumMultiWindows, cfg.Directed)
	if err != nil {
		return nil, err
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// NewEngineFromTemporal reuses an existing representation.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if tg == nil {
		return nil, fmt.Errorf("closeness: nil temporal representation")
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// Temporal exposes the representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.tg }

// Run computes closeness for every window; windows run in parallel on
// the pool, serially with a nil pool.
func (e *Engine) Run() (*Series, error) {
	count := e.tg.Spec.Count
	results := make([]WindowResult, count)
	body := func(lo, hi int) {
		var view tcsr.WindowView
		var b bfs
		for w := lo; w < hi; w++ {
			results[w] = e.solveWindow(w, &view, &b)
		}
	}
	if e.pool == nil {
		body(0, count)
	} else {
		grain := e.cfg.Grain
		if grain < 1 {
			grain = 1
		}
		e.pool.ParallelFor(count, grain, e.cfg.Partitioner, func(_ *sched.Worker, lo, hi int) {
			body(lo, hi)
		})
	}
	return &Series{Spec: e.tg.Spec, Results: results}, nil
}

func (e *Engine) solveWindow(w int, view *tcsr.WindowView, b *bfs) WindowResult {
	mw := e.tg.ForWindow(w)
	mw.Materialize(w, view)
	n := int(mw.NumLocal())
	res := WindowResult{Window: w, ActiveVertices: view.NumActive, Top: -1, mw: mw}
	if view.NumActive == 0 {
		if e.cfg.KeepScores {
			res.scores = make([]float64, n)
			for v := range res.scores {
				res.scores[v] = -1
			}
		}
		return res
	}

	// Pick the BFS sources.
	var sources []int32
	if e.cfg.SampleSources == 0 || int32(e.cfg.SampleSources) >= view.NumActive {
		for v := 0; v < n; v++ {
			if view.Active[v] {
				sources = append(sources, int32(v))
			}
		}
	} else {
		actives := make([]int32, 0, view.NumActive)
		for v := 0; v < n; v++ {
			if view.Active[v] {
				actives = append(actives, int32(v))
			}
		}
		rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(w)*0x9E3779B97F4A7C))
		rng.Shuffle(len(actives), func(i, j int) { actives[i], actives[j] = actives[j], actives[i] })
		sources = actives[:e.cfg.SampleSources]
	}
	res.SampledSources = int32(len(sources))

	// Harmonic closeness accumulates reciprocal distances at the
	// *visited* vertex: C(v) += 1/d(source, v) per BFS. With the
	// undirected view this equals summing over targets from v.
	scores := make([]float64, n)
	for _, s := range sources {
		b.run(view, s, func(v int32, dist int32) {
			if dist > 0 {
				scores[v] += 1 / float64(dist)
			}
		})
	}
	if res.SampledSources < view.NumActive {
		scale := float64(view.NumActive) / float64(len(sources))
		for v := range scores {
			scores[v] *= scale
		}
	}
	for v := 0; v < n; v++ {
		if view.Active[v] && scores[v] > res.TopScore {
			res.TopScore = scores[v]
			res.Top = mw.GlobalID(int32(v))
		}
	}
	if e.cfg.KeepScores {
		for v := 0; v < n; v++ {
			if !view.Active[v] {
				scores[v] = -1
			}
		}
		res.scores = scores
	}
	return res
}

// bfs is a reusable breadth-first search over a window view.
type bfs struct {
	dist  []int32
	queue []int32
	epoch int32
	seen  []int32 // seen[v] == epoch means dist[v] is valid
}

// run performs BFS from src, invoking visit(v, d) for every reached
// vertex (including src at distance 0).
func (b *bfs) run(view *tcsr.WindowView, src int32, visit func(v, d int32)) {
	n := len(view.Active)
	if cap(b.dist) < n {
		b.dist = make([]int32, n)
		b.seen = make([]int32, n)
		b.queue = make([]int32, 0, n)
	}
	b.dist = b.dist[:n]
	b.seen = b.seen[:n]
	b.epoch++
	b.queue = b.queue[:0]
	b.queue = append(b.queue, src)
	b.seen[src] = b.epoch
	b.dist[src] = 0
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		visit(v, b.dist[v])
		for _, u := range view.Col[view.Row[v]:view.Row[v+1]] {
			if b.seen[u] != b.epoch {
				b.seen[u] = b.epoch
				b.dist[u] = b.dist[v] + 1
				b.queue = append(b.queue, u)
			}
		}
	}
}
