package bench

import (
	"context"
	"encoding/json"
	"io"
	"os"
	"time"

	"pmpr/internal/core"
	"pmpr/internal/obs"
)

// JSONSchema identifies the machine-readable results format; bump the
// suffix when the layout changes incompatibly.
const JSONSchema = "pmpr-bench/v1"

// ExperimentResult is one experiment's timing inside a JSONReport.
type ExperimentResult struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// EngineRunSummary condenses one engine RunReport to the fields the
// perf trajectory compares across commits (the full report stays
// available via pmrank -report-out).
type EngineRunSummary struct {
	Kernel          string  `json:"kernel"`
	Mode            string  `json:"mode"`
	Windows         int     `json:"windows"`
	Workers         int     `json:"workers"`
	WallSeconds     float64 `json:"wall_seconds"`
	TotalIterations int     `json:"total_iterations"`
	TotalSweeps     int64   `json:"total_sweeps"`
	WarmStartRate   float64 `json:"warm_start_rate"`
	LoadImbalance   float64 `json:"load_imbalance,omitempty"`
	ScratchHitRate  float64 `json:"scratch_hit_rate,omitempty"`
	// WallP50/P95/P99 are the per-window wall-time percentiles from the
	// run's histogram, so -diff tracks tail latency alongside totals.
	WallP50 float64 `json:"wall_p50,omitempty"`
	WallP95 float64 `json:"wall_p95,omitempty"`
	WallP99 float64 `json:"wall_p99,omitempty"`
}

// JSONReport is the machine-readable counterpart of the rendered
// tables: per-experiment wall times plus condensed engine run reports,
// stamped with the build and harness parameters so BENCH_*.json files
// from different commits are comparable.
type JSONReport struct {
	Schema    string        `json:"schema"`
	Timestamp string        `json:"timestamp"`
	Build     obs.BuildInfo `json:"build"`

	Scale      float64 `json:"scale"`
	Seed       int64   `json:"seed"`
	Workers    int     `json:"workers"`
	Quick      bool    `json:"quick"`
	MaxWindows int     `json:"max_windows"`

	Experiments  []ExperimentResult `json:"experiments"`
	EngineRuns   []EngineRunSummary `json:"engine_runs,omitempty"`
	TotalSeconds float64            `json:"total_seconds"`
}

// NewJSONReport stamps a report with the build and the (defaulted)
// harness parameters.
func NewJSONReport(o Options) *JSONReport {
	o = o.withDefaults()
	return &JSONReport{
		Schema:     JSONSchema,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Build:      obs.CollectBuildInfo(),
		Scale:      o.Scale,
		Seed:       o.Seed,
		Workers:    o.Workers,
		Quick:      o.Quick,
		MaxWindows: o.MaxWindows,
	}
}

// Sink returns a ReportSink that appends a condensed summary of every
// engine run to the report; install it in Options before running.
func (j *JSONReport) Sink() func(*core.RunReport) {
	return func(r *core.RunReport) {
		j.EngineRuns = append(j.EngineRuns, EngineRunSummary{
			Kernel:          r.Config.Kernel,
			Mode:            r.Config.Mode,
			Windows:         r.Windows,
			Workers:         r.Workers,
			WallSeconds:     r.WallSeconds,
			TotalIterations: r.TotalIterations,
			TotalSweeps:     r.TotalSweeps,
			WarmStartRate:   r.WarmStart.HitRate,
			LoadImbalance:   loadImbalance(r),
			ScratchHitRate:  scratchHitRate(r),
			WallP50:         r.WindowWallPercentiles.P50,
			WallP95:         r.WindowWallPercentiles.P95,
			WallP99:         r.WindowWallPercentiles.P99,
		})
	}
}

func loadImbalance(r *core.RunReport) float64 {
	if r.Sched == nil {
		return 0
	}
	return r.Sched.LoadImbalance
}

func scratchHitRate(r *core.RunReport) float64 {
	if r.Scratch == nil {
		return 0
	}
	return r.Scratch.HitRate
}

// RunExperiment executes one experiment, timing it and recording the
// outcome (including failures) in the report. The experiment's own
// error is returned so the caller can still abort the suite.
func (j *JSONReport) RunExperiment(ctx context.Context, e Experiment, o Options) error {
	secs, err := timeIt(func() error { return e.Run(ctx, o) })
	res := ExperimentResult{ID: e.ID, Title: e.Title, Seconds: secs}
	if err != nil {
		res.Error = err.Error()
	}
	j.Experiments = append(j.Experiments, res)
	j.TotalSeconds += secs
	return err
}

// WriteJSON writes the indented report followed by a newline.
func (j *JSONReport) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the report to path.
func (j *JSONReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := j.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
