package bench

import (
	"context"

	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/obs"
)

func quickOptions(buf *bytes.Buffer) Options {
	return Options{
		Out:        buf,
		Scale:      0.02,
		Seed:       1,
		Workers:    4,
		Quick:      true,
		MaxWindows: 24,
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(context.Background(), quickOptions(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(Experiments()) < 10 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"} {
		if _, ok := Get(want); !ok {
			t.Fatalf("experiment %s missing (every paper table/figure must be covered)", want)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestTableRender(t *testing.T) {
	var buf bytes.Buffer
	tab := NewTable("a", "bee", "c")
	tab.Rowf("x", 1.23456, 42)
	tab.Row("longer-cell", "y", "z")
	tab.Render(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "bee") || !strings.Contains(lines[2], "1.23") {
		t.Fatalf("bad render:\n%s", out)
	}
	// Columns aligned: header and rows have same prefix width for col 2.
	if strings.Index(lines[0], "bee") != strings.Index(lines[3], "y") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestHeatmapRender(t *testing.T) {
	var buf bytes.Buffer
	h := NewHeatmap("delta", "sw")
	h.Set("10", "43200", 150)
	h.Set("90", "43200", 80)
	h.Set("10", "86400", 120)
	h.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "150") || !strings.Contains(out, "86400") {
		t.Fatalf("heatmap missing content:\n%s", out)
	}
	// Missing cell renders as "-".
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell not marked:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if s := Sparkline(nil); s != "" {
		t.Fatalf("empty sparkline = %q", s)
	}
	if s := Sparkline([]int64{0, 0}); strings.TrimSpace(s) != "" {
		t.Fatalf("zero sparkline = %q", s)
	}
	s := Sparkline([]int64{0, 5, 10})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline length %d", len([]rune(s)))
	}
	r := []rune(s)
	if r[2] != '█' {
		t.Fatalf("max bin should render full block, got %q", s)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale <= 0 || o.Workers <= 0 || o.MaxWindows <= 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.MaxWindows >= o.MaxWindows {
		t.Fatal("quick mode should cap windows harder")
	}
}

func TestDeriveSpecPreservesOverlapRatio(t *testing.T) {
	// A long log whose natural count exceeds MaxWindows: the derived
	// spec must scale sw and delta together (same ratio) and still span
	// the dataset.
	var evs []events.Event
	for i := 0; i < 2000; i++ {
		evs = append(evs, events.Event{U: 0, V: 1, T: int64(i) * 1000})
	}
	l, err := events.NewLog(evs, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{MaxWindows: 50, Scale: 1, Workers: 1}.withDefaults()
	o.MaxWindows = 50
	slide := int64(1000)
	deltaDays := 10000.0 / float64(gen.Day) // delta = 10*slide
	spec, err := deriveSpec(l, slide, deltaDays, o)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Count > 50 {
		t.Fatalf("count %d exceeds cap", spec.Count)
	}
	ratio := float64(spec.Delta) / float64(spec.Slide)
	if ratio < 9 || ratio > 11 {
		t.Fatalf("delta/slide ratio %v, want ~10", ratio)
	}
	// Spans (nearly) the whole dataset.
	if spec.SpanEnd() < 1500*1000 {
		t.Fatalf("windows stop at %d, dataset ends at %d", spec.SpanEnd(), 1999*1000)
	}
}

func TestDeriveSpecDeltaCapAndDensestRegion(t *testing.T) {
	// delta already covers 40% of the span: scaling is capped and the
	// truncated coverage must sit on the densest region (the burst).
	var evs []events.Event
	tt := int64(0)
	for i := 0; i < 200; i++ { // sparse prefix
		tt += 1000
		evs = append(evs, events.Event{U: 0, V: 1, T: tt})
	}
	for i := 0; i < 3000; i++ { // burst in the middle
		tt += 10
		evs = append(evs, events.Event{U: 0, V: 1, T: tt})
	}
	for i := 0; i < 200; i++ { // sparse suffix
		tt += 1000
		evs = append(evs, events.Event{U: 0, V: 1, T: tt})
	}
	l, err := events.NewLog(evs, 2)
	if err != nil {
		t.Fatal(err)
	}
	first, last, _ := l.TimeRange()
	span := last - first
	o := Options{MaxWindows: 8, Scale: 1, Workers: 1}.withDefaults()
	o.MaxWindows = 8
	deltaDays := float64(span) * 0.4 / float64(gen.Day)
	spec, err := deriveSpec(l, 100, deltaDays, o)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Count > 8 {
		t.Fatalf("count %d exceeds cap", spec.Count)
	}
	if spec.Delta > span {
		t.Fatalf("delta %d outgrew the span %d", spec.Delta, span)
	}
	// The covered range must include the burst (over half the events).
	covered := l.CountInRange(spec.T0, spec.SpanEnd())
	if covered < l.Len()/2 {
		t.Fatalf("coverage has %d of %d events; densest-region selection failed", covered, l.Len())
	}
}

func TestDeriveOverlapSpecKeepsSlide(t *testing.T) {
	var evs []events.Event
	for i := 0; i < 500; i++ {
		evs = append(evs, events.Event{U: 0, V: 1, T: int64(i) * 100})
	}
	l, _ := events.NewLog(evs, 2)
	o := Options{MaxWindows: 10, Scale: 1, Workers: 1}.withDefaults()
	o.MaxWindows = 10
	spec, err := deriveOverlapSpec(l, 100, 1000.0/float64(gen.Day), o)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Slide != 100 {
		t.Fatalf("slide changed to %d", spec.Slide)
	}
	if spec.Count != 10 {
		t.Fatalf("count = %d, want truncation to 10", spec.Count)
	}
}

func TestJSONReportCapturesExperimentAndEngineRuns(t *testing.T) {
	var buf bytes.Buffer
	o := quickOptions(&buf)
	o.PoolMetrics = true
	o.Trace = obs.NewTrace()
	jr := NewJSONReport(o)
	o.ReportSink = jr.Sink()

	e, ok := Get("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}
	if err := jr.RunExperiment(context.Background(), e, o); err != nil {
		t.Fatalf("fig6: %v", err)
	}
	if len(jr.Experiments) != 1 || jr.Experiments[0].ID != "fig6" ||
		jr.Experiments[0].Seconds <= 0 || jr.Experiments[0].Error != "" {
		t.Fatalf("experiment record wrong: %+v", jr.Experiments)
	}
	if jr.TotalSeconds <= 0 {
		t.Fatalf("total seconds %v", jr.TotalSeconds)
	}
	// fig6 runs the postmortem engine (full vs partial init), so the
	// sink must have collected engine summaries with sched stats.
	if len(jr.EngineRuns) == 0 {
		t.Fatal("no engine run summaries collected")
	}
	for _, r := range jr.EngineRuns {
		if r.Windows <= 0 || r.WallSeconds <= 0 || r.TotalSweeps <= 0 {
			t.Fatalf("bad engine summary: %+v", r)
		}
	}
	if o.Trace.Len() == 0 {
		t.Fatal("harness trace collected no spans")
	}

	var out bytes.Buffer
	if err := jr.WriteJSON(&out); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back JSONReport
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Schema != JSONSchema || back.Workers != o.Workers ||
		len(back.EngineRuns) != len(jr.EngineRuns) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
