package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders an aligned ASCII table, the
// harness's stand-in for the paper's plots.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v (floats as %.3g via
// Cell helpers below where needed).
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row of formatted values.
func (t *Table) Rowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Heatmap renders a labelled grid of values, mirroring the paper's
// Fig. 11/12 heatmaps.
type Heatmap struct {
	RowLabel, ColLabel string
	cols               []string
	rows               []string
	vals               map[[2]int]float64
}

// NewHeatmap creates a heatmap with the given axis titles.
func NewHeatmap(rowLabel, colLabel string) *Heatmap {
	return &Heatmap{RowLabel: rowLabel, ColLabel: colLabel, vals: map[[2]int]float64{}}
}

// Set stores a cell, registering row/column labels on first use.
func (h *Heatmap) Set(row, col string, v float64) {
	ri := index(&h.rows, row)
	ci := index(&h.cols, col)
	h.vals[[2]int{ri, ci}] = v
}

func index(list *[]string, s string) int {
	for i, x := range *list {
		if x == s {
			return i
		}
	}
	*list = append(*list, s)
	return len(*list) - 1
}

// Render writes the heatmap.
func (h *Heatmap) Render(w io.Writer) {
	t := NewTable(append([]string{h.RowLabel + `\` + h.ColLabel}, h.cols...)...)
	for ri, rl := range h.rows {
		row := []string{rl}
		for ci := range h.cols {
			if v, ok := h.vals[[2]int{ri, ci}]; ok {
				if v < 10 {
					row = append(row, fmt.Sprintf("%.1f", v))
				} else {
					row = append(row, fmt.Sprintf("%.0f", v))
				}
			} else {
				row = append(row, "-")
			}
		}
		t.Row(row...)
	}
	t.Render(w)
}

// Sparkline renders counts as a one-line unicode bar profile (used for
// the Fig. 4 edge distributions).
func Sparkline(counts []int64) string {
	if len(counts) == 0 {
		return ""
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var max int64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return strings.Repeat(" ", len(counts))
	}
	var b strings.Builder
	for _, c := range counts {
		idx := int(c * int64(len(glyphs)-1) / max)
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
