package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func diffReport(exps map[string]float64, runs []EngineRunSummary) *JSONReport {
	r := &JSONReport{Schema: JSONSchema}
	for id, secs := range exps {
		r.Experiments = append(r.Experiments, ExperimentResult{ID: id, Title: id, Seconds: secs})
	}
	r.EngineRuns = runs
	return r
}

func TestDiffReportsMatchingAndRegression(t *testing.T) {
	before := diffReport(map[string]float64{"fig5": 10, "fig6": 4, "gone": 1}, []EngineRunSummary{
		{Kernel: "spmm", Mode: "nested", Workers: 8, Windows: 256, WallSeconds: 2.0},
		// A repeat of the same configuration: the diff keys on the
		// minimum wall time across repeats.
		{Kernel: "spmm", Mode: "nested", Workers: 8, Windows: 256, WallSeconds: 1.0},
	})
	after := diffReport(map[string]float64{"fig5": 20, "fig6": 4, "new": 1}, []EngineRunSummary{
		{Kernel: "spmm", Mode: "nested", Workers: 8, Windows: 256, WallSeconds: 1.1},
	})
	d := DiffReports(before, after)
	if len(d.Entries) != 3 {
		t.Fatalf("entries = %d, want 3: %+v", len(d.Entries), d.Entries)
	}
	// Sorted by descending ratio: fig5 (2.0) leads.
	if d.Entries[0].Key != "exp:fig5" || d.Entries[0].Ratio != 2.0 {
		t.Fatalf("worst entry = %+v, want exp:fig5 at 2.0x", d.Entries[0])
	}
	if len(d.OnlyBefore) != 1 || d.OnlyBefore[0] != "exp:gone" {
		t.Fatalf("OnlyBefore = %v", d.OnlyBefore)
	}
	if len(d.OnlyAfter) != 1 || d.OnlyAfter[0] != "exp:new" {
		t.Fatalf("OnlyAfter = %v", d.OnlyAfter)
	}

	regs := d.Regressions(1.25)
	if len(regs) != 1 || regs[0].Key != "exp:fig5" {
		t.Fatalf("regressions at 1.25 = %+v, want only exp:fig5", regs)
	}
	if regs := d.Regressions(1.05); len(regs) != 2 {
		// 1.1/1.0 engine-run ratio crosses a 1.05 threshold too.
		t.Fatalf("regressions at 1.05 = %+v, want 2", regs)
	}
	if regs := d.Regressions(3); len(regs) != 0 {
		t.Fatalf("regressions at 3.0 = %+v, want none", regs)
	}

	var buf bytes.Buffer
	d.Render(&buf)
	out := buf.String()
	for _, want := range []string{"exp:fig5", "run:spmm/nested/w8/256", "only in before", "only in after"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffSkipsFailedExperiments(t *testing.T) {
	before := diffReport(map[string]float64{"fig5": 10}, nil)
	before.Experiments = append(before.Experiments,
		ExperimentResult{ID: "broken", Seconds: 1, Error: "boom"})
	after := diffReport(map[string]float64{"fig5": 10, "broken": 99}, nil)
	d := DiffReports(before, after)
	for _, e := range d.Entries {
		if e.Key == "exp:broken" {
			t.Fatal("failed experiment must not be compared")
		}
	}
}

func TestReadJSONReportRoundTripAndSchemaCheck(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	r := diffReport(map[string]float64{"fig5": 1}, nil)
	if err := r.WriteFile(good); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != JSONSchema || len(back.Experiments) != 1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSONReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}
	if _, err := ReadJSONReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file not rejected")
	}
	garbled := filepath.Join(dir, "garbled.json")
	if err := os.WriteFile(garbled, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSONReport(garbled); err == nil {
		t.Fatal("bad JSON not rejected")
	}
}
