package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DiffEntry is one compared wall time between two bench reports: an
// experiment's total seconds or the best engine run of one
// kernel/mode/workers/windows configuration.
type DiffEntry struct {
	// Key identifies the compared entity ("exp:fig5" or
	// "run:spmm/nested/w8/256").
	Key string
	// Before and After are the wall seconds in the older and newer
	// report.
	Before float64
	// After is the newer report's wall seconds for the same key.
	After float64
	// Ratio is After/Before (>1 = slower). 0 when Before is 0.
	Ratio float64
}

// BenchDiff is the comparison of two pmpr-bench/v1 reports: entries
// present in both (comparable), plus the keys only one side has.
type BenchDiff struct {
	// Entries holds the matched comparisons, sorted by descending Ratio
	// so regressions lead.
	Entries []DiffEntry
	// OnlyBefore and OnlyAfter list keys without a counterpart (new or
	// removed experiments/configurations); they never fail the gate.
	OnlyBefore []string
	// OnlyAfter lists keys present only in the newer report.
	OnlyAfter []string
}

// ReadJSONReport loads and schema-checks a bench JSON file written by
// pmbench -json.
func ReadJSONReport(path string) (*JSONReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r JSONReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if r.Schema != JSONSchema {
		return nil, fmt.Errorf("bench: %s: schema %q, want %q", path, r.Schema, JSONSchema)
	}
	return &r, nil
}

// diffTimes collects the comparable wall times of one report: every
// experiment keyed by id, and every engine-run configuration keyed by
// kernel/mode/workers/windows taking the MINIMUM wall time across
// repeats (experiments re-run configurations with different grains; the
// best time is the stable perf signal, single runs pass through).
func diffTimes(r *JSONReport) map[string]float64 {
	out := map[string]float64{}
	for _, e := range r.Experiments {
		if e.Error != "" {
			continue
		}
		out["exp:"+e.ID] = e.Seconds
	}
	for _, er := range r.EngineRuns {
		key := fmt.Sprintf("run:%s/%s/w%d/%d", er.Kernel, er.Mode, er.Workers, er.Windows)
		if prev, ok := out[key]; !ok || er.WallSeconds < prev {
			out[key] = er.WallSeconds
		}
		// Tail latency rides the same min-across-repeats rule under its
		// own key; reports predating wall percentiles simply omit it (the
		// key lands in OnlyBefore/OnlyAfter and never fails the gate).
		if er.WallP95 > 0 {
			pkey := fmt.Sprintf("p95:%s/%s/w%d/%d", er.Kernel, er.Mode, er.Workers, er.Windows)
			if prev, ok := out[pkey]; !ok || er.WallP95 < prev {
				out[pkey] = er.WallP95
			}
		}
	}
	return out
}

// DiffReports compares two bench reports key by key.
func DiffReports(before, after *JSONReport) *BenchDiff {
	bt, at := diffTimes(before), diffTimes(after)
	d := &BenchDiff{}
	for key, bv := range bt {
		av, ok := at[key]
		if !ok {
			d.OnlyBefore = append(d.OnlyBefore, key)
			continue
		}
		e := DiffEntry{Key: key, Before: bv, After: av}
		if bv > 0 {
			e.Ratio = av / bv
		}
		d.Entries = append(d.Entries, e)
	}
	for key := range at {
		if _, ok := bt[key]; !ok {
			d.OnlyAfter = append(d.OnlyAfter, key)
		}
	}
	sort.Slice(d.Entries, func(i, j int) bool {
		if d.Entries[i].Ratio > d.Entries[j].Ratio {
			return true
		}
		if d.Entries[i].Ratio < d.Entries[j].Ratio {
			return false
		}
		return d.Entries[i].Key < d.Entries[j].Key
	})
	sort.Strings(d.OnlyBefore)
	sort.Strings(d.OnlyAfter)
	return d
}

// Regressions returns the entries whose Ratio exceeds threshold (e.g.
// 1.25 = 25% slower). Entries with a zero Before are never regressions.
func (d *BenchDiff) Regressions(threshold float64) []DiffEntry {
	var out []DiffEntry
	for _, e := range d.Entries {
		if e.Before > 0 && e.Ratio > threshold {
			out = append(out, e)
		}
	}
	return out
}

// Render prints the comparison as a table, slowest-ratio first.
func (d *BenchDiff) Render(w io.Writer) {
	t := NewTable("key", "before(s)", "after(s)", "ratio")
	for _, e := range d.Entries {
		t.Rowf(e.Key, e.Before, e.After, e.Ratio)
	}
	t.Render(w)
	if len(d.OnlyBefore) > 0 {
		fmt.Fprintf(w, "only in before: %v\n", d.OnlyBefore)
	}
	if len(d.OnlyAfter) > 0 {
		fmt.Fprintf(w, "only in after: %v\n", d.OnlyAfter)
	}
}
