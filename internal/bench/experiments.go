package bench

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pmpr/internal/analysis"
	"pmpr/internal/closeness"
	"pmpr/internal/core"
	"pmpr/internal/gen"
	"pmpr/internal/kcore"
	"pmpr/internal/offline"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
	"pmpr/internal/wcc"
)

func init() {
	register("table1", "Graphs and parameters (Table 1)", expTable1)
	register("fig4", "Temporal edge distribution over time (Figure 4)", expFig4)
	register("fig5", "Offline vs Streaming vs Postmortem (Figure 5)", expFig5)
	register("fig6", "Impact of partial initialization (Figure 6)", expFig6)
	register("fig7", "Partitioner/level/kernel vs granularity, ~256 windows (Figure 7)", makeGrainFigure(256, 90))
	register("fig8", "Impact of the number of multi-window graphs (Figure 8)", expFig8)
	register("fig9", "Same sweep with only 6 windows (Figure 9)", makeGrainFigure(6, 90))
	register("fig10", "Same sweep with ~1024 windows (Figure 10)", makeGrainFigure(1024, 90))
	register("fig11", "Best postmortem speedup over streaming (Figure 11)", expFig11)
	register("fig12", "Suggested parameters on wiki-talk (Figure 12)", expFig12)
	register("ablation-veclen", "SpMM vector length x partial initialization", expAblationVecLen)
	register("ablation-replication", "Multi-window replication overhead vs count", expAblationReplication)
	register("ablation-imbalance", "Parallelization level under spiky vs smooth load", expAblationImbalance)
	register("ablation-partition", "Uniform vs event-balanced multi-window partitioning", expAblationPartition)
	register("ext-kernels", "Other sliding-window kernels: components and k-core", expExtKernels)
	register("profile-imbalance", "Per-window work distribution per dataset (Sec. 6.1)", expProfileImbalance)
}

func expTable1(ctx context.Context, o Options) error {
	o = o.withDefaults()
	t := NewTable("name", "events", "events(x2 sym)", "vertices", "span(days)", "sliding offsets(s)", "window sizes(days)")
	for _, name := range gen.Names() {
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		t.Rowf(name, l.Len()/2, l.Len(), l.NumVertices(), d.SpanDays,
			fmt.Sprintf("%v", d.SlidingOffsets), fmt.Sprintf("%v", d.WindowDays))
	}
	t.Render(o.Out)
	fmt.Fprintf(o.Out, "(synthetic stand-ins at scale %.2g; see DESIGN.md \"Substitutions\")\n", o.Scale)
	return nil
}

func expFig4(ctx context.Context, o Options) error {
	o = o.withDefaults()
	bins := 60
	for _, name := range gen.Names() {
		l, _, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		counts, width, _ := analysis.Histogram(l, bins)
		var peak int64
		for _, c := range counts {
			if c > peak {
				peak = c
			}
		}
		fmt.Fprintf(o.Out, "%-14s |%s| peak=%d/bin bin=%.1fd\n",
			name, Sparkline(counts), peak, float64(width)/float64(gen.Day))
	}
	return nil
}

func expFig5(ctx context.Context, o Options) error {
	o = o.withDefaults()
	cases := []struct {
		dataset string
		slide   int64
		deltas  []float64
	}{
		{"enron", 172800, []float64{730, 1460}},
		{"youtube", 86400, []float64{60, 90}},
		{"epinions", 86400, []float64{60, 90}},
		{"wikitalk", 259200, []float64{10, 15, 90, 180}},
	}
	if o.Quick {
		cases = cases[:2]
	}
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "sw(s)", "delta(d)", "windows", "offline(s)", "streaming(s)", "post-bare(s)", "post-tuned(s)", "stream/tuned", "off/tuned")
	for _, c := range cases {
		l, _, err := loadDataset(c.dataset, o)
		if err != nil {
			return err
		}
		deltas := c.deltas
		if o.Quick && len(deltas) > 2 {
			deltas = deltas[:2]
		}
		for _, d := range deltas {
			spec, err := deriveSpec(l, c.slide, d, o)
			if err != nil {
				return err
			}
			offT, err := runOffline(l, spec, pool)
			if err != nil {
				return err
			}
			strT, err := runStreaming(l, spec, pool)
			if err != nil {
				return err
			}
			postT, _, err := runPostmortem(ctx, o, l, spec, barebonePostmortem(), pool)
			if err != nil {
				return err
			}
			tunedT, _, err := runPostmortem(ctx, o, l, spec, suggestedConfig(spec), pool)
			if err != nil {
				return err
			}
			t.Rowf(c.dataset, c.slide, d, spec.Count, offT, strT, postT, tunedT, strT/tunedT, offT/tunedT)
		}
	}
	t.Render(o.Out)
	return nil
}

func expFig6(ctx context.Context, o Options) error {
	o = o.withDefaults()
	datasets := []string{"stackoverflow", "wikitalk"}
	deltas := []float64{10, 15, 90, 180}
	if o.Quick {
		datasets = datasets[1:]
		deltas = []float64{10, 90}
	}
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "delta(d)", "windows", "full(s)", "partial(s)", "speedup", "full iters", "partial iters")
	for _, name := range datasets {
		l, _, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		for _, d := range deltas {
			spec, err := deriveOverlapSpec(l, 43200, d, o)
			if err != nil {
				return err
			}
			cfg := barebonePostmortem()
			cfg.PartialInit = false
			fullT, fullS, err := runPostmortem(ctx, o, l, spec, cfg, pool)
			if err != nil {
				return err
			}
			cfg.PartialInit = true
			partT, partS, err := runPostmortem(ctx, o, l, spec, cfg, pool)
			if err != nil {
				return err
			}
			t.Rowf(name, d, spec.Count, fullT, partT, fullT/partT,
				fullS.TotalIterations(), partS.TotalIterations())
		}
	}
	t.Render(o.Out)
	return nil
}

// makeGrainFigure builds the Figs. 7/9/10 sweep: speedup over streaming
// as a function of the scheduler grain, for every partitioner x
// parallelization level x kernel, at a fixed number of windows.
func makeGrainFigure(windows int, deltaDays float64) func(ctx context.Context, o Options) error {
	return func(ctx context.Context, o Options) error {
		o = o.withDefaults()
		if windows > o.MaxWindows {
			windows = o.MaxWindows
		}
		l, _, err := loadDataset("wikitalk", o)
		if err != nil {
			return err
		}
		spec, err := spanWindows(l, deltaDays, windows)
		if err != nil {
			return err
		}
		pool := o.newPool()
		defer pool.Close()
		strT, err := runStreaming(l, spec, pool)
		if err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "wikitalk, sw=%ds delta=%gd windows=%d (tiling the span); streaming baseline %.3gs\n",
			spec.Slide, deltaDays, spec.Count, strT)

		numMW := windows / 8
		if numMW < 6 {
			numMW = 6
		}
		if numMW > windows {
			numMW = windows
		}
		// Build both representations once and reuse across the sweep.
		tg, err := tcsr.Build(l, spec, numMW, false)
		if err != nil {
			return err
		}
		parts := []sched.Partitioner{sched.Auto, sched.Simple, sched.Static}
		modes := []core.ParallelMode{core.Nested, core.AppLevel, core.WindowLevel}
		kernels := []core.KernelID{core.SpMM, core.SpMV}
		grains := grainSweep(o.Quick)
		for _, part := range parts {
			t := NewTable(append([]string{"config (" + part.String() + ")"}, func() []string {
				var h []string
				for _, g := range grains {
					h = append(h, fmt.Sprintf("g=%d", g))
				}
				return h
			}()...)...)
			for _, mode := range modes {
				for _, kernel := range kernels {
					row := []string{mode.String() + "/" + kernel.String()}
					for _, g := range grains {
						cfg := core.DefaultConfig()
						cfg.Kernel = kernel
						cfg.Mode = mode
						cfg.Partitioner = part
						cfg.Grain = g
						cfg.VectorLen = 16
						cfg.DiscardRanks = true
						cfg.Directed = false
						eng, err := core.NewEngineFromTemporal(tg, cfg, pool)
						if err != nil {
							return err
						}
						secs, _, err := runPostmortemReusing(ctx, o, eng)
						if err != nil {
							return err
						}
						row = append(row, fmt.Sprintf("%.1f", strT/secs))
					}
					t.Row(row...)
				}
			}
			t.Render(o.Out)
			fmt.Fprintln(o.Out)
		}
		return nil
	}
}

func expFig8(ctx context.Context, o Options) error {
	o = o.withDefaults()
	windows := 256
	if windows > o.MaxWindows {
		windows = o.MaxWindows
	}
	l, _, err := loadDataset("wikitalk", o)
	if err != nil {
		return err
	}
	spec, err := spanWindows(l, 90, windows)
	if err != nil {
		return err
	}
	pool := o.newPool()
	defer pool.Close()
	strT, err := runStreaming(l, spec, pool)
	if err != nil {
		return err
	}
	mwCounts := []int{1, 6, 32, 256, 512, 1024}
	grains := []int{1, 8, 64}
	if o.Quick {
		mwCounts = []int{6, 32, 256}
		grains = []int{1, 64}
	}
	fmt.Fprintf(o.Out, "wikitalk, sw=%ds delta=90d windows=%d (tiling the span); streaming baseline %.3gs\n", spec.Slide, spec.Count, strT)
	for _, mode := range []core.ParallelMode{core.AppLevel, core.WindowLevel, core.Nested} {
		t := NewTable(append([]string{"multi-windows (" + mode.String() + ")"}, func() []string {
			var h []string
			for _, g := range grains {
				h = append(h, fmt.Sprintf("g=%d", g))
			}
			return h
		}()...)...)
		for _, mw := range mwCounts {
			row := []string{fmt.Sprintf("%d", mw)}
			cfg := core.DefaultConfig()
			cfg.Kernel = core.SpMM
			cfg.VectorLen = 16
			cfg.Mode = mode
			cfg.NumMultiWindows = mw
			cfg.DiscardRanks = true
			for _, g := range grains {
				cfg.Grain = g
				secs, _, err := runPostmortem(ctx, o, l, spec, cfg, pool)
				if err != nil {
					return err
				}
				row = append(row, fmt.Sprintf("%.1f", strT/secs))
			}
			t.Row(row...)
		}
		t.Render(o.Out)
		fmt.Fprintln(o.Out)
	}
	return nil
}

func expFig11(ctx context.Context, o Options) error {
	o = o.withDefaults()
	names := gen.Names()
	if o.Quick {
		names = []string{"enron", "wikitalk"}
	}
	pool := o.newPool()
	defer pool.Close()
	var best, worst float64 = math.Inf(1), 0
	for _, name := range names {
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		offsets := d.SlidingOffsets
		days := d.WindowDays
		if o.Quick {
			offsets = offsets[:1]
			if len(days) > 2 {
				days = days[:2]
			}
		} else if len(days) > 4 {
			days = days[len(days)-4:]
		}
		h := NewHeatmap("delta(d)", "sw(s)")
		for _, sw := range offsets {
			for _, dd := range days {
				spec, err := deriveSpec(l, sw, dd, o)
				if err != nil {
					return err
				}
				strT, err := runStreaming(l, spec, pool)
				if err != nil {
					return err
				}
				// Best over the candidate configurations (the paper
				// reports the best configuration per cell).
				candidates := []core.Config{
					suggestedConfig(spec),
					barebonePostmortem(),
					func() core.Config {
						c := suggestedConfig(spec)
						c.Mode = core.WindowLevel
						return c
					}(),
				}
				bestT := math.Inf(1)
				for _, cfg := range candidates {
					secs, _, err := runPostmortem(ctx, o, l, spec, cfg, pool)
					if err != nil {
						return err
					}
					if secs < bestT {
						bestT = secs
					}
				}
				sp := strT / bestT
				h.Set(daysLabel(dd), secondsLabel(sw), sp)
				if sp < best {
					best = sp
				}
				if sp > worst {
					worst = sp
				}
			}
		}
		fmt.Fprintf(o.Out, "%s (best postmortem speedup over streaming):\n", name)
		h.Render(o.Out)
		fmt.Fprintln(o.Out)
	}
	fmt.Fprintf(o.Out, "speedup range across all cells: %.0fx .. %.0fx (paper: 50x .. 880x on 48 cores)\n", best, worst)
	return nil
}

func expFig12(ctx context.Context, o Options) error {
	o = o.withDefaults()
	l, d, err := loadDataset("wikitalk", o)
	if err != nil {
		return err
	}
	offsets := d.SlidingOffsets
	days := d.WindowDays
	if o.Quick {
		offsets = offsets[:2]
		days = days[:2]
	}
	pool := o.newPool()
	defer pool.Close()
	h := NewHeatmap("delta(d)", "sw(s)")
	for _, sw := range offsets {
		for _, dd := range days {
			spec, err := deriveSpec(l, sw, dd, o)
			if err != nil {
				return err
			}
			strT, err := runStreaming(l, spec, pool)
			if err != nil {
				return err
			}
			secs, _, err := runPostmortem(ctx, o, l, spec, suggestedConfig(spec), pool)
			if err != nil {
				return err
			}
			h.Set(daysLabel(dd), secondsLabel(sw), strT/secs)
		}
	}
	fmt.Fprintln(o.Out, "wiki-talk with the suggested parameters (speedup over streaming):")
	h.Render(o.Out)
	return nil
}

func expAblationVecLen(ctx context.Context, o Options) error {
	o = o.withDefaults()
	l, _, err := loadDataset("wikitalk", o)
	if err != nil {
		return err
	}
	windows := 128
	if windows > o.MaxWindows {
		windows = o.MaxWindows
	}
	spec, err := spanWindows(l, 90, windows)
	if err != nil {
		return err
	}
	pool := o.newPool()
	defer pool.Close()
	lens := []int{1, 2, 4, 8, 16, 32}
	if o.Quick {
		lens = []int{1, 8, 16}
	}
	t := NewTable("veclen", "partial", "time(s)", "total iters")
	for _, vl := range lens {
		for _, partial := range []bool{true, false} {
			cfg := suggestedConfig(spec)
			cfg.VectorLen = vl
			cfg.PartialInit = partial
			secs, s, err := runPostmortem(ctx, o, l, spec, cfg, pool)
			if err != nil {
				return err
			}
			t.Rowf(vl, fmt.Sprintf("%v", partial), secs, s.TotalIterations())
		}
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "(higher vector length reduces sweeps but the first batch of each region pays full init)")
	return nil
}

func expAblationReplication(ctx context.Context, o Options) error {
	o = o.withDefaults()
	l, _, err := loadDataset("wikitalk", o)
	if err != nil {
		return err
	}
	windows := 256
	if windows > o.MaxWindows {
		windows = o.MaxWindows
	}
	spec, err := spanWindows(l, 90, windows)
	if err != nil {
		return err
	}
	counts := []int{1, 2, 6, 16, 64, 256}
	if o.Quick {
		counts = []int{1, 6, 64}
	}
	t := NewTable("multi-windows", "stored events", "replication", "memory(MB)", "build(s)")
	for _, c := range counts {
		if c > spec.Count {
			continue
		}
		var tg *tcsr.Temporal
		secs, err := timeIt(func() error {
			var err error
			tg, err = tcsr.Build(l, spec, c, false)
			return err
		})
		if err != nil {
			return err
		}
		t.Rowf(c, tg.TotalStoredEvents(),
			float64(tg.TotalStoredEvents())/float64(l.Len()),
			float64(tg.MemoryBytes())/(1<<20), secs)
	}
	t.Render(o.Out)
	return nil
}

func expAblationImbalance(ctx context.Context, o Options) error {
	o = o.withDefaults()
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "mode", "time(s)", "speedup vs app-level")
	for _, name := range []string{"epinions", "wikitalk"} { // spiky vs smooth (Sec. 6.1)
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		spec, err := deriveSpec(l, d.SlidingOffsets[0], d.WindowDays[0], o)
		if err != nil {
			return err
		}
		var appT float64
		for _, mode := range []core.ParallelMode{core.AppLevel, core.WindowLevel, core.Nested} {
			cfg := suggestedConfig(spec)
			cfg.Mode = mode
			secs, _, err := runPostmortem(ctx, o, l, spec, cfg, pool)
			if err != nil {
				return err
			}
			if mode == core.AppLevel {
				appT = secs
			}
			t.Rowf(name, mode.String(), secs, appT/secs)
		}
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "(spiky datasets favor app-level/nested; smooth many-window datasets tolerate window-level)")
	return nil
}

func expAblationPartition(ctx context.Context, o Options) error {
	o = o.withDefaults()
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "partition", "max/mean events per MW", "time(s)", "speedup")
	for _, name := range []string{"enron", "epinions", "wikitalk"} {
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		spec, err := deriveSpec(l, d.SlidingOffsets[0], d.WindowDays[0], o)
		if err != nil {
			return err
		}
		var uniformT float64
		for _, balanced := range []bool{false, true} {
			cfg := suggestedConfig(spec)
			cfg.BalancedPartition = balanced
			cfg.Directed = false
			cfg.DiscardRanks = true
			eng, err := core.NewEngine(l, spec, cfg, pool)
			if err != nil {
				return err
			}
			var maxE, sumE int
			for _, mw := range eng.Temporal().MWs {
				if mw.NumEvents() > maxE {
					maxE = mw.NumEvents()
				}
				sumE += mw.NumEvents()
			}
			imb := float64(maxE) / (float64(sumE) / float64(len(eng.Temporal().MWs)))
			secs, _, err := runPostmortemReusing(ctx, o, eng)
			if err != nil {
				return err
			}
			label := "uniform"
			if balanced {
				label = "balanced"
			} else {
				uniformT = secs
			}
			t.Rowf(name, label, imb, secs, uniformT/secs)
		}
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "(the event-balanced split is the non-uniform decomposition the paper's conclusion suggests)")
	return nil
}

func expExtKernels(ctx context.Context, o Options) error {
	o = o.withDefaults()
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "windows", "pagerank(s)", "components(s)", "kcore(s)", "closeness-s16(s)")
	names := []string{"wikitalk", "stackoverflow"}
	if o.Quick {
		names = names[:1]
	}
	for _, name := range names {
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		spec, err := deriveSpec(l, d.SlidingOffsets[len(d.SlidingOffsets)-1], d.WindowDays[len(d.WindowDays)-1], o)
		if err != nil {
			return err
		}
		prT, _, err := runPostmortem(ctx, o, l, spec, suggestedConfig(spec), pool)
		if err != nil {
			return err
		}
		wEng, err := wcc.NewEngine(l, spec, wcc.DefaultConfig(), pool)
		if err != nil {
			return err
		}
		wT, err := timeIt(func() error { _, err := wEng.Run(); return err })
		if err != nil {
			return err
		}
		kEng, err := kcore.NewEngineFromTemporal(wEng.Temporal(), kcore.DefaultConfig(), pool)
		if err != nil {
			return err
		}
		kT, err := timeIt(func() error { _, err := kEng.Run(); return err })
		if err != nil {
			return err
		}
		ccCfg := closeness.DefaultConfig()
		ccCfg.SampleSources = 16
		cEng, err := closeness.NewEngineFromTemporal(wEng.Temporal(), ccCfg, pool)
		if err != nil {
			return err
		}
		cT, err := timeIt(func() error { _, err := cEng.Run(); return err })
		if err != nil {
			return err
		}
		t.Rowf(name, spec.Count, prT, wT, kT, cT)
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "(components, k-core and sampled closeness reuse the temporal CSR; Sec. 3.1's other kernels)")
	return nil
}

func expProfileImbalance(ctx context.Context, o Options) error {
	o = o.withDefaults()
	pool := o.newPool()
	defer pool.Close()
	t := NewTable("dataset", "windows", "max/mean window time", "top window share", "gini-ish")
	for _, name := range gen.Names() {
		l, d, err := loadDataset(name, o)
		if err != nil {
			return err
		}
		spec, err := deriveSpec(l, d.SlidingOffsets[0], d.WindowDays[0], o)
		if err != nil {
			return err
		}
		cfg := offline.DefaultConfig()
		cfg.DiscardRanks = true
		stats, err := offline.Run(l, spec, cfg, nil)
		if err != nil {
			return err
		}
		var total, maxT float64
		times := make([]float64, len(stats))
		for i, st := range stats {
			times[i] = st.Elapsed.Seconds()
			total += times[i]
			if times[i] > maxT {
				maxT = times[i]
			}
		}
		mean := total / float64(len(stats))
		// Share of total work carried by the heaviest 10% of windows.
		sorted := append([]float64(nil), times...)
		sort.Float64s(sorted)
		topN := len(sorted) / 10
		if topN < 1 {
			topN = 1
		}
		var topSum float64
		for _, v := range sorted[len(sorted)-topN:] {
			topSum += v
		}
		// Mean absolute deviation relative to mean, a cheap dispersion
		// measure in [0, 2).
		var mad float64
		for _, v := range times {
			if v > mean {
				mad += v - mean
			} else {
				mad += mean - v
			}
		}
		mad /= total
		t.Rowf(name, spec.Count, maxT/mean, topSum/total, mad)
	}
	t.Render(o.Out)
	fmt.Fprintln(o.Out, "(spiky temporal distributions concentrate the PageRank work in few windows — Sec. 6.1)")
	return nil
}
