// Package bench is the harness that regenerates every table and figure
// of the paper's evaluation (Sec. 5-6) on the synthetic datasets. Each
// experiment prints the same rows/series the paper reports; absolute
// numbers differ from the authors' 48-core testbed, but the shapes
// (which model wins, rough factors, crossovers) are the reproduction
// target. See EXPERIMENTS.md for measured-vs-paper notes.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"pmpr/internal/core"
	"pmpr/internal/events"
	"pmpr/internal/gen"
	"pmpr/internal/obs"
	"pmpr/internal/offline"
	"pmpr/internal/sched"
	"pmpr/internal/streaming"
)

// Options configure a harness run.
type Options struct {
	// Out receives the rendered tables.
	Out io.Writer
	// Scale multiplies the synthetic dataset sizes (1.0 = the profiles'
	// base sizes; the default harness scale is 0.2).
	Scale float64
	// Seed drives dataset generation.
	Seed int64
	// Workers sizes the scheduler pool (0 = GOMAXPROCS).
	Workers int
	// Quick trims the parameter sweeps so the full suite finishes in
	// seconds (used by tests and -quick).
	Quick bool
	// MaxWindows caps the number of windows per derived spec so the
	// streaming baseline stays tractable at small scale; 0 means the
	// harness default (96 quick / 384 full).
	MaxWindows int
	// Trace, when non-nil, receives worker/window spans from every
	// postmortem engine run the harness performs through its helpers.
	Trace *obs.Trace
	// ReportSink, when non-nil, receives the RunReport of every
	// postmortem engine run performed through the harness helpers.
	ReportSink func(*core.RunReport)
	// PoolMetrics turns on scheduler counter collection in every pool
	// the experiments build, so the reports carry load-balance stats.
	PoolMetrics bool
}

// newPool builds an experiment's scheduler pool, honoring PoolMetrics.
func (o Options) newPool() *sched.Pool {
	p := sched.NewPool(o.Workers)
	if o.PoolMetrics {
		p.EnableMetrics(true)
	}
	return p
}

// Defaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 0.2
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxWindows == 0 {
		if o.Quick {
			o.MaxWindows = 96
		} else {
			o.MaxWindows = 384
		}
	}
	return o
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the experiment key ("fig5", "table1", "ablation-veclen"...).
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment and renders its output. The context
	// cancels the experiment's engine runs mid-solve (Ctrl-C on
	// pmbench); experiments abort at the next window/batch boundary.
	Run func(ctx context.Context, o Options) error
}

var registry []Experiment

func register(id, title string, run func(ctx context.Context, o Options) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment { return registry }

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, stopping early when ctx cancels.
func RunAll(ctx context.Context, o Options) error {
	for _, e := range registry {
		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(o.Out, "\n=== %s: %s ===\n", e.ID, e.Title)
		if err := e.Run(ctx, o); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}

// loadDataset generates a profile's log, symmetrized (the paper's
// representation, Fig. 3, stores both directions).
func loadDataset(name string, o Options) (*events.Log, gen.Dataset, error) {
	d, ok := gen.Get(name)
	if !ok {
		return nil, gen.Dataset{}, fmt.Errorf("bench: unknown dataset %q (have %v)", name, gen.Names())
	}
	l, err := d.Generate(o.Scale, o.Seed+int64(len(name)))
	if err != nil {
		return nil, gen.Dataset{}, err
	}
	return l.Symmetrize(), d, nil
}

// deriveSpec builds the window spec for (sw, deltaDays) over the log.
// The paper's parameters produce thousands of windows on the full-size
// datasets; at harness scale we bound the count at o.MaxWindows while
// preserving the property the experiments depend on — the overlap ratio
// delta/sw — by scaling BOTH parameters up by the same factor. The
// window size is capped at half the dataset span (beyond that every
// window is "the whole dataset" and the sweep is meaningless); if the
// cap binds, the window count is truncated instead.
func deriveSpec(l *events.Log, slideSeconds int64, deltaDays float64, o Options) (events.WindowSpec, error) {
	delta := int64(deltaDays * float64(gen.Day))
	slide := slideSeconds
	first, last, ok := l.TimeRange()
	if !ok {
		return events.WindowSpec{}, fmt.Errorf("bench: empty log")
	}
	span := last - first
	natural := span/slide + 1
	if natural > int64(o.MaxWindows) {
		f := float64(natural) / float64(o.MaxWindows)
		if maxF := float64(span/2) / float64(delta); f > maxF {
			f = maxF
		}
		if f > 1 {
			slide = int64(float64(slide) * f)
			delta = int64(float64(delta) * f)
		}
	}
	spec, err := events.Span(l, delta, slide)
	if err != nil {
		return events.WindowSpec{}, err
	}
	if spec.Count > o.MaxWindows {
		// Truncation binds (the window-size cap prevented full scaling):
		// place the covered range over the densest part of the dataset,
		// so spiky profiles keep their spike in view.
		spec.Count = o.MaxWindows
		covered := int64(spec.Count-1)*spec.Slide + spec.Delta
		if covered < span {
			best, bestCount := first, -1
			step := (span - covered) / 16
			if step < 1 {
				step = 1
			}
			for start := first; start+covered <= last; start += step {
				if c := l.CountInRange(start, start+covered); c > bestCount {
					best, bestCount = start, c
				}
			}
			spec.T0 = best
		}
	}
	return spec, nil
}

// deriveOverlapSpec keeps the paper's sliding offset exactly (the
// overlap between consecutive windows is the quantity under test, e.g.
// for partial initialization) and truncates the window count instead.
func deriveOverlapSpec(l *events.Log, slideSeconds int64, deltaDays float64, o Options) (events.WindowSpec, error) {
	spec, err := events.Span(l, int64(deltaDays*float64(gen.Day)), slideSeconds)
	if err != nil {
		return events.WindowSpec{}, err
	}
	if spec.Count > o.MaxWindows {
		spec.Count = o.MaxWindows
	}
	return spec, nil
}

// spanWindows derives a spec with exactly count windows tiling the
// whole dataset at the given window size.
func spanWindows(l *events.Log, deltaDays float64, count int) (events.WindowSpec, error) {
	first, last, ok := l.TimeRange()
	if !ok {
		return events.WindowSpec{}, fmt.Errorf("bench: empty log")
	}
	slide := (last - first) / int64(count)
	if slide < 1 {
		slide = 1
	}
	spec, err := events.Span(l, int64(deltaDays*float64(gen.Day)), slide)
	if err != nil {
		return events.WindowSpec{}, err
	}
	if spec.Count > count {
		spec.Count = count
	}
	return spec, nil
}

// timeIt measures fn. Each experiment measures once per configuration;
// the kernels are long enough (many windows x many iterations) that
// single-shot timing is stable at the "shape" resolution we target.
func timeIt(fn func() error) (float64, error) {
	start := time.Now()
	err := fn()
	return time.Since(start).Seconds(), err
}

// runPostmortem builds (or reuses) an engine and times Run.
func runPostmortem(ctx context.Context, o Options, l *events.Log, spec events.WindowSpec, cfg core.Config, pool *sched.Pool) (float64, *core.Series, error) {
	cfg.Directed = false
	cfg.DiscardRanks = true
	eng, err := core.NewEngine(l, spec, cfg, pool)
	if err != nil {
		return 0, nil, err
	}
	return runPostmortemReusing(ctx, o, eng)
}

// runPostmortemReusing times Run on a prebuilt representation.
func runPostmortemReusing(ctx context.Context, o Options, eng *core.Engine) (float64, *core.Series, error) {
	if o.Trace != nil {
		eng.SetTrace(o.Trace)
	}
	var s *core.Series
	secs, err := timeIt(func() error {
		var err error
		s, err = eng.Run(ctx)
		return err
	})
	if err == nil && o.ReportSink != nil && s.Report != nil {
		o.ReportSink(s.Report)
	}
	return secs, s, err
}

// runStreaming times the streaming model (window sequence is inherently
// serial; the kernel uses the pool).
func runStreaming(l *events.Log, spec events.WindowSpec, pool *sched.Pool) (float64, error) {
	cfg := streaming.DefaultConfig()
	cfg.DiscardRanks = true
	r, err := streaming.NewRunner(l, spec, cfg, pool)
	if err != nil {
		return 0, err
	}
	return timeIt(func() error {
		_, err := r.Run()
		return err
	})
}

// runOffline times the offline model (parallel across windows).
func runOffline(l *events.Log, spec events.WindowSpec, pool *sched.Pool) (float64, error) {
	cfg := offline.DefaultConfig()
	cfg.DiscardRanks = true
	return timeIt(func() error {
		_, err := offline.Run(l, spec, cfg, pool)
		return err
	})
}

// barebonePostmortem is the untuned configuration of Sec. 6.2: SpMV
// kernel, application-level parallelism, static scheduling, partial
// initialization, 6 multi-window graphs.
func barebonePostmortem() core.Config {
	cfg := core.DefaultConfig()
	cfg.Kernel = core.SpMV
	cfg.Mode = core.AppLevel
	cfg.Partitioner = sched.Static
	cfg.Grain = 64
	cfg.PartialInit = true
	cfg.NumMultiWindows = 6
	return cfg
}

// suggestedConfig follows the paper's parameter guidance (Sec. 6.3.6):
// SpMM, auto partitioner with grain under 4, nested parallelism unless
// the workload is dominated by a couple of windows. The number of
// multi-window graphs is chosen so each one spans about two window
// lengths of time — "large enough" per Fig. 8 (a window's sweep then
// touches at most ~2x its own events) without wasting memory on
// replication.
func suggestedConfig(spec events.WindowSpec) core.Config {
	cfg := core.DefaultConfig()
	cfg.Kernel = core.SpMM
	cfg.Partitioner = sched.Auto
	cfg.Grain = 2
	cfg.Mode = core.Nested
	cfg.VectorLen = 16
	numMW := int(int64(spec.Count) * spec.Slide / (spec.Delta + 1))
	if numMW < 6 {
		numMW = 6
	}
	if numMW > spec.Count {
		numMW = spec.Count
	}
	cfg.NumMultiWindows = numMW
	return cfg
}

// grainSweep returns the granularity axis of Figs. 7-10.
func grainSweep(quick bool) []int {
	if quick {
		return []int{1, 16, 256}
	}
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}
}

func secondsLabel(sw int64) string { return fmt.Sprintf("%d", sw) }

func daysLabel(d float64) string { return fmt.Sprintf("%g", d) }
