package streaming

import (
	"fmt"
	"math"
	"sync/atomic"

	"pmpr/internal/events"
	"pmpr/internal/pagerank"
	"pmpr/internal/sched"
)

// Strategy selects how the PageRank solution is updated after a batch
// of edge changes.
type Strategy int

const (
	// WarmRestart starts the power iteration from the previous window's
	// solution (renormalized over the new active set) and iterates to
	// convergence. It produces the same per-window results as the
	// postmortem and offline models, which is the configuration the
	// paper's comparison uses ("the code bases produce the same
	// results").
	WarmRestart Strategy = iota
	// Recompute starts every window from the uniform vector.
	Recompute
	// Frontier is a Riedy-style incremental update (the role of Eq. 3):
	// only vertices transitively affected by the batch are iterated,
	// with Gauss-Seidel in-place updates. It is approximate — vertices
	// outside the frontier keep their previous values.
	Frontier
)

// String names the strategy as used in reports and CLI flags.
func (s Strategy) String() string {
	switch s {
	case WarmRestart:
		return "warm-restart"
	case Recompute:
		return "recompute"
	case Frontier:
		return "frontier"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Config controls a streaming run.
type Config struct {
	// Opts are the shared PageRank parameters.
	Opts pagerank.Options
	// Directed keeps edge direction (the log must then not be
	// symmetrized); false expects a symmetrized log.
	Directed bool
	// Strategy is the incremental update policy.
	Strategy Strategy
	// Partitioner and Grain configure the kernel's vertex loop when a
	// pool is supplied. The streaming model has no window-level
	// parallelism — windows are inherently sequential.
	Partitioner sched.Partitioner
	Grain       int
	// DiscardRanks keeps only statistics per window.
	DiscardRanks bool
}

// DefaultConfig mirrors the paper's streaming setup.
func DefaultConfig() Config {
	return Config{
		Opts:        pagerank.Defaults(),
		Strategy:    WarmRestart,
		Partitioner: sched.Auto,
		Grain:       64,
	}
}

// WindowStats describes one processed window of the stream.
type WindowStats struct {
	Window         int
	Iterations     int
	Converged      bool
	ActiveVertices int32
	// Inserted and Removed are the batch sizes (event granularity) that
	// slid the window here.
	Inserted, Removed int
	// Ranks is the dense PageRank vector (nil when discarded).
	Ranks []float64
}

// Runner drives the streaming model over a window sequence: per window
// it injects the entering events, retires the departing ones, and
// updates PageRank incrementally. The runner maintains exactly one
// graph version, so windows are processed strictly in order.
type Runner struct {
	log  *events.Log
	spec events.WindowSpec
	cfg  Config
	pool *sched.Pool

	g *Graph
	x []float64
}

// NewRunner validates the configuration and prepares an empty stream.
func NewRunner(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Runner, error) {
	if err := cfg.Opts.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Strategy < WarmRestart || cfg.Strategy > Frontier {
		return nil, fmt.Errorf("streaming: unknown strategy %d", int(cfg.Strategy))
	}
	return &Runner{
		log:  l,
		spec: spec,
		cfg:  cfg,
		pool: pool,
		g:    NewGraph(l.NumVertices(), cfg.Directed),
		x:    make([]float64, l.NumVertices()),
	}, nil
}

// Graph exposes the current dynamic graph (for inspection and tests).
func (r *Runner) Graph() *Graph { return r.g }

// Run processes every window in order and returns per-window stats.
func (r *Runner) Run() ([]WindowStats, error) {
	out := make([]WindowStats, r.spec.Count)
	for w := 0; w < r.spec.Count; w++ {
		st, err := r.Step(w)
		if err != nil {
			return nil, err
		}
		out[w] = st
	}
	return out, nil
}

// Step advances the stream to window w (which must be the next window).
func (r *Runner) Step(w int) (WindowStats, error) {
	ins, rem, seeds, err := r.slide(w)
	if err != nil {
		return WindowStats{}, err
	}
	st := WindowStats{Window: w, Inserted: ins, Removed: rem}
	switch r.cfg.Strategy {
	case Recompute:
		r.solve(&st, false)
	case WarmRestart:
		r.solve(&st, w > 0)
	case Frontier:
		if w == 0 {
			r.solve(&st, false)
		} else {
			r.solveFrontier(&st, seeds)
		}
	}
	if !r.cfg.DiscardRanks {
		st.Ranks = append([]float64(nil), r.x...)
	}
	return st, nil
}

// slide applies the batch moving the graph from window w-1 to window w
// and returns the batch sizes plus the set of touched vertices.
func (r *Runner) slide(w int) (inserted, removed int, seeds map[int32]bool, err error) {
	seeds = make(map[int32]bool)
	if w == 0 {
		for _, e := range r.log.Slice(r.spec.Start(0), r.spec.End(0)) {
			if _, err := r.g.InsertEventAt(e.U, e.V, e.T); err != nil {
				return 0, 0, nil, err
			}
			inserted++
		}
		return inserted, 0, seeds, nil
	}
	// Departing: events of window w-1 that precede window w.
	depHi := r.spec.End(w - 1)
	if s := r.spec.Start(w) - 1; s < depHi {
		depHi = s
	}
	for _, e := range r.log.Slice(r.spec.Start(w-1), depHi) {
		if _, err := r.g.RemoveEvent(e.U, e.V); err != nil {
			return 0, 0, nil, err
		}
		removed++
		seeds[e.U] = true
		seeds[e.V] = true
	}
	// Entering: events of window w that follow window w-1.
	entLo := r.spec.Start(w)
	if s := r.spec.End(w-1) + 1; s > entLo {
		entLo = s
	}
	for _, e := range r.log.Slice(entLo, r.spec.End(w)) {
		if _, err := r.g.InsertEventAt(e.U, e.V, e.T); err != nil {
			return 0, 0, nil, err
		}
		inserted++
		seeds[e.U] = true
		seeds[e.V] = true
	}
	return inserted, removed, seeds, nil
}

// loop runs body over [0, n), on the pool when available.
func (r *Runner) loop(n int, body func(lo, hi int)) {
	if r.pool == nil {
		body(0, n)
		return
	}
	grain := r.cfg.Grain
	if grain < 1 {
		grain = 1
	}
	r.pool.ParallelFor(n, grain, r.cfg.Partitioner, func(_ *sched.Worker, lo, hi int) { body(lo, hi) })
}

// solve runs the power iteration on the current graph, optionally warm
// starting from the previous solution.
func (r *Runner) solve(st *WindowStats, warm bool) {
	n := int(r.g.NumVertices())
	var naA atomic.Int32
	active := make([]bool, n)
	r.loop(n, func(lo, hi int) {
		var c int32
		for v := lo; v < hi; v++ {
			if r.g.Active(int32(v)) {
				active[v] = true
				c++
			} else {
				active[v] = false
			}
		}
		naA.Add(c)
	})
	na := naA.Load()
	st.ActiveVertices = na
	if na == 0 {
		for v := range r.x {
			r.x[v] = 0
		}
		st.Converged = true
		return
	}
	uniform := 1 / float64(na)
	if warm {
		var sumA atomicFloat64
		r.loop(n, func(lo, hi int) {
			var s float64
			for v := lo; v < hi; v++ {
				if active[v] && r.x[v] > 0 {
					s += r.x[v]
				}
			}
			sumA.add(s)
		})
		if sum := sumA.load(); sum > 0 {
			r.loop(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					switch {
					case !active[v]:
						r.x[v] = 0
					case r.x[v] > 0:
						r.x[v] /= sum
					default:
						r.x[v] = uniform
					}
				}
			})
			// Renormalize to account for the uniform entries added for
			// fresh vertices.
			var tot atomicFloat64
			r.loop(n, func(lo, hi int) {
				var s float64
				for v := lo; v < hi; v++ {
					s += r.x[v]
				}
				tot.add(s)
			})
			inv := 1 / tot.load()
			r.loop(n, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					r.x[v] *= inv
				}
			})
		} else {
			warm = false
		}
	}
	if !warm {
		r.loop(n, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if active[v] {
					r.x[v] = uniform
				} else {
					r.x[v] = 0
				}
			}
		})
	}

	y := make([]float64, n)
	z := make([]float64, n)
	opt := r.cfg.Opts
	invNA := 1 / float64(na)
	for it := 0; it < opt.MaxIter; it++ {
		st.Iterations = it + 1
		var danglingA atomicFloat64
		r.loop(n, func(lo, hi int) {
			var d float64
			for u := lo; u < hi; u++ {
				if deg := r.g.OutDegree(int32(u)); deg > 0 {
					z[u] = r.x[u] / float64(deg)
				} else {
					z[u] = 0
					if active[u] {
						d += r.x[u]
					}
				}
			}
			danglingA.add(d)
		})
		base := opt.Alpha*invNA + (1-opt.Alpha)*danglingA.load()*invNA
		var deltaA atomicFloat64
		r.loop(n, func(lo, hi int) {
			var delta float64
			for v := lo; v < hi; v++ {
				if !active[v] {
					y[v] = 0
					continue
				}
				var acc float64
				r.g.ForEachInNeighbor(int32(v), func(u int32) { acc += z[u] })
				nv := base + (1-opt.Alpha)*acc
				delta += math.Abs(nv - r.x[v])
				y[v] = nv
			}
			deltaA.add(delta)
		})
		r.x, y = y, r.x
		if deltaA.load() < opt.Tol {
			st.Converged = true
			break
		}
	}
}

// solveFrontier performs the Riedy-style incremental update: only
// vertices transitively affected by the batch are recomputed, expanding
// the frontier while per-vertex changes exceed a local threshold.
func (r *Runner) solveFrontier(st *WindowStats, seeds map[int32]bool) {
	n := int(r.g.NumVertices())
	na := r.g.ActiveCount()
	st.ActiveVertices = na
	if na == 0 {
		for v := range r.x {
			r.x[v] = 0
		}
		st.Converged = true
		return
	}
	uniform := 1 / float64(na)
	inFrontier := make([]bool, n)
	var frontier []int32
	push := func(v int32) {
		if !inFrontier[v] {
			inFrontier[v] = true
			frontier = append(frontier, v)
		}
	}
	for v := range seeds {
		push(v)
		// A changed out-degree of v rescales its contribution to every
		// out-neighbor.
		r.g.ForEachOutNeighbor(v, push)
	}
	// Vertices that left or joined the active set need their values
	// reset before iterating.
	for v := int32(0); v < int32(n); v++ {
		act := r.g.Active(v)
		if !act && r.x[v] != 0 {
			r.x[v] = 0
			push(v)
			r.g.ForEachOutNeighbor(v, push)
		}
		if act && r.x[v] == 0 {
			r.x[v] = uniform
			push(v)
			r.g.ForEachOutNeighbor(v, push)
		}
	}

	opt := r.cfg.Opts
	invNA := 1 / float64(na)
	local := opt.Tol * invNA
	for it := 0; it < opt.MaxIter; it++ {
		st.Iterations = it + 1
		var dangling float64
		for u := int32(0); u < int32(n); u++ {
			if r.g.Active(u) && r.g.OutDegree(u) == 0 {
				dangling += r.x[u]
			}
		}
		base := opt.Alpha*invNA + (1-opt.Alpha)*dangling*invNA
		var delta float64
		cur := frontier
		for _, v := range cur {
			if !r.g.Active(v) {
				continue
			}
			var acc float64
			r.g.ForEachInNeighbor(v, func(u int32) {
				if deg := r.g.OutDegree(u); deg > 0 {
					acc += r.x[u] / float64(deg)
				}
			})
			nv := base + (1-opt.Alpha)*acc
			d := math.Abs(nv - r.x[v])
			r.x[v] = nv // Gauss-Seidel in place
			delta += d
			if d > local {
				r.g.ForEachOutNeighbor(v, push)
			}
		}
		if delta < opt.Tol {
			st.Converged = true
			break
		}
	}
	// Untouched stale values can leave the vector slightly off unit
	// mass; renormalize over the active set.
	var sum float64
	for v := int32(0); v < int32(n); v++ {
		if r.g.Active(v) {
			sum += r.x[v]
		} else {
			r.x[v] = 0
		}
	}
	if sum > 0 {
		inv := 1 / sum
		for v := range r.x {
			r.x[v] *= inv
		}
	}
}

// atomicFloat64 mirrors the accumulator in internal/core (kept local to
// avoid a dependency from a baseline onto the contribution package).
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) add(delta float64) {
	if delta == 0 {
		return
	}
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat64) load() float64 { return math.Float64frombits(a.bits.Load()) }
