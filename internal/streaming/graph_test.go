package streaming

import (
	"math/rand"
	"sort"
	"testing"
)

func TestInsertRemoveBasics(t *testing.T) {
	g := NewGraph(4, true)
	isNew, err := g.InsertEvent(0, 1)
	if err != nil || !isNew {
		t.Fatalf("first insert: new=%v err=%v", isNew, err)
	}
	isNew, err = g.InsertEvent(0, 1)
	if err != nil || isNew {
		t.Fatalf("second insert of same edge: new=%v err=%v", isNew, err)
	}
	if g.NumEdges() != 1 || g.EventCount(0, 1) != 2 {
		t.Fatalf("edges=%d count=%d", g.NumEdges(), g.EventCount(0, 1))
	}
	died, err := g.RemoveEvent(0, 1)
	if err != nil || died {
		t.Fatalf("first remove: died=%v err=%v", died, err)
	}
	died, err = g.RemoveEvent(0, 1)
	if err != nil || !died {
		t.Fatalf("second remove: died=%v err=%v", died, err)
	}
	if g.NumEdges() != 0 || g.HasEdge(0, 1) {
		t.Fatal("edge should be gone")
	}
	if _, err := g.RemoveEvent(0, 1); err == nil {
		t.Fatal("removing absent edge should error")
	}
}

func TestDegreesDirected(t *testing.T) {
	g := NewGraph(5, true)
	mustInsert := func(u, v int32) {
		t.Helper()
		if _, err := g.InsertEvent(u, v); err != nil {
			t.Fatalf("insert(%d,%d): %v", u, v, err)
		}
	}
	mustInsert(0, 1)
	mustInsert(0, 2)
	mustInsert(3, 1)
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 || g.InDegree(0) != 0 {
		t.Fatalf("degrees wrong: out0=%d in1=%d in0=%d", g.OutDegree(0), g.InDegree(1), g.InDegree(0))
	}
	if !g.Active(1) || g.Active(4) {
		t.Fatal("activity flags wrong")
	}
	if g.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d, want 4", g.ActiveCount())
	}
}

func TestUndirectedInDegreeAliases(t *testing.T) {
	g := NewGraph(3, false)
	if _, err := g.InsertEvent(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.InsertEvent(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.InDegree(0) != g.OutDegree(0) {
		t.Fatal("undirected in-degree should equal out-degree")
	}
}

func TestBoundsChecked(t *testing.T) {
	g := NewGraph(2, true)
	if _, err := g.InsertEvent(0, 2); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if _, err := g.InsertEvent(-1, 0); err == nil {
		t.Fatal("negative insert accepted")
	}
	if _, err := g.RemoveEvent(5, 0); err == nil {
		t.Fatal("out-of-range remove accepted")
	}
}

func TestBlockChainsGrowAndReuse(t *testing.T) {
	// Undirected so only vertex 0's out-chain allocates blocks; directed
	// graphs additionally allocate one in-chain block per fresh target.
	g := NewGraph(100, false)
	// More neighbors than one block holds.
	for v := int32(1); v < 50; v++ {
		if _, err := g.InsertEvent(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.OutDegree(0) != 49 {
		t.Fatalf("OutDegree(0) = %d", g.OutDegree(0))
	}
	before := g.NumBlocks()
	// Kill some edges, then add new ones: the holes must be reused
	// without allocating new blocks.
	for v := int32(1); v <= 10; v++ {
		if _, err := g.RemoveEvent(0, v); err != nil {
			t.Fatal(err)
		}
	}
	for v := int32(50); v < 60; v++ {
		if _, err := g.InsertEvent(0, v); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumBlocks() != before {
		t.Fatalf("blocks grew from %d to %d despite free slots", before, g.NumBlocks())
	}
	if g.OutDegree(0) != 49 {
		t.Fatalf("OutDegree(0) = %d after churn", g.OutDegree(0))
	}
}

func collectOut(g *Graph, u int32) []int32 {
	var out []int32
	g.ForEachOutNeighbor(u, func(v int32) { out = append(out, v) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestRandomChurnMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	const n = 30
	g := NewGraph(n, true)
	// Oracle: multiset of live events.
	counts := make(map[[2]int32]int)
	var live [][2]int32 // events currently live, for random removal
	for step := 0; step < 5000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			i := rng.Intn(len(live))
			e := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			died, err := g.RemoveEvent(e[0], e[1])
			if err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			counts[e]--
			if died != (counts[e] == 0) {
				t.Fatalf("step %d: died=%v oracle count=%d", step, died, counts[e])
			}
		} else {
			e := [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
			isNew, err := g.InsertEvent(e[0], e[1])
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			if isNew != (counts[e] == 0) {
				t.Fatalf("step %d: new=%v oracle count=%d", step, isNew, counts[e])
			}
			counts[e]++
			live = append(live, e)
		}
	}
	// Verify full adjacency against the oracle.
	wantEdges := 0
	outAdj := make(map[int32][]int32)
	inDeg := make(map[int32]int32)
	for e, c := range counts {
		if c > 0 {
			wantEdges++
			outAdj[e[0]] = append(outAdj[e[0]], e[1])
			inDeg[e[1]]++
			if g.EventCount(e[0], e[1]) != int32(c) {
				t.Fatalf("edge %v: count %d, oracle %d", e, g.EventCount(e[0], e[1]), c)
			}
		} else if g.HasEdge(e[0], e[1]) {
			t.Fatalf("dead edge %v still live", e)
		}
	}
	if g.NumEdges() != int64(wantEdges) {
		t.Fatalf("NumEdges = %d, oracle %d", g.NumEdges(), wantEdges)
	}
	for u := int32(0); u < n; u++ {
		want := append([]int32(nil), outAdj[u]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := collectOut(g, u)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %v != %v", u, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("vertex %d: %v != %v", u, got, want)
			}
		}
		if g.OutDegree(u) != int32(len(want)) {
			t.Fatalf("vertex %d: OutDegree %d, oracle %d", u, g.OutDegree(u), len(want))
		}
		if g.InDegree(u) != inDeg[u] {
			t.Fatalf("vertex %d: InDegree %d, oracle %d", u, g.InDegree(u), inDeg[u])
		}
	}
	// In-neighbor iteration mirrors the out view.
	for v := int32(0); v < n; v++ {
		var ins []int32
		g.ForEachInNeighbor(v, func(u int32) { ins = append(ins, u) })
		if int32(len(ins)) != g.InDegree(v) {
			t.Fatalf("vertex %d: iterated %d in-neighbors, degree %d", v, len(ins), g.InDegree(v))
		}
		for _, u := range ins {
			if counts[[2]int32{u, v}] <= 0 {
				t.Fatalf("phantom in-edge %d -> %d", u, v)
			}
		}
	}
}

func TestSelfLoopStreaming(t *testing.T) {
	g := NewGraph(3, true)
	if _, err := g.InsertEvent(1, 1); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(1) != 1 || g.InDegree(1) != 1 || !g.Active(1) {
		t.Fatal("self-loop bookkeeping wrong")
	}
	if died, err := g.RemoveEvent(1, 1); err != nil || !died {
		t.Fatalf("died=%v err=%v", died, err)
	}
	if g.Active(1) {
		t.Fatal("vertex still active after self-loop removal")
	}
}

func TestEdgeTimesMetadata(t *testing.T) {
	g := NewGraph(3, true)
	if _, err := g.InsertEventAt(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := g.InsertEventAt(0, 1, 250); err != nil {
		t.Fatal(err)
	}
	first, recent, ok := g.EdgeTimes(0, 1)
	if !ok || first != 100 || recent != 250 {
		t.Fatalf("EdgeTimes = (%d, %d, %v), want (100, 250, true)", first, recent, ok)
	}
	if _, _, ok := g.EdgeTimes(1, 0); ok {
		t.Fatal("absent edge reported times")
	}
	// Edge dies and is reinserted: metadata resets.
	if _, err := g.RemoveEvent(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.RemoveEvent(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.InsertEventAt(0, 1, 900); err != nil {
		t.Fatal(err)
	}
	first, recent, ok = g.EdgeTimes(0, 1)
	if !ok || first != 900 || recent != 900 {
		t.Fatalf("after reinsertion EdgeTimes = (%d, %d, %v), want (900, 900, true)", first, recent, ok)
	}
}
