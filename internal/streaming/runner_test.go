package streaming

import (
	"math"
	"math/rand"
	"testing"

	"pmpr/internal/csr"
	"pmpr/internal/events"
	"pmpr/internal/pagerank"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

func oracle(t *testing.T, l *events.Log, spec events.WindowSpec, w int) []float64 {
	t.Helper()
	g, err := csr.FromLogWindow(l, spec.Start(w), spec.End(w))
	if err != nil {
		t.Fatalf("oracle graph: %v", err)
	}
	want, err := pagerank.Reference(g, pagerank.Defaults())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	return want
}

func TestStreamingMatchesOracle(t *testing.T) {
	l := randomLog(t, 61, 25, 800, 3000)
	spec, err := events.Span(l, 500, 150)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	for _, strat := range []Strategy{Recompute, WarmRestart} {
		cfg := DefaultConfig()
		cfg.Directed = true
		cfg.Strategy = strat
		r, err := NewRunner(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		stats, err := r.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		for w := 0; w < spec.Count; w++ {
			want := oracle(t, l, spec, w)
			for v := range want {
				if math.Abs(stats[w].Ranks[v]-want[v]) > 1e-5 {
					t.Fatalf("%v window %d vertex %d: got %v, oracle %v",
						strat, w, v, stats[w].Ranks[v], want[v])
				}
			}
		}
	}
}

func TestStreamingParallelKernelMatches(t *testing.T) {
	pool := sched.NewPool(4)
	defer pool.Close()
	l := randomLog(t, 62, 20, 500, 2000)
	spec, _ := events.Span(l, 400, 120)
	cfg := DefaultConfig()
	cfg.Directed = true
	r, err := NewRunner(l, spec, cfg, pool)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for w := 0; w < spec.Count; w++ {
		want := oracle(t, l, spec, w)
		for v := range want {
			if math.Abs(stats[w].Ranks[v]-want[v]) > 1e-5 {
				t.Fatalf("window %d vertex %d: got %v, oracle %v", w, v, stats[w].Ranks[v], want[v])
			}
		}
	}
}

func TestFrontierApproximation(t *testing.T) {
	l := randomLog(t, 63, 30, 2000, 4000)
	spec, _ := events.Span(l, 1500, 200)
	cfg := DefaultConfig()
	cfg.Directed = true
	cfg.Strategy = Frontier
	r, err := NewRunner(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for w := 0; w < spec.Count; w++ {
		want := oracle(t, l, spec, w)
		var l1 float64
		for v := range want {
			l1 += math.Abs(stats[w].Ranks[v] - want[v])
		}
		// The frontier update is approximate; it must stay close in L1.
		if l1 > 0.02 {
			t.Fatalf("window %d: frontier L1 error %v too large", w, l1)
		}
	}
}

func TestWarmRestartReducesIterations(t *testing.T) {
	l := randomLog(t, 64, 40, 3000, 5000)
	spec, _ := events.Span(l, 2500, 120)
	run := func(s Strategy) int {
		cfg := DefaultConfig()
		cfg.Directed = true
		cfg.Strategy = s
		cfg.DiscardRanks = true
		r, err := NewRunner(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewRunner: %v", err)
		}
		stats, err := r.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		total := 0
		for _, st := range stats {
			total += st.Iterations
		}
		return total
	}
	cold := run(Recompute)
	warm := run(WarmRestart)
	if warm >= cold {
		t.Fatalf("warm restart iterations %d not below recompute %d", warm, cold)
	}
}

func TestBatchAccounting(t *testing.T) {
	// Windows [0,10], [5,15]: events at 2, 7, 12 -> window 1 removes
	// the event at 2 and inserts the one at 12.
	l, _ := events.NewLog([]events.Event{
		ev(0, 1, 2), ev(1, 2, 7), ev(2, 0, 12),
	}, 3)
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 2}
	cfg := DefaultConfig()
	cfg.Directed = true
	r, _ := NewRunner(l, spec, cfg, nil)
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats[0].Inserted != 2 || stats[0].Removed != 0 {
		t.Fatalf("window 0 batch: +%d -%d", stats[0].Inserted, stats[0].Removed)
	}
	if stats[1].Inserted != 1 || stats[1].Removed != 1 {
		t.Fatalf("window 1 batch: +%d -%d", stats[1].Inserted, stats[1].Removed)
	}
	if r.Graph().NumEdges() != 2 {
		t.Fatalf("final graph has %d edges, want 2", r.Graph().NumEdges())
	}
}

func TestDisjointWindows(t *testing.T) {
	// Slide > delta: the whole graph turns over between windows.
	l, _ := events.NewLog([]events.Event{
		ev(0, 1, 0), ev(1, 0, 1),
		ev(2, 3, 100), ev(3, 2, 101),
	}, 4)
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 100, Count: 2}
	cfg := DefaultConfig()
	cfg.Directed = true
	r, _ := NewRunner(l, spec, cfg, nil)
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats[1].Removed != 2 || stats[1].Inserted != 2 {
		t.Fatalf("turnover batch: +%d -%d", stats[1].Inserted, stats[1].Removed)
	}
	if stats[1].Ranks[0] != 0 || stats[1].Ranks[2] <= 0 {
		t.Fatal("window 1 ranks wrong after turnover")
	}
}

func TestEmptyWindowStreaming(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 5, Slide: 50, Count: 3}
	for _, strat := range []Strategy{Recompute, WarmRestart, Frontier} {
		cfg := DefaultConfig()
		cfg.Directed = true
		cfg.Strategy = strat
		r, _ := NewRunner(l, spec, cfg, nil)
		stats, err := r.Run()
		if err != nil {
			t.Fatalf("%v: Run: %v", strat, err)
		}
		for w := 1; w < 3; w++ {
			if stats[w].ActiveVertices != 0 || !stats[w].Converged {
				t.Fatalf("%v: empty window %d mishandled: %+v", strat, w, stats[w])
			}
		}
	}
}

func TestRunnerValidation(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 5, Slide: 5, Count: 1}
	cfg := DefaultConfig()
	cfg.Opts.Alpha = 7
	if _, err := NewRunner(l, spec, cfg, nil); err == nil {
		t.Fatal("bad options accepted")
	}
	cfg = DefaultConfig()
	cfg.Strategy = Strategy(42)
	if _, err := NewRunner(l, spec, cfg, nil); err == nil {
		t.Fatal("bad strategy accepted")
	}
	if _, err := NewRunner(l, events.WindowSpec{}, DefaultConfig(), nil); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestDiscardRanksStreaming(t *testing.T) {
	l := randomLog(t, 65, 10, 100, 500)
	spec, _ := events.Span(l, 100, 50)
	cfg := DefaultConfig()
	cfg.Directed = true
	cfg.DiscardRanks = true
	r, _ := NewRunner(l, spec, cfg, nil)
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, st := range stats {
		if st.Ranks != nil {
			t.Fatal("ranks retained despite DiscardRanks")
		}
	}
}

func TestStrategyString(t *testing.T) {
	if WarmRestart.String() != "warm-restart" || Recompute.String() != "recompute" || Frontier.String() != "frontier" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should format")
	}
}

func TestFrontierFullTurnover(t *testing.T) {
	// Disjoint windows force the frontier update to handle a complete
	// graph replacement; results must stay close to exact.
	rng := rand.New(rand.NewSource(66))
	var evs []events.Event
	for w := 0; w < 4; w++ {
		base := int64(w) * 1000
		for i := 0; i < 150; i++ {
			evs = append(evs, ev(int32(rng.Intn(20)), int32(rng.Intn(20)), base+int64(rng.Intn(100))))
		}
	}
	l, err := events.NewLogSorted(evs, 20)
	if err != nil {
		t.Fatalf("NewLogSorted: %v", err)
	}
	spec := events.WindowSpec{T0: 0, Delta: 99, Slide: 1000, Count: 4}
	cfg := DefaultConfig()
	cfg.Directed = true
	cfg.Strategy = Frontier
	r, err := NewRunner(l, spec, cfg, nil)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	stats, err := r.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for w := 0; w < 4; w++ {
		want := oracle(t, l, spec, w)
		var l1 float64
		for v := range want {
			l1 += math.Abs(stats[w].Ranks[v] - want[v])
		}
		if l1 > 0.05 {
			t.Fatalf("window %d: frontier L1 error %v after full turnover", w, l1)
		}
	}
}

func TestStepOutOfOrderDetected(t *testing.T) {
	// Step is documented to advance to the next window; sliding the
	// same window twice removes events that are no longer present and
	// must surface an error rather than corrupt the graph.
	l := randomLog(t, 67, 10, 200, 1000)
	spec, _ := events.Span(l, 300, 100)
	if spec.Count < 3 {
		t.Skip("need at least 3 windows")
	}
	r, _ := NewRunner(l, spec, DefaultConfig(), nil)
	if _, err := r.Step(0); err != nil {
		t.Fatalf("Step(0): %v", err)
	}
	if _, err := r.Step(1); err != nil {
		t.Fatalf("Step(1): %v", err)
	}
	if _, err := r.Step(1); err == nil {
		t.Fatal("repeating a slide should fail on double-removal")
	}
}
