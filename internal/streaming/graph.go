// Package streaming implements the streaming execution model the paper
// compares against (Sec. 3.3.2): a STINGER-like in-memory dynamic graph
// holding a single "current" version of the sliding window, updated by
// batches of edge events, plus incremental PageRank on top of it.
//
// As in STINGER, per-vertex adjacency is a chain of fixed-size edge
// blocks; inserting an edge scans the chain for the neighbor or a free
// slot, deleting leaves a hole for reuse. The sliding-window semantics
// are multigraph-aware: each (u, v) slot carries the count of live
// events, and the edge exists while the count is positive.
package streaming

import (
	"fmt"
)

// blockEdges is the number of edge slots per block (STINGER's default
// region is comparable; the value trades pointer chasing for slack).
const blockEdges = 14

type edgeBlock struct {
	next *edgeBlock
	used int // slots ever touched (free slots before this index have count==0)
	nbr  [blockEdges]int32
	cnt  [blockEdges]int32
	// STINGER stores per-edge metadata alongside the neighbor: the
	// first and most recent timestamps and a weight. The sliding-window
	// runner maintains them on every insertion, as the middleware
	// would, which costs the same extra memory traffic per traversed
	// edge.
	firstTime  [blockEdges]int64
	recentTime [blockEdges]int64
	weight     [blockEdges]int64
}

// Graph is the dynamic sliding-window graph. When directed, both the
// out-adjacency and the in-adjacency are maintained (PageRank pulls
// along in-edges and divides by out-degrees).
type Graph struct {
	n        int32
	directed bool

	out []*edgeBlock // head of the out-chain of each vertex
	in  []*edgeBlock // head of the in-chain (directed only)

	outDeg []int32 // distinct live out-neighbors
	inDeg  []int32 // distinct live in-neighbors (directed only)

	numEdges int64 // live distinct directed edges
	blocks   int64 // total allocated blocks, for memory accounting
}

// NewGraph creates an empty dynamic graph over n vertices.
func NewGraph(n int32, directed bool) *Graph {
	g := &Graph{
		n:        n,
		directed: directed,
		out:      make([]*edgeBlock, n),
		outDeg:   make([]int32, n),
	}
	if directed {
		g.in = make([]*edgeBlock, n)
		g.inDeg = make([]int32, n)
	}
	return g
}

// NumVertices returns the vertex universe size.
func (g *Graph) NumVertices() int32 { return g.n }

// NumEdges returns the number of live distinct directed edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// NumBlocks returns the number of allocated edge blocks (a proxy for
// the middleware's memory overhead).
func (g *Graph) NumBlocks() int64 { return g.blocks }

// OutDegree returns the number of distinct live out-neighbors of u.
func (g *Graph) OutDegree(u int32) int32 { return g.outDeg[u] }

// InDegree returns the number of distinct live in-neighbors of v. For
// an undirected graph it equals OutDegree.
func (g *Graph) InDegree(v int32) int32 {
	if !g.directed {
		return g.outDeg[v]
	}
	return g.inDeg[v]
}

// Active reports whether v has at least one live incident edge.
func (g *Graph) Active(v int32) bool { return g.OutDegree(v) > 0 || g.InDegree(v) > 0 }

// insertChain adds one event of (src -> dst) at timestamp ts to the
// chain rooted at heads[src]; it returns true when the edge is new
// (count 0 -> 1).
func (g *Graph) insertChain(heads []*edgeBlock, src, dst int32, ts int64) bool {
	var free *edgeBlock
	freeSlot := -1
	var last *edgeBlock
	for b := heads[src]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 && b.nbr[i] == dst {
				b.cnt[i]++
				b.recentTime[i] = ts
				b.weight[i]++
				return false
			}
			if b.cnt[i] == 0 && free == nil {
				free, freeSlot = b, i
			}
		}
		if b.used < blockEdges && free == nil {
			free, freeSlot = b, b.used
		}
		last = b
	}
	if free == nil {
		nb := &edgeBlock{}
		g.blocks++
		if last == nil {
			heads[src] = nb
		} else {
			last.next = nb
		}
		free, freeSlot = nb, 0
	}
	if freeSlot == free.used {
		free.used++
	}
	free.nbr[freeSlot] = dst
	free.cnt[freeSlot] = 1
	free.firstTime[freeSlot] = ts
	free.recentTime[freeSlot] = ts
	free.weight[freeSlot] = 1
	return true
}

// removeChain removes one event of (src -> dst); it returns true when
// the edge died (count 1 -> 0) and an error when the event was never
// inserted.
func (g *Graph) removeChain(heads []*edgeBlock, src, dst int32) (bool, error) {
	for b := heads[src]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 && b.nbr[i] == dst {
				b.cnt[i]--
				return b.cnt[i] == 0, nil
			}
		}
	}
	return false, fmt.Errorf("streaming: removing absent edge %d -> %d", src, dst)
}

// InsertEvent adds one event of the edge (u, v) at time 0; see
// InsertEventAt.
func (g *Graph) InsertEvent(u, v int32) (bool, error) { return g.InsertEventAt(u, v, 0) }

// InsertEventAt adds one event of the edge (u, v) at timestamp ts,
// maintaining the per-edge first/recent timestamps and weight as
// STINGER does. It returns true when the edge appears (was not live
// before).
func (g *Graph) InsertEventAt(u, v int32, ts int64) (bool, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false, fmt.Errorf("streaming: edge (%d, %d) out of range [0, %d)", u, v, g.n)
	}
	isNew := g.insertChain(g.out, u, v, ts)
	if isNew {
		g.outDeg[u]++
		g.numEdges++
	}
	if g.directed {
		inNew := g.insertChain(g.in, v, u, ts)
		if inNew != isNew {
			return false, fmt.Errorf("streaming: in/out views diverged on insert (%d, %d)", u, v)
		}
		if inNew {
			g.inDeg[v]++
		}
	}
	return isNew, nil
}

// RemoveEvent removes one event of the edge (u, v). It returns true
// when the edge disappears (its last live event was removed).
func (g *Graph) RemoveEvent(u, v int32) (bool, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false, fmt.Errorf("streaming: edge (%d, %d) out of range [0, %d)", u, v, g.n)
	}
	died, err := g.removeChain(g.out, u, v)
	if err != nil {
		return false, err
	}
	if died {
		g.outDeg[u]--
		g.numEdges--
	}
	if g.directed {
		inDied, err := g.removeChain(g.in, v, u)
		if err != nil {
			return false, err
		}
		if inDied != died {
			return false, fmt.Errorf("streaming: in/out views diverged on remove (%d, %d)", u, v)
		}
		if inDied {
			g.inDeg[v]--
		}
	}
	return died, nil
}

// ForEachOutNeighbor calls f for every distinct live out-neighbor of u.
func (g *Graph) ForEachOutNeighbor(u int32, f func(v int32)) {
	for b := g.out[u]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 {
				f(b.nbr[i])
			}
		}
	}
}

// ForEachInNeighbor calls f for every distinct live in-neighbor of v.
func (g *Graph) ForEachInNeighbor(v int32, f func(u int32)) {
	heads := g.in
	if !g.directed {
		heads = g.out
	}
	for b := heads[v]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 {
				f(b.nbr[i])
			}
		}
	}
}

// HasEdge reports whether (u, v) is live.
func (g *Graph) HasEdge(u, v int32) bool {
	found := false
	for b := g.out[u]; b != nil && !found; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 && b.nbr[i] == v {
				found = true
				break
			}
		}
	}
	return found
}

// EventCount returns the number of live events of (u, v).
func (g *Graph) EventCount(u, v int32) int32 {
	for b := g.out[u]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 && b.nbr[i] == v {
				return b.cnt[i]
			}
		}
	}
	return 0
}

// EdgeTimes returns the first and most recent live-event timestamps of
// (u, v); ok is false when the edge is not live.
func (g *Graph) EdgeTimes(u, v int32) (first, recent int64, ok bool) {
	for b := g.out[u]; b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.cnt[i] > 0 && b.nbr[i] == v {
				return b.firstTime[i], b.recentTime[i], true
			}
		}
	}
	return 0, 0, false
}

// ActiveCount returns the number of vertices with a live incident edge.
func (g *Graph) ActiveCount() int32 {
	var c int32
	for v := int32(0); v < g.n; v++ {
		if g.Active(v) {
			c++
		}
	}
	return c
}
