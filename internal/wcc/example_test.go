package wcc_test

import (
	"fmt"
	"log"

	"pmpr/internal/events"
	"pmpr/internal/wcc"
)

// Example tracks how two communities merge over time: early windows
// have two components, later windows one.
func Example() {
	evs := []events.Event{
		{U: 0, V: 1, T: 0}, {U: 2, V: 3, T: 1}, // two separate pairs
		{U: 0, V: 1, T: 48}, {U: 2, V: 3, T: 49}, // both still active later...
		{U: 1, V: 2, T: 50}, // ...when the bridge appears
	}
	raw, err := events.NewLog(evs, 4)
	if err != nil {
		log.Fatal(err)
	}
	l := raw.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 45, Count: 2}

	cfg := wcc.DefaultConfig()
	cfg.KeepLabels = true
	eng, err := wcc.NewEngine(l, spec, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	series, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	for w := 0; w < series.Len(); w++ {
		r := series.Window(w)
		fmt.Printf("window %d: %d components, 0 and 3 connected: %v\n",
			w, r.Components, r.SameComponent(0, 3))
	}
	// Output:
	// window 0: 2 components, 0 and 3 connected: false
	// window 1: 1 components, 0 and 3 connected: true
}
