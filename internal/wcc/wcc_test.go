package wcc

import (
	"math/rand"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

// naiveComponents labels window [ts, te] by BFS over the undirected
// deduplicated edge set; returns (labels, numComponents, largest).
func naiveComponents(l *events.Log, ts, te int64) (map[int32]int32, int32, int32) {
	adj := make(map[int32][]int32)
	seen := make(map[int32]bool)
	for _, e := range l.Slice(ts, te) {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		seen[e.U] = true
		seen[e.V] = true
	}
	labels := make(map[int32]int32)
	var comps, largest int32
	for v := range seen {
		if _, done := labels[v]; done {
			continue
		}
		comps++
		var size int32
		queue := []int32{v}
		labels[v] = v
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			size++
			for _, y := range adj[x] {
				if _, done := labels[y]; !done {
					labels[y] = v
					queue = append(queue, y)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return labels, comps, largest
}

func TestComponentsMatchOracle(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		n := int32(rng.Intn(40) + 3)
		l := randomLog(t, int64(300+trial), n, rng.Intn(300)+10, 2000)
		spec, err := events.Span(l, int64(rng.Intn(400)+1), int64(rng.Intn(150)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, usePool := range []bool{false, true} {
			p := pool
			if !usePool {
				p = nil
			}
			cfg := DefaultConfig()
			cfg.Directed = true
			cfg.NumMultiWindows = 3
			cfg.KeepLabels = true
			eng, err := NewEngine(l, spec, cfg, p)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			s, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for w := 0; w < spec.Count; w++ {
				labels, comps, largest := naiveComponents(l, spec.Start(w), spec.End(w))
				r := s.Window(w)
				if r.Components != comps {
					t.Fatalf("trial %d w %d: %d components, oracle %d", trial, w, r.Components, comps)
				}
				if r.LargestSize != largest {
					t.Fatalf("trial %d w %d: largest %d, oracle %d", trial, w, r.LargestSize, largest)
				}
				if r.ActiveVertices != int32(len(labels)) {
					t.Fatalf("trial %d w %d: active %d, oracle %d", trial, w, r.ActiveVertices, len(labels))
				}
				// Same-component equivalence must match the oracle.
				for a := range labels {
					for b := range labels {
						if r.SameComponent(a, b) != (labels[a] == labels[b]) {
							t.Fatalf("trial %d w %d: SameComponent(%d,%d) wrong", trial, w, a, b)
						}
					}
					if r.Label(a) < 0 {
						t.Fatalf("trial %d w %d: active vertex %d unlabeled", trial, w, a)
					}
				}
			}
		}
	}
}

func TestLabelsNotKeptByDefault(t *testing.T) {
	l := randomLog(t, 400, 10, 50, 200)
	spec, _ := events.Span(l, 100, 50)
	eng, err := NewEngine(l, spec, DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).Label(0) != -1 {
		t.Fatal("labels should be absent without KeepLabels")
	}
}

func TestInactiveVertexLabel(t *testing.T) {
	raw, _ := events.NewLog([]events.Event{ev(0, 1, 5)}, 4)
	l := raw.Symmetrize() // Directed=false expects a symmetrized log
	spec := events.WindowSpec{T0: 5, Delta: 1, Slide: 1, Count: 1}
	cfg := DefaultConfig()
	cfg.KeepLabels = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).Label(3) != -1 {
		t.Fatal("inactive vertex should have label -1")
	}
	if s.Window(0).SameComponent(0, 3) {
		t.Fatal("inactive vertex cannot share a component")
	}
	if !s.Window(0).SameComponent(0, 1) {
		t.Fatal("edge endpoints must share a component")
	}
}

func TestEngineValidation(t *testing.T) {
	l := randomLog(t, 401, 5, 10, 50)
	spec, _ := events.Span(l, 20, 10)
	cfg := DefaultConfig()
	cfg.NumMultiWindows = 0
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("NumMultiWindows=0 accepted")
	}
	if _, err := NewEngineFromTemporal(nil, DefaultConfig(), nil); err == nil {
		t.Fatal("nil temporal accepted")
	}
}

func TestBalancedPartitionComponents(t *testing.T) {
	l := randomLog(t, 402, 20, 400, 1500)
	spec, _ := events.Span(l, 300, 100)
	mk := func(balanced bool) *Series {
		cfg := DefaultConfig()
		cfg.Directed = true
		cfg.NumMultiWindows = 4
		cfg.BalancedPartition = balanced
		eng, err := NewEngine(l, spec, cfg, nil)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		s, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return s
	}
	a, b := mk(false), mk(true)
	for w := 0; w < spec.Count; w++ {
		if a.Window(w).Components != b.Window(w).Components ||
			a.Window(w).LargestSize != b.Window(w).LargestSize {
			t.Fatalf("window %d: partitioning changed the result", w)
		}
	}
}
