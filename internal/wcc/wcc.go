// Package wcc computes connected components on every window of a
// temporal graph, postmortem-style. The paper focuses on PageRank but
// names connected components among the analyses the sliding-window
// formulation supports (Sec. 3.1); this engine reuses the same
// multi-window temporal CSR and window-level parallelism.
//
// Components are weak: edge direction is ignored (the per-window view
// merges in- and out-adjacency). Each window is solved with union-find
// (path halving + union by size) over the materialized window view.
package wcc

import (
	"fmt"

	"pmpr/internal/events"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Config controls a components run.
type Config struct {
	// NumMultiWindows partitions the window sequence (see tcsr.Build).
	NumMultiWindows int
	// BalancedPartition splits by event load instead of uniformly.
	BalancedPartition bool
	// Directed controls the representation build; components always
	// treat edges as undirected.
	Directed bool
	// Partitioner and Grain configure the window-level loop.
	Partitioner sched.Partitioner
	Grain       int
	// KeepLabels retains each window's component labeling (otherwise
	// only summary statistics are kept).
	KeepLabels bool
}

// DefaultConfig mirrors the PageRank engine's defaults.
func DefaultConfig() Config {
	return Config{NumMultiWindows: 6, Partitioner: sched.Auto, Grain: 2}
}

// WindowResult summarizes one window's component structure.
type WindowResult struct {
	Window         int
	ActiveVertices int32
	// Components is the number of connected components among active
	// vertices (isolated vertices are not counted).
	Components int32
	// LargestSize is the vertex count of the largest component.
	LargestSize int32

	labels []int32 // per-local-vertex component root, -1 for inactive
	mw     *tcsr.MultiWindow
}

// Label returns the component id of the global vertex (an arbitrary but
// consistent active vertex id within the window), or -1 when the vertex
// is inactive or labels were not kept.
func (r *WindowResult) Label(global int32) int32 {
	if r.labels == nil {
		return -1
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return -1
	}
	if l := r.labels[local]; l >= 0 {
		return r.mw.GlobalID(l)
	}
	return -1
}

// SameComponent reports whether two global vertices are connected in
// this window. It requires kept labels.
func (r *WindowResult) SameComponent(a, b int32) bool {
	la, lb := r.Label(a), r.Label(b)
	return la >= 0 && la == lb
}

// Series is the per-window component summary sequence.
type Series struct {
	Spec    events.WindowSpec
	Results []WindowResult
}

// Window returns the result for window i.
func (s *Series) Window(i int) *WindowResult { return &s.Results[i] }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Results) }

// Engine computes the series.
type Engine struct {
	tg   *tcsr.Temporal
	cfg  Config
	pool *sched.Pool
}

// NewEngine builds the temporal representation for l under spec.
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	if cfg.NumMultiWindows < 1 {
		return nil, fmt.Errorf("wcc: NumMultiWindows %d must be >= 1", cfg.NumMultiWindows)
	}
	build := tcsr.Build
	if cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	tg, err := build(l, spec, cfg.NumMultiWindows, cfg.Directed)
	if err != nil {
		return nil, err
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// NewEngineFromTemporal reuses an existing representation.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if tg == nil {
		return nil, fmt.Errorf("wcc: nil temporal representation")
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// Temporal exposes the representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.tg }

// Run computes components for every window. Windows run in parallel on
// the pool (the kernel itself is sequential, as in the offline model);
// a nil pool runs serially.
func (e *Engine) Run() (*Series, error) {
	count := e.tg.Spec.Count
	results := make([]WindowResult, count)
	body := func(lo, hi int) {
		var view tcsr.WindowView
		var uf unionFind
		for w := lo; w < hi; w++ {
			results[w] = e.solveWindow(w, &view, &uf)
		}
	}
	if e.pool == nil {
		body(0, count)
	} else {
		grain := e.cfg.Grain
		if grain < 1 {
			grain = 1
		}
		e.pool.ParallelFor(count, grain, e.cfg.Partitioner, func(_ *sched.Worker, lo, hi int) {
			body(lo, hi)
		})
	}
	return &Series{Spec: e.tg.Spec, Results: results}, nil
}

func (e *Engine) solveWindow(w int, view *tcsr.WindowView, uf *unionFind) WindowResult {
	mw := e.tg.ForWindow(w)
	mw.Materialize(w, view)
	n := int(mw.NumLocal())
	res := WindowResult{Window: w, ActiveVertices: view.NumActive, mw: mw}
	uf.reset(n)
	for v := 0; v < n; v++ {
		for _, u := range view.Col[view.Row[v]:view.Row[v+1]] {
			uf.union(int32(v), u)
		}
	}
	// Count components and track the largest, over active vertices.
	var comps, largest int32
	for v := 0; v < n; v++ {
		if !view.Active[v] {
			continue
		}
		r := uf.find(int32(v))
		if int(r) == v {
			comps++
		}
		if uf.size[r] > largest {
			largest = uf.size[r]
		}
	}
	res.Components = comps
	res.LargestSize = largest
	if e.cfg.KeepLabels {
		labels := make([]int32, n)
		for v := 0; v < n; v++ {
			if view.Active[v] {
				labels[v] = uf.find(int32(v))
			} else {
				labels[v] = -1
			}
		}
		res.labels = labels
	}
	return res
}

// unionFind is a reusable union-find with path halving and union by
// size.
type unionFind struct {
	parent []int32
	size   []int32
}

func (u *unionFind) reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int32, n)
		u.size = make([]int32, n)
	}
	u.parent = u.parent[:n]
	u.size = u.size[:n]
	for i := 0; i < n; i++ {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
