package serve

import (
	"container/list"
	"sync"
)

// Cache is a mutex-guarded LRU of rendered query responses, keyed by
// the canonical query string (which embeds the store generation — see
// Service.key — so a republished store can never be answered with
// stale bytes). Values are immutable []byte responses; a hit returns
// the cached slice without copying or allocating, which is what makes
// the cached fast path 0 allocs/op.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	byK    map[string]*list.Element
	hits   uint64
	misses uint64
	evicts uint64
}

// cacheEntry is one LRU slot.
type cacheEntry struct {
	key string
	val []byte
}

// DefaultCacheEntries is the entry budget NewCache applies when the
// caller passes 0.
const DefaultCacheEntries = 4096

// NewCache creates an LRU holding at most max entries
// (0 = DefaultCacheEntries).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{max: max, ll: list.New(), byK: make(map[string]*list.Element, max)}
}

// Get returns the cached response for key, marking it most recently
// used. The returned slice is shared and must not be modified.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byK[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*cacheEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put stores a response, evicting the least recently used entry when
// the cache is full. Storing under an existing key replaces its value.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.byK[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*cacheEntry).val = val
		return
	}
	e := c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.byK[key] = e
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byK, oldest.Value.(*cacheEntry).key)
		c.evicts++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is the cache's counter snapshot, surfaced in /v1/windows
// and the Prometheus registry.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Evicts  uint64 `json:"evicts"`
}

// Stats snapshots the hit/miss/evict counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses, Evicts: c.evicts}
}
