// Package serve implements the rank-serving layer behind cmd/pmserve:
// an immutable, concurrently shared RankStore built from a postmortem
// rank series, plus the HTTP/JSON query service (top-k, trajectories,
// window-over-window movers) with per-query LRU caching and
// singleflight request coalescing. The paper's premise is that
// downstream applications consume the postmortem rank vectors
// (Sec. 2.2); this package is that downstream application — the first
// adversarial consumer of the .pmrs format — and serves the vectors at
// interactive latency the way Kairos and DeltaGraph argue a postmortem
// layout should pay off.
package serve

import (
	"fmt"
	"sort"

	"pmpr/internal/events"
	"pmpr/internal/results"
)

// Ranked is one (vertex, rank) pair of a top-k answer.
type Ranked struct {
	Vertex int32   `json:"vertex"`
	Rank   float64 `json:"rank"`
}

// Mover is one window-over-window rank change: the vertex's rank in
// each of the two compared windows and the signed delta.
type Mover struct {
	Vertex int32   `json:"vertex"`
	From   float64 `json:"from_rank"`
	To     float64 `json:"to_rank"`
	Delta  float64 `json:"delta"`
}

// WindowInfo is the per-window status row of the /v1/windows listing.
type WindowInfo struct {
	Window          int     `json:"window"`
	Start           int64   `json:"start"`
	End             int64   `json:"end"`
	Entries         int     `json:"entries"`
	Iterations      int     `json:"iterations"`
	Converged       bool    `json:"converged"`
	UsedPartialInit bool    `json:"used_partial_init"`
	MaxRank         float64 `json:"max_rank"`
}

// storeWindow is one window's immutable serving layout: the sparse
// vector sorted by vertex (for lookups and merges) plus the entry
// order sorted by descending rank (the precomputed top-k answer).
type storeWindow struct {
	meta     WindowInfo
	vertices []int32
	ranks    []float64
	// byRank holds entry indices into vertices/ranks, sorted by rank
	// descending with ascending vertex as the tie-break; TopK(k) is the
	// first k, already in answer order.
	byRank []int32
}

// RankStore is an immutable in-memory rank series laid out for
// queries. All methods are safe for unlimited concurrent use: nothing
// is mutated after NewStore returns, so readers share it without
// locks. Swapping in a new store (pmserve -solve publishing a fresh
// series) is the caller's concern — see Service.Publish.
type RankStore struct {
	spec        events.WindowSpec
	numVertices int32
	windows     []storeWindow
	// generation distinguishes successively published stores; the query
	// cache folds it into every key so entries from a replaced store can
	// never be served against the new one.
	generation uint64
}

// NewStore builds the immutable serving layout from a rank series.
// The source is validated window by window — NewStore is deliberately
// paranoid even about data that internal/results has already checked,
// because it also accepts in-process sources (core.Series.Export) that
// never passed through the decoder.
func NewStore(src results.SeriesSource) (*RankStore, error) {
	spec, n := src.SpecAndSize()
	if n < 0 {
		return nil, fmt.Errorf("serve: negative vertex count %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("serve: invalid window spec: %w", err)
	}
	st := &RankStore{spec: spec, numVertices: n, windows: make([]storeWindow, spec.Count)}
	for i := 0; i < spec.Count; i++ {
		wr := src.WindowAt(i)
		if err := wr.Validate(i, n); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		sw := storeWindow{
			meta: WindowInfo{
				Window:          i,
				Start:           spec.Start(i),
				End:             spec.End(i),
				Entries:         wr.Len(),
				Iterations:      wr.Iterations,
				Converged:       wr.Converged,
				UsedPartialInit: wr.UsedPartialInit,
			},
			vertices: wr.Vertices,
			ranks:    wr.Ranks,
			byRank:   make([]int32, wr.Len()),
		}
		for j := range sw.byRank {
			sw.byRank[j] = int32(j)
		}
		sort.Slice(sw.byRank, func(x, y int) bool {
			rx, ry := sw.ranks[sw.byRank[x]], sw.ranks[sw.byRank[y]]
			if rx > ry {
				return true
			}
			if rx < ry {
				return false
			}
			return sw.vertices[sw.byRank[x]] < sw.vertices[sw.byRank[y]]
		})
		if len(sw.byRank) > 0 {
			sw.meta.MaxRank = sw.ranks[sw.byRank[0]]
		}
		st.windows[i] = sw
	}
	return st, nil
}

// Spec returns the window spec the store serves.
func (s *RankStore) Spec() events.WindowSpec { return s.spec }

// NumWindows returns the number of windows.
func (s *RankStore) NumWindows() int { return len(s.windows) }

// NumVertices returns the size of the vertex universe.
func (s *RankStore) NumVertices() int32 { return s.numVertices }

// Generation returns the publish generation Service.Publish assigned
// (0 for a store that was never published).
func (s *RankStore) Generation() uint64 { return s.generation }

// TopK returns the k highest-ranked vertices of window w, descending
// by rank with ascending vertex id as the tie-break. The answer order
// is precomputed at build time, so a query is a bounds check and k
// slice reads.
func (s *RankStore) TopK(w, k int) ([]Ranked, error) {
	if w < 0 || w >= len(s.windows) {
		return nil, fmt.Errorf("serve: window %d outside [0, %d)", w, len(s.windows))
	}
	if k < 0 {
		return nil, fmt.Errorf("serve: negative k %d", k)
	}
	sw := &s.windows[w]
	if k > len(sw.byRank) {
		k = len(sw.byRank)
	}
	out := make([]Ranked, k)
	for i := 0; i < k; i++ {
		e := sw.byRank[i]
		out[i] = Ranked{Vertex: sw.vertices[e], Rank: sw.ranks[e]}
	}
	return out, nil
}

// Trajectory returns vertex v's rank in every window (0 where the
// vertex has no positive rank): the per-vertex time series downstream
// analyses plot.
func (s *RankStore) Trajectory(v int32) ([]float64, error) {
	if v < 0 || v >= s.numVertices {
		return nil, fmt.Errorf("serve: vertex %d outside [0, %d)", v, s.numVertices)
	}
	out := make([]float64, len(s.windows))
	for w := range s.windows {
		sw := &s.windows[w]
		i := sort.Search(len(sw.vertices), func(i int) bool { return sw.vertices[i] >= v })
		if i < len(sw.vertices) && sw.vertices[i] == v {
			out[w] = sw.ranks[i]
		}
	}
	return out, nil
}

// Movers compares windows from and to and returns the k vertices with
// the largest absolute rank change, ties broken by ascending vertex
// id. A vertex absent from one of the windows contributes its full
// rank as the delta, so risers from (and fallers to) zero are ranked
// alongside in-both changes. The two sparse vectors are merged in one
// linear pass over their union.
func (s *RankStore) Movers(from, to, k int) ([]Mover, error) {
	if from < 0 || from >= len(s.windows) {
		return nil, fmt.Errorf("serve: window %d outside [0, %d)", from, len(s.windows))
	}
	if to < 0 || to >= len(s.windows) {
		return nil, fmt.Errorf("serve: window %d outside [0, %d)", to, len(s.windows))
	}
	if k < 0 {
		return nil, fmt.Errorf("serve: negative k %d", k)
	}
	a, b := &s.windows[from], &s.windows[to]
	movers := make([]Mover, 0, len(a.vertices)+len(b.vertices))
	i, j := 0, 0
	for i < len(a.vertices) || j < len(b.vertices) {
		switch {
		case j >= len(b.vertices) || (i < len(a.vertices) && a.vertices[i] < b.vertices[j]):
			movers = append(movers, Mover{Vertex: a.vertices[i], From: a.ranks[i], Delta: -a.ranks[i]})
			i++
		case i >= len(a.vertices) || b.vertices[j] < a.vertices[i]:
			movers = append(movers, Mover{Vertex: b.vertices[j], To: b.ranks[j], Delta: b.ranks[j]})
			j++
		default: // present in both
			m := Mover{Vertex: a.vertices[i], From: a.ranks[i], To: b.ranks[j]}
			m.Delta = m.To - m.From
			movers = append(movers, m)
			i++
			j++
		}
	}
	sort.Slice(movers, func(x, y int) bool {
		ax, ay := abs(movers[x].Delta), abs(movers[y].Delta)
		if ax > ay {
			return true
		}
		if ax < ay {
			return false
		}
		return movers[x].Vertex < movers[y].Vertex
	})
	if k < len(movers) {
		movers = movers[:k]
	}
	return movers, nil
}

// WindowInfos returns the per-window status listing, in window order.
func (s *RankStore) WindowInfos() []WindowInfo {
	out := make([]WindowInfo, len(s.windows))
	for i := range s.windows {
		out[i] = s.windows[i].meta
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
