package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmpr/internal/events"
	"pmpr/internal/results"
)

// testSeries is a tiny hand-computed series over 6 vertices and 3
// windows; every rank is a dyadic rational, so expected JSON values
// compare exactly.
func testSeries() *results.Series {
	return &results.Series{
		Spec:        events.WindowSpec{T0: 100, Delta: 10, Slide: 5, Count: 3},
		NumVertices: 6,
		Windows: []results.WindowRanks{
			{Window: 0, Iterations: 12, Converged: true,
				Vertices: []int32{0, 2, 4}, Ranks: []float64{0.5, 0.25, 0.125}},
			{Window: 1, Iterations: 7, Converged: true, UsedPartialInit: true,
				Vertices: []int32{1, 2, 4}, Ranks: []float64{0.125, 0.5, 0.25}},
			{Window: 2, Iterations: 3, Converged: false,
				Vertices: []int32{2}, Ranks: []float64{1}},
		},
	}
}

func newTestService(t *testing.T) *Service {
	t.Helper()
	st, err := NewStore(testSeries())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc := NewService(0)
	svc.Publish(st)
	return svc
}

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := newTestService(t)
	mux := http.NewServeMux()
	svc.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, ts
}

// get fetches path and decodes the JSON body into out (when non-nil),
// returning the response for header/status assertions.
func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: body %q: %v", path, body, err)
		}
	}
	return resp
}

func TestStoreTopK(t *testing.T) {
	st, err := NewStore(testSeries())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.TopK(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []Ranked{{2, 0.5}, {4, 0.25}, {1, 0.125}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK(1,10) = %v, want %v", got, want)
	}
	if got, _ := st.TopK(0, 2); len(got) != 2 || got[0].Vertex != 0 || got[1].Vertex != 2 {
		t.Fatalf("TopK(0,2) = %v", got)
	}
	if _, err := st.TopK(3, 1); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}

func TestStoreTrajectory(t *testing.T) {
	st, err := NewStore(testSeries())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Trajectory(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.25, 0.5, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Trajectory(2) = %v, want %v", got, want)
	}
	if got, _ := st.Trajectory(3); !reflect.DeepEqual(got, []float64{0, 0, 0}) {
		t.Fatalf("Trajectory(3) = %v, want zeros", got)
	}
	if _, err := st.Trajectory(6); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestStoreMovers(t *testing.T) {
	st, err := NewStore(testSeries())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Movers(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []Mover{
		{Vertex: 0, From: 0.5, To: 0, Delta: -0.5},
		{Vertex: 2, From: 0.25, To: 0.5, Delta: 0.25},
		{Vertex: 1, From: 0, To: 0.125, Delta: 0.125},
		{Vertex: 4, From: 0.125, To: 0.25, Delta: 0.125},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Movers(0,1) = %v, want %v", got, want)
	}
	if got, _ := st.Movers(0, 1, 2); len(got) != 2 || got[0].Vertex != 0 || got[1].Vertex != 2 {
		t.Fatalf("Movers k=2 = %v", got)
	}
}

func TestNewStoreRejectsCorruptSource(t *testing.T) {
	bad := testSeries()
	bad.Windows[1].Vertices = []int32{4, 1, 2} // unsorted
	if _, err := NewStore(bad); err == nil {
		t.Fatal("unsorted source accepted")
	}
	bad = testSeries()
	bad.Windows[0].Vertices[2] = 17 // out of range
	if _, err := NewStore(bad); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	bad = testSeries()
	bad.Windows[2].Window = 0 // mislabeled
	if _, err := NewStore(bad); err == nil {
		t.Fatal("mislabeled window accepted")
	}
	bad = testSeries()
	bad.NumVertices = -1
	if _, err := NewStore(bad); err == nil {
		t.Fatal("negative universe accepted")
	}
}

func TestHandleTopK(t *testing.T) {
	_, ts := newTestServer(t)
	var got topkResponse
	resp := get(t, ts, "/v1/topk?window=1&k=2", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("first query X-Cache = %q", resp.Header.Get("X-Cache"))
	}
	if got.Window != 1 || got.Start != 105 || got.End != 115 {
		t.Fatalf("window meta = %+v", got)
	}
	want := []Ranked{{2, 0.5}, {4, 0.25}}
	if !reflect.DeepEqual(got.Ranks, want) {
		t.Fatalf("ranks = %v, want %v", got.Ranks, want)
	}

	// Identical query (different parameter spelling) hits the cache.
	var again topkResponse
	resp = get(t, ts, "/v1/topk?k=2&window=01", &again)
	if resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("second query X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	if !reflect.DeepEqual(again, got) {
		t.Fatalf("cached answer differs: %+v vs %+v", again, got)
	}
}

func TestHandleTopKErrors(t *testing.T) {
	_, ts := newTestServer(t)
	for path, status := range map[string]int{
		"/v1/topk":                http.StatusBadRequest, // missing window
		"/v1/topk?window=nope":    http.StatusBadRequest,
		"/v1/topk?window=7":       http.StatusNotFound,
		"/v1/topk?window=-1":      http.StatusNotFound,
		"/v1/topk?window=0&k=-3":  http.StatusBadRequest,
		"/v1/topk?window=0&k=abc": http.StatusBadRequest,
	} {
		var e map[string]string
		resp := get(t, ts, path, &e)
		if resp.StatusCode != status {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, status)
		}
		if e["error"] == "" {
			t.Errorf("GET %s: no structured error body", path)
		}
	}
}

func TestHandleTopKClampsK(t *testing.T) {
	svc, ts := newTestServer(t)
	svc.MaxK = 2
	var got topkResponse
	get(t, ts, "/v1/topk?window=1&k=999999", &got)
	if got.K != 2 || len(got.Ranks) != 2 {
		t.Fatalf("k not clamped: %+v", got)
	}
}

func TestHandleTrajectory(t *testing.T) {
	_, ts := newTestServer(t)
	var got trajectoryResponse
	resp := get(t, ts, "/v1/vertex/2/trajectory", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Vertex != 2 || got.Windows != 3 || got.T0 != 100 || got.Delta != 10 || got.Slide != 5 {
		t.Fatalf("meta = %+v", got)
	}
	if want := []float64{0.25, 0.5, 1}; !reflect.DeepEqual(got.Ranks, want) {
		t.Fatalf("ranks = %v, want %v", got.Ranks, want)
	}
	if resp := get(t, ts, "/v1/vertex/99/trajectory", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("vertex 99 status %d", resp.StatusCode)
	}
	if resp := get(t, ts, "/v1/vertex/abc/trajectory", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("vertex abc status %d", resp.StatusCode)
	}
}

func TestHandleMovers(t *testing.T) {
	_, ts := newTestServer(t)
	var got moversResponse
	resp := get(t, ts, "/v1/movers?from=0&to=1&k=3", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := []Mover{
		{Vertex: 0, From: 0.5, To: 0, Delta: -0.5},
		{Vertex: 2, From: 0.25, To: 0.5, Delta: 0.25},
		{Vertex: 1, From: 0, To: 0.125, Delta: 0.125},
	}
	if !reflect.DeepEqual(got.Movers, want) {
		t.Fatalf("movers = %v, want %v", got.Movers, want)
	}
	if resp := get(t, ts, "/v1/movers?from=0&to=9", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad to-window status %d", resp.StatusCode)
	}
	if resp := get(t, ts, "/v1/movers?from=0", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing to status %d", resp.StatusCode)
	}
}

func TestHandleWindows(t *testing.T) {
	_, ts := newTestServer(t)
	get(t, ts, "/v1/topk?window=0&k=1", nil) // warm one cache entry
	var got windowsResponse
	resp := get(t, ts, "/v1/windows", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.Spec.Count != 3 || got.NumVertices != 6 || got.Generation != 1 {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Windows) != 3 {
		t.Fatalf("windows = %v", got.Windows)
	}
	w1 := got.Windows[1]
	if w1.Window != 1 || w1.Entries != 3 || w1.Iterations != 7 || !w1.Converged ||
		!w1.UsedPartialInit || w1.Start != 105 || w1.End != 115 || w1.MaxRank != 0.5 {
		t.Fatalf("window 1 info = %+v", w1)
	}
	if got.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", got.Cache)
	}
}

func TestUnpublishedStoreAnswers503(t *testing.T) {
	svc := NewService(0)
	mux := http.NewServeMux()
	svc.Mount(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	for _, path := range []string{
		"/v1/topk?window=0", "/v1/vertex/0/trajectory", "/v1/movers?from=0&to=1", "/v1/windows",
	} {
		var e map[string]string
		resp := get(t, ts, path, &e)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s before publish: status %d, want 503", path, resp.StatusCode)
		}
		if e["error"] == "" {
			t.Errorf("GET %s: no structured error", path)
		}
	}
}

func TestPublishInvalidatesCachedAnswers(t *testing.T) {
	svc, ts := newTestServer(t)
	var first topkResponse
	get(t, ts, "/v1/topk?window=2&k=1", &first)
	if first.Ranks[0].Vertex != 2 {
		t.Fatalf("first answer = %+v", first)
	}
	// Publish a new series where window 2's top vertex changed.
	s2 := testSeries()
	s2.Windows[2].Vertices = []int32{5}
	st, err := NewStore(s2)
	if err != nil {
		t.Fatal(err)
	}
	svc.Publish(st)
	var second topkResponse
	resp := get(t, ts, "/v1/topk?window=2&k=1", &second)
	if resp.Header.Get("X-Cache") != "miss" {
		t.Fatalf("post-publish X-Cache = %q, want miss", resp.Header.Get("X-Cache"))
	}
	if second.Ranks[0].Vertex != 5 {
		t.Fatalf("stale answer served after publish: %+v", second)
	}
	if g := svc.Store().Generation(); g != 2 {
		t.Fatalf("generation = %d, want 2", g)
	}
}

func TestCacheLRU(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", []byte("3")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, ok)
	}
	c.Put("a", []byte("1x"))
	if v, _ := c.Get("a"); string(v) != "1x" {
		t.Fatalf("replace failed: %q", v)
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evicts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	ctx := context.Background()
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	leaderFn := func(context.Context) ([]byte, error) {
		close(started)
		<-release
		calls.Add(1)
		return []byte("answer"), nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err, shared := g.Do(ctx, "k", leaderFn); err != nil || shared || string(v) != "answer" {
			t.Errorf("leader Do = %q, %v, shared=%v", v, err, shared)
		}
	}()
	<-started // the flight is now registered and blocked
	const followers = 16
	var sharedCount atomic.Int32
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := g.Do(ctx, "k", func(context.Context) ([]byte, error) {
				calls.Add(1)
				return []byte("answer"), nil
			})
			if err != nil || string(v) != "answer" {
				t.Errorf("follower Do = %q, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Give the followers ample time to reach Do while the leader holds
	// the flight open, then release everyone.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (coalesced)", n)
	}
	if n := sharedCount.Load(); n != followers {
		t.Fatalf("%d/%d followers shared the flight", n, followers)
	}
}

func TestConcurrentIdenticalQueries(t *testing.T) {
	// Hammer one URL from many goroutines (run with -race): every
	// response must be identical and OK, and the backing compute path
	// must stay consistent under the cache/coalesce interleavings.
	_, ts := newTestServer(t)
	var want topkResponse
	get(t, ts, "/v1/topk?window=1&k=3", &want)
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/topk?window=1&k=3")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var got topkResponse
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK || !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("status %d body %+v", resp.StatusCode, got)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAnswerHitPathDoesNotAllocate(t *testing.T) {
	svc := newTestService(t)
	st := svc.Store()
	ctx := context.Background()
	key := canonicalKey(st.Generation(), "topk", 1, 3)
	compute := func(context.Context) ([]byte, error) {
		ranks, err := st.TopK(1, 3)
		if err != nil {
			return nil, err
		}
		return marshalBody(topkResponse{Window: 1, K: 3, Ranks: ranks})
	}
	if _, source, err := svc.answer(ctx, key, compute); err != nil || source != sourceMiss {
		t.Fatalf("prime: %v, %v", source, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		b, source, err := svc.answer(ctx, key, compute)
		if err != nil || source != sourceHit || len(b) == 0 {
			t.Fatalf("hit path: %q, %v", source, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cache-hit path allocates %v allocs/op, want 0", allocs)
	}
}
