package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
)

// Service is the query front-end over an atomically swappable
// RankStore: it owns the response cache and the request coalescer and
// mounts the /v1 endpoints. A Service starts empty (every query
// answers 503) until Publish hands it a store; pmserve -load publishes
// once at startup, pmserve -solve publishes when the in-process engine
// finishes, and every Publish bumps the generation so cached responses
// from the previous store can never leak into the new one.
type Service struct {
	store atomic.Pointer[RankStore]
	gen   atomic.Uint64
	cache *Cache
	group flightGroup

	// MaxK caps the k accepted by top-k and movers queries, bounding
	// per-query work and response size. Set before Mount; defaults to
	// DefaultMaxK.
	MaxK int
}

// DefaultMaxK is the top-k/movers size cap NewService installs.
const DefaultMaxK = 1000

// NewService creates a Service with a response cache of cacheEntries
// entries (0 = DefaultCacheEntries) and no published store.
func NewService(cacheEntries int) *Service {
	return &Service{cache: NewCache(cacheEntries), MaxK: DefaultMaxK}
}

// Publish atomically swaps st in as the served store and assigns it
// the next generation. Queries in flight keep reading the store they
// started with; new queries see st immediately. Old cache entries are
// left to age out of the LRU — their keys carry the old generation, so
// they can never answer a query against st.
func (s *Service) Publish(st *RankStore) {
	st.generation = s.gen.Add(1)
	s.store.Store(st)
}

// Store returns the currently published store, or nil before the first
// Publish.
func (s *Service) Store() *RankStore { return s.store.Load() }

// CacheStats snapshots the response cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// queryError carries the HTTP status a failed query maps to.
type queryError struct {
	status int
	msg    string
}

// Error returns the query failure message.
func (e *queryError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &queryError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &queryError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// writeJSONError renders err as {"error": ...} with its mapped status
// (500 for non-query errors).
func writeJSONError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var qe *queryError
	if errors.As(err, &qe) {
		status = qe.status
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(b, '\n'))
}

// Response source labels for the X-Cache header: every answer declares
// whether it came from the cache, a fresh computation, or another
// caller's in-flight computation.
const (
	sourceHit       = "hit"
	sourceMiss      = "miss"
	sourceCoalesced = "coalesced"
)

// answer resolves one canonical query: cache first, then a coalesced
// computation whose successful result is cached for the next caller.
// The cache-hit path performs no allocation — it is a map lookup and
// an LRU list splice returning the shared response bytes.
func (s *Service) answer(key string, compute func() ([]byte, error)) (data []byte, source string, err error) {
	if b, ok := s.cache.Get(key); ok {
		return b, sourceHit, nil
	}
	b, err, shared := s.group.Do(key, func() ([]byte, error) {
		b, err := compute()
		if err != nil {
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if err != nil {
		return nil, "", err
	}
	source = sourceMiss
	if shared {
		source = sourceCoalesced
	}
	return b, source, nil
}

// serveQuery runs the cache/coalesce/compute pipeline for a request
// and writes the JSON answer with its X-Cache provenance.
func (s *Service) serveQuery(w http.ResponseWriter, key string, compute func() ([]byte, error)) {
	data, source, err := s.answer(key, compute)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Cache", source)
	w.Write(data)
}

// loadStore fetches the published store or reports 503: the daemon is
// up (ready to scrape, streaming solve progress) but has nothing to
// query yet.
func (s *Service) loadStore(w http.ResponseWriter) (*RankStore, bool) {
	st := s.store.Load()
	if st == nil {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, &queryError{status: http.StatusServiceUnavailable,
			msg: "store not ready (still solving or loading)"})
		return nil, false
	}
	return st, true
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, badRequest("missing required parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter %q: %v", name, err)
	}
	return n, nil
}

// kParam parses the optional k parameter (default 10), clamped to
// [0, MaxK].
func (s *Service) kParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("k")
	if v == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter \"k\": %v", err)
	}
	if k < 0 {
		return 0, badRequest("parameter \"k\" must be >= 0")
	}
	if k > s.MaxK {
		k = s.MaxK
	}
	return k, nil
}

// checkWindow maps an out-of-range window index to a 404.
func checkWindow(st *RankStore, w int) error {
	if w < 0 || w >= st.NumWindows() {
		return notFound("window %d outside [0, %d)", w, st.NumWindows())
	}
	return nil
}

// canonicalKey builds the cache/coalesce key for a query: the store
// generation, the endpoint, and the normalized integer parameters —
// so "?window=03&k=+10" and "?k=10&window=3" coalesce, and entries
// from a replaced store are unreachable.
func canonicalKey(gen uint64, endpoint string, params ...int) string {
	b := make([]byte, 0, 48)
	b = append(b, 'g')
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, '|')
	b = append(b, endpoint...)
	for _, p := range params {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}

// topkResponse is the /v1/topk JSON document.
type topkResponse struct {
	Window int      `json:"window"`
	Start  int64    `json:"start"`
	End    int64    `json:"end"`
	K      int      `json:"k"`
	Ranks  []Ranked `json:"ranks"`
}

func (s *Service) handleTopK(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	win, err := intParam(r, "window")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, win); err != nil {
		writeJSONError(w, err)
		return
	}
	key := canonicalKey(st.generation, "topk", win, k)
	s.serveQuery(w, key, func() ([]byte, error) {
		ranks, err := st.TopK(win, k)
		if err != nil {
			return nil, err
		}
		return marshalBody(topkResponse{
			Window: win, Start: st.spec.Start(win), End: st.spec.End(win),
			K: k, Ranks: ranks,
		})
	})
}

// trajectoryResponse is the /v1/vertex/{id}/trajectory JSON document:
// the vertex's rank in every window, with the spec fields needed to
// map indices back to time.
type trajectoryResponse struct {
	Vertex  int32     `json:"vertex"`
	Windows int       `json:"windows"`
	T0      int64     `json:"t0"`
	Delta   int64     `json:"delta"`
	Slide   int64     `json:"slide"`
	Ranks   []float64 `json:"ranks"`
}

func (s *Service) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSONError(w, badRequest("vertex id: %v", err))
		return
	}
	if id < 0 || id >= int64(st.NumVertices()) {
		writeJSONError(w, notFound("vertex %d outside [0, %d)", id, st.NumVertices()))
		return
	}
	v := int32(id)
	key := canonicalKey(st.generation, "traj", int(v))
	s.serveQuery(w, key, func() ([]byte, error) {
		ranks, err := st.Trajectory(v)
		if err != nil {
			return nil, err
		}
		spec := st.Spec()
		return marshalBody(trajectoryResponse{
			Vertex: v, Windows: spec.Count, T0: spec.T0, Delta: spec.Delta, Slide: spec.Slide,
			Ranks: ranks,
		})
	})
}

// moversResponse is the /v1/movers JSON document.
type moversResponse struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	K      int     `json:"k"`
	Movers []Mover `json:"movers"`
}

func (s *Service) handleMovers(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	from, err := intParam(r, "from")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	to, err := intParam(r, "to")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, from); err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, to); err != nil {
		writeJSONError(w, err)
		return
	}
	key := canonicalKey(st.generation, "movers", from, to, k)
	s.serveQuery(w, key, func() ([]byte, error) {
		movers, err := st.Movers(from, to, k)
		if err != nil {
			return nil, err
		}
		return marshalBody(moversResponse{From: from, To: to, K: k, Movers: movers})
	})
}

// windowsResponse is the /v1/windows JSON document: the spec, the
// per-window status rows, and the serving-layer counters. It is not
// cached — the cache stats it carries change with every request.
type windowsResponse struct {
	Spec        specJSON     `json:"spec"`
	NumVertices int32        `json:"num_vertices"`
	Generation  uint64       `json:"generation"`
	Windows     []WindowInfo `json:"windows"`
	Cache       CacheStats   `json:"cache"`
}

// specJSON renders events.WindowSpec with stable lowercase field names.
type specJSON struct {
	T0    int64 `json:"t0"`
	Delta int64 `json:"delta"`
	Slide int64 `json:"slide"`
	Count int   `json:"count"`
}

func (s *Service) handleWindows(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	spec := st.Spec()
	b, err := marshalBody(windowsResponse{
		Spec:        specJSON{T0: spec.T0, Delta: spec.Delta, Slide: spec.Slide, Count: spec.Count},
		NumVertices: st.NumVertices(),
		Generation:  st.generation,
		Windows:     st.WindowInfos(),
		Cache:       s.cache.Stats(),
	})
	if err != nil {
		writeJSONError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(b)
}

// marshalBody renders a response document as newline-terminated JSON.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Mount registers the /v1 query endpoints on mux — typically the obs
// mux, next to /metrics, /status, and /events, so one daemon address
// serves scrapes, live progress, and rank queries.
func (s *Service) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/topk", s.handleTopK)
	mux.HandleFunc("GET /v1/vertex/{id}/trajectory", s.handleTrajectory)
	mux.HandleFunc("GET /v1/movers", s.handleMovers)
	mux.HandleFunc("GET /v1/windows", s.handleWindows)
}
