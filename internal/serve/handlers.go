package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"pmpr/internal/fault"
)

// Service is the query front-end over an atomically swappable
// RankStore: it owns the response cache and the request coalescer and
// mounts the /v1 endpoints. A Service starts empty (every query
// answers 503) until Publish hands it a store; pmserve -load publishes
// once at startup, pmserve -solve publishes when the in-process engine
// finishes, and every Publish bumps the generation so cached responses
// from the previous store can never leak into the new one.
type Service struct {
	store atomic.Pointer[RankStore]
	gen   atomic.Uint64
	cache *Cache
	group flightGroup

	// degraded holds the reason the service is serving stale data (a
	// failed republish or re-solve); nil when healthy. While set, every
	// query response carries an X-Stale header and /readyz reports the
	// degradation — the service keeps answering from the last published
	// generation rather than going dark.
	degraded atomic.Pointer[string]

	// MaxK caps the k accepted by top-k and movers queries, bounding
	// per-query work and response size. Set before Mount; defaults to
	// DefaultMaxK.
	MaxK int

	// Guard, when non-nil, supplies the serving path's robustness
	// layer: Mount wraps every /v1 handler with its middleware
	// (deadline, rate limit, drain gate, panic recovery) and answer
	// acquires its compute limiter on cache misses. Set before Mount.
	Guard *Guard
}

// DefaultMaxK is the top-k/movers size cap NewService installs.
const DefaultMaxK = 1000

// NewService creates a Service with a response cache of cacheEntries
// entries (0 = DefaultCacheEntries) and no published store.
func NewService(cacheEntries int) *Service {
	return &Service{cache: NewCache(cacheEntries), MaxK: DefaultMaxK}
}

// Publish atomically swaps st in as the served store and assigns it
// the next generation. Queries in flight keep reading the store they
// started with; new queries see st immediately. Old cache entries are
// left to age out of the LRU — their keys carry the old generation, so
// they can never answer a query against st. Publish itself cannot
// fail; the guarded path (fault injection, panic containment, degraded
// bookkeeping) is TryPublish.
func (s *Service) Publish(st *RankStore) {
	st.generation = s.gen.Add(1)
	s.store.Store(st)
}

// TryPublish is the hardened publish path: the serve.store.swap fault
// point fires before the swap, a panic anywhere in the swap is
// contained as a structured *PanicError, and a nil store is rejected —
// in every failure case the previously published generation keeps
// serving untouched. A successful TryPublish clears any degraded state
// (fresh data supersedes a stale generation). Callers that cannot
// recover a failed publish (no previous generation) treat the error as
// fatal; callers that can, degrade: SetDegraded and keep serving.
func (s *Service) TryPublish(st *RankStore) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Op: "publish", Value: v}
			if g := s.Guard; g != nil {
				g.Panics.Inc()
			}
		}
	}()
	if ferr := fault.Inject(PointStoreSwap); ferr != nil {
		return fmt.Errorf("serve: store swap: %w", ferr)
	}
	if st == nil {
		return errors.New("serve: refusing to publish a nil store")
	}
	s.Publish(st)
	s.ClearDegraded()
	return nil
}

// SetDegraded marks the service as serving stale data for the given
// reason. Queries keep answering from the last published store with an
// X-Stale header; /readyz reports the degradation.
func (s *Service) SetDegraded(reason string) { s.degraded.Store(&reason) }

// ClearDegraded returns the service to healthy.
func (s *Service) ClearDegraded() { s.degraded.Store(nil) }

// Degraded returns the degradation reason and whether one is set.
func (s *Service) Degraded() (string, bool) {
	if p := s.degraded.Load(); p != nil {
		return *p, true
	}
	return "", false
}

// Store returns the currently published store, or nil before the first
// Publish.
func (s *Service) Store() *RankStore { return s.store.Load() }

// CacheStats snapshots the response cache counters.
func (s *Service) CacheStats() CacheStats { return s.cache.Stats() }

// WaitFills blocks until every in-flight coalesced fill has returned;
// the drain path calls it after the guard stops admitting new work so
// process exit does not race a live computation.
func (s *Service) WaitFills() { s.group.Wait() }

// queryError carries the HTTP status a failed query maps to, plus an
// optional Retry-After hint for shed/unready responses.
type queryError struct {
	status     int
	msg        string
	retryAfter string
}

// Error returns the query failure message.
func (e *queryError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &queryError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return &queryError{status: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is the (nginx-convention) status for a
// request whose client went away before the answer was ready; nothing
// meaningful can be delivered, but the connection still gets a
// structured close instead of silence.
const statusClientClosedRequest = 499

// writeJSONError renders err as {"error": ...} with its mapped status
// (500 for non-query errors) and any Retry-After hint it carries.
func writeJSONError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var qe *queryError
	if errors.As(err, &qe) {
		status = qe.status
		if qe.retryAfter != "" {
			w.Header().Set("Retry-After", qe.retryAfter)
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(b, '\n'))
}

// Response source labels for the X-Cache header: every answer declares
// whether it came from the cache, a fresh computation, or another
// caller's in-flight computation.
const (
	sourceHit       = "hit"
	sourceMiss      = "miss"
	sourceCoalesced = "coalesced"
)

// answer resolves one canonical query: cache first, then a coalesced
// computation whose successful result is cached for the next caller.
// The cache-hit path performs no allocation — it is a map lookup and
// an LRU list splice returning the shared response bytes — and bypasses
// the compute limiter entirely, so cached traffic stays fast while an
// overloaded miss path sheds. ctx bounds only this caller's wait: the
// fill itself runs detached (see flightGroup.Do), so a canceled caller
// neither strands coalesced followers nor poisons the cache.
func (s *Service) answer(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (data []byte, source string, err error) {
	if b, ok := s.cache.Get(key); ok {
		return b, sourceHit, nil
	}
	release, err := s.Guard.acquireCompute(ctx)
	if err != nil {
		return nil, "", err
	}
	defer release()
	b, err, shared := s.group.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		if ferr := fault.Inject(PointCoalesceLeader); ferr != nil {
			return nil, fmt.Errorf("serve: coalesced fill: %w", ferr)
		}
		b, err := compute(fctx)
		if err != nil {
			return nil, err
		}
		if ferr := fault.Inject(PointCacheFill); ferr != nil {
			return nil, fmt.Errorf("serve: cache fill: %w", ferr)
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if err != nil {
		return nil, "", err
	}
	source = sourceMiss
	if shared {
		source = sourceCoalesced
	}
	return b, source, nil
}

// mapQueryError converts transport-layer failures into their HTTP
// shape and counts them: a missed deadline is 504 (Gateway Timeout), a
// client that went away is 499, a contained panic is a 500 that bumps
// the panic counter. Query errors (400/404/...) pass through.
func (s *Service) mapQueryError(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if g := s.Guard; g != nil {
			g.Timeouts.Inc()
		}
		return &queryError{status: http.StatusGatewayTimeout, msg: "request deadline exceeded"}
	case errors.Is(err, context.Canceled):
		return &queryError{status: statusClientClosedRequest, msg: "client closed request"}
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		if g := s.Guard; g != nil {
			g.Panics.Inc()
		}
	}
	return err
}

// serveQuery runs the cache/coalesce/compute pipeline for a request
// and writes the JSON answer with its X-Cache provenance (and an
// X-Stale marker while the service is degraded).
func (s *Service) serveQuery(w http.ResponseWriter, r *http.Request, key string, compute func(context.Context) ([]byte, error)) {
	data, source, err := s.answer(r.Context(), key, compute)
	if err != nil {
		writeJSONError(w, s.mapQueryError(err))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("X-Cache", source)
	if _, degraded := s.Degraded(); degraded {
		h.Set("X-Stale", "true")
	}
	if ferr := fault.Inject(PointResponseWrite); ferr != nil {
		writeJSONError(w, fmt.Errorf("serve: response write: %w", ferr))
		return
	}
	// The write seam re-checks the deadline: a response that became
	// ready only after the request's deadline (a stalled write path, the
	// delay fault above) answers 504 instead of a late 200 the client
	// has already given up on.
	if cerr := r.Context().Err(); cerr != nil {
		writeJSONError(w, s.mapQueryError(cerr))
		return
	}
	w.Write(data)
}

// loadStore fetches the published store or reports 503: the daemon is
// up (ready to scrape, streaming solve progress) but has nothing to
// query yet.
func (s *Service) loadStore(w http.ResponseWriter) (*RankStore, bool) {
	st := s.store.Load()
	if st == nil {
		writeJSONError(w, &queryError{status: http.StatusServiceUnavailable,
			msg: "store not ready (still solving or loading)", retryAfter: "1"})
		return nil, false
	}
	return st, true
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, badRequest("missing required parameter %q", name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter %q: %v", name, err)
	}
	return n, nil
}

// kParam parses the optional k parameter (default 10), clamped to
// [0, MaxK].
func (s *Service) kParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("k")
	if v == "" {
		return 10, nil
	}
	k, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("parameter \"k\": %v", err)
	}
	if k < 0 {
		return 0, badRequest("parameter \"k\" must be >= 0")
	}
	if k > s.MaxK {
		k = s.MaxK
	}
	return k, nil
}

// checkWindow maps an out-of-range window index to a 404.
func checkWindow(st *RankStore, w int) error {
	if w < 0 || w >= st.NumWindows() {
		return notFound("window %d outside [0, %d)", w, st.NumWindows())
	}
	return nil
}

// canonicalKey builds the cache/coalesce key for a query: the store
// generation, the endpoint, and the normalized integer parameters —
// so "?window=03&k=+10" and "?k=10&window=3" coalesce, and entries
// from a replaced store are unreachable.
func canonicalKey(gen uint64, endpoint string, params ...int) string {
	b := make([]byte, 0, 48)
	b = append(b, 'g')
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, '|')
	b = append(b, endpoint...)
	for _, p := range params {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(p), 10)
	}
	return string(b)
}

// topkResponse is the /v1/topk JSON document.
type topkResponse struct {
	Window int      `json:"window"`
	Start  int64    `json:"start"`
	End    int64    `json:"end"`
	K      int      `json:"k"`
	Ranks  []Ranked `json:"ranks"`
}

func (s *Service) handleTopK(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	win, err := intParam(r, "window")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, win); err != nil {
		writeJSONError(w, err)
		return
	}
	key := canonicalKey(st.generation, "topk", win, k)
	s.serveQuery(w, r, key, func(context.Context) ([]byte, error) {
		ranks, err := st.TopK(win, k)
		if err != nil {
			return nil, err
		}
		return marshalBody(topkResponse{
			Window: win, Start: st.spec.Start(win), End: st.spec.End(win),
			K: k, Ranks: ranks,
		})
	})
}

// trajectoryResponse is the /v1/vertex/{id}/trajectory JSON document:
// the vertex's rank in every window, with the spec fields needed to
// map indices back to time.
type trajectoryResponse struct {
	Vertex  int32     `json:"vertex"`
	Windows int       `json:"windows"`
	T0      int64     `json:"t0"`
	Delta   int64     `json:"delta"`
	Slide   int64     `json:"slide"`
	Ranks   []float64 `json:"ranks"`
}

func (s *Service) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSONError(w, badRequest("vertex id: %v", err))
		return
	}
	if id < 0 || id >= int64(st.NumVertices()) {
		writeJSONError(w, notFound("vertex %d outside [0, %d)", id, st.NumVertices()))
		return
	}
	v := int32(id)
	key := canonicalKey(st.generation, "traj", int(v))
	s.serveQuery(w, r, key, func(context.Context) ([]byte, error) {
		ranks, err := st.Trajectory(v)
		if err != nil {
			return nil, err
		}
		spec := st.Spec()
		return marshalBody(trajectoryResponse{
			Vertex: v, Windows: spec.Count, T0: spec.T0, Delta: spec.Delta, Slide: spec.Slide,
			Ranks: ranks,
		})
	})
}

// moversResponse is the /v1/movers JSON document.
type moversResponse struct {
	From   int     `json:"from"`
	To     int     `json:"to"`
	K      int     `json:"k"`
	Movers []Mover `json:"movers"`
}

func (s *Service) handleMovers(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	from, err := intParam(r, "from")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	to, err := intParam(r, "to")
	if err != nil {
		writeJSONError(w, err)
		return
	}
	k, err := s.kParam(r)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, from); err != nil {
		writeJSONError(w, err)
		return
	}
	if err := checkWindow(st, to); err != nil {
		writeJSONError(w, err)
		return
	}
	key := canonicalKey(st.generation, "movers", from, to, k)
	s.serveQuery(w, r, key, func(context.Context) ([]byte, error) {
		movers, err := st.Movers(from, to, k)
		if err != nil {
			return nil, err
		}
		return marshalBody(moversResponse{From: from, To: to, K: k, Movers: movers})
	})
}

// windowsResponse is the /v1/windows JSON document: the spec, the
// per-window status rows, and the serving-layer counters. It is not
// cached — the cache stats it carries change with every request.
type windowsResponse struct {
	Spec        specJSON     `json:"spec"`
	NumVertices int32        `json:"num_vertices"`
	Generation  uint64       `json:"generation"`
	Degraded    string       `json:"degraded,omitempty"`
	Windows     []WindowInfo `json:"windows"`
	Cache       CacheStats   `json:"cache"`
}

// specJSON renders events.WindowSpec with stable lowercase field names.
type specJSON struct {
	T0    int64 `json:"t0"`
	Delta int64 `json:"delta"`
	Slide int64 `json:"slide"`
	Count int   `json:"count"`
}

func (s *Service) handleWindows(w http.ResponseWriter, r *http.Request) {
	st, ok := s.loadStore(w)
	if !ok {
		return
	}
	spec := st.Spec()
	doc := windowsResponse{
		Spec:        specJSON{T0: spec.T0, Delta: spec.Delta, Slide: spec.Slide, Count: spec.Count},
		NumVertices: st.NumVertices(),
		Generation:  st.generation,
		Windows:     st.WindowInfos(),
		Cache:       s.cache.Stats(),
	}
	if reason, degraded := s.Degraded(); degraded {
		doc.Degraded = reason
	}
	b, err := marshalBody(doc)
	if err != nil {
		writeJSONError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	if doc.Degraded != "" {
		h.Set("X-Stale", "true")
	}
	w.Write(b)
}

// marshalBody renders a response document as newline-terminated JSON.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Mount registers the /v1 query endpoints on mux — typically the obs
// mux, next to /metrics, /status, and /events, so one daemon address
// serves scrapes, live progress, and rank queries. When s.Guard is
// set, every handler is wrapped in its middleware stack.
func (s *Service) Mount(mux *http.ServeMux) {
	wrap := func(h http.HandlerFunc) http.Handler {
		if s.Guard != nil {
			return s.Guard.Wrap(h)
		}
		return h
	}
	mux.Handle("GET /v1/topk", wrap(s.handleTopK))
	mux.Handle("GET /v1/vertex/{id}/trajectory", wrap(s.handleTrajectory))
	mux.Handle("GET /v1/movers", wrap(s.handleMovers))
	mux.Handle("GET /v1/windows", wrap(s.handleWindows))
}
