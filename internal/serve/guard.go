// This file is the serving path's robustness layer: a composable
// middleware stack mirroring the solve pipeline's failure ladder
// (retry → degrade → quarantine) with the serving equivalents
// (shed → degrade-to-stale → drain). The Guard owns admission control
// (a bounded compute limiter with a short wait queue plus a per-client
// token bucket), per-request deadlines, panic containment, and the
// drain gate; the Service consults it on the compute path so cache
// hits stay on the unguarded fast path and overload only ever sheds
// work that would actually cost something.

package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pmpr/internal/obs"
)

// PanicError is the structured form of a recovered serving-layer
// panic: the value a handler or a coalesced fill panicked with,
// converted into an error so it can be rendered as a 500, counted,
// and never allowed to kill the daemon.
type PanicError struct {
	// Op names where the panic was caught ("handler", "coalesced fill",
	// "publish").
	Op string
	// Value is the recovered panic value.
	Value any
}

// Error renders the contained panic.
func (e *PanicError) Error() string { return fmt.Sprintf("serve: recovered panic in %s: %v", e.Op, e.Value) }

// GuardConfig tunes the serving-path robustness layer. The zero value
// disables every mechanism (no deadline, no admission control, no rate
// limit) — each field opts in independently.
type GuardConfig struct {
	// Timeout is the per-request deadline applied to the request
	// context; a query that cannot complete in time answers 504.
	// 0 disables the deadline.
	Timeout time.Duration
	// MaxInFlight bounds concurrently admitted compute work (cache
	// misses); excess requests wait in the queue or are shed with 503.
	// 0 disables admission control.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a compute slot
	// beyond MaxInFlight; further arrivals are shed immediately.
	// 0 defaults to MaxInFlight.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before being shed. 0 defaults to 100ms.
	QueueWait time.Duration
	// RatePerSec is the per-client token refill rate; each client (by
	// remote host) may burst up to RateBurst requests and sustain
	// RatePerSec. Excess answers 429. 0 disables rate limiting.
	RatePerSec float64
	// RateBurst is the per-client bucket capacity; 0 defaults to
	// max(1, ceil(RatePerSec)).
	RateBurst int
	// RetryAfter is the hint carried by shed (503) and rate-limited
	// (429) responses. 0 defaults to 1s.
	RetryAfter time.Duration
}

const (
	defaultQueueWait  = 100 * time.Millisecond
	defaultRetryAfter = time.Second
	// maxRateClients bounds the rate-limiter bucket map; when full,
	// buckets idle long enough to have refilled completely are pruned.
	maxRateClients = 16384
)

// Guard is the serving path's admission, deadline, and panic-
// containment layer. Create one with NewGuard, attach it to a Service
// (Service.Guard) before Mount, and wrap any additional handlers with
// Wrap. All methods are safe for concurrent use.
type Guard struct {
	cfg GuardConfig
	sem chan struct{} // compute slots; nil when admission is disabled

	inFlight atomic.Int64
	queued   atomic.Int64
	draining atomic.Bool

	// Shed counts requests rejected by admission control or the drain
	// gate (the 503 + Retry-After responses). Timeouts counts requests
	// that missed their deadline (504). Panics counts recovered
	// handler/fill/publish panics (500). RateLimited counts per-client
	// token-bucket rejections (429).
	Shed        obs.Counter
	Timeouts    obs.Counter
	Panics      obs.Counter
	RateLimited obs.Counter

	mu      sync.Mutex
	buckets map[string]*bucket
	nowFn   func() time.Time // test seam; time.Now when nil
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewGuard builds a Guard from cfg, applying the documented defaults.
func NewGuard(cfg GuardConfig) *Guard {
	if cfg.MaxInFlight > 0 && cfg.MaxQueue <= 0 {
		cfg.MaxQueue = cfg.MaxInFlight
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = defaultQueueWait
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.RatePerSec > 0 && cfg.RateBurst <= 0 {
		cfg.RateBurst = int(cfg.RatePerSec + 0.999)
		if cfg.RateBurst < 1 {
			cfg.RateBurst = 1
		}
	}
	g := &Guard{cfg: cfg, buckets: map[string]*bucket{}}
	if cfg.MaxInFlight > 0 {
		g.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	return g
}

// InFlight returns the number of requests currently inside the guard
// (admitted or queued), the pmpr_serve_inflight gauge.
func (g *Guard) InFlight() int64 { return g.inFlight.Load() }

// Queued returns the number of requests waiting for a compute slot.
func (g *Guard) Queued() int64 { return g.queued.Load() }

// StartDrain flips the guard into draining: every subsequent request
// is shed with 503 + Retry-After while in-flight requests run to
// completion. Draining is one-way — a draining process is exiting.
func (g *Guard) StartDrain() { g.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (g *Guard) Draining() bool { return g.draining.Load() }

// RetryAfterSeconds renders the configured Retry-After hint in whole
// seconds (minimum 1), the unit the header uses.
func (g *Guard) RetryAfterSeconds() string {
	s := int(g.cfg.RetryAfter / time.Second)
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// RegisterOn publishes the guard's counters and gauges on reg:
// pmpr_serve_shed_total, pmpr_serve_timeout_total,
// pmpr_serve_panics_total, pmpr_serve_rate_limited_total,
// pmpr_serve_inflight, and pmpr_serve_queue_depth.
func (g *Guard) RegisterOn(reg *obs.Registry) {
	reg.RegisterCounter("pmpr_serve_shed_total", "requests shed by admission control or drain", &g.Shed)
	reg.RegisterCounter("pmpr_serve_timeout_total", "requests that missed their deadline", &g.Timeouts)
	reg.RegisterCounter("pmpr_serve_panics_total", "recovered serving-layer panics", &g.Panics)
	reg.RegisterCounter("pmpr_serve_rate_limited_total", "requests rejected by the per-client rate limit", &g.RateLimited)
	reg.Gauge("pmpr_serve_inflight", "requests currently inside the guard", func() float64 {
		return float64(g.InFlight())
	})
	reg.Gauge("pmpr_serve_queue_depth", "requests waiting for a compute slot", func() float64 {
		return float64(g.Queued())
	})
}

// errShed is the 503 every shed path answers with; the Retry-After
// header is attached by writeJSONError from the queryError.
func (g *Guard) errShed(msg string) error {
	return &queryError{status: http.StatusServiceUnavailable, msg: msg, retryAfter: g.RetryAfterSeconds()}
}

// acquireCompute admits one unit of compute work (a cache miss),
// waiting in the bounded queue when all slots are busy. It returns a
// release function on admission and a shed/context error otherwise.
// With admission control disabled it admits everything.
func (g *Guard) acquireCompute(ctx context.Context) (release func(), err error) {
	if g == nil || g.sem == nil {
		return func() {}, nil
	}
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	default:
	}
	// All slots busy: join the wait queue if it has room.
	if g.queued.Add(1) > int64(g.cfg.MaxQueue) {
		g.queued.Add(-1)
		g.Shed.Inc()
		return nil, g.errShed("overloaded: compute queue full")
	}
	defer g.queued.Add(-1)
	timer := time.NewTimer(g.cfg.QueueWait)
	defer timer.Stop()
	select {
	case g.sem <- struct{}{}:
		return g.release, nil
	case <-timer.C:
		g.Shed.Inc()
		return nil, g.errShed("overloaded: no compute slot within queue wait")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// release returns a compute slot.
func (g *Guard) release() { <-g.sem }

// now returns the guard's clock (a test seam).
func (g *Guard) now() time.Time {
	if g.nowFn != nil {
		return g.nowFn()
	}
	return time.Now()
}

// allow runs the per-client token bucket for remoteAddr and reports
// whether the request may proceed. Disabled (RatePerSec <= 0) allows
// everything.
func (g *Guard) allow(remoteAddr string) bool {
	if g.cfg.RatePerSec <= 0 {
		return true
	}
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	now := g.now()
	burst := float64(g.cfg.RateBurst)
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.buckets[host]
	if b == nil {
		if len(g.buckets) >= maxRateClients {
			g.pruneLocked(now, burst)
		}
		b = &bucket{tokens: burst, last: now}
		g.buckets[host] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * g.cfg.RatePerSec
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// pruneLocked drops buckets idle long enough to have refilled
// completely — forgetting them loses no information, since a fresh
// bucket starts full. Called with g.mu held when the map is at
// capacity.
func (g *Guard) pruneLocked(now time.Time, burst float64) {
	idle := time.Duration(burst/g.cfg.RatePerSec*float64(time.Second)) + time.Second
	for host, b := range g.buckets {
		if now.Sub(b.last) >= idle {
			delete(g.buckets, host)
		}
	}
}

// guardWriter tracks whether the wrapped handler has written a header,
// so panic recovery knows whether a structured 500 can still be sent.
type guardWriter struct {
	http.ResponseWriter
	wrote bool
}

// WriteHeader marks the response as started.
func (w *guardWriter) WriteHeader(status int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

// Write marks the response as started and forwards the bytes.
func (w *guardWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *guardWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Wrap composes the guard's middleware around h, outermost first:
// panic recovery (a handler panic becomes a structured 500 and a
// counter bump, never a dead connection and never a dead daemon), the
// drain gate (503 + Retry-After once StartDrain has been called), the
// per-client rate limit (429 + Retry-After), and the per-request
// deadline (the handler's context expires after Timeout, surfacing as
// 504 from the query path). The compute limiter is not applied here —
// Service.answer acquires it only on cache misses, so hits stay on the
// unguarded fast path.
func (g *Guard) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.inFlight.Add(1)
		defer g.inFlight.Add(-1)
		gw := &guardWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				g.Panics.Inc()
				perr := &PanicError{Op: "handler", Value: v}
				if !gw.wrote {
					writeJSONError(gw, perr)
				}
			}
		}()
		if g.draining.Load() {
			g.Shed.Inc()
			writeJSONError(gw, g.errShed("draining: server is shutting down"))
			return
		}
		if !g.allow(r.RemoteAddr) {
			g.RateLimited.Inc()
			writeJSONError(gw, &queryError{
				status: http.StatusTooManyRequests, msg: "rate limit exceeded",
				retryAfter: g.RetryAfterSeconds(),
			})
			return
		}
		if g.cfg.Timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h.ServeHTTP(gw, r)
	})
}
