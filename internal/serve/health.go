package serve

import (
	"encoding/json"
	"net/http"
)

// healthDoc is the JSON body of /healthz and /readyz.
type healthDoc struct {
	// Status is "ok" (healthz), or one of "serving", "degraded",
	// "loading", "draining" (readyz).
	Status string `json:"status"`
	// Reason carries the degradation reason when Status is "degraded".
	Reason string `json:"reason,omitempty"`
	// Generation and Windows describe the published store when one
	// exists.
	Generation uint64 `json:"generation,omitempty"`
	Windows    int    `json:"windows,omitempty"`
}

// writeHealth renders doc with the given status code.
func writeHealth(w http.ResponseWriter, code int, doc healthDoc) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	b, _ := json.Marshal(doc)
	w.Write(append(b, '\n'))
}

// handleHealthz is liveness: the process is up and the handler ran.
// It never depends on store state — a degraded or still-loading daemon
// is alive and must not be restarted by an orchestrator for it.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeHealth(w, http.StatusOK, healthDoc{Status: "ok"})
}

// handleReadyz is readiness: whether this daemon should receive query
// traffic right now.
//
//	503 draining   StartDrain was called; the process is exiting
//	503 loading    no store published yet (still solving or loading)
//	200 degraded   serving the last good generation after a failed
//	               republish/re-solve — stale but answering, so load
//	               balancers keep routing rather than taking the only
//	               copy of the data out of rotation
//	200 serving    healthy
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if g := s.Guard; g != nil && g.Draining() {
		w.Header().Set("Retry-After", g.RetryAfterSeconds())
		writeHealth(w, http.StatusServiceUnavailable, healthDoc{Status: "draining"})
		return
	}
	st := s.Store()
	reason, degraded := s.Degraded()
	if st == nil {
		doc := healthDoc{Status: "loading"}
		if degraded {
			doc.Reason = reason
		}
		w.Header().Set("Retry-After", "1")
		writeHealth(w, http.StatusServiceUnavailable, doc)
		return
	}
	doc := healthDoc{Status: "serving", Generation: st.Generation(), Windows: st.NumWindows()}
	if degraded {
		doc.Status = "degraded"
		doc.Reason = reason
	}
	writeHealth(w, http.StatusOK, doc)
}

// MountOps registers the operational endpoints (/healthz, /readyz) on
// mux. They are deliberately outside the guard: probes must not be
// shed, rate-limited, or deadline-bounded — an overloaded daemon that
// fails its liveness probe gets restarted, which is how overload turns
// into an outage.
func (s *Service) MountOps(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
}
