package serve

import "pmpr/internal/fault"

// Serve-layer fault injection points. They sit at the seams where the
// serving path can fail for real — a store swap racing a query load, a
// cache fill after an expensive compute, the coalesce leader's fill
// itself, and the final response write — and never on the cache-hit
// fast path, which stays a plain map lookup. Chaos tests arm these
// (and PMPR_FAULTPOINTS can arm them in a live daemon) to prove every
// failure surfaces as a structured HTTP error or a stale-but-valid
// response, never a crash, hang, or empty 200.
const (
	// PointStoreSwap fires inside TryPublish, before the new store is
	// made visible — a failed or panicking publish must leave the
	// previous generation serving.
	PointStoreSwap = "serve.store.swap"
	// PointCacheFill fires after a successful compute, before its
	// result is inserted into the response cache.
	PointCacheFill = "serve.cache.fill"
	// PointCoalesceLeader fires at the start of a coalesced fill — the
	// single computation a thundering herd of identical queries shares.
	PointCoalesceLeader = "serve.coalesce.leader"
	// PointResponseWrite fires immediately before the response bytes
	// are written to the client.
	PointResponseWrite = "serve.response.write"
)

func init() {
	fault.RegisterPoint(PointStoreSwap, "rank store publish/swap (TryPublish, before the new generation is visible)")
	fault.RegisterPoint(PointCacheFill, "response cache insert after a successful compute")
	fault.RegisterPoint(PointCoalesceLeader, "coalesced fill entry (the shared computation)")
	fault.RegisterPoint(PointResponseWrite, "response body write to the client")
}
