package serve

import (
	"context"
	"math/rand"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/results"
)

// benchSeries builds a larger synthetic series so the cold-path cost
// (top-k extraction + JSON rendering) is realistic: 64 windows over
// 20k vertices with ~2k positive entries each.
func benchSeries(windows int, n int32, entries int) *results.Series {
	rng := rand.New(rand.NewSource(42))
	s := &results.Series{
		Spec:        events.WindowSpec{T0: 0, Delta: 100, Slide: 10, Count: windows},
		NumVertices: n,
	}
	for w := 0; w < windows; w++ {
		wr := results.WindowRanks{Window: w, Iterations: 20, Converged: true}
		seen := make(map[int32]bool, entries)
		for len(seen) < entries {
			seen[rng.Int31n(n)] = true
		}
		verts := make([]int32, 0, entries)
		for v := range seen {
			verts = append(verts, v)
		}
		sortInt32(verts)
		var total float64
		ranks := make([]float64, entries)
		for i := range ranks {
			ranks[i] = rng.Float64() + 0.01
			total += ranks[i]
		}
		for i := range ranks {
			ranks[i] /= total
		}
		wr.Vertices, wr.Ranks = verts, ranks
		s.Windows = append(s.Windows, wr)
	}
	return s
}

func sortInt32(v []int32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func benchService(b *testing.B) (*Service, *RankStore) {
	b.Helper()
	st, err := NewStore(benchSeries(64, 20000, 2000))
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(0)
	svc.Publish(st)
	return svc, st
}

// BenchmarkTopKCold measures the uncached query path: extract the
// precomputed top-k slice and render the JSON response. This is what
// every cache miss pays.
func BenchmarkTopKCold(b *testing.B) {
	_, st := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks, err := st.TopK(i%st.NumWindows(), 100)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := marshalBody(topkResponse{Window: i % st.NumWindows(), K: 100, Ranks: ranks}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKHit measures the cached fast path: the canonical key is
// already resolved, so the query is a map lookup returning shared
// bytes — 0 allocs/op (asserted by TestAnswerHitPathDoesNotAllocate).
// Compare against BenchmarkTopKCold for the cache speedup; the
// acceptance bar is >= 10x.
func BenchmarkTopKHit(b *testing.B) {
	svc, st := benchService(b)
	ctx := context.Background()
	key := canonicalKey(st.Generation(), "topk", 3, 100)
	compute := func(context.Context) ([]byte, error) {
		ranks, err := st.TopK(3, 100)
		if err != nil {
			return nil, err
		}
		return marshalBody(topkResponse{Window: 3, K: 100, Ranks: ranks})
	}
	if _, _, err := svc.answer(ctx, key, compute); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, source, err := svc.answer(ctx, key, compute); err != nil || source != sourceHit {
			b.Fatalf("%q, %v", source, err)
		}
	}
}

// BenchmarkMoversCold measures the heaviest computed query: the linear
// merge of two sparse windows plus the sort by |delta|.
func BenchmarkMoversCold(b *testing.B) {
	_, st := benchService(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := i % (st.NumWindows() - 1)
		movers, err := st.Movers(from, from+1, 50)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := marshalBody(moversResponse{From: from, To: from + 1, K: 50, Movers: movers}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCachedQuerySpeedup encodes the serving-layer acceptance bar: a
// cached query must be at least 10x faster than the cold compute path.
// The measured margin is normally two orders of magnitude, so the
// assertion stays safe on noisy shared runners.
func TestCachedQuerySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement skipped in -short mode")
	}
	st, err := NewStore(benchSeries(64, 20000, 2000))
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(0)
	svc.Publish(st)
	ctx := context.Background()
	compute := func(context.Context) ([]byte, error) {
		ranks, err := st.TopK(3, 100)
		if err != nil {
			return nil, err
		}
		return marshalBody(topkResponse{Window: 3, K: 100, Ranks: ranks})
	}
	cold := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compute(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	key := canonicalKey(st.Generation(), "topk", 3, 100)
	if _, _, err := svc.answer(ctx, key, compute); err != nil {
		t.Fatal(err)
	}
	hit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := svc.answer(ctx, key, compute); err != nil {
				b.Fatal(err)
			}
		}
	})
	coldNs, hitNs := float64(cold.NsPerOp()), float64(hit.NsPerOp())
	if hitNs <= 0 {
		t.Fatalf("degenerate hit measurement: %v", hit)
	}
	speedup := coldNs / hitNs
	t.Logf("cold %.0f ns/op, hit %.0f ns/op, speedup %.1fx", coldNs, hitNs, speedup)
	if speedup < 10 {
		t.Fatalf("cached query only %.1fx faster than cold, want >= 10x", speedup)
	}
}
