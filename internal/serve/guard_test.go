package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmpr/internal/fault"
	"pmpr/internal/obs"
)

// newGuardedServer builds a test Service with the given guard attached
// and mounts it (plus the ops endpoints) on an httptest server.
func newGuardedServer(t *testing.T, cfg GuardConfig) (*Service, *Guard, *httptest.Server) {
	t.Helper()
	svc := newTestService(t)
	g := NewGuard(cfg)
	svc.Guard = g
	mux := http.NewServeMux()
	svc.Mount(mux)
	svc.MountOps(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, g, ts
}

func TestGuardDeadlineAnswers504(t *testing.T) {
	svc, g, ts := newGuardedServer(t, GuardConfig{Timeout: 30 * time.Millisecond})
	// Arm a delay far past the deadline on the coalesce leader; the
	// waiter's context expires first and must map to 504.
	cancel := fault.Arm(fault.Rule{Point: PointCoalesceLeader, Mode: fault.ModeDelay, Delay: 300 * time.Millisecond})
	defer cancel()
	defer svc.WaitFills()

	resp := get(t, ts, "/v1/topk?window=0&k=3", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if got := g.Timeouts.Value(); got != 1 {
		t.Fatalf("Timeouts counter = %d, want 1", got)
	}
}

func TestGuardShedsWhenQueueFull(t *testing.T) {
	svc, g, ts := newGuardedServer(t, GuardConfig{
		MaxInFlight: 1, MaxQueue: 1, QueueWait: 40 * time.Millisecond, RetryAfter: 2 * time.Second,
	})
	// Occupy the single compute slot directly so the HTTP requests below
	// deterministically find it busy.
	release, err := g.acquireCompute(context.Background())
	if err != nil {
		t.Fatalf("acquireCompute: %v", err)
	}
	defer svc.WaitFills()
	defer release()

	// Fire several distinct (uncacheable against each other) misses
	// concurrently: with one queue slot and no compute capacity, all of
	// them eventually shed — one after QueueWait, the rest immediately.
	const n = 4
	var wg sync.WaitGroup
	codes := make([]int, n)
	retry := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/topk?window=0&k=" + strconv.Itoa(i+1))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retry[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, c := range codes {
		if c == http.StatusServiceUnavailable {
			shed++
			if retry[i] != "2" {
				t.Fatalf("shed response %d Retry-After = %q, want \"2\"", i, retry[i])
			}
		}
	}
	if shed != n {
		t.Fatalf("shed %d of %d requests, want all (slot was held for the whole test)", shed, n)
	}
	if got := g.Shed.Value(); got < int64(n) {
		t.Fatalf("Shed counter = %d, want >= %d", got, n)
	}
}

func TestGuardRateLimitAnswers429(t *testing.T) {
	_, g, ts := newGuardedServer(t, GuardConfig{RatePerSec: 0.001, RateBurst: 1})
	// Burst of 1: the first request passes, the second (same client
	// host) must be rejected with 429 + Retry-After.
	resp := get(t, ts, "/v1/topk?window=0&k=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", resp.StatusCode)
	}
	var body map[string]string
	resp = get(t, ts, "/v1/topk?window=1&k=3", &body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if body["error"] == "" {
		t.Fatal("429 response missing structured error body")
	}
	if got := g.RateLimited.Value(); got != 1 {
		t.Fatalf("RateLimited counter = %d, want 1", got)
	}
}

func TestGuardRecoversHandlerPanic(t *testing.T) {
	g := NewGuard(GuardConfig{})
	mux := http.NewServeMux()
	mux.Handle("GET /boom", g.Wrap(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})))
	mux.Handle("GET /fine", g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("GET /boom: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler status = %d, want 500", resp.StatusCode)
	}
	var doc map[string]string
	if err := json.Unmarshal(b, &doc); err != nil || !strings.Contains(doc["error"], "kaboom") {
		t.Fatalf("panicking handler body = %q, want structured error mentioning kaboom", b)
	}
	if got := g.Panics.Value(); got != 1 {
		t.Fatalf("Panics counter = %d, want 1", got)
	}
	// The server (and guard) survive: the next request works normally.
	resp, err = http.Get(ts.URL + "/fine")
	if err != nil {
		t.Fatalf("GET /fine after panic: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-panic request status = %d, want 204", resp.StatusCode)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight after requests = %d, want 0", got)
	}
}

func TestGuardDrainGate(t *testing.T) {
	started := make(chan struct{})
	finish := make(chan struct{})
	g := NewGuard(GuardConfig{})
	mux := http.NewServeMux()
	mux.Handle("GET /slow", g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-finish
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("done\n"))
	})))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Launch an in-flight request, then start draining under it.
	type result struct {
		code int
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/slow")
		if err != nil {
			slow <- result{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slow <- result{code: resp.StatusCode}
	}()
	<-started
	g.StartDrain()
	if !g.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}

	// New work is shed with 503 + Retry-After while the drain runs.
	resp, err := http.Get(ts.URL + "/slow")
	if err != nil {
		t.Fatalf("GET during drain: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("drain 503 missing Retry-After")
	}

	// The in-flight request still completes successfully.
	close(finish)
	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", r.code)
	}
}

func TestGuardNilAndDisabledAdmitEverything(t *testing.T) {
	var g *Guard
	release, err := g.acquireCompute(context.Background())
	if err != nil {
		t.Fatalf("nil guard acquireCompute: %v", err)
	}
	release()
	g = NewGuard(GuardConfig{}) // admission disabled
	release, err = g.acquireCompute(context.Background())
	if err != nil {
		t.Fatalf("disabled guard acquireCompute: %v", err)
	}
	release()
	if !g.allow("10.0.0.1:1234") {
		t.Fatal("disabled rate limit rejected a request")
	}
}

func TestGuardRegisterOnPublishesMetrics(t *testing.T) {
	g := NewGuard(GuardConfig{MaxInFlight: 4})
	reg := obs.NewRegistry()
	g.RegisterOn(reg)
	g.Shed.Inc()
	g.Timeouts.Inc()
	g.Panics.Inc()
	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"pmpr_serve_shed_total 1",
		"pmpr_serve_timeout_total 1",
		"pmpr_serve_panics_total 1",
		"pmpr_serve_rate_limited_total 0",
		"pmpr_serve_inflight 0",
		"pmpr_serve_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestCoalesceCanceledLeaderDoesNotStrandFollowers is the regression
// test for the cancellation bug class: the first caller (the leader)
// cancels mid-fill. The leader must get its context error promptly,
// the follower must still receive the computed value, and the cache
// must end up with the real result — not poisoned, not empty.
func TestCoalesceCanceledLeaderDoesNotStrandFollowers(t *testing.T) {
	svc := newTestService(t)
	inFill := make(chan struct{})
	finish := make(chan struct{})
	var calls atomic.Int64
	compute := func(context.Context) ([]byte, error) {
		calls.Add(1)
		close(inFill)
		<-finish
		return []byte("value\n"), nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	type res struct {
		data   []byte
		source string
		err    error
	}
	leader := make(chan res, 1)
	go func() {
		d, s, err := svc.answer(leaderCtx, "k1", compute)
		leader <- res{d, s, err}
	}()
	<-inFill // the fill is running under the leader's flight

	// A follower joins the same key, then the leader cancels.
	follower := make(chan res, 1)
	go func() {
		d, s, err := svc.answer(context.Background(), "k1", compute)
		follower <- res{d, s, err}
	}()
	// Give the follower a moment to join the flight before canceling.
	time.Sleep(20 * time.Millisecond)
	cancelLeader()

	// The leader returns its context error promptly — well before the
	// fill completes.
	select {
	case r := <-leader:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("canceled leader err = %v, want context.Canceled", r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled leader did not return: stranded on its own fill")
	}

	// The fill keeps running for the follower; let it finish.
	close(finish)
	select {
	case r := <-follower:
		if r.err != nil {
			t.Fatalf("follower err = %v, want value", r.err)
		}
		if string(r.data) != "value\n" {
			t.Fatalf("follower data = %q, want %q", r.data, "value\n")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower stranded after leader cancellation")
	}
	svc.WaitFills()

	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (coalesced)", n)
	}
	// The cache holds the real value: a fresh caller hits without
	// recomputing.
	d, src, err := svc.answer(context.Background(), "k1", func(context.Context) ([]byte, error) {
		t.Fatal("cache poisoned: recompute after successful fill")
		return nil, nil
	})
	if err != nil || src != sourceHit || string(d) != "value\n" {
		t.Fatalf("post-fill answer = (%q, %s, %v), want cached value", d, src, err)
	}
}

// TestCoalesceAllWaitersCancelStopsFill checks orphan shutdown: when
// every waiter abandons the flight, the fill's context is canceled so
// the computation can stop, and the next request recomputes.
func TestCoalesceAllWaitersCancelStopsFill(t *testing.T) {
	var g flightGroup
	inFill := make(chan struct{})
	fillCtxDone := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(inFill)
			<-fctx.Done() // the fill observes its own cancellation
			close(fillCtxDone)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-inFill
	cancel() // sole waiter abandons

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("abandoning waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoning waiter blocked")
	}
	select {
	case <-fillCtxDone:
		// The orphaned fill was told to stop.
	case <-time.After(2 * time.Second):
		t.Fatal("fill context never canceled after all waiters left")
	}
	g.Wait()

	// The key is free again: a new Do runs a fresh computation.
	v, err, _ := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || string(v) != "fresh" {
		t.Fatalf("post-abandon Do = (%q, %v), want fresh recompute", v, err)
	}
}

// TestCoalescePanicSurfacesToAllWaiters checks panic containment in
// the fill: every waiter gets a structured *PanicError, nothing is
// cached, and the daemon keeps running.
func TestCoalescePanicSurfacesToAllWaiters(t *testing.T) {
	svc := newTestService(t)
	_, _, err := svc.answer(context.Background(), "pk", func(context.Context) ([]byte, error) {
		panic("fill exploded")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	svc.WaitFills()
	// Not cached: the next caller recomputes and succeeds.
	d, src, err := svc.answer(context.Background(), "pk", func(context.Context) ([]byte, error) {
		return []byte("ok\n"), nil
	})
	if err != nil || src != sourceMiss || string(d) != "ok\n" {
		t.Fatalf("recovery answer = (%q, %s, %v), want fresh miss", d, src, err)
	}
}

func TestTryPublishErrorKeepsOldGeneration(t *testing.T) {
	svc, _, ts := newGuardedServer(t, GuardConfig{})
	oldGen := svc.Store().Generation()

	cancel := fault.Arm(fault.Rule{Point: PointStoreSwap, Mode: fault.ModeError, Msg: "disk gone"})
	st2, err := NewStore(testSeries())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	perr := svc.TryPublish(st2)
	cancel()
	if perr == nil {
		t.Fatal("TryPublish with armed error fault returned nil")
	}
	if got := svc.Store().Generation(); got != oldGen {
		t.Fatalf("generation after failed publish = %d, want %d (unchanged)", got, oldGen)
	}

	// The daemon degrades to stale rather than going dark.
	svc.SetDegraded("republish failed: " + perr.Error())
	resp := get(t, ts, "/v1/topk?window=0&k=3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query status = %d, want 200 (stale-but-valid)", resp.StatusCode)
	}
	if resp.Header.Get("X-Stale") != "true" {
		t.Fatal("degraded query response missing X-Stale: true")
	}
	var doc healthDoc
	resp = get(t, ts, "/readyz", &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "degraded" {
		t.Fatalf("readyz while degraded = (%d, %q), want (200, degraded)", resp.StatusCode, doc.Status)
	}
	if !strings.Contains(doc.Reason, "disk gone") {
		t.Fatalf("readyz reason = %q, want the publish failure", doc.Reason)
	}

	// A successful republish clears the degradation.
	st3, err := NewStore(testSeries())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if err := svc.TryPublish(st3); err != nil {
		t.Fatalf("TryPublish (disarmed): %v", err)
	}
	if got := svc.Store().Generation(); got != oldGen+1 {
		t.Fatalf("generation after successful publish = %d, want %d", got, oldGen+1)
	}
	resp = get(t, ts, "/readyz", &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "serving" {
		t.Fatalf("readyz after recovery = (%d, %q), want (200, serving)", resp.StatusCode, doc.Status)
	}
	resp = get(t, ts, "/v1/topk?window=0&k=3", nil)
	if resp.Header.Get("X-Stale") != "" {
		t.Fatal("X-Stale still set after successful republish")
	}
}

func TestTryPublishPanicContainedAndCounted(t *testing.T) {
	svc := newTestService(t)
	g := NewGuard(GuardConfig{})
	svc.Guard = g
	oldGen := svc.Store().Generation()

	cancel := fault.Arm(fault.Rule{Point: PointStoreSwap, Mode: fault.ModePanic, Msg: "swap torn"})
	defer cancel()
	st2, err := NewStore(testSeries())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	perr := svc.TryPublish(st2)
	var pe *PanicError
	if !errors.As(perr, &pe) || pe.Op != "publish" {
		t.Fatalf("TryPublish panic err = %v, want *PanicError{Op: publish}", perr)
	}
	if got := g.Panics.Value(); got != 1 {
		t.Fatalf("Panics counter = %d, want 1", got)
	}
	if got := svc.Store().Generation(); got != oldGen {
		t.Fatalf("generation after panicking publish = %d, want %d (unchanged)", got, oldGen)
	}
}

func TestTryPublishRejectsNilStore(t *testing.T) {
	svc := newTestService(t)
	if err := svc.TryPublish(nil); err == nil {
		t.Fatal("TryPublish(nil) returned nil error")
	}
	if svc.Store() == nil {
		t.Fatal("nil publish clobbered the live store")
	}
}

func TestHealthEndpoints(t *testing.T) {
	// Empty service: healthz ok, readyz loading.
	empty := NewService(0)
	mux := http.NewServeMux()
	empty.MountOps(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var doc healthDoc
	resp := get(t, ts, "/healthz", &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz = (%d, %q), want (200, ok)", resp.StatusCode, doc.Status)
	}
	resp = get(t, ts, "/readyz", &doc)
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "loading" {
		t.Fatalf("readyz empty = (%d, %q), want (503, loading)", resp.StatusCode, doc.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("loading readyz missing Retry-After")
	}

	// Published, guarded service: serving, then draining after
	// StartDrain — probes stay reachable through the drain (they are
	// mounted outside the guard).
	svc, g, ts2 := newGuardedServer(t, GuardConfig{})
	resp = get(t, ts2, "/readyz", &doc)
	if resp.StatusCode != http.StatusOK || doc.Status != "serving" {
		t.Fatalf("readyz published = (%d, %q), want (200, serving)", resp.StatusCode, doc.Status)
	}
	if doc.Generation != svc.Store().Generation() || doc.Windows != svc.Store().NumWindows() {
		t.Fatalf("readyz doc = %+v, want store generation/windows", doc)
	}
	g.StartDrain()
	resp = get(t, ts2, "/readyz", &doc)
	if resp.StatusCode != http.StatusServiceUnavailable || doc.Status != "draining" {
		t.Fatalf("readyz draining = (%d, %q), want (503, draining)", resp.StatusCode, doc.Status)
	}
	resp = get(t, ts2, "/healthz", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness is not readiness)", resp.StatusCode)
	}
}
