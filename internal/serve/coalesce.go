package serve

import "sync"

// flightGroup coalesces concurrent duplicate work: all callers of Do
// with the same key while a computation is in flight share its result
// instead of recomputing it — the singleflight pattern, implemented on
// the stdlib so a thundering herd of identical queries hits memory
// once. Unlike the cache, entries live only for the duration of one
// computation; the cache remembers, the group deduplicates.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// flight is one in-progress computation; followers block on wg and
// read the leader's result.
type flight struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn for key, unless a call for the same key is already in
// flight, in which case it waits for that call and returns its result.
// shared reports whether the result was produced by another caller.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.val, f.err, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.val, f.err, false
}
