package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent duplicate work: all callers of Do
// with the same key while a computation is in flight share its result
// instead of recomputing it — the singleflight pattern, implemented on
// the stdlib so a thundering herd of identical queries hits memory
// once. Unlike the cache, entries live only for the duration of one
// computation; the cache remembers, the group deduplicates.
//
// The fill runs detached from any single caller's context: a waiter
// whose deadline fires (or whose client disconnects) abandons the
// flight and gets its context error, while the computation keeps
// running for the remaining waiters — a canceled leader can neither
// strand its followers nor poison the result they receive. Only when
// the last waiter abandons is the fill's own context canceled, so
// orphaned work stops instead of running to completion for nobody.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
	// fills joins the detached fill goroutines; Wait blocks until every
	// in-flight computation has returned (the drain path uses this so
	// process exit does not race a live fill).
	fills sync.WaitGroup
}

// flight is one in-progress computation. done is closed after val/err
// are set, which is the happens-before edge waiters read through.
type flight struct {
	done    chan struct{}
	cancel  context.CancelFunc
	val     []byte
	err     error
	waiters int // guarded by flightGroup.mu
}

// Do returns the result of fn for key, joining an in-flight call for
// the same key when one exists. shared reports whether the result was
// (or would have been) produced by another caller's flight. fn receives
// a fill context that is detached from ctx's cancellation and canceled
// only when every waiter has abandoned the flight; ctx governs only
// this caller's wait. A panic inside fn is contained and surfaces to
// every waiter as a structured *PanicError.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		return g.wait(ctx, f, true)
	}
	// The fill context inherits ctx's values but not its cancellation:
	// the flight outlives any individual caller by design.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.m[key] = f
	g.mu.Unlock()

	g.fills.Add(1)
	go func() {
		defer g.fills.Done()
		defer func() {
			if v := recover(); v != nil {
				f.err = &PanicError{Op: "coalesced fill", Value: v}
				f.val = nil
			}
			cancel()
			g.mu.Lock()
			if g.m[key] == f {
				delete(g.m, key)
			}
			g.mu.Unlock()
			close(f.done)
		}()
		f.val, f.err = fn(fctx)
	}()
	return g.wait(ctx, f, false)
}

// wait blocks until the flight completes or ctx is done, whichever
// comes first. An abandoning waiter decrements the flight's waiter
// count and, when it was the last one, cancels the fill.
func (g *flightGroup) wait(ctx context.Context, f *flight, shared bool) ([]byte, error, bool) {
	select {
	case <-f.done:
		return f.val, f.err, shared
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		g.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, ctx.Err(), shared
	}
}

// Wait blocks until every in-flight fill has returned. New flights
// started while waiting are also joined (sync.WaitGroup semantics);
// callers stop admitting work before draining.
func (g *flightGroup) Wait() { g.fills.Wait() }
