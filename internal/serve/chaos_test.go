// Chaos suite for the serving path: every serve-layer fault point is
// driven through every injection mode and the daemon must answer a
// structured HTTP error or a stale-but-valid response — never crash,
// hang, or return an empty 200. Run under -race in CI (the chaos-serve
// job) so the fault paths are also exercised for data races.

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmpr/internal/fault"
)

// chaosGet fetches path and returns the status, headers, and decoded
// body, failing the test on transport errors — a fault must never tear
// the connection down without a structured response.
func chaosGet(t *testing.T, url string) (int, http.Header, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: transport error (connection torn down?): %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	doc := map[string]any{}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: non-JSON body %q", url, body)
		}
	}
	return resp.StatusCode, resp.Header, doc
}

// TestServeChaosFaultMatrix arms each query-path fault point in each
// mode and checks the response contract, then disarms and verifies the
// same query succeeds — a fault must not poison the cache or wedge the
// coalescer.
func TestServeChaosFaultMatrix(t *testing.T) {
	points := []string{PointCoalesceLeader, PointCacheFill, PointResponseWrite}
	modes := []fault.Mode{fault.ModeError, fault.ModePanic, fault.ModeDelay}
	query := 0
	for _, point := range points {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s_%s", point, mode), func(t *testing.T) {
				cfg := GuardConfig{}
				if mode == fault.ModeDelay {
					cfg.Timeout = 30 * time.Millisecond
				}
				svc, g, ts := newGuardedServer(t, cfg)
				defer svc.WaitFills()
				rule := fault.Rule{Point: point, Mode: mode, Msg: "chaos"}
				if mode == fault.ModeDelay {
					rule.Delay = 300 * time.Millisecond
				}
				cancel := fault.Arm(rule)

				// A distinct query per subtest so nothing is pre-cached.
				query++
				url := ts.URL + "/v1/topk?window=0&k=" + strconv.Itoa(query%100+1)
				code, _, doc := chaosGet(t, url)

				switch mode {
				case fault.ModeError, fault.ModePanic:
					if code != http.StatusInternalServerError {
						t.Fatalf("status = %d, want 500", code)
					}
				case fault.ModeDelay:
					if code != http.StatusGatewayTimeout {
						t.Fatalf("status = %d, want 504", code)
					}
					if g.Timeouts.Value() == 0 {
						t.Fatal("delay fault did not bump the timeout counter")
					}
				}
				if msg, _ := doc["error"].(string); msg == "" {
					t.Fatalf("fault response carries no structured error: %v", doc)
				}
				if mode == fault.ModePanic && g.Panics.Value() == 0 && point != PointResponseWrite {
					// Response-write panics recover in the guard's handler
					// layer too, but fill panics must bump the counter.
					t.Fatal("panic fault did not bump the panic counter")
				}

				// Disarm; the same query now succeeds with real data. The
				// delay case must wait out its orphaned fill first so the
				// stale flight is not joined.
				cancel()
				svc.WaitFills()
				code, hdr, doc := chaosGet(t, url)
				if code != http.StatusOK {
					t.Fatalf("post-fault status = %d, want 200", code)
				}
				if len(doc) == 0 {
					t.Fatal("post-fault 200 with empty body")
				}
				if _, ok := doc["ranks"]; !ok {
					t.Fatalf("post-fault response missing ranks: %v", doc)
				}
				if hdr.Get("X-Cache") == "" {
					t.Fatal("post-fault response missing X-Cache provenance")
				}
			})
		}
	}
}

// TestServeChaosStoreSwap drives the publish fault point through error
// and panic while queries hammer the service: the old generation keeps
// answering throughout, and a disarmed republish recovers.
func TestServeChaosStoreSwap(t *testing.T) {
	svc, g, ts := newGuardedServer(t, GuardConfig{})
	gen := svc.Store().Generation()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/topk?window=0&k=3")
				if err != nil {
					failed.Add(1)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}()
	}

	for _, mode := range []fault.Mode{fault.ModeError, fault.ModePanic} {
		cancel := fault.Arm(fault.Rule{Point: PointStoreSwap, Mode: mode, Msg: "chaos swap"})
		st, err := NewStore(testSeries())
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		if perr := svc.TryPublish(st); perr == nil {
			t.Fatalf("TryPublish under %v fault returned nil", mode)
		}
		cancel()
		if got := svc.Store().Generation(); got != gen {
			t.Fatalf("generation after failed %v publish = %d, want %d", mode, got, gen)
		}
	}
	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d queries failed while publishes were failing; the old store must keep serving", n)
	}
	if g.Panics.Value() == 0 {
		t.Fatal("panicking publish did not bump the panic counter")
	}

	// Recovery: a clean publish advances the generation.
	st, err := NewStore(testSeries())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if err := svc.TryPublish(st); err != nil {
		t.Fatalf("TryPublish after disarm: %v", err)
	}
	if got := svc.Store().Generation(); got != gen+1 {
		t.Fatalf("generation after recovery = %d, want %d", got, gen+1)
	}
}

// TestServeOverloadShedsMissesNotHits floods a tiny compute budget with
// distinct (uncached) queries and checks the overload contract: some
// requests shed with 503 + Retry-After, nothing crashes or hangs, and
// a pre-primed cached query stays served from cache throughout.
func TestServeOverloadShedsMissesNotHits(t *testing.T) {
	svc, g, ts := newGuardedServer(t, GuardConfig{
		MaxInFlight: 2, MaxQueue: 2, QueueWait: 30 * time.Millisecond,
	})
	defer svc.WaitFills()

	// Prime one query into the cache before the storm.
	primed := ts.URL + "/v1/topk?window=0&k=7"
	if code, _, _ := chaosGet(t, primed); code != http.StatusOK {
		t.Fatal("failed to prime cache")
	}

	// Slow every fresh computation down so the 2-slot budget saturates.
	cancel := fault.Arm(fault.Rule{Point: PointCoalesceLeader, Mode: fault.ModeDelay, Delay: 80 * time.Millisecond})
	defer cancel()

	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	retryOK := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct k per request: no two coalesce, every one is a miss.
			resp, err := http.Get(ts.URL + "/v1/movers?from=0&to=1&k=" + strconv.Itoa(i+1))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryOK[i] = resp.Header.Get("Retry-After") != ""
		}(i)
	}

	// While the storm runs, the primed query must still answer from
	// cache — the hit path bypasses the compute limiter entirely.
	code, hdr, _ := chaosGet(t, primed)
	if code != http.StatusOK {
		t.Fatalf("cached query during overload = %d, want 200", code)
	}
	if hdr.Get("X-Cache") != "hit" {
		t.Fatalf("cached query X-Cache = %q during overload, want hit", hdr.Get("X-Cache"))
	}
	wg.Wait()

	var ok, shed int
	for i, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if !retryOK[i] {
				t.Fatalf("shed response %d missing Retry-After", i)
			}
		case -1:
			t.Fatalf("request %d hit a transport error", i)
		default:
			t.Fatalf("request %d status = %d, want 200 or 503", i, c)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed under %dx overload (ok=%d)", n, ok)
	}
	if ok == 0 {
		t.Fatal("every request shed; admitted work should still complete")
	}
	if g.Shed.Value() < int64(shed) {
		t.Fatalf("Shed counter = %d, want >= %d", g.Shed.Value(), shed)
	}
}

// TestServeRepublishUnderLoad hammers queries while the store is
// republished mid-flight; responses must always be whole documents
// from one generation or a structured error, never a crash. Run with
// -race this doubles as the swap/query race check.
func TestServeRepublishUnderLoad(t *testing.T) {
	svc, _, ts := newGuardedServer(t, GuardConfig{})
	defer svc.WaitFills()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				url := ts.URL + "/v1/topk?window=" + strconv.Itoa(j%3) + "&k=" + strconv.Itoa(i+1)
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("GET during republish: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d during republish: %s", resp.StatusCode, body)
					return
				}
				var doc topkResponse
				if err := json.Unmarshal(body, &doc); err != nil {
					t.Errorf("torn response during republish: %v", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		st, err := NewStore(testSeries())
		if err != nil {
			t.Fatalf("NewStore: %v", err)
		}
		if err := svc.TryPublish(st); err != nil {
			t.Fatalf("TryPublish #%d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestAnswerContextCanceledMapsTo499 checks the client-gone path: a
// request context canceled while the fill runs surfaces as the 499
// convention, not a 500 and not a hang.
func TestAnswerContextCanceledMapsTo499(t *testing.T) {
	svc := newTestService(t)
	svc.Guard = NewGuard(GuardConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	inFill := make(chan struct{})
	finish := make(chan struct{})
	defer close(finish)
	go func() {
		<-inFill
		cancel()
	}()
	_, _, err := svc.answer(ctx, "cck", func(context.Context) ([]byte, error) {
		close(inFill)
		<-finish
		return []byte("late\n"), nil
	})
	mapped := svc.mapQueryError(err)
	var qe *queryError
	if !errors.As(mapped, &qe) || qe.status != statusClientClosedRequest {
		t.Fatalf("canceled request mapped to %v, want 499 queryError", mapped)
	}
}
