package betweenness

import (
	"math"
	"math/rand"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

// naiveBetweenness computes exact undirected betweenness by
// enumerating shortest paths with BFS path counting per ordered pair.
func naiveBetweenness(l *events.Log, ts, te int64) map[int32]float64 {
	adj := make(map[int32]map[int32]bool)
	add := func(a, b int32) {
		if a == b {
			return
		}
		if adj[a] == nil {
			adj[a] = make(map[int32]bool)
		}
		adj[a][b] = true
	}
	seen := make(map[int32]bool)
	for _, e := range l.Slice(ts, te) {
		add(e.U, e.V)
		add(e.V, e.U)
		seen[e.U] = true
		seen[e.V] = true
	}
	out := make(map[int32]float64)
	for v := range seen {
		out[v] = 0
	}
	// For each ordered pair (s, t): count shortest s-t paths and how
	// many pass through each interior vertex; add fraction.
	for s := range seen {
		// BFS with path counts.
		dist := map[int32]int{s: 0}
		sigma := map[int32]float64{s: 1}
		var order []int32
		queue := []int32{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for u := range adj[v] {
				if _, ok := dist[u]; !ok {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
				if dist[u] == dist[v]+1 {
					sigma[u] += sigma[v]
				}
			}
		}
		// Dependency accumulation (Brandes) — independent
		// reimplementation with maps.
		delta := map[int32]float64{}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for v := range adj[w] {
				if dist[v] == dist[w]+1 {
					delta[w] += sigma[w] / sigma[v] * (1 + delta[v])
				}
			}
			if w != s {
				out[w] += delta[w]
			}
		}
	}
	for v := range out {
		out[v] /= 2 // undirected pairs counted from both endpoints
	}
	return out
}

func TestExactMatchesOracle(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := int32(rng.Intn(25) + 3)
		l := randomLog(t, int64(1100+trial), n, rng.Intn(200)+10, 1500)
		spec, err := events.Span(l, int64(rng.Intn(400)+1), int64(rng.Intn(150)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, usePool := range []bool{false, true} {
			p := pool
			if !usePool {
				p = nil
			}
			cfg := DefaultConfig()
			cfg.Directed = true
			cfg.NumMultiWindows = 2
			cfg.KeepScores = true
			eng, err := NewEngine(l, spec, cfg, p)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			s, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for w := 0; w < spec.Count; w++ {
				want := naiveBetweenness(l, spec.Start(w), spec.End(w))
				r := s.Window(w)
				if int(r.ActiveVertices) != len(want) {
					t.Fatalf("trial %d w %d: active %d, oracle %d", trial, w, r.ActiveVertices, len(want))
				}
				for v, c := range want {
					if got := r.Score(v); math.Abs(got-c) > 1e-9 {
						t.Fatalf("trial %d w %d vertex %d: %v, oracle %v", trial, w, v, got, c)
					}
				}
			}
		}
	}
}

func TestStarAndPathValues(t *testing.T) {
	// Star with center 0 and 4 leaves: center betweenness = C(4,2) = 6,
	// leaves 0. Undirected convention: each unordered pair once.
	var evs []events.Event
	for i := int32(1); i <= 4; i++ {
		evs = append(evs, ev(0, i, int64(i)))
	}
	raw, _ := events.NewLog(evs, 5)
	l := raw.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 100, Slide: 100, Count: 1}
	cfg := DefaultConfig()
	cfg.KeepScores = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Window(0)
	if math.Abs(r.Score(0)-6) > 1e-12 {
		t.Fatalf("center betweenness %v, want 6", r.Score(0))
	}
	for v := int32(1); v <= 4; v++ {
		if r.Score(v) != 0 {
			t.Fatalf("leaf %d betweenness %v, want 0", v, r.Score(v))
		}
	}
	if r.Top != 0 {
		t.Fatalf("top = %d, want 0", r.Top)
	}

	// Path 0-1-2-3: B(1) = B(2) = 2 (pairs (0,2),(0,3) resp. (0,3),(1,3)).
	raw2, _ := events.NewLog([]events.Event{ev(0, 1, 0), ev(1, 2, 1), ev(2, 3, 2)}, 4)
	l2 := raw2.Symmetrize()
	eng2, _ := NewEngine(l2, spec, cfg, nil)
	s2, err := eng2.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2 := s2.Window(0)
	if math.Abs(r2.Score(1)-2) > 1e-12 || math.Abs(r2.Score(2)-2) > 1e-12 {
		t.Fatalf("path betweenness = %v, %v; want 2, 2", r2.Score(1), r2.Score(2))
	}
}

func TestSamplingDeterministicAndReasonable(t *testing.T) {
	l := randomLog(t, 1200, 30, 1200, 600)
	spec := events.WindowSpec{T0: 0, Delta: 600, Slide: 700, Count: 1}
	exactCfg := DefaultConfig()
	exactCfg.Directed = true
	exactCfg.KeepScores = true
	ee, _ := NewEngine(l, spec, exactCfg, nil)
	exact, err := ee.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	apxCfg := exactCfg
	apxCfg.SampleSources = 10
	ae, _ := NewEngine(l, spec, apxCfg, nil)
	a1, err := ae.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ae2, _ := NewEngine(l, spec, apxCfg, nil)
	a2, err := ae2.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v := int32(0); v < l.NumVertices(); v++ {
		if a1.Window(0).Score(v) != a2.Window(0).Score(v) {
			t.Fatal("sampling not deterministic")
		}
	}
	// Estimator is unbiased; on a dense single window the top-5 sets
	// should intersect.
	top := func(s *Series) map[int32]bool {
		type pair struct {
			v int32
			c float64
		}
		var ps []pair
		for v := int32(0); v < l.NumVertices(); v++ {
			if c := s.Window(0).Score(v); c > 0 {
				ps = append(ps, pair{v, c})
			}
		}
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if ps[j].c > ps[i].c {
					ps[i], ps[j] = ps[j], ps[i]
				}
			}
		}
		if len(ps) > 5 {
			ps = ps[:5]
		}
		out := map[int32]bool{}
		for _, p := range ps {
			out[p.v] = true
		}
		return out
	}
	te, ta := top(exact), top(a1)
	inter := 0
	for v := range ta {
		if te[v] {
			inter++
		}
	}
	if inter == 0 {
		t.Fatal("sampled top-5 shares nothing with exact top-5")
	}
}

func TestBetweennessValidation(t *testing.T) {
	l := randomLog(t, 1300, 5, 10, 50)
	spec, _ := events.Span(l, 20, 10)
	cfg := DefaultConfig()
	cfg.NumMultiWindows = 0
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("bad NumMultiWindows accepted")
	}
	cfg = DefaultConfig()
	cfg.SampleSources = -2
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("negative SampleSources accepted")
	}
	if _, err := NewEngineFromTemporal(nil, DefaultConfig(), nil); err == nil {
		t.Fatal("nil temporal accepted")
	}
}

func TestEmptyWindowBetweenness(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 1, Slide: 100, Count: 2}
	cfg := DefaultConfig()
	cfg.Directed = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(1).Top != -1 || s.Window(1).ActiveVertices != 0 {
		t.Fatalf("empty window: %+v", s.Window(1))
	}
}
