// Package betweenness computes betweenness centrality on every window
// of a temporal graph, postmortem-style — completing the centrality
// kernels the paper lists for the sliding-window model (Sec. 3.1; the
// streaming counterpart it cites is Green, McColl & Bader's).
//
// Each window runs Brandes' algorithm over the deduplicated undirected
// window view: one BFS + dependency accumulation per source. Exact
// computation uses every active vertex as a source (Theta(V*E) per
// window); SampleSources > 0 uses the standard sampled estimator
// (Bader et al.) scaled by |V_active|/k. As everywhere in this
// repository, windows are processed in parallel on the shared
// work-stealing pool.
package betweenness

import (
	"fmt"
	"math/rand"

	"pmpr/internal/events"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Config controls a betweenness run.
type Config struct {
	// NumMultiWindows partitions the window sequence (see tcsr.Build).
	NumMultiWindows int
	// BalancedPartition splits by event load instead of uniformly.
	BalancedPartition bool
	// Directed controls the representation build; paths always use the
	// undirected view.
	Directed bool
	// Partitioner and Grain configure the window-level loop.
	Partitioner sched.Partitioner
	Grain       int
	// SampleSources > 0 estimates from that many sampled sources per
	// window; 0 computes exactly.
	SampleSources int
	// Seed drives source sampling.
	Seed int64
	// KeepScores retains each window's centrality vector.
	KeepScores bool
}

// DefaultConfig matches the other engines' defaults, with exact
// computation.
func DefaultConfig() Config {
	return Config{NumMultiWindows: 6, Partitioner: sched.Auto, Grain: 2}
}

// WindowResult summarizes one window.
type WindowResult struct {
	Window         int
	ActiveVertices int32
	// Top is the vertex with the highest betweenness (global id), -1
	// for an empty window.
	Top int32
	// TopScore is Top's score (undirected convention: each pair
	// counted once).
	TopScore float64
	// SampledSources is the number of Brandes sources used.
	SampledSources int32

	scores []float64
	mw     *tcsr.MultiWindow
}

// Score returns the (possibly estimated) betweenness of the global
// vertex, or -1 when inactive or scores were not kept.
func (r *WindowResult) Score(global int32) float64 {
	if r.scores == nil {
		return -1
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return -1
	}
	return r.scores[local]
}

// Series is the per-window sequence.
type Series struct {
	Spec    events.WindowSpec
	Results []WindowResult
}

// Window returns the result for window i.
func (s *Series) Window(i int) *WindowResult { return &s.Results[i] }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Results) }

// Engine computes the series.
type Engine struct {
	tg   *tcsr.Temporal
	cfg  Config
	pool *sched.Pool
}

// NewEngine builds the temporal representation for l under spec.
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	if cfg.NumMultiWindows < 1 {
		return nil, fmt.Errorf("betweenness: NumMultiWindows %d must be >= 1", cfg.NumMultiWindows)
	}
	if cfg.SampleSources < 0 {
		return nil, fmt.Errorf("betweenness: SampleSources %d must be >= 0", cfg.SampleSources)
	}
	build := tcsr.Build
	if cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	tg, err := build(l, spec, cfg.NumMultiWindows, cfg.Directed)
	if err != nil {
		return nil, err
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// NewEngineFromTemporal reuses an existing representation.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if tg == nil {
		return nil, fmt.Errorf("betweenness: nil temporal representation")
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// Temporal exposes the representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.tg }

// Run computes betweenness for every window; windows run in parallel on
// the pool, serially with a nil pool.
func (e *Engine) Run() (*Series, error) {
	count := e.tg.Spec.Count
	results := make([]WindowResult, count)
	body := func(lo, hi int) {
		var view tcsr.WindowView
		var br brandes
		for w := lo; w < hi; w++ {
			results[w] = e.solveWindow(w, &view, &br)
		}
	}
	if e.pool == nil {
		body(0, count)
	} else {
		grain := e.cfg.Grain
		if grain < 1 {
			grain = 1
		}
		e.pool.ParallelFor(count, grain, e.cfg.Partitioner, func(_ *sched.Worker, lo, hi int) {
			body(lo, hi)
		})
	}
	return &Series{Spec: e.tg.Spec, Results: results}, nil
}

func (e *Engine) solveWindow(w int, view *tcsr.WindowView, br *brandes) WindowResult {
	mw := e.tg.ForWindow(w)
	mw.Materialize(w, view)
	n := int(mw.NumLocal())
	res := WindowResult{Window: w, ActiveVertices: view.NumActive, Top: -1, mw: mw}
	if view.NumActive == 0 {
		if e.cfg.KeepScores {
			res.scores = make([]float64, n)
			for v := range res.scores {
				res.scores[v] = -1
			}
		}
		return res
	}
	var sources []int32
	actives := make([]int32, 0, view.NumActive)
	for v := 0; v < n; v++ {
		if view.Active[v] {
			actives = append(actives, int32(v))
		}
	}
	exact := e.cfg.SampleSources == 0 || e.cfg.SampleSources >= len(actives)
	if exact {
		sources = actives
	} else {
		rng := rand.New(rand.NewSource(e.cfg.Seed ^ int64(w)*0x5851F42D4C957F2))
		rng.Shuffle(len(actives), func(i, j int) { actives[i], actives[j] = actives[j], actives[i] })
		sources = actives[:e.cfg.SampleSources]
	}
	res.SampledSources = int32(len(sources))

	scores := make([]float64, n)
	for _, s := range sources {
		br.accumulate(view, s, scores)
	}
	// Undirected convention: every pair is discovered from both
	// endpoints in an exact run, so halve; sampled runs scale instead.
	if exact {
		for v := range scores {
			scores[v] /= 2
		}
	} else {
		scale := float64(len(actives)) / float64(len(sources)) / 2
		for v := range scores {
			scores[v] *= scale
		}
	}
	for v := 0; v < n; v++ {
		if view.Active[v] && scores[v] > res.TopScore {
			res.TopScore = scores[v]
			res.Top = mw.GlobalID(int32(v))
		}
	}
	if e.cfg.KeepScores {
		for v := 0; v < n; v++ {
			if !view.Active[v] {
				scores[v] = -1
			}
		}
		res.scores = scores
	}
	return res
}

// brandes holds the reusable per-source state of Brandes' algorithm.
type brandes struct {
	dist  []int32
	sigma []float64
	delta []float64
	stack []int32
	preds [][]int32
}

// accumulate runs one Brandes source iteration, adding the dependency
// of every vertex on s into acc.
func (b *brandes) accumulate(view *tcsr.WindowView, s int32, acc []float64) {
	n := len(view.Active)
	if cap(b.dist) < n {
		b.dist = make([]int32, n)
		b.sigma = make([]float64, n)
		b.delta = make([]float64, n)
		b.stack = make([]int32, 0, n)
		b.preds = make([][]int32, n)
	}
	b.dist = b.dist[:n]
	b.sigma = b.sigma[:n]
	b.delta = b.delta[:n]
	b.preds = b.preds[:n]
	for v := 0; v < n; v++ {
		b.dist[v] = -1
		b.sigma[v] = 0
		b.delta[v] = 0
		b.preds[v] = b.preds[v][:0]
	}
	b.stack = b.stack[:0]

	b.dist[s] = 0
	b.sigma[s] = 1
	queue := []int32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		b.stack = append(b.stack, v)
		for _, u := range view.Col[view.Row[v]:view.Row[v+1]] {
			if u == v {
				continue // self-loops carry no shortest paths
			}
			if b.dist[u] < 0 {
				b.dist[u] = b.dist[v] + 1
				queue = append(queue, u)
			}
			if b.dist[u] == b.dist[v]+1 {
				b.sigma[u] += b.sigma[v]
				b.preds[u] = append(b.preds[u], v)
			}
		}
	}
	for i := len(b.stack) - 1; i >= 0; i-- {
		v := b.stack[i]
		for _, p := range b.preds[v] {
			b.delta[p] += b.sigma[p] / b.sigma[v] * (1 + b.delta[v])
		}
		if v != s {
			acc[v] += b.delta[v]
		}
	}
}
