package kcore

import (
	"math/rand"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/sched"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

func randomLog(t *testing.T, seed int64, n int32, m int, span int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	l, err := events.NewLog(evs, n)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

// naiveCoreness computes coreness of the undirected deduplicated window
// graph by repeated minimum-degree removal.
func naiveCoreness(l *events.Log, ts, te int64) map[int32]int32 {
	adj := make(map[int32]map[int32]bool)
	add := func(a, b int32) {
		if adj[a] == nil {
			adj[a] = make(map[int32]bool)
		}
		adj[a][b] = true
	}
	for _, e := range l.Slice(ts, te) {
		add(e.U, e.V)
		add(e.V, e.U)
	}
	core := make(map[int32]int32)
	k := int32(0)
	for len(adj) > 0 {
		// Remove all vertices with degree <= k until none remain, then
		// increase k.
		removedAny := true
		for removedAny {
			removedAny = false
			for v, ns := range adj {
				if int32(len(ns)) <= k {
					core[v] = k
					for u := range ns {
						delete(adj[u], v)
						if len(adj[u]) == 0 && u != v {
							core[u] = k
							delete(adj, u)
						}
					}
					delete(adj, v)
					removedAny = true
				}
			}
		}
		k++
	}
	return core
}

func TestCorenessMatchesOracle(t *testing.T) {
	pool := sched.NewPool(3)
	defer pool.Close()
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		n := int32(rng.Intn(35) + 3)
		l := randomLog(t, int64(600+trial), n, rng.Intn(400)+10, 2000)
		spec, err := events.Span(l, int64(rng.Intn(400)+1), int64(rng.Intn(150)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, usePool := range []bool{false, true} {
			p := pool
			if !usePool {
				p = nil
			}
			cfg := DefaultConfig()
			cfg.Directed = true
			cfg.NumMultiWindows = 3
			cfg.KeepCoreness = true
			eng, err := NewEngine(l, spec, cfg, p)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			s, err := eng.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for w := 0; w < spec.Count; w++ {
				want := naiveCoreness(l, spec.Start(w), spec.End(w))
				r := s.Window(w)
				if int(r.ActiveVertices) != len(want) {
					t.Fatalf("trial %d w %d: active %d, oracle %d", trial, w, r.ActiveVertices, len(want))
				}
				var wantMax, wantMaxSize int32
				for _, c := range want {
					switch {
					case c > wantMax:
						wantMax = c
						wantMaxSize = 1
					case c == wantMax:
						wantMaxSize++
					}
				}
				if r.MaxCore != wantMax || r.MaxCoreSize != wantMaxSize {
					t.Fatalf("trial %d w %d: max core %d(size %d), oracle %d(size %d)",
						trial, w, r.MaxCore, r.MaxCoreSize, wantMax, wantMaxSize)
				}
				for v, c := range want {
					if got := r.Coreness(v); got != c {
						t.Fatalf("trial %d w %d vertex %d: coreness %d, oracle %d", trial, w, v, got, c)
					}
				}
			}
		}
	}
}

func TestKnownStructures(t *testing.T) {
	// A 4-clique plus a pendant vertex: clique coreness 3, pendant 1.
	var evs []events.Event
	tcur := int64(0)
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			tcur++
			evs = append(evs, ev(i, j, tcur))
		}
	}
	tcur++
	evs = append(evs, ev(0, 4, tcur))
	raw, _ := events.NewLog(evs, 5)
	l := raw.Symmetrize() // Directed=false expects a symmetrized log
	spec := events.WindowSpec{T0: 0, Delta: 100, Slide: 100, Count: 1}
	cfg := DefaultConfig()
	cfg.KeepCoreness = true
	eng, _ := NewEngine(l, spec, cfg, nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r := s.Window(0)
	if r.MaxCore != 3 || r.MaxCoreSize != 4 {
		t.Fatalf("clique core: max %d size %d", r.MaxCore, r.MaxCoreSize)
	}
	for v := int32(0); v < 4; v++ {
		if r.Coreness(v) != 3 {
			t.Fatalf("clique vertex %d coreness %d", v, r.Coreness(v))
		}
	}
	if r.Coreness(4) != 1 {
		t.Fatalf("pendant coreness %d", r.Coreness(4))
	}
}

func TestCorePeelingOverTime(t *testing.T) {
	// A triangle exists only in the first window; later only a path
	// remains: max core drops from 2 to 1.
	evs := []events.Event{
		ev(0, 1, 0), ev(1, 2, 1), ev(2, 0, 2), // triangle at t=0..2
		ev(0, 1, 100), ev(1, 2, 101), // path at t=100..101
	}
	raw, _ := events.NewLog(evs, 3)
	l := raw.Symmetrize()
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 100, Count: 2}
	eng, _ := NewEngine(l, spec, DefaultConfig(), nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).MaxCore != 2 {
		t.Fatalf("window 0 max core %d, want 2", s.Window(0).MaxCore)
	}
	if s.Window(1).MaxCore != 1 {
		t.Fatalf("window 1 max core %d, want 1", s.Window(1).MaxCore)
	}
}

func TestCorenessNotKeptByDefault(t *testing.T) {
	l := randomLog(t, 700, 10, 50, 200)
	spec, _ := events.Span(l, 100, 50)
	eng, _ := NewEngine(l, spec, DefaultConfig(), nil)
	s, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Window(0).Coreness(0) != -1 {
		t.Fatal("coreness should be absent without KeepCoreness")
	}
}

func TestKcoreValidation(t *testing.T) {
	l := randomLog(t, 701, 5, 10, 50)
	spec, _ := events.Span(l, 20, 10)
	cfg := DefaultConfig()
	cfg.NumMultiWindows = -1
	if _, err := NewEngine(l, spec, cfg, nil); err == nil {
		t.Fatal("bad NumMultiWindows accepted")
	}
	if _, err := NewEngineFromTemporal(nil, DefaultConfig(), nil); err == nil {
		t.Fatal("nil temporal accepted")
	}
}
