// Package kcore computes the k-core decomposition of every window of a
// temporal graph, postmortem-style — another of the analyses the paper
// lists for the sliding-window model (Sec. 3.1; cf. Gabert et al.'s
// postmortem dense-region analysis cited there). It reuses the
// multi-window temporal CSR and window-level parallelism.
//
// Each window is solved with the classic linear-time peeling algorithm
// (Batagelj–Zaveršnik bucket ordering) over the deduplicated undirected
// window view.
package kcore

import (
	"fmt"

	"pmpr/internal/events"
	"pmpr/internal/sched"
	"pmpr/internal/tcsr"
)

// Config controls a k-core run.
type Config struct {
	// NumMultiWindows partitions the window sequence (see tcsr.Build).
	NumMultiWindows int
	// BalancedPartition splits by event load instead of uniformly.
	BalancedPartition bool
	// Directed controls the representation build; coreness always uses
	// the undirected view.
	Directed bool
	// Partitioner and Grain configure the window-level loop.
	Partitioner sched.Partitioner
	Grain       int
	// KeepCoreness retains each window's full coreness vector.
	KeepCoreness bool
}

// DefaultConfig mirrors the PageRank engine's defaults.
func DefaultConfig() Config {
	return Config{NumMultiWindows: 6, Partitioner: sched.Auto, Grain: 2}
}

// WindowResult summarizes one window's core structure.
type WindowResult struct {
	Window         int
	ActiveVertices int32
	// MaxCore is the degeneracy of the window graph.
	MaxCore int32
	// MaxCoreSize is the number of vertices in the innermost core.
	MaxCoreSize int32

	coreness []int32 // per-local-vertex coreness, -1 inactive
	mw       *tcsr.MultiWindow
}

// Coreness returns the coreness of the global vertex in this window, or
// -1 when inactive or not kept.
func (r *WindowResult) Coreness(global int32) int32 {
	if r.coreness == nil {
		return -1
	}
	local := r.mw.LocalID(global)
	if local < 0 {
		return -1
	}
	return r.coreness[local]
}

// Series is the per-window core summary sequence.
type Series struct {
	Spec    events.WindowSpec
	Results []WindowResult
}

// Window returns the result for window i.
func (s *Series) Window(i int) *WindowResult { return &s.Results[i] }

// Len returns the number of windows.
func (s *Series) Len() int { return len(s.Results) }

// Engine computes the series.
type Engine struct {
	tg   *tcsr.Temporal
	cfg  Config
	pool *sched.Pool
}

// NewEngine builds the temporal representation for l under spec.
func NewEngine(l *events.Log, spec events.WindowSpec, cfg Config, pool *sched.Pool) (*Engine, error) {
	if cfg.NumMultiWindows < 1 {
		return nil, fmt.Errorf("kcore: NumMultiWindows %d must be >= 1", cfg.NumMultiWindows)
	}
	build := tcsr.Build
	if cfg.BalancedPartition {
		build = tcsr.BuildBalanced
	}
	tg, err := build(l, spec, cfg.NumMultiWindows, cfg.Directed)
	if err != nil {
		return nil, err
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// NewEngineFromTemporal reuses an existing representation.
func NewEngineFromTemporal(tg *tcsr.Temporal, cfg Config, pool *sched.Pool) (*Engine, error) {
	if tg == nil {
		return nil, fmt.Errorf("kcore: nil temporal representation")
	}
	return &Engine{tg: tg, cfg: cfg, pool: pool}, nil
}

// Temporal exposes the representation.
func (e *Engine) Temporal() *tcsr.Temporal { return e.tg }

// Run computes the decomposition for every window; windows run in
// parallel on the pool, serially with a nil pool.
func (e *Engine) Run() (*Series, error) {
	count := e.tg.Spec.Count
	results := make([]WindowResult, count)
	body := func(lo, hi int) {
		var view tcsr.WindowView
		var p peeler
		for w := lo; w < hi; w++ {
			results[w] = e.solveWindow(w, &view, &p)
		}
	}
	if e.pool == nil {
		body(0, count)
	} else {
		grain := e.cfg.Grain
		if grain < 1 {
			grain = 1
		}
		e.pool.ParallelFor(count, grain, e.cfg.Partitioner, func(_ *sched.Worker, lo, hi int) {
			body(lo, hi)
		})
	}
	return &Series{Spec: e.tg.Spec, Results: results}, nil
}

func (e *Engine) solveWindow(w int, view *tcsr.WindowView, p *peeler) WindowResult {
	mw := e.tg.ForWindow(w)
	mw.Materialize(w, view)
	res := WindowResult{Window: w, ActiveVertices: view.NumActive, mw: mw}
	core := p.run(view)
	var maxCore, maxSize int32
	for v := range core {
		if !view.Active[v] {
			continue
		}
		switch {
		case core[v] > maxCore:
			maxCore = core[v]
			maxSize = 1
		case core[v] == maxCore:
			maxSize++
		}
	}
	res.MaxCore = maxCore
	res.MaxCoreSize = maxSize
	if e.cfg.KeepCoreness {
		res.coreness = make([]int32, len(core))
		copy(res.coreness, core)
	}
	return res
}

// peeler implements Batagelj–Zaveršnik peeling with reusable buffers.
type peeler struct {
	deg   []int32
	core  []int32
	pos   []int32 // position of vertex in order
	order []int32 // vertices sorted by current degree
	bin   []int32 // start index of each degree bucket in order
}

// run computes coreness per local vertex (-1 for inactive vertices).
func (p *peeler) run(view *tcsr.WindowView) []int32 {
	n := len(view.Active)
	if cap(p.deg) < n {
		p.deg = make([]int32, n)
		p.core = make([]int32, n)
		p.pos = make([]int32, n)
		p.order = make([]int32, n)
	}
	p.deg = p.deg[:n]
	p.core = p.core[:n]
	p.pos = p.pos[:n]
	p.order = p.order[:n]

	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		d := int32(view.Row[v+1] - view.Row[v])
		p.deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	if cap(p.bin) < int(maxDeg)+2 {
		p.bin = make([]int32, maxDeg+2)
	}
	p.bin = p.bin[:maxDeg+2]
	for i := range p.bin {
		p.bin[i] = 0
	}
	for v := 0; v < n; v++ {
		p.bin[p.deg[v]+1]++
	}
	for d := int32(1); d < int32(len(p.bin)); d++ {
		p.bin[d] += p.bin[d-1]
	}
	// bin[d] = first index of degree-d vertices in order.
	next := make([]int32, len(p.bin))
	copy(next, p.bin)
	for v := 0; v < n; v++ {
		p.pos[v] = next[p.deg[v]]
		p.order[p.pos[v]] = int32(v)
		next[p.deg[v]]++
	}

	for i := 0; i < n; i++ {
		v := p.order[i]
		p.core[v] = p.deg[v]
		for _, u := range view.Col[view.Row[v]:view.Row[v+1]] {
			if p.deg[u] > p.deg[v] {
				// Move u one bucket down: swap with the first vertex of
				// its bucket, then shrink the bucket.
				du := p.deg[u]
				pu := p.pos[u]
				pw := p.bin[du]
				wv := p.order[pw]
				if u != wv {
					p.order[pu], p.order[pw] = wv, u
					p.pos[u], p.pos[wv] = pw, pu
				}
				p.bin[du]++
				p.deg[u]--
			}
		}
	}
	for v := 0; v < n; v++ {
		if !view.Active[v] {
			p.core[v] = -1
		}
	}
	return p.core
}
