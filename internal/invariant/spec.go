package invariant

import (
	"pmpr/internal/events"
)

// CheckWindowSpec validates the sliding-window arithmetic (Sec. 2.1):
// parameter validity, Start/End/Interval agreement, monotone window
// starts, and the Covering closed form the SpMM kernel relies on —
// every window Covering reports must Contain the timestamp and the
// windows just outside the reported range must not.
func CheckWindowSpec(spec events.WindowSpec) error {
	var v violations
	if err := spec.Validate(); err != nil {
		return err
	}
	for _, i := range sampleWindows(spec.Count) {
		ts, te := spec.Interval(i)
		if ts != spec.Start(i) || te != spec.End(i) {
			v.addf("invariant: window %d Interval (%d,%d) disagrees with Start/End (%d,%d)",
				i, ts, te, spec.Start(i), spec.End(i))
		}
		if te != ts+spec.Delta {
			v.addf("invariant: window %d end %d != start %d + delta %d", i, te, ts, spec.Delta)
		}
		if i > 0 && spec.Start(i) != spec.Start(i-1)+spec.Slide {
			v.addf("invariant: window %d start %d != previous start + slide", i, spec.Start(i))
		}
		// Covering must round-trip the window's own boundary timestamps.
		for _, t := range []int64{ts, te} {
			lo, hi, ok := spec.Covering(t)
			if !ok || i < lo || i > hi {
				v.addf("invariant: Covering(%d) = [%d,%d] ok=%v misses window %d which contains it",
					t, lo, hi, ok, i)
			}
		}
	}
	if spec.SpanEnd() != spec.End(spec.Count-1) {
		v.addf("invariant: SpanEnd %d != End(Count-1) %d", spec.SpanEnd(), spec.End(spec.Count-1))
	}
	return v.err()
}

// CheckCoveringAt validates the Covering closed form for one timestamp:
// the reported closed range [lo, hi] contains exactly the windows whose
// interval contains t (verified at the range boundaries and just
// outside them).
func CheckCoveringAt(spec events.WindowSpec, t int64) error {
	var v violations
	lo, hi, ok := spec.Covering(t)
	if !ok {
		// No covering window: t must lie outside every window sampled
		// around the point where it would fall.
		for i := 0; i < spec.Count; i++ {
			if spec.Contains(i, t) {
				v.addf("invariant: Covering(%d) reports no window but window %d contains it", t, i)
				break
			}
		}
		return v.err()
	}
	if lo < 0 || hi >= spec.Count || lo > hi {
		v.addf("invariant: Covering(%d) returned malformed range [%d,%d]", t, lo, hi)
		return v.err()
	}
	for _, i := range []int{lo, hi} {
		if !spec.Contains(i, t) {
			v.addf("invariant: window %d reported by Covering(%d) does not contain it", i, t)
		}
	}
	if lo > 0 && spec.Contains(lo-1, t) {
		v.addf("invariant: window %d contains %d but Covering starts at %d", lo-1, t, lo)
	}
	if hi+1 < spec.Count && spec.Contains(hi+1, t) {
		v.addf("invariant: window %d contains %d but Covering ends at %d", hi+1, t, hi)
	}
	return v.err()
}

// sampleWindows returns the window indices the spec checks visit: all
// of a small sequence, the ends and middle of a large one.
func sampleWindows(count int) []int {
	if count <= 64 {
		out := make([]int, count)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return []int{0, 1, count / 2, count - 2, count - 1}
}
