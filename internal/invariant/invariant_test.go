package invariant_test

import (
	"strings"
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/invariant"
	"pmpr/internal/tcsr"
)

func testLog(t *testing.T) *events.Log {
	t.Helper()
	evs := []events.Event{
		{U: 0, V: 1, T: 0},
		{U: 1, V: 2, T: 3},
		{U: 2, V: 3, T: 5},
		{U: 0, V: 1, T: 7},
		{U: 3, V: 4, T: 9},
		{U: 4, V: 0, T: 12},
		{U: 1, V: 3, T: 15},
		{U: 2, V: 4, T: 18},
	}
	l, err := events.NewLog(evs, 5)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

func testTemporal(t *testing.T, directed bool) (*tcsr.Temporal, *events.Log) {
	t.Helper()
	l := testLog(t)
	if !directed {
		l = l.Symmetrize()
	}
	spec := events.WindowSpec{T0: 0, Delta: 6, Slide: 4, Count: 4}
	tg, err := tcsr.Build(l, spec, 2, directed)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tg, l
}

func TestCheckTemporalClean(t *testing.T) {
	for _, directed := range []bool{true, false} {
		tg, l := testTemporal(t, directed)
		if err := invariant.CheckTemporal(tg); err != nil {
			t.Errorf("directed=%v CheckTemporal: %v", directed, err)
		}
		if err := invariant.CheckCoverage(tg, l); err != nil {
			t.Errorf("directed=%v CheckCoverage: %v", directed, err)
		}
	}
}

// TestCheckMultiWindowCorrupted is the acceptance-criterion test: a
// deliberately corrupted TCSR — swapped row-pointer entries — must be
// caught by the validators.
func TestCheckMultiWindowCorrupted(t *testing.T) {
	tg, _ := testTemporal(t, true)
	mw := tg.MWs[0]
	// Find a vertex with a non-empty row so the swap actually breaks
	// monotonicity, then swap adjacent row-pointer entries.
	var u int32 = -1
	for v := int32(0); v < mw.NumLocal(); v++ {
		if mw.InRow[v+1] > mw.InRow[v] {
			u = v
			break
		}
	}
	if u < 0 {
		t.Fatal("fixture has no non-empty in-row")
	}
	mw.InRow[u], mw.InRow[u+1] = mw.InRow[u+1], mw.InRow[u]
	err := invariant.CheckMultiWindow(mw, tg.Directed)
	if err == nil {
		t.Fatal("swapped row pointers not detected")
	}
	if !strings.Contains(err.Error(), "row pointers decrease") {
		t.Errorf("unexpected violation message: %v", err)
	}
	if err := invariant.CheckTemporal(tg); err == nil {
		t.Error("CheckTemporal should surface the corrupted multi-window")
	}
}

func TestCheckMultiWindowCorruptions(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(mw *tcsr.MultiWindow)
		want    string
	}{
		{
			name: "column out of range",
			corrupt: func(mw *tcsr.MultiWindow) {
				mw.OutCol[0] = mw.NumLocal()
			},
			want: "outside local range",
		},
		{
			name: "descending run timestamps",
			corrupt: func(mw *tcsr.MultiWindow) {
				// Make the first row's entries one descending run.
				for i := mw.OutRow[0]; i < mw.OutRow[1]; i++ {
					mw.OutCol[i] = 0
					mw.OutTime[i] = -i
				}
			},
			want: "descending timestamps",
		},
		{
			name: "unsorted neighbors",
			corrupt: func(mw *tcsr.MultiWindow) {
				lo := mw.OutRow[0]
				if mw.OutRow[1]-lo < 2 {
					mw.OutRow[1] = lo + 2
					mw.OutRow[mw.NumLocal()] = int64(len(mw.OutCol))
				}
				mw.OutCol[lo], mw.OutCol[lo+1] = 2, 1
			},
			want: "not sorted by neighbor",
		},
		{
			name: "broken relabel table",
			corrupt: func(mw *tcsr.MultiWindow) {
				ids := mw.GlobalIDs()
				ids[0], ids[1] = ids[1], ids[0]
			},
			want: "ascending",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tg, _ := testTemporal(t, true)
			mw := tg.MWs[0]
			if mw.OutRow[1]-mw.OutRow[0] == 0 || mw.NumLocal() < 3 {
				t.Fatal("fixture too small for corruption cases")
			}
			tc.corrupt(mw)
			err := invariant.CheckMultiWindow(mw, true)
			if err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("violation %v does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckCoverageDetectsMissingEvents(t *testing.T) {
	tg, l := testTemporal(t, true)
	// Retime a stored event so the (neighbor, time) entry no longer
	// matches the log.
	mw := tg.MWs[0]
	mw.OutTime[0] += 1000
	if err := invariant.CheckCoverage(tg, l); err == nil {
		t.Error("retimed stored event not detected")
	}
}

func TestCheckWindowSpec(t *testing.T) {
	specs := []events.WindowSpec{
		{T0: 0, Delta: 6, Slide: 4, Count: 4},
		{T0: -10, Delta: 3, Slide: 7, Count: 9}, // gaps: Slide > Delta
		{T0: 5, Delta: 0, Slide: 1, Count: 100}, // point windows, large count
	}
	for _, spec := range specs {
		if err := invariant.CheckWindowSpec(spec); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
	if err := invariant.CheckWindowSpec(events.WindowSpec{Delta: 1, Slide: 0, Count: 1}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestCheckCoveringAt(t *testing.T) {
	spec := events.WindowSpec{T0: 0, Delta: 3, Slide: 7, Count: 5}
	// Sweep across covered timestamps, gap timestamps, and both
	// out-of-span sides.
	for t64 := int64(-5); t64 < spec.SpanEnd()+5; t64++ {
		if err := invariant.CheckCoveringAt(spec, t64); err != nil {
			t.Errorf("t=%d: %v", t64, err)
		}
	}
}

func TestCheckRanks(t *testing.T) {
	cases := []struct {
		name   string
		ranks  []float64
		active int32
		ok     bool
	}{
		{"uniform", []float64{0.25, 0.25, 0.25, 0.25}, 4, true},
		{"inactive zeros", []float64{0.5, 0, 0.5, 0}, 2, true},
		{"within tol", []float64{0.5 + 4e-9, 0.5}, 2, true},
		{"empty window", []float64{0, 0, 0}, 0, true},
		{"mass deficit", []float64{0.2, 0.2}, 2, false},
		{"negative entry", []float64{1.2, -0.2}, 2, false},
		{"wrong active count", []float64{1, 0, 0}, 3, false},
		{"empty window with mass", []float64{0.1, 0}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckRanks(tc.ranks, tc.active, 0)
			if tc.ok && err != nil {
				t.Errorf("unexpected violation: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("violation not detected")
			}
		})
	}
	nan := []float64{0.5, 0.5}
	nan[0] /= 0 // +Inf, then non-finite check must fire
	if err := invariant.CheckRanks(nan, 2, 0); err == nil {
		t.Error("non-finite rank not detected")
	}
}

func TestViolationTruncation(t *testing.T) {
	// A thoroughly corrupt vector trips the per-check violation cap
	// instead of reporting thousands of lines.
	ranks := make([]float64, 100)
	for i := range ranks {
		ranks[i] = -1
	}
	err := invariant.CheckRanks(ranks, 100, 0)
	if err == nil {
		t.Fatal("corrupt vector not detected")
	}
	if n := strings.Count(err.Error(), "\n"); n > 12 {
		t.Errorf("violation report not truncated: %d lines", n)
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Error("truncation not announced")
	}
}
