// Package invariant implements runtime structural validators for the
// postmortem representation and its outputs. The paper's speedups rest
// on shared-structure tricks — temporal CSR with local vertex
// relabeling (Sec. 4.1, Fig. 3), warm-started vectors (Sec. 4.2,
// Eq. 4), and SpMM sweeps that advance many windows through one
// multi-window graph (Sec. 4.4) — exactly the kind of layout where a
// silent indexing or aliasing bug produces plausible-but-wrong ranks.
// These validators are callable from tests, fuzz targets, and the
// opt-in core.Config.Validate engine hook; see DESIGN.md for the
// catalog mapping each check to the paper section it protects.
package invariant

import (
	"errors"
	"fmt"
	"math"
)

// DefaultRankTol is the tolerance used for the rank-vector
// stochasticity check: the mass-preserving update accumulates only
// rounding error, so a generous absolute budget suffices.
const DefaultRankTol = 1e-8

// maxViolations bounds how many violations a single check reports; a
// corrupt structure usually violates everything at once.
const maxViolations = 8

// violations accumulates check failures up to maxViolations.
type violations struct {
	errs      []error
	truncated bool
}

func (v *violations) addf(format string, args ...interface{}) {
	if len(v.errs) >= maxViolations {
		v.truncated = true
		return
	}
	v.errs = append(v.errs, fmt.Errorf(format, args...))
}

func (v *violations) err() error {
	if len(v.errs) == 0 {
		return nil
	}
	if v.truncated {
		v.errs = append(v.errs, errors.New("invariant: further violations truncated"))
	}
	return errors.Join(v.errs...)
}

// CheckRanks validates a solved PageRank vector over a window's local
// vertex set: every entry finite and non-negative, exactly zero mass
// when the window is empty, and otherwise exactly active positive
// entries summing to 1 within tol (the kernels' update is
// mass-preserving, Sec. 4.2). tol <= 0 selects DefaultRankTol.
func CheckRanks(ranks []float64, active int32, tol float64) error {
	if tol <= 0 {
		tol = DefaultRankTol
	}
	var v violations
	var sum float64
	var positive int32
	for i, r := range ranks {
		switch {
		case math.IsNaN(r) || math.IsInf(r, 0):
			v.addf("invariant: rank[%d] = %v is not finite", i, r)
		case r < 0:
			v.addf("invariant: rank[%d] = %v is negative", i, r)
		case r > 0:
			positive++
		}
		sum += r
	}
	if active == 0 {
		if sum != 0 {
			v.addf("invariant: empty window carries rank mass %v", sum)
		}
		return v.err()
	}
	if positive != active {
		v.addf("invariant: %d positive ranks for %d active vertices", positive, active)
	}
	if d := math.Abs(sum - 1); d > tol {
		v.addf("invariant: rank mass %v deviates from 1 by %v (tol %v)", sum, d, tol)
	}
	return v.err()
}
