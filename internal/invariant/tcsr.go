package invariant

import (
	"pmpr/internal/events"
	"pmpr/internal/tcsr"
)

// CheckMultiWindow validates the temporal CSR structure of one
// multi-window graph (Sec. 4.1, Fig. 3): row-pointer monotonicity and
// bounds on both adjacency sides, per-row run ordering by
// (neighbor, time), aliasing of the two sides for undirected builds,
// and the local-relabel bijection (ascending global ids mapping back to
// their local slots).
func CheckMultiWindow(mw *tcsr.MultiWindow, directed bool) error {
	var v violations
	n := int(mw.NumLocal())

	if mw.WinLo < 0 || mw.WinHi <= mw.WinLo {
		v.addf("invariant: window range [%d,%d) is empty or negative", mw.WinLo, mw.WinHi)
	}
	checkSide(&v, "out", mw.OutRow, mw.OutCol, mw.OutTime, n)
	if directed {
		checkSide(&v, "in", mw.InRow, mw.InCol, mw.InTime, n)
	} else if n > 0 && len(mw.OutCol) > 0 && !mw.OutColAliased() {
		v.addf("invariant: undirected build does not alias the in and out views")
	}
	if mw.NumEvents() != len(mw.OutCol) {
		v.addf("invariant: NumEvents %d != stored out entries %d", mw.NumEvents(), len(mw.OutCol))
	}

	// Local relabeling (Sec. 4.1): globalID must be strictly ascending
	// (partial initialization across consecutive windows depends on the
	// id-aligned order) and LocalID must be its exact inverse.
	ids := mw.GlobalIDs()
	if len(ids) != n {
		v.addf("invariant: %d global ids for %d local vertices", len(ids), n)
	}
	for i, g := range ids {
		if g < 0 {
			v.addf("invariant: negative global id %d at local %d", g, i)
		}
		if i > 0 && ids[i-1] >= g {
			v.addf("invariant: global ids not strictly ascending at local %d (%d >= %d)", i, ids[i-1], g)
		}
		if got := mw.LocalID(g); got != int32(i) {
			v.addf("invariant: LocalID(%d) = %d, want %d (relabel not a bijection)", g, got, i)
		}
	}
	// Spot-check that ids absent from the table resolve to -1.
	if n > 0 {
		for _, g := range []int32{ids[0] - 1, ids[n-1] + 1} {
			if g >= 0 && mw.LocalID(g) != -1 {
				v.addf("invariant: LocalID(%d) = %d for a vertex outside the local set", g, mw.LocalID(g))
			}
		}
	}
	return v.err()
}

// checkSide validates one CSR side: row pointers cover [0, len(col)]
// monotonically, columns stay in-range, and every adjacency run is
// sorted by (neighbor, time) — the layout RunActive's early-exit scan
// and the kernels' run grouping assume.
func checkSide(v *violations, side string, row []int64, col []int32, tim []int64, n int) {
	if len(row) != n+1 {
		v.addf("invariant: %s row pointer length %d, want %d", side, len(row), n+1)
		return
	}
	if len(col) != len(tim) {
		v.addf("invariant: %s col/time length mismatch %d != %d", side, len(col), len(tim))
		return
	}
	if n == 0 {
		return
	}
	if row[0] != 0 {
		v.addf("invariant: %s row[0] = %d, want 0", side, row[0])
	}
	if row[n] != int64(len(col)) {
		v.addf("invariant: %s row[%d] = %d, want %d entries", side, n, row[n], len(col))
	}
	for u := 0; u < n; u++ {
		lo, hi := row[u], row[u+1]
		if lo > hi {
			v.addf("invariant: %s row pointers decrease at vertex %d (%d > %d)", side, u, lo, hi)
			return
		}
		if lo < 0 || hi > int64(len(col)) {
			v.addf("invariant: %s row %d range [%d,%d) out of bounds", side, u, lo, hi)
			return
		}
		for i := lo; i < hi; i++ {
			if c := col[i]; c < 0 || int(c) >= n {
				v.addf("invariant: %s col[%d] = %d outside local range [0,%d)", side, i, c, n)
			}
			if i > lo {
				if col[i-1] > col[i] {
					v.addf("invariant: %s row %d not sorted by neighbor at entry %d", side, u, i)
				} else if col[i-1] == col[i] && tim[i-1] > tim[i] {
					v.addf("invariant: %s row %d run %d has descending timestamps at entry %d",
						side, u, col[i], i)
				}
			}
		}
	}
}

// CheckTemporal validates the whole postmortem representation: the
// multi-window graphs partition the window sequence exactly, ForWindow
// resolves every window into its covering graph, every local vertex
// maps into the global universe, and each graph passes CheckMultiWindow.
func CheckTemporal(tg *tcsr.Temporal) error {
	var v violations
	if err := tg.Spec.Validate(); err != nil {
		return err
	}
	if len(tg.MWs) == 0 {
		v.addf("invariant: representation holds no multi-window graphs")
		return v.err()
	}
	// The graphs tile [0, Count) contiguously, in window order.
	if tg.MWs[0].WinLo != 0 {
		v.addf("invariant: first multi-window starts at %d, want 0", tg.MWs[0].WinLo)
	}
	for i := 1; i < len(tg.MWs); i++ {
		if tg.MWs[i].WinLo != tg.MWs[i-1].WinHi {
			v.addf("invariant: multi-window %d starts at %d, previous ends at %d",
				i, tg.MWs[i].WinLo, tg.MWs[i-1].WinHi)
		}
	}
	if last := tg.MWs[len(tg.MWs)-1]; last.WinHi != tg.Spec.Count {
		v.addf("invariant: last multi-window ends at %d, want %d", last.WinHi, tg.Spec.Count)
	}
	for w := 0; w < tg.Spec.Count; w++ {
		mw := tg.ForWindow(w)
		if mw == nil || w < mw.WinLo || w >= mw.WinHi {
			v.addf("invariant: ForWindow(%d) resolves to graph [%d,%d)", w, mw.WinLo, mw.WinHi)
		}
	}
	for i, mw := range tg.MWs {
		if err := CheckMultiWindow(mw, tg.Directed); err != nil {
			v.addf("invariant: multi-window %d: %w", i, err)
		}
		for _, g := range mw.GlobalIDs() {
			if g >= tg.NumVertices() {
				v.addf("invariant: multi-window %d holds global id %d outside universe %d",
					i, g, tg.NumVertices())
				break
			}
		}
	}
	return v.err()
}

// CheckCoverage validates the window coverage of the event log
// (Sec. 4.1's memory/work trade-off): every event covered by at least
// one window must be stored — with both endpoints relabeled and an
// exact (neighbor, time) entry in the out-adjacency — in every
// multi-window graph whose window range intersects the event's covering
// range, and the total replicated event count must match exactly.
func CheckCoverage(tg *tcsr.Temporal, l *events.Log) error {
	var v violations
	var expected int64
	for _, e := range l.Events() {
		lo, hi, ok := tg.Spec.Covering(e.T)
		if !ok {
			continue
		}
		for _, mw := range tg.MWs {
			if hi < mw.WinLo || lo >= mw.WinHi {
				continue
			}
			expected++
			lu, lv := mw.LocalID(e.U), mw.LocalID(e.V)
			if lu < 0 || lv < 0 {
				v.addf("invariant: event (%d,%d,%d) covered by windows [%d,%d) lacks local ids (%d,%d)",
					e.U, e.V, e.T, mw.WinLo, mw.WinHi, lu, lv)
				continue
			}
			if !hasEntry(mw, lu, lv, e.T) {
				v.addf("invariant: event (%d,%d,%d) missing from out-adjacency of multi-window [%d,%d)",
					e.U, e.V, e.T, mw.WinLo, mw.WinHi)
			}
		}
	}
	if stored := tg.TotalStoredEvents(); stored != expected {
		v.addf("invariant: representation stores %d events, coverage implies %d", stored, expected)
	}
	return v.err()
}

// hasEntry reports whether the out-adjacency of local vertex u holds an
// entry (c, t). Rows are sorted by (neighbor, time) but duplicates are
// legal, so a linear scan with early exit is simplest and safe.
func hasEntry(mw *tcsr.MultiWindow, u, c int32, t int64) bool {
	lo, hi := mw.OutRow[u], mw.OutRow[u+1]
	for i := lo; i < hi; i++ {
		if mw.OutCol[i] > c {
			return false
		}
		if mw.OutCol[i] == c && mw.OutTime[i] == t {
			return true
		}
	}
	return false
}
