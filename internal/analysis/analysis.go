// Package analysis provides small utilities for inspecting temporal
// graphs and comparing PageRank vectors: the edge-distribution
// histogram behind the paper's Fig. 4, top-k extraction, and vector
// distances/correlations used by the tests and examples.
package analysis

import (
	"math"
	"sort"

	"pmpr/internal/events"
)

// Histogram buckets the events of l into bins equal time slices and
// returns the per-bin counts (the series plotted in Fig. 4), the bin
// width, and the start time. Non-positive bins yield an explicit empty
// result (nil counts, zero width) rather than a panic or a zero-width
// layout.
func Histogram(l *events.Log, bins int) (counts []int64, width int64, t0 int64) {
	if bins <= 0 {
		return nil, 0, 0
	}
	counts = make([]int64, bins)
	first, last, ok := l.TimeRange()
	if !ok {
		return counts, 0, 0
	}
	span := last - first + 1
	width = (span + int64(bins) - 1) / int64(bins)
	if width < 1 {
		width = 1
	}
	for _, e := range l.Events() {
		b := (e.T - first) / width
		if b >= int64(bins) {
			b = int64(bins) - 1
		}
		counts[b]++
	}
	return counts, width, first
}

// L1 returns the L1 distance between two equally sized vectors.
func L1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// TopK returns the indices of the k largest entries of ranks,
// descending, with ascending index as the tie-break.
func TopK(ranks []float64, k int) []int32 {
	idx := make([]int32, 0, len(ranks))
	for i, r := range ranks {
		if r > 0 {
			idx = append(idx, int32(i))
		}
	}
	sort.Slice(idx, func(i, j int) bool {
		ri, rj := ranks[idx[i]], ranks[idx[j]]
		if ri > rj {
			return true
		}
		if ri < rj {
			return false
		}
		return idx[i] < idx[j]
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// TopKOverlap measures top-k agreement between two rank vectors as the
// overlap coefficient |topk(a) ∩ topk(b)| / min(k, |topk(a)|, |topk(b)|)
// — the intersection normalized by the smaller attainable top set, so
// the measure is symmetric in its arguments. Two empty vectors agree
// (1); an empty vector against a non-empty one scores 0. Note the
// convention: a short vector whose few positives all appear in the
// other's top-k still scores 1.0 — the coefficient reports containment,
// not equality of the two top sets.
func TopKOverlap(a, b []float64, k int) float64 {
	ta, tb := TopK(a, k), TopK(b, k)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	set := make(map[int32]bool, len(ta))
	for _, v := range ta {
		set[v] = true
	}
	inter := 0
	for _, v := range tb {
		if set[v] {
			inter++
		}
	}
	denom := k
	if len(ta) < denom {
		denom = len(ta)
	}
	if len(tb) < denom {
		denom = len(tb)
	}
	if denom == 0 {
		return 0
	}
	return float64(inter) / float64(denom)
}

// Spearman computes the Spearman rank correlation between two vectors
// over the indices where at least one is positive. It returns 1 for
// degenerate (constant) inputs that agree and 0 when there is no
// overlap.
func Spearman(a, b []float64) float64 {
	var idx []int
	for i := range a {
		if a[i] > 0 || b[i] > 0 {
			idx = append(idx, i)
		}
	}
	n := len(idx)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return 1
	}
	ra := rankOf(a, idx)
	rb := rankOf(b, idx)
	var ma, mb float64
	for i := 0; i < n; i++ {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 && vb == 0 {
		return 1
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// rankOf returns average ranks (1-based, ties averaged) of vals at idx.
func rankOf(vals []float64, idx []int) []float64 {
	n := len(idx)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return vals[idx[order[x]]] < vals[idx[order[y]]] })
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i + 1
		//pmvet:ignore floateq -- tie groups are exact-equality classes by definition
		for j < n && vals[idx[order[j]]] == vals[idx[order[i]]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based positions i+1..j
		for k := i; k < j; k++ {
			ranks[order[k]] = avg
		}
		i = j
	}
	return ranks
}
