package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"pmpr/internal/events"
)

func TestHistogram(t *testing.T) {
	evs := []events.Event{
		{U: 0, V: 1, T: 0}, {U: 0, V: 1, T: 1},
		{U: 0, V: 1, T: 50}, {U: 0, V: 1, T: 99},
	}
	l, _ := events.NewLog(evs, 2)
	counts, width, t0 := Histogram(l, 4)
	if t0 != 0 || width != 25 {
		t.Fatalf("t0=%d width=%d", t0, width)
	}
	want := []int64{2, 0, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != int64(l.Len()) {
		t.Fatalf("histogram loses events: %d != %d", total, l.Len())
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	l, _ := events.NewLog(nil, 2)
	counts, width, _ := Histogram(l, 5)
	if width != 0 {
		t.Fatal("empty log should have zero width")
	}
	for _, c := range counts {
		if c != 0 {
			t.Fatal("empty log should have zero counts")
		}
	}
	// All events at one instant.
	one, _ := events.NewLog([]events.Event{{T: 7}, {T: 7}}, 1)
	counts, _, _ = Histogram(one, 3)
	if counts[0] != 2 {
		t.Fatalf("degenerate histogram = %v", counts)
	}
}

func TestHistogramNonPositiveBins(t *testing.T) {
	l, _ := events.NewLog([]events.Event{{U: 0, V: 1, T: 3}, {U: 0, V: 1, T: 9}}, 2)
	for _, bins := range []int{0, -1, -100} {
		counts, width, t0 := Histogram(l, bins)
		if len(counts) != 0 || width != 0 || t0 != 0 {
			t.Fatalf("Histogram(bins=%d) = (%v, %d, %d); want empty", bins, counts, width, t0)
		}
	}
}

func TestHistogramConservesQuick(t *testing.T) {
	f := func(raw []uint16, binsRaw uint8) bool {
		bins := int(binsRaw%32) + 1
		evs := make([]events.Event, len(raw))
		for i, r := range raw {
			evs[i] = events.Event{U: 0, V: 1, T: int64(r)}
		}
		l, err := events.NewLogSorted(evs, 2)
		if err != nil {
			return false
		}
		counts, _, _ := Histogram(l, bins)
		var total int64
		for _, c := range counts {
			total += c
		}
		return total == int64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL1(t *testing.T) {
	if d := L1([]float64{1, 2, 3}, []float64{1, 1, 5}); d != 3 {
		t.Fatalf("L1 = %v, want 3", d)
	}
	if d := L1(nil, nil); d != 0 {
		t.Fatalf("L1(nil) = %v", d)
	}
}

func TestTopK(t *testing.T) {
	ranks := []float64{0, 0.5, 0.2, 0.5, 0, 0.3}
	got := TopK(ranks, 3)
	want := []int32{1, 3, 5} // ties broken by ascending index
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("TopK = %v, want %v", got, want)
	}
	if len(TopK(ranks, 100)) != 4 {
		t.Fatal("TopK should cap at positive entries")
	}
	if len(TopK([]float64{0, 0}, 2)) != 0 {
		t.Fatal("TopK of zero vector should be empty")
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{0.4, 0.3, 0.2, 0.1}
	b := []float64{0.1, 0.2, 0.3, 0.4}
	if o := TopKOverlap(a, a, 2); o != 1 {
		t.Fatalf("self overlap = %v", o)
	}
	if o := TopKOverlap(a, b, 2); o != 0 {
		t.Fatalf("disjoint top-2 overlap = %v", o)
	}
	if o := TopKOverlap(nil, nil, 3); o != 1 {
		t.Fatalf("empty overlap = %v", o)
	}
}

func TestTopKOverlapNormalizesBySmallerSet(t *testing.T) {
	// a has 3 positive entries, all inside b's top-10; b has 10. The
	// coefficient divides by min(k, 3, 10) = 3 in BOTH directions — the
	// old min(k, len(ta)) normalization scored 1.0 one way and 0.3 the
	// other.
	a := make([]float64, 12)
	b := make([]float64, 12)
	a[0], a[1], a[2] = 0.5, 0.3, 0.2
	for i := 0; i < 10; i++ {
		b[i] = float64(10-i) / 55
	}
	x, y := TopKOverlap(a, b, 10), TopKOverlap(b, a, 10)
	if x != y {
		t.Fatalf("overlap asymmetric: %v vs %v", x, y)
	}
	if x != 1 {
		t.Fatalf("containment overlap = %v, want 1 (3 of min-set 3 shared)", x)
	}
	// Disjoint small set: 0 of 3 shared.
	a2 := make([]float64, 12)
	a2[10], a2[11] = 0.6, 0.4
	if o := TopKOverlap(a2, b, 10); o != 0 {
		t.Fatalf("disjoint overlap = %v, want 0", o)
	}
	// One empty side never scores agreement.
	if o := TopKOverlap(make([]float64, 12), b, 10); o != 0 {
		t.Fatalf("empty-vs-full overlap = %v, want 0", o)
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{0.1, 0.2, 0.3, 0.4}
	if s := Spearman(a, a); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self correlation = %v", s)
	}
	rev := []float64{0.4, 0.3, 0.2, 0.1}
	if s := Spearman(a, rev); math.Abs(s+1) > 1e-12 {
		t.Fatalf("reversed correlation = %v, want -1", s)
	}
	if s := Spearman([]float64{0, 0}, []float64{0, 0}); s != 0 {
		t.Fatalf("all-zero correlation = %v, want 0 (no overlap)", s)
	}
	// Ties averaged: identical constant positives correlate as 1.
	if s := Spearman([]float64{0.5, 0.5}, []float64{0.5, 0.5}); s != 1 {
		t.Fatalf("constant correlation = %v, want 1", s)
	}
}

func TestSpearmanBoundsQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r%16) / 16
			b[i] = float64(r/16) / 16
		}
		s := Spearman(a, b)
		return s >= -1.0000001 && s <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopKOverlapSymmetricQuick(t *testing.T) {
	f := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, r := range raw {
			a[i] = float64(r % 16)
			b[i] = float64(r / 16)
		}
		x, y := TopKOverlap(a, b, k), TopKOverlap(b, a, k)
		// The overlap coefficient is symmetric unconditionally (the
		// min-set normalization does not depend on argument order) and
		// always within [0, 1].
		if x < 0 || x > 1 || y < 0 || y > 1 {
			return false
		}
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
