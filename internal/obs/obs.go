// Package obs is the observability substrate of the repo: build-info
// stamping, a small metrics registry (expvar + Prometheus text
// exposition), a Chrome trace-event writer for visualizing which worker
// solved which window when, and an HTTP server bundling /metrics,
// /debug/vars, and net/http/pprof.
//
// Everything here is opt-in and allocation-conscious: the engine and
// scheduler collect nothing unless asked, so the default fast path is
// unchanged (see sched.Pool.EnableMetrics and core.RunReport for the
// producer side).
package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the binary and host that produced a run, so
// results files and traces are attributable and reproducible.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	Version     string `json:"version,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
}

// CollectBuildInfo reads runtime/debug.ReadBuildInfo and the runtime
// environment. Fields missing from the build (e.g. VCS stamps under
// `go test`) are left empty.
func CollectBuildInfo() BuildInfo {
	bi := BuildInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		bi.Module = info.Main.Path
		bi.Version = info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				bi.VCSRevision = s.Value
			case "vcs.time":
				bi.VCSTime = s.Value
			case "vcs.modified":
				bi.VCSModified = s.Value == "true"
			}
		}
	}
	return bi
}

// String renders the one-line identification the binaries print for
// -version.
func (b BuildInfo) String() string {
	rev := b.VCSRevision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "dev"
	}
	if b.VCSModified {
		rev += "-dirty"
	}
	return fmt.Sprintf("%s %s (%s, %s/%s, %d/%d cpus)",
		b.Module, rev, b.GoVersion, b.GOOS, b.GOARCH, b.GOMAXPROCS, b.NumCPU)
}
