// This file defines the run journal's event vocabulary: the typed,
// sequence-numbered records the solve pipeline appends as a run
// progresses. Events are flat value structs (no maps, no pointers)
// so appending one to the journal ring copies a fixed-size payload and
// allocates nothing; JSON rendering happens only at export time (JSONL
// sink, SSE stream), never at the emit site.

package obs

import (
	"encoding/json"
	"strconv"
)

// EventType names one kind of journal record. The string is the wire
// value of the "type" field in the JSONL/SSE encoding.
type EventType string

// The journal's event vocabulary. Every record carries seq,
// time_unix_nano, and type; the remaining fields depend on the type
// (see Event.AppendJSON for the exact per-type field sets).
const (
	// EvRunStart opens a run: total windows, kernel, mode, pool size.
	EvRunStart EventType = "run_start"
	// EvRunEnd closes a run with its status (completed, canceled,
	// failed), the windows decided, and the solve wall time.
	EvRunEnd EventType = "run_end"
	// EvStageStart marks a pipeline stage (build, plan, solve, publish)
	// beginning.
	EvStageStart EventType = "stage_start"
	// EvStageEnd marks a pipeline stage finishing, with its wall time
	// and, on failure, the error.
	EvStageEnd EventType = "stage_end"
	// EvWindowStart marks one window's solve attempt sequence beginning
	// on a worker.
	EvWindowStart EventType = "window_start"
	// EvWindowDone marks one window decided: status (ok, retried,
	// degraded, resumed, failed), iterations, final residual, wall time.
	EvWindowDone EventType = "window_done"
	// EvRetry marks a failed window/batch attempt being retried.
	EvRetry EventType = "retry"
	// EvDegrade marks a window falling back to the serial SpMV kernel.
	EvDegrade EventType = "degrade"
	// EvQuarantine marks a window failing terminally.
	EvQuarantine EventType = "quarantine"
	// EvCheckpointWrite marks a decided window flushed to the checkpoint
	// store.
	EvCheckpointWrite EventType = "checkpoint_write"
	// EvCheckpointResume marks a window restored from a checkpoint
	// instead of solved.
	EvCheckpointResume EventType = "checkpoint_resume"
	// EvCancel marks the run observing cancellation, with the progress
	// at that point.
	EvCancel EventType = "cancel"
)

// Event is one journal record. The struct is the union of every event
// type's fields; which ones are meaningful — and which appear in the
// JSON encoding — depends on Type. Window and Worker use -1 as "not
// applicable" so window 0 and worker 0 stay representable.
type Event struct {
	// Seq is the journal-assigned monotonic sequence number (1-based);
	// the journal stamps it at append time.
	Seq uint64
	// TimeUnixNano is the append wall-clock time; the journal stamps it.
	TimeUnixNano int64
	// Type discriminates the record.
	Type EventType

	// Stage is the pipeline stage name (stage_start, stage_end).
	Stage string
	// Window is the global window index of window-scoped events; -1
	// otherwise.
	Window int
	// Worker is the pool worker attribution; -1 outside the pool.
	Worker int
	// Status is the window_done outcome (WindowStatus string) or the
	// run_end outcome (completed, canceled, failed).
	Status string
	// Iterations is the window_done iteration count.
	Iterations int
	// Residual is the window_done final L1 residual.
	Residual float64
	// Seconds is the wall time (window_done, stage_end, run_end).
	Seconds float64
	// Attempt is the 1-based attempt count (retry, quarantine).
	Attempt int
	// Err is the failure message (retry, quarantine, stage_end on
	// error, run_end on failure).
	Err string
	// Windows is the run's total window count (run_start, run_end,
	// cancel).
	Windows int
	// Done is the decided-window count (run_end, cancel).
	Done int
	// Kernel is the run's kernel name (run_start).
	Kernel string
	// Mode is the run's parallel mode (run_start).
	Mode string
	// Workers is the run's pool size (run_start).
	Workers int
}

// jsonSafe reports whether s needs no JSON escaping (printable ASCII
// without quotes or backslashes) — true for every string the pipeline
// emits except arbitrary error text.
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// appendString appends `,"key":"value"` with proper JSON escaping.
func appendString(b []byte, key, val string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	if jsonSafe(val) {
		b = append(b, '"')
		b = append(b, val...)
		b = append(b, '"')
		return b
	}
	// Arbitrary text (error messages): let encoding/json escape it. The
	// marshal of a plain string cannot fail.
	enc, _ := json.Marshal(val)
	return append(b, enc...)
}

// appendInt appends `,"key":n`.
func appendInt(b []byte, key string, n int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, n, 10)
}

// appendFloat appends `,"key":x` in compact %g form.
func appendFloat(b []byte, key string, x float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, x, 'g', -1, 64)
}

// AppendJSON appends the event's single-line JSON object to b and
// returns the extended slice. Only the fields meaningful for the
// event's type are emitted, so every line of a journal export follows
// the documented per-type schema (see DESIGN.md "Run journal & event
// schema").
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = appendInt(b, "time_unix_nano", e.TimeUnixNano)
	b = appendString(b, "type", string(e.Type))
	switch e.Type {
	case EvRunStart:
		b = appendInt(b, "windows", int64(e.Windows))
		b = appendString(b, "kernel", e.Kernel)
		b = appendString(b, "mode", e.Mode)
		b = appendInt(b, "workers", int64(e.Workers))
	case EvRunEnd:
		b = appendString(b, "status", e.Status)
		b = appendInt(b, "done", int64(e.Done))
		b = appendInt(b, "windows", int64(e.Windows))
		b = appendFloat(b, "seconds", e.Seconds)
		if e.Err != "" {
			b = appendString(b, "err", e.Err)
		}
	case EvStageStart:
		b = appendString(b, "stage", e.Stage)
	case EvStageEnd:
		b = appendString(b, "stage", e.Stage)
		b = appendFloat(b, "seconds", e.Seconds)
		if e.Err != "" {
			b = appendString(b, "err", e.Err)
		}
	case EvWindowStart:
		b = appendInt(b, "window", int64(e.Window))
		b = appendInt(b, "worker", int64(e.Worker))
	case EvWindowDone:
		b = appendInt(b, "window", int64(e.Window))
		b = appendInt(b, "worker", int64(e.Worker))
		b = appendString(b, "status", e.Status)
		b = appendInt(b, "iterations", int64(e.Iterations))
		b = appendFloat(b, "residual", e.Residual)
		b = appendFloat(b, "seconds", e.Seconds)
	case EvRetry:
		b = appendInt(b, "window", int64(e.Window))
		b = appendInt(b, "worker", int64(e.Worker))
		b = appendInt(b, "attempt", int64(e.Attempt))
		if e.Err != "" {
			b = appendString(b, "err", e.Err)
		}
	case EvDegrade:
		b = appendInt(b, "window", int64(e.Window))
		b = appendInt(b, "worker", int64(e.Worker))
	case EvQuarantine:
		b = appendInt(b, "window", int64(e.Window))
		b = appendInt(b, "worker", int64(e.Worker))
		b = appendInt(b, "attempt", int64(e.Attempt))
		if e.Err != "" {
			b = appendString(b, "err", e.Err)
		}
	case EvCheckpointWrite, EvCheckpointResume:
		b = appendInt(b, "window", int64(e.Window))
	case EvCancel:
		b = appendInt(b, "done", int64(e.Done))
		b = appendInt(b, "windows", int64(e.Windows))
	}
	return append(b, '}')
}

// MarshalJSON renders the event through AppendJSON, so exported JSON
// and the journal's JSONL/SSE wire format are the same bytes.
func (e Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(nil), nil
}
