// This file implements the run journal: a bounded, sequence-numbered
// ring of Events with subscriber fan-out and an optional JSONL sink.
// The journal is the live counterpart of the scrape-only metrics
// surfaces — /metrics tells you what a run has done so far in
// aggregate; the journal tells you what is happening, in order, as it
// happens, and is what the /events SSE endpoint and -journal-out files
// stream.
//
// Concurrency model: one mutex guards the ring, the subscriber set,
// and the sink. Appends happen at window/batch/stage boundaries (never
// inside kernel iteration loops), so the lock is uncontended relative
// to the solve's work; an append copies the fixed-size Event into a
// preallocated slot and performs non-blocking channel sends, so the
// steady state allocates nothing. Slow subscribers never stall an
// append: when a subscriber's buffer is full the event is dropped for
// that subscriber and its lag counter advances (drop-and-mark-lagged);
// the subscriber detects the gap from the sequence numbers and can
// re-read whatever is still in the ring.

package obs

import (
	"bufio"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultJournalCapacity is the ring size NewJournal uses when the
// caller passes 0: enough to hold the full event stream of a
// several-thousand-window run (roughly 4 events per window).
const DefaultJournalCapacity = 16384

// Journal is a bounded ring of sequence-numbered events with
// subscriber fan-out. The zero value is not usable; construct with
// NewJournal. All methods are safe for concurrent use, and every
// emit-style method is a no-op on a nil *Journal so instrumentation
// sites need no nil guards.
type Journal struct {
	mu   sync.Mutex
	ring []Event // fixed capacity; slot for seq s is ring[(s-1)%cap]
	next uint64  // seq the next append receives (starts at 1)
	subs []*Subscription

	sink    *bufio.Writer
	sinkBuf []byte // reusable JSONL encode buffer
	sinkErr error
}

// NewJournal creates a journal holding the most recent capacity events
// (0 = DefaultJournalCapacity).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{ring: make([]Event, capacity), next: 1}
}

// Capacity returns the ring size.
func (j *Journal) Capacity() int { return len(j.ring) }

// LastSeq returns the sequence number of the most recent event (0 =
// nothing appended yet).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next - 1
}

// Append stamps e with the next sequence number and the current time,
// stores it in the ring (evicting the oldest event once full), fans it
// out to subscribers, and writes it to the sink when one is attached.
// Nil-safe: a nil journal ignores the event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	now := time.Now().UnixNano()
	j.mu.Lock()
	e.Seq = j.next
	e.TimeUnixNano = now
	j.next++
	j.ring[(e.Seq-1)%uint64(len(j.ring))] = e
	for _, s := range j.subs {
		select {
		case s.ch <- e:
		default:
			// Drop-and-mark-lagged: the subscriber keeps its ordering (it
			// only ever misses a contiguous run of events, visible as a
			// seq gap) and the journal never blocks on a slow consumer.
			s.dropped.Add(1)
		}
	}
	if j.sink != nil && j.sinkErr == nil {
		j.sinkBuf = e.AppendJSON(j.sinkBuf[:0])
		j.sinkBuf = append(j.sinkBuf, '\n')
		if _, err := j.sink.Write(j.sinkBuf); err != nil {
			j.sinkErr = err
		}
	}
	j.mu.Unlock()
}

// Since returns a copy of the ring events with sequence numbers in
// (after, LastSeq], oldest first. complete is false when events in
// that range were already evicted from the ring (the returned slice
// then starts at the oldest retained event, and the caller knows it
// has a gap).
func (j *Journal) Since(after uint64) (events []Event, complete bool) {
	if j == nil {
		return nil, true
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sinceLocked(after)
}

func (j *Journal) sinceLocked(after uint64) (events []Event, complete bool) {
	last := j.next - 1
	if last == 0 || after >= last {
		return nil, true
	}
	oldest := uint64(1)
	if last > uint64(len(j.ring)) {
		oldest = last - uint64(len(j.ring)) + 1
	}
	complete = after+1 >= oldest
	from := after + 1
	if from < oldest {
		from = oldest
	}
	events = make([]Event, 0, last-from+1)
	for s := from; s <= last; s++ {
		events = append(events, j.ring[(s-1)%uint64(len(j.ring))])
	}
	return events, complete
}

// Subscription is one consumer's view of the journal: a buffered
// channel of live events plus a drop counter for the lag policy.
type Subscription struct {
	j       *Journal
	ch      chan Event
	dropped atomic.Uint64
}

// C is the subscription's event channel. It is never closed by the
// journal; consumers stop by calling Close and draining.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped returns how many events were dropped for this subscriber
// because its buffer was full. A consumer that sees the counter
// advance (or a gap in sequence numbers) can recover whatever is still
// buffered with Journal.Since.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unsubscribes. Events already buffered in C remain readable.
func (s *Subscription) Close() {
	j := s.j
	j.mu.Lock()
	for i, sub := range j.subs {
		if sub == s {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
}

// Subscribe registers a consumer with the given channel buffer
// (0 = 256). Events appended after the call are delivered; use
// SubscribeSince to also replay the retained past atomically.
func (j *Journal) Subscribe(buffer int) *Subscription {
	_, sub := j.SubscribeSince(j.LastSeq(), buffer)
	return sub
}

// SubscribeSince atomically snapshots the retained events after seq
// `after` and registers a subscription for everything newer, so the
// caller misses nothing between replay and live delivery. complete is
// false when part of the requested range was already evicted (see
// Since).
func (j *Journal) SubscribeSince(after uint64, buffer int) (replay []Event, sub *Subscription) {
	if buffer <= 0 {
		buffer = 256
	}
	sub = &Subscription{j: j, ch: make(chan Event, buffer)}
	j.mu.Lock()
	replay, _ = j.sinceLocked(after)
	j.subs = append(j.subs, sub)
	j.mu.Unlock()
	return replay, sub
}

// SetSink attaches a writer that receives every subsequent event as
// one JSON line (the -journal-out format). Writes are buffered; call
// CloseSink to flush. Passing nil detaches the current sink without
// flushing it.
func (j *Journal) SetSink(w io.Writer) {
	j.mu.Lock()
	if w == nil {
		j.sink = nil
	} else {
		j.sink = bufio.NewWriter(w)
	}
	j.sinkErr = nil
	j.mu.Unlock()
}

// CloseSink flushes and detaches the sink, returning the first write
// error encountered (if any). The underlying writer is not closed; the
// caller owns it.
func (j *Journal) CloseSink() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sink == nil {
		return j.sinkErr
	}
	err := j.sink.Flush()
	if j.sinkErr == nil {
		j.sinkErr = err
	}
	j.sink = nil
	return j.sinkErr
}

// WriteJSONL writes the journal's retained events (oldest first) as
// JSON lines — the same format the sink streams. It snapshots the ring
// once; events appended during the write are not included.
func (j *Journal) WriteJSONL(w io.Writer) error {
	events, _ := j.Since(0)
	var buf []byte
	for i := range events {
		buf = events[i].AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// The Emit* helpers construct and append one event each. All are
// nil-safe, so pipeline code calls them unconditionally and pays a
// single nil check when no journal is attached.

// EmitRunStart records a run beginning.
func (j *Journal) EmitRunStart(windows int, kernel, mode string, workers int) {
	j.Append(Event{Type: EvRunStart, Window: -1, Worker: -1,
		Windows: windows, Kernel: kernel, Mode: mode, Workers: workers})
}

// EmitRunEnd records a run finishing with the given status
// ("completed", "canceled", "failed"), progress, and wall time.
func (j *Journal) EmitRunEnd(status string, done, windows int, seconds float64, errMsg string) {
	j.Append(Event{Type: EvRunEnd, Window: -1, Worker: -1,
		Status: status, Done: done, Windows: windows, Seconds: seconds, Err: errMsg})
}

// EmitStageStart records a pipeline stage beginning.
func (j *Journal) EmitStageStart(stage string) {
	j.Append(Event{Type: EvStageStart, Window: -1, Worker: -1, Stage: stage})
}

// EmitStageEnd records a pipeline stage finishing; errMsg is empty on
// success.
func (j *Journal) EmitStageEnd(stage string, seconds float64, errMsg string) {
	j.Append(Event{Type: EvStageEnd, Window: -1, Worker: -1,
		Stage: stage, Seconds: seconds, Err: errMsg})
}

// EmitWindowStart records a window's solve beginning on a worker.
func (j *Journal) EmitWindowStart(window, worker int) {
	j.Append(Event{Type: EvWindowStart, Window: window, Worker: worker})
}

// EmitWindowDone records a window decided.
func (j *Journal) EmitWindowDone(window, worker int, status string, iterations int, residual, seconds float64) {
	j.Append(Event{Type: EvWindowDone, Window: window, Worker: worker,
		Status: status, Iterations: iterations, Residual: residual, Seconds: seconds})
}

// EmitRetry records a failed attempt being retried.
func (j *Journal) EmitRetry(window, worker, attempt int, errMsg string) {
	j.Append(Event{Type: EvRetry, Window: window, Worker: worker, Attempt: attempt, Err: errMsg})
}

// EmitDegrade records a window falling back to the serial kernel.
func (j *Journal) EmitDegrade(window, worker int) {
	j.Append(Event{Type: EvDegrade, Window: window, Worker: worker})
}

// EmitQuarantine records a window failing terminally.
func (j *Journal) EmitQuarantine(window, worker, attempt int, errMsg string) {
	j.Append(Event{Type: EvQuarantine, Window: window, Worker: worker, Attempt: attempt, Err: errMsg})
}

// EmitCheckpointWrite records a window flushed to the checkpoint store.
func (j *Journal) EmitCheckpointWrite(window int) {
	j.Append(Event{Type: EvCheckpointWrite, Window: window, Worker: -1})
}

// EmitCheckpointResume records a window restored from a checkpoint.
func (j *Journal) EmitCheckpointResume(window int) {
	j.Append(Event{Type: EvCheckpointResume, Window: window, Worker: -1})
}

// EmitCancel records the run observing cancellation.
func (j *Journal) EmitCancel(done, windows int) {
	j.Append(Event{Type: EvCancel, Window: -1, Worker: -1, Done: done, Windows: windows})
}
