package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestJournalAppendSinceAndEviction(t *testing.T) {
	j := NewJournal(8)
	if got := j.LastSeq(); got != 0 {
		t.Fatalf("empty journal LastSeq = %d, want 0", got)
	}
	for w := 0; w < 5; w++ {
		j.EmitWindowDone(w, 0, "ok", 3, 1e-9, 0.01)
	}
	if got := j.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	evs, complete := j.Since(2)
	if !complete {
		t.Fatalf("Since(2) reported incomplete with nothing evicted")
	}
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("Since(2) = %d events, seqs %v..%v; want 3..5", len(evs), evs[0].Seq, evs[len(evs)-1].Seq)
	}
	// Push past capacity: only the 8 most recent remain.
	for w := 5; w < 20; w++ {
		j.EmitWindowDone(w, 0, "ok", 3, 1e-9, 0.01)
	}
	evs, complete = j.Since(0)
	if complete {
		t.Fatalf("Since(0) after eviction claims completeness")
	}
	if len(evs) != 8 || evs[0].Seq != 13 || evs[7].Seq != 20 {
		t.Fatalf("post-eviction Since(0): %d events starting %d; want 8 starting 13", len(evs), evs[0].Seq)
	}
	for i, e := range evs {
		if e.Window != int(e.Seq)-1 {
			t.Fatalf("event %d: window %d does not match seq %d payload", i, e.Window, e.Seq)
		}
	}
}

func TestJournalNilSafety(t *testing.T) {
	var j *Journal
	j.Append(Event{Type: EvCancel})
	j.EmitRunStart(1, "spmv", "nested", 2)
	j.EmitWindowDone(0, 0, "ok", 1, 0, 0)
	if got := j.LastSeq(); got != 0 {
		t.Fatalf("nil journal LastSeq = %d", got)
	}
	if evs, _ := j.Since(0); evs != nil {
		t.Fatalf("nil journal Since returned events")
	}
	if err := j.CloseSink(); err != nil {
		t.Fatalf("nil journal CloseSink: %v", err)
	}
}

func TestJournalSubscribeDropAndMarkLagged(t *testing.T) {
	j := NewJournal(1024)
	sub := j.Subscribe(4)
	defer sub.Close()
	for w := 0; w < 100; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	if got := sub.Dropped(); got != 96 {
		t.Fatalf("Dropped = %d, want 96 (buffer 4, 100 events)", got)
	}
	// The buffered prefix is contiguous from seq 1: drops only ever trim
	// the tail between receives, never reorder.
	want := uint64(1)
	for {
		select {
		case e := <-sub.C():
			if e.Seq != want {
				t.Fatalf("buffered event seq %d, want %d", e.Seq, want)
			}
			want++
		default:
			if want != 5 {
				t.Fatalf("drained %d events, want 4", want-1)
			}
			// The consumer recovers the gap from the ring.
			evs, _ := j.Since(want - 1)
			if len(evs) != 96 || evs[0].Seq != 5 {
				t.Fatalf("recovery Since(%d): %d events starting %d", want-1, len(evs), evs[0].Seq)
			}
			return
		}
	}
}

// TestJournalConcurrentAppendSubscribe exercises the journal under
// -race: parallel appenders, several draining subscribers, and ring
// readers all at once. Each subscriber must observe strictly increasing
// sequence numbers (gaps are legal, reordering is not).
func TestJournalConcurrentAppendSubscribe(t *testing.T) {
	const (
		appenders = 4
		perApp    = 500
		readers   = 3
	)
	j := NewJournal(256)
	var producers, consumers sync.WaitGroup

	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		sub := j.Subscribe(64)
		consumers.Add(1)
		go func(sub *Subscription) {
			defer consumers.Done()
			defer sub.Close()
			var last uint64
			for {
				select {
				case e := <-sub.C():
					if e.Seq <= last {
						t.Errorf("subscriber saw seq %d after %d", e.Seq, last)
						return
					}
					last = e.Seq
				case <-stop:
					return
				}
			}
		}(sub)
	}
	for a := 0; a < appenders; a++ {
		producers.Add(1)
		go func(a int) {
			defer producers.Done()
			for i := 0; i < perApp; i++ {
				j.EmitWindowDone(i, a, "ok", 1, 1e-9, 0.001)
				if i%100 == 0 {
					j.Since(j.LastSeq() / 2) // concurrent ring reads
				}
			}
		}(a)
	}
	producers.Wait()
	close(stop)
	consumers.Wait()
	total := uint64(appenders * perApp)
	if got := j.LastSeq(); got != total {
		t.Fatalf("LastSeq = %d, want %d", got, total)
	}
	evs, _ := j.Since(0)
	if len(evs) != 256 {
		t.Fatalf("ring holds %d events, want capacity 256", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("ring events not contiguous at %d: %d -> %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestSubscribeSinceMissesNothing(t *testing.T) {
	j := NewJournal(64)
	for w := 0; w < 10; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	replay, sub := j.SubscribeSince(4, 64)
	defer sub.Close()
	for w := 10; w < 15; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	var seqs []uint64
	for _, e := range replay {
		seqs = append(seqs, e.Seq)
	}
	for len(seqs) < 11 {
		seqs = append(seqs, (<-sub.C()).Seq)
	}
	for i, s := range seqs {
		if want := uint64(5 + i); s != want {
			t.Fatalf("combined stream seq[%d] = %d, want %d (seqs %v)", i, s, want, seqs)
		}
	}
}

func TestJournalSinkWritesJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(16)
	j.SetSink(&buf)
	j.EmitRunStart(3, "spmv", "nested", 2)
	j.EmitWindowStart(0, 1)
	j.EmitWindowDone(0, 1, "ok", 7, 3.5e-9, 0.25)
	j.EmitRunEnd("completed", 3, 3, 1.5, "")
	if err := j.CloseSink(); err != nil {
		t.Fatalf("CloseSink: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink wrote %d lines, want 4:\n%s", len(lines), buf.String())
	}
	types := []EventType{EvRunStart, EvWindowStart, EvWindowDone, EvRunEnd}
	for i, line := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if got := m["seq"].(float64); got != float64(i+1) {
			t.Fatalf("line %d seq = %v", i, got)
		}
		if got := m["type"].(string); got != string(types[i]) {
			t.Fatalf("line %d type = %q, want %q", i, got, types[i])
		}
		if _, ok := m["time_unix_nano"]; !ok {
			t.Fatalf("line %d missing time_unix_nano", i)
		}
	}
	var done map[string]interface{}
	if err := json.Unmarshal([]byte(lines[2]), &done); err != nil {
		t.Fatal(err)
	}
	if done["window"].(float64) != 0 || done["worker"].(float64) != 1 ||
		done["status"].(string) != "ok" || done["iterations"].(float64) != 7 {
		t.Fatalf("window_done fields wrong: %v", done)
	}
}

func TestEventAppendJSONEscapesErrors(t *testing.T) {
	e := Event{Seq: 1, Type: EvQuarantine, Window: 2, Worker: 0, Attempt: 3,
		Err: "bad \"quote\" and\nnewline"}
	b := e.AppendJSON(nil)
	var m map[string]interface{}
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("escaped event is not valid JSON: %v\n%s", err, b)
	}
	if m["err"].(string) != "bad \"quote\" and\nnewline" {
		t.Fatalf("error text did not round-trip: %q", m["err"])
	}
}

func TestWriteJSONL(t *testing.T) {
	j := NewJournal(16)
	for w := 0; w < 3; w++ {
		j.EmitWindowDone(w, -1, "ok", 1, 0, 0)
	}
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("WriteJSONL wrote %d lines, want 3", len(lines))
	}
	for i, line := range lines {
		want := fmt.Sprintf(`"seq":%d`, i+1)
		if !strings.Contains(line, want) {
			t.Fatalf("line %d missing %s: %s", i, want, line)
		}
	}
}
