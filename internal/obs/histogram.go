// This file adds the registry's third metric kind: fixed-bucket
// histograms with atomic counters, for distributions the counters
// cannot express — window wall times, iterations-per-window, residuals
// at convergence. Observation is two atomic adds plus a binary search
// over a small immutable bound slice, so the solve stage can observe
// every decided window without perturbing the hot path; rendering
// (Prometheus exposition, quantile summaries) walks the counters at
// read time.

package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution metric. Bucket b counts
// observations <= Bounds[b]; one extra overflow bucket counts the
// rest (+Inf). The zero value is not usable; construct with
// NewHistogram. All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64 // ascending, strictly increasing upper bounds
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Int64
}

// NewHistogram creates a histogram over the given ascending bucket
// upper bounds (they are copied, sorted, and deduplicated). At least
// one finite bound is required; the +Inf overflow bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	bs := make([]float64, 0, len(bounds))
	bs = append(bs, bounds...)
	sort.Float64s(bs)
	// Deduplicate and drop non-finite bounds; +Inf is implicit.
	out := bs[:0]
	for _, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(out) == 0 || b > out[len(out)-1] {
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		out = append(out, 1)
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// ExponentialBuckets returns n bounds start, start*factor,
// start*factor^2, ... — the shape latency distributions want.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, start+2*width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Bounds returns the finite bucket upper bounds (read-only; do not
// modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Snapshots subtract (Delta) to isolate one run's observations from a
// long-lived histogram, and answer quantile queries by interpolation.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds.
	Bounds []float64
	// Counts[b] is the per-bucket (non-cumulative) count;
	// Counts[len(Bounds)] is the +Inf overflow bucket.
	Counts []int64
	// Sum is the sum of observed values.
	Sum float64
	// Count is the number of observations.
	Count int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Delta returns this snapshot minus an earlier one of the same
// histogram — the observations made between the two.
func (s HistogramSnapshot) Delta(before HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum,
		Count:  s.Count - before.Count,
	}
	copy(d.Counts, s.Counts)
	for i := range before.Counts {
		if i < len(d.Counts) {
			d.Counts[i] -= before.Counts[i]
		}
	}
	d.Sum -= before.Sum
	return d
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the containing bucket; observations in the overflow bucket
// clamp to the highest finite bound. Returns 0 when the snapshot is
// empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if float64(cum+c) >= rank {
			if i >= len(s.Bounds) {
				// Overflow bucket: no upper bound to interpolate toward.
				return s.Bounds[len(s.Bounds)-1]
			}
			hi := s.Bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramSummary is the condensed form of a distribution the /status
// endpoint and reports expose: count, sum, and interpolated tail
// quantiles.
type HistogramSummary struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the sum of observed values.
	Sum float64 `json:"sum"`
	// P50, P95, and P99 are interpolated quantile estimates.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// Summary condenses the snapshot to count/sum/p50/p95/p99.
func (s HistogramSnapshot) Summary() HistogramSummary {
	return HistogramSummary{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// Summary condenses the histogram's current state.
func (h *Histogram) Summary() HistogramSummary { return h.Snapshot().Summary() }

// SolveHistograms bundles the three per-window distributions the solve
// stage records: wall time, iterations, and residual at convergence.
// Like RunCounters/FaultCounters, the owner (core.SolveStage) holds
// the struct and observes directly; RegisterOn exposes the histograms
// for scraping.
type SolveHistograms struct {
	// WindowWall is the per-window solve wall time in seconds (for SpMM
	// batches, every window of a batch reports the batch's wall time).
	WindowWall *Histogram
	// Iterations is the per-window PageRank iteration count.
	Iterations *Histogram
	// Residual is the final L1 residual of converged windows.
	Residual *Histogram
}

// NewSolveHistograms creates the bundle with its default buckets:
// wall times 10µs..~84s (exponential), iterations 1..1024 (powers of
// two), residuals 1e-12..1e-2 (decades).
func NewSolveHistograms() *SolveHistograms {
	return &SolveHistograms{
		WindowWall: NewHistogram(ExponentialBuckets(1e-5, 2, 24)),
		Iterations: NewHistogram(ExponentialBuckets(1, 2, 11)),
		Residual:   NewHistogram(ExponentialBuckets(1e-12, 10, 11)),
	}
}

// RegisterOn publishes the three histograms on r under the prefix
// (e.g. "pmpr_window"), producing <prefix>_wall_seconds,
// <prefix>_iterations, and <prefix>_residual.
func (s *SolveHistograms) RegisterOn(r *Registry, prefix string) {
	r.RegisterHistogram(prefix+"_wall_seconds", "per-window solve wall time", s.WindowWall)
	r.RegisterHistogram(prefix+"_iterations", "per-window PageRank iterations", s.Iterations)
	r.RegisterHistogram(prefix+"_residual", "final L1 residual of converged windows", s.Residual)
}
