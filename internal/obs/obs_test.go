package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectBuildInfo(t *testing.T) {
	bi := CollectBuildInfo()
	if bi.GoVersion == "" || bi.GOOS == "" || bi.GOARCH == "" {
		t.Fatalf("missing runtime fields: %+v", bi)
	}
	if bi.GOMAXPROCS < 1 || bi.NumCPU < 1 {
		t.Fatalf("implausible CPU counts: %+v", bi)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.ProcessName("pmrank")
	tr.ThreadName(1, "worker 0")
	start := time.Now()
	tr.Complete("window 3", "solve", 1, start, 5*time.Millisecond,
		map[string]interface{}{"iterations": 12})
	tr.Instant("converged", "solve", 1, nil)
	tr.SetMeta("dataset", "enron")
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var obj struct {
		TraceEvents []TraceEvent           `json:"traceEvents"`
		OtherData   map[string]interface{} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(obj.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(obj.TraceEvents))
	}
	var span *TraceEvent
	for i := range obj.TraceEvents {
		if obj.TraceEvents[i].Ph == "X" {
			span = &obj.TraceEvents[i]
		}
	}
	if span == nil {
		t.Fatal("no complete event in trace")
	}
	if span.Name != "window 3" || span.TID != 1 || span.Dur <= 0 {
		t.Fatalf("bad span: %+v", span)
	}
	if obj.OtherData["dataset"] != "enron" {
		t.Fatalf("metadata lost: %v", obj.OtherData)
	}
}

func TestTraceWriteFile(t *testing.T) {
	tr := NewTrace()
	tr.Complete("w", "c", 0, time.Now(), time.Millisecond, nil)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Complete(fmt.Sprintf("e%d", i), "c", g, time.Now(), time.Microsecond, nil)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tr.Len())
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("pmpr_windows_solved_total", "windows solved")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if again := reg.Counter("pmpr_windows_solved_total", ""); again != c {
		t.Fatal("re-registering a counter must return the same instance")
	}
	reg.Gauge("pmpr_load_imbalance", "max/mean busy", func() float64 { return 1.5 })

	var buf bytes.Buffer
	reg.WriteProm(&buf)
	text := buf.String()
	for _, want := range []string{
		"# TYPE pmpr_windows_solved_total counter",
		"pmpr_windows_solved_total 4",
		"# TYPE pmpr_load_imbalance gauge",
		"pmpr_load_imbalance 1.5",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	snap := reg.Snapshot()
	if snap["pmpr_windows_solved_total"] != 4 || snap["pmpr_load_imbalance"] != 1.5 {
		t.Fatalf("bad snapshot: %v", snap)
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pmpr_test_total", "test counter").Add(7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "pmpr_test_total 7") {
		t.Fatalf("/metrics: code=%d body=%s", code, body)
	}

	code, body := get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatalf("/debug/vars missing memstats: %s", body)
	}
	if _, ok := vars["pmpr"]; !ok {
		t.Fatalf("/debug/vars missing registry section: %s", body)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
	if testing.Short() {
		t.Skip("skipping 1s CPU profile in -short mode")
	}
	if code, _ := get(t, base+"/debug/pprof/profile?seconds=1"); code != 200 {
		t.Fatalf("/debug/pprof/profile: code=%d", code)
	}
}

func TestRunCountersRegisterOn(t *testing.T) {
	var rc RunCounters
	rc.Started.Add(5)
	rc.Completed.Add(3)
	rc.Canceled.Inc()
	reg := NewRegistry()
	rc.RegisterOn(reg, "pmpr_engine_runs")
	snap := reg.Snapshot()
	if snap["pmpr_engine_runs_started_total"] != 5 ||
		snap["pmpr_engine_runs_completed_total"] != 3 ||
		snap["pmpr_engine_runs_canceled_total"] != 1 {
		t.Fatalf("bad snapshot: %v", snap)
	}
	// The registry exposes the owner's counter, not a copy: later
	// increments show up at the next scrape.
	rc.Canceled.Inc()
	if got := reg.Snapshot()["pmpr_engine_runs_canceled_total"]; got != 2 {
		t.Fatalf("canceled after inc = %v, want 2", got)
	}
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	if !strings.Contains(buf.String(), "# TYPE pmpr_engine_runs_started_total counter") {
		t.Fatalf("exposition missing counter type:\n%s", buf.String())
	}
}
