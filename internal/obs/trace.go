package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// schema chrome://tracing and Perfetto load). Timestamps and durations
// are in microseconds relative to the trace start.
type TraceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// Trace accumulates trace events in memory and serializes them as a
// Chrome trace JSON object. It is safe for concurrent use; recording an
// event takes one mutex acquisition, which is negligible next to the
// window solves being recorded (tracing is opt-in regardless).
type Trace struct {
	start time.Time

	mu     sync.Mutex
	events []TraceEvent
	meta   map[string]interface{}
}

// NewTrace starts a trace; event timestamps are relative to this call.
func NewTrace() *Trace {
	return &Trace{start: time.Now(), meta: map[string]interface{}{}}
}

func (t *Trace) push(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

func (t *Trace) micros(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

// Complete records a complete ("X") event: a span of dur starting at
// start on thread tid. args may be nil.
func (t *Trace) Complete(name, cat string, tid int, start time.Time, dur time.Duration, args map[string]interface{}) {
	t.push(TraceEvent{
		Name: name, Cat: cat, Ph: "X",
		TS: t.micros(start), Dur: float64(dur) / float64(time.Microsecond),
		TID: tid, Args: args,
	})
}

// Instant records an instant ("i") event at the current time.
func (t *Trace) Instant(name, cat string, tid int, args map[string]interface{}) {
	t.push(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: t.micros(time.Now()), TID: tid, Args: args})
}

// ThreadName labels a tid in the trace viewer (metadata event).
func (t *Trace) ThreadName(tid int, name string) {
	t.push(TraceEvent{Name: "thread_name", Ph: "M", TID: tid,
		Args: map[string]interface{}{"name": name}})
}

// ProcessName labels the process row in the trace viewer.
func (t *Trace) ProcessName(name string) {
	t.push(TraceEvent{Name: "process_name", Ph: "M",
		Args: map[string]interface{}{"name": name}})
}

// SetMeta attaches a key to the trace's otherData section (build info,
// configuration, dataset name, ...).
func (t *Trace) SetMeta(key string, v interface{}) {
	t.mu.Lock()
	t.meta[key] = v
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Write serializes the trace as a Chrome trace JSON object.
func (t *Trace) Write(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	obj := struct {
		TraceEvents     []TraceEvent           `json:"traceEvents"`
		DisplayTimeUnit string                 `json:"displayTimeUnit"`
		OtherData       map[string]interface{} `json:"otherData,omitempty"`
	}{t.events, "ms", t.meta}
	enc := json.NewEncoder(w)
	return enc.Encode(obj)
}

// WriteFile serializes the trace to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
