package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentScrape hammers the metrics endpoints from several
// goroutines while other goroutines mutate the registry's counters and
// register new metrics. It exists to be run under -race: the registry
// guards its map with a mutex and the counters are atomics, and this
// test is the executable proof.
func TestConcurrentScrape(t *testing.T) {
	reg := NewRegistry()
	base := reg.Counter("pmpr_test_events_total", "events seen")
	reg.Gauge("pmpr_test_load", "instantaneous load", func() float64 {
		return float64(base.Value()) / 2
	})
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	const (
		writers = 4
		readers = 4
		rounds  = 50
	)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := reg.Counter("pmpr_test_worker_total", "per-worker work items")
			for j := 0; j < rounds; j++ {
				base.Inc()
				c.Add(2)
			}
		}(i)
	}
	scrape := func(path string) error {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.ReadAll(resp.Body)
		return err
	}
	errs := make(chan error, readers*2*rounds/10)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds/10; j++ {
				for _, path := range []string{"/metrics", "/debug/vars"} {
					if err := scrape(path); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent scrape: %v", err)
	}

	// After the dust settles the text exposition carries the final sums.
	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"pmpr_test_events_total 200",
		"pmpr_test_worker_total 400",
		"pmpr_test_load 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
