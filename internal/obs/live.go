// This file implements the live observability endpoints the obs mux
// can host next to the scrape surfaces:
//
//	/status  a JSON snapshot of the run in flight (phase, windows
//	         done/total/quarantined, histogram summaries)
//	/events  the run journal as Server-Sent Events, resumable from a
//	         sequence number via the standard Last-Event-ID header
//
// These are the streaming channel a rank-serving daemon (ROADMAP item
// 1) publishes per-window progress through; pmrank -live wires them up
// today, and cmd/pmtop consumes /status.

package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Status is the JSON document /status serves: where the run is and how
// far along. Producers fill it from live engine state; cmd/pmtop (and
// any other watcher) unmarshals the same struct.
type Status struct {
	// Phase is the run phase: "idle", "solve", "publish", "done",
	// "canceled", or "failed".
	Phase string `json:"phase"`
	// WindowsTotal is the run's window count.
	WindowsTotal int `json:"windows_total"`
	// WindowsDone counts decided windows (solved, restored, or failed).
	WindowsDone int `json:"windows_done"`
	// WindowsQuarantined counts terminally failed windows.
	WindowsQuarantined int `json:"windows_quarantined"`
	// Retried, Degraded, and Resumed mirror the fault counters.
	Retried  int64 `json:"retried"`
	Degraded int64 `json:"degraded"`
	Resumed  int64 `json:"resumed"`
	// LastSeq is the journal's most recent sequence number, so a
	// watcher knows where to resume /events from.
	LastSeq uint64 `json:"last_seq"`
	// Histograms summarizes the per-window distributions by name (e.g.
	// "window_wall_seconds", "window_iterations", "window_residual").
	Histograms map[string]HistogramSummary `json:"histograms,omitempty"`
}

// StatusFunc produces the current status snapshot. It is called once
// per /status request and must be safe for concurrent use.
type StatusFunc func() Status

// StatusHandler serves fn's snapshot as JSON.
func StatusHandler(fn StatusFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		b, err := json.MarshalIndent(fn(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			// The client went away mid-write; nothing useful to do.
			return
		}
	})
}

// sseHeartbeat is how often the SSE stream emits a comment line when no
// events flow, keeping intermediaries from timing the connection out.
const sseHeartbeat = 15 * time.Second

// lastEventID extracts the resume position: the standard Last-Event-ID
// header (set by browsers' EventSource on reconnect), or a ?since=
// query parameter for curl-style consumers. 0 means "from the oldest
// retained event".
func lastEventID(r *http.Request) uint64 {
	s := r.Header.Get("Last-Event-ID")
	if s == "" {
		s = r.URL.Query().Get("since")
	}
	if s == "" {
		return 0
	}
	id, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// EventsHandler streams the journal as Server-Sent Events. Each frame
// carries the event's sequence number as its SSE id and the JSONL
// object as its data, so a disconnected client that reconnects with
// Last-Event-ID resumes exactly where it stopped — losslessly, as long
// as the requested events are still in the ring. When the requested
// range (or part of a slow subscriber's live stream) has been evicted
// or dropped, the stream interposes an "event: lagged" frame whose
// data reports the next live sequence number, so consumers know they
// have a gap instead of silently missing events.
func EventsHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		// A long-lived stream must outlive the server's WriteTimeout
		// (and ReadTimeout — the connection's read deadline also kills
		// writes once it fires). Clear both for this connection only, so
		// the server-wide limits keep protecting every ordinary handler.
		// Errors are deliberately ignored: under a non-net/http server
		// (httptest's ResponseRecorder) there is no deadline to clear.
		rc := http.NewResponseController(w)
		rc.SetWriteDeadline(time.Time{})
		rc.SetReadDeadline(time.Time{})

		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		after := lastEventID(r)
		replay, sub := j.SubscribeSince(after, 1024)
		defer sub.Close()

		var buf []byte
		writeEvent := func(e *Event) bool {
			buf = buf[:0]
			buf = append(buf, "id: "...)
			buf = strconv.AppendUint(buf, e.Seq, 10)
			buf = append(buf, "\ndata: "...)
			buf = e.AppendJSON(buf)
			buf = append(buf, "\n\n"...)
			_, err := w.Write(buf)
			return err == nil
		}
		writeLagged := func(nextSeq uint64) bool {
			buf = buf[:0]
			buf = append(buf, "event: lagged\ndata: {\"next_seq\":"...)
			buf = strconv.AppendUint(buf, nextSeq, 10)
			buf = append(buf, "}\n\n"...)
			_, err := w.Write(buf)
			return err == nil
		}

		// Replay whatever the ring still holds past the resume point;
		// announce the gap first when older events were already evicted.
		if len(replay) > 0 && after > 0 && replay[0].Seq > after+1 {
			if !writeLagged(replay[0].Seq) {
				return
			}
		}
		lastSent := after
		for i := range replay {
			if !writeEvent(&replay[i]) {
				return
			}
			lastSent = replay[i].Seq
		}
		flusher.Flush()

		heartbeat := time.NewTicker(sseHeartbeat)
		defer heartbeat.Stop()
		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case <-heartbeat.C:
				if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
					return
				}
				flusher.Flush()
			case e := <-sub.C():
				// The drop policy only ever skips events between channel
				// receives, so a sequence jump here is the lag signal.
				if e.Seq > lastSent+1 {
					if !writeLagged(e.Seq) {
						return
					}
				}
				if !writeEvent(&e) {
					return
				}
				lastSent = e.Seq
				// Drain whatever else is buffered before flushing once.
				for drained := false; !drained; {
					select {
					case e := <-sub.C():
						if e.Seq > lastSent+1 && !writeLagged(e.Seq) {
							return
						}
						if !writeEvent(&e) {
							return
						}
						lastSent = e.Seq
					default:
						drained = true
					}
				}
				flusher.Flush()
			}
		}
	})
}

// HandleLive mounts the live endpoints on mux: /status (when fn is
// non-nil) and /events (when j is non-nil).
func HandleLive(mux *http.ServeMux, j *Journal, fn StatusFunc) {
	if fn != nil {
		mux.Handle("/status", StatusHandler(fn))
	}
	if j != nil {
		mux.Handle("/events", EventsHandler(j))
	}
}
