package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the observability HTTP handler:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (memstats, cmdline, plus reg under "pmpr")
//	/debug/pprof/  the standard net/http/pprof handlers
//
// reg may be nil, in which case /metrics serves an empty exposition.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WriteProm(w)
		}
	})
	// A self-contained /debug/vars: the expvar package's handler only
	// registers on http.DefaultServeMux, and expvar.Publish is global
	// (panics on duplicate names), so we render the same JSON shape
	// ourselves and append the registry under "pmpr".
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		if reg != nil {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			b, _ := json.Marshal(reg.Snapshot())
			fmt.Fprintf(w, "%q: %s", "pmpr", b)
		}
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the observability mux in a background
// goroutine. The caller owns the returned server and should Close it.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewMux(reg)}
	go srv.Serve(ln)
	return &Server{srv: srv, ln: ln}, nil
}
