package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewMux builds the observability HTTP handler:
//
//	/metrics       Prometheus text exposition of reg
//	/debug/vars    expvar JSON (memstats, cmdline, plus reg under "pmpr")
//	/debug/pprof/  the standard net/http/pprof handlers
//
// reg may be nil, in which case /metrics serves an empty exposition.
// Live endpoints (/status, /events) are mounted separately with
// HandleLive, so scrape-only callers pay nothing for them.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WriteProm(w)
		}
	})
	// A self-contained /debug/vars: the expvar package's handler only
	// registers on http.DefaultServeMux, and expvar.Publish is global
	// (panics on duplicate names), so we render the same JSON shape
	// ourselves and append the registry under "pmpr". The document is
	// assembled in a buffer first so a marshal failure can still become
	// a clean 500 and so the write happens (and is checked) once.
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(&buf, ",\n")
			}
			first = false
			fmt.Fprintf(&buf, "%q: %s", kv.Key, kv.Value)
		})
		if reg != nil {
			b, err := json.Marshal(reg.Snapshot())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !first {
				fmt.Fprintf(&buf, ",\n")
			}
			fmt.Fprintf(&buf, "%q: %s", "pmpr", b)
		}
		fmt.Fprintf(&buf, "\n}\n")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if _, err := w.Write(buf.Bytes()); err != nil {
			// The client went away mid-write; nothing useful to do.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
	// serveErr receives the background Serve's return value exactly
	// once; Shutdown/Close surface it instead of dropping it.
	serveErr chan error

	once sync.Once
	err  error
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// stop tears the server down, via graceful() first, and folds in the
// background Serve error (http.ErrServerClosed is the clean-exit
// sentinel, not a failure). Safe to call multiple times; later calls
// return the first result.
func (s *Server) stop(graceful func() error) error {
	s.once.Do(func() {
		err := graceful()
		// Serve is guaranteed to have returned once Shutdown/Close has
		// closed the listener, so this receive does not block for long.
		if serr := <-s.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
			err = serr
		}
		s.err = err
	})
	return s.err
}

// Shutdown stops the server gracefully: the listener closes
// immediately, in-flight requests (a /metrics scrape, an /events
// stream) get until ctx's deadline to finish, and any error from the
// background Serve goroutine is surfaced. Connections still open at
// the deadline — an /events SSE stream never ends on its own — are
// force-closed rather than reported as an error, so a watcher being
// attached does not block or fail process exit. Callers own the
// deadline — pmrank/pmbench use a short timeout so SIGINT still exits
// promptly.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.stop(func() error {
		err := s.srv.Shutdown(ctx)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return s.srv.Close()
		}
		return err
	})
}

// Close shuts the server down immediately, aborting in-flight
// requests. Prefer Shutdown, which lets a scrape in progress finish.
func (s *Server) Close() error {
	return s.stop(s.srv.Close)
}

// ServerLimits are the HTTP server's protection knobs: without them a
// single slow (or malicious) client holds a connection — and its
// goroutine, buffers, and possibly a handler — forever. The zero value
// of any field inherits that field's default from DefaultServerLimits.
type ServerLimits struct {
	// ReadHeaderTimeout bounds reading one request's header block — the
	// slowloris guard. A client that trickles header bytes is cut off.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading an entire request (header + body).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response. Streaming handlers that
	// legitimately outlive it (the /events SSE stream) clear their
	// connection's deadline via http.ResponseController — see
	// EventsHandler — so the limit protects every ordinary handler
	// without a server-wide carve-out.
	WriteTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// between requests.
	IdleTimeout time.Duration
	// MaxHeaderBytes caps request header size.
	MaxHeaderBytes int
}

// DefaultServerLimits returns the limits Serve/ServeHandler apply:
// tight on headers (5s, 1MB), generous on bodies and responses (30s /
// 60s — a 30s pprof CPU profile must fit), and 2m keep-alive idle.
func DefaultServerLimits() ServerLimits {
	return ServerLimits{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// withDefaults fills zero fields from DefaultServerLimits.
func (l ServerLimits) withDefaults() ServerLimits {
	d := DefaultServerLimits()
	if l.ReadHeaderTimeout <= 0 {
		l.ReadHeaderTimeout = d.ReadHeaderTimeout
	}
	if l.ReadTimeout <= 0 {
		l.ReadTimeout = d.ReadTimeout
	}
	if l.WriteTimeout <= 0 {
		l.WriteTimeout = d.WriteTimeout
	}
	if l.IdleTimeout <= 0 {
		l.IdleTimeout = d.IdleTimeout
	}
	if l.MaxHeaderBytes <= 0 {
		l.MaxHeaderBytes = d.MaxHeaderBytes
	}
	return l
}

// Serve binds addr and serves the observability mux in a background
// goroutine. The caller owns the returned server and should Shutdown
// (or Close) it.
func Serve(addr string, reg *Registry) (*Server, error) {
	return ServeHandler(addr, NewMux(reg))
}

// ServeHandler binds addr and serves an arbitrary handler — typically
// NewMux(reg) with live endpoints mounted via HandleLive — in a
// background goroutine, with DefaultServerLimits applied.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	return ServeHandlerLimits(addr, h, DefaultServerLimits())
}

// ServeHandlerLimits is ServeHandler with explicit protection limits
// (zero fields inherit the defaults).
func ServeHandlerLimits(addr string, h http.Handler, limits ServerLimits) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	limits = limits.withDefaults()
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: limits.ReadHeaderTimeout,
		ReadTimeout:       limits.ReadTimeout,
		WriteTimeout:      limits.WriteTimeout,
		IdleTimeout:       limits.IdleTimeout,
		MaxHeaderBytes:    limits.MaxHeaderBytes,
	}
	s := &Server{srv: srv, ln: ln, serveErr: make(chan error, 1)}
	go func() { s.serveErr <- srv.Serve(ln) }()
	return s, nil
}
