package obs

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerLimitsWithDefaults(t *testing.T) {
	got := ServerLimits{}.withDefaults()
	want := DefaultServerLimits()
	if got != want {
		t.Fatalf("zero limits = %+v, want defaults %+v", got, want)
	}
	// Explicit fields survive; only zero fields are filled.
	got = ServerLimits{ReadHeaderTimeout: time.Second, MaxHeaderBytes: 512}.withDefaults()
	if got.ReadHeaderTimeout != time.Second || got.MaxHeaderBytes != 512 {
		t.Fatalf("explicit fields overwritten: %+v", got)
	}
	if got.WriteTimeout != want.WriteTimeout || got.IdleTimeout != want.IdleTimeout {
		t.Fatalf("zero fields not defaulted: %+v", got)
	}
}

// TestServeHandlerAppliesLimits checks the listener-facing server
// carries the protection limits, by observing their behavior rather
// than poking at internals: a client that sends a partial header and
// stalls (slowloris) must be disconnected once ReadHeaderTimeout
// fires, while a well-behaved request on the same server succeeds.
func TestServeHandlerSlowlorisCutOff(t *testing.T) {
	srv, err := ServeHandlerLimits(":0",
		http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(http.StatusNoContent) }),
		ServerLimits{ReadHeaderTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("ServeHandlerLimits: %v", err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	// Well-behaved request first: the server works.
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatalf("healthy GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("healthy GET status = %d, want 204", resp.StatusCode)
	}

	// Slowloris: open a raw connection, send half a request line, stall.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: stall"); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	// The server must close the connection once ReadHeaderTimeout
	// (100ms) elapses; give it generous slack, then require EOF/reset —
	// not our own read deadline — to be what ends the read.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	_, err = conn.Read(buf)
	if err == nil {
		// A 408 response body counts too: read until the close.
		_, err = io.Copy(io.Discard, conn)
	}
	if err == nil || strings.Contains(err.Error(), "i/o timeout") {
		t.Fatalf("stalled connection was not closed by the server (err=%v)", err)
	}
}

// TestEventsHandlerOutlivesWriteTimeout proves the SSE stream clears
// its connection deadlines: with a server WriteTimeout far shorter
// than the stream's lifetime, a frame appended after the timeout has
// elapsed must still reach the subscriber intact.
func TestEventsHandlerOutlivesWriteTimeout(t *testing.T) {
	j := NewJournal(16)
	mux := http.NewServeMux()
	HandleLive(mux, j, nil)
	srv, err := ServeHandlerLimits(":0", mux, ServerLimits{
		ReadTimeout:  150 * time.Millisecond,
		WriteTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("ServeHandlerLimits: %v", err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr().String() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// Let both the read and write deadlines (150ms) lapse, then emit.
	time.Sleep(400 * time.Millisecond)
	j.Append(Event{Type: EvRunStart})

	type frame struct {
		line string
		err  error
	}
	got := make(chan frame, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "data: ") {
				got <- frame{line: line}
				return
			}
		}
		got <- frame{err: fmt.Errorf("stream ended: %v", sc.Err())}
	}()
	select {
	case f := <-got:
		if f.err != nil {
			t.Fatalf("stream died before delivering post-deadline frame: %v", f.err)
		}
		if !strings.Contains(f.line, `"type":"run_start"`) {
			t.Fatalf("unexpected frame %q", f.line)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-deadline event never arrived: write deadline killed the stream")
	}

	// Tear down promptly; Shutdown force-closes the SSE stream.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(ctx)
}
