package obs

import (
	"encoding/json"
	"net/http"
	"sort"
)

// HandleIndex mounts a root discovery endpoint on mux: GET / (exact
// path only, so unknown routes still 404) returns a JSON document
// naming the daemon and listing the endpoints it has mounted. Daemons
// that compose several handler families onto one mux — pmserve stacks
// /v1 queries on top of /metrics, /status and /events — register the
// index last, after every family's paths are known.
func HandleIndex(mux *http.ServeMux, service string, endpoints []string) {
	paths := append([]string(nil), endpoints...)
	sort.Strings(paths)
	body, err := json.Marshal(struct {
		Service   string    `json:"service"`
		Build     BuildInfo `json:"build"`
		Endpoints []string  `json:"endpoints"`
	}{Service: service, Build: CollectBuildInfo(), Endpoints: paths})
	if err != nil {
		// Static input (two strings and a string slice) cannot fail to
		// marshal; degrade to an empty document rather than panicking.
		body = []byte("{}")
	}
	body = append(body, '\n')
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if _, err := w.Write(body); err != nil {
			// The client went away mid-write; nothing useful to do.
			return
		}
	})
}
