package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// GaugeFunc samples an instantaneous value at scrape time, so live
// state (pool stats, queue depths) is read only when someone asks.
type GaugeFunc func() float64

type metric struct {
	name string
	help string
	kind string // "counter" or "gauge"
	ctr  *Counter
	fn   GaugeFunc
}

// Registry is a minimal metrics registry exposed over both the expvar
// JSON surface and a Prometheus-style text endpoint. Metric names
// should follow Prometheus conventions (snake_case, counters ending in
// _total).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: map[string]*metric{}} }

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.ctr != nil {
		return m.ctr
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, kind: "counter", ctr: c}
	return c
}

// Gauge registers a sampled gauge; fn is called at scrape time and must
// be safe for concurrent use.
func (r *Registry) Gauge(name, help string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: "gauge", fn: fn}
}

func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteProm renders the registry in the Prometheus text exposition
// format.
func (r *Registry) WriteProm(w io.Writer) {
	for _, m := range r.sorted() {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		if m.ctr != nil {
			fmt.Fprintf(w, "%s %d\n", m.name, m.ctr.Value())
		} else {
			fmt.Fprintf(w, "%s %g\n", m.name, m.fn())
		}
	}
}

// Snapshot returns the current values keyed by metric name (the expvar
// representation).
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, m := range r.sorted() {
		if m.ctr != nil {
			out[m.name] = float64(m.ctr.Value())
		} else {
			out[m.name] = m.fn()
		}
	}
	return out
}
