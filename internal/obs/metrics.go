package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// GaugeFunc samples an instantaneous value at scrape time, so live
// state (pool stats, queue depths) is read only when someone asks.
type GaugeFunc func() float64

// RunCounters tracks the lifecycle of solve runs: how many were
// started, how many completed, and how many were canceled mid-solve.
// The zero value is ready to use; owners (core.Engine) hold the
// counters and expose them to a registry via RegisterOn, so the hot
// path increments plain atomics with no registry lookup.
type RunCounters struct {
	// Started counts Run entries (including runs that later cancel).
	Started Counter
	// Completed counts runs that produced a full series.
	Completed Counter
	// Canceled counts runs cut short by context cancellation.
	Canceled Counter
}

// RegisterOn publishes the three counters on r under the prefix (e.g.
// "pmpr_engine_runs"), producing <prefix>_started_total,
// <prefix>_completed_total, and <prefix>_canceled_total.
func (c *RunCounters) RegisterOn(r *Registry, prefix string) {
	r.RegisterCounter(prefix+"_started_total", "solve runs started", &c.Started)
	r.RegisterCounter(prefix+"_completed_total", "solve runs completed", &c.Completed)
	r.RegisterCounter(prefix+"_canceled_total", "solve runs canceled mid-solve", &c.Canceled)
}

// FaultCounters tracks the solve stage's fault-tolerance activity:
// recovered panics, retried and degraded solves, quarantined windows,
// and checkpoint traffic. Like RunCounters, owners embed the struct
// and increment plain atomics; RegisterOn exposes them for scraping.
type FaultCounters struct {
	// PanicsRecovered counts window/batch attempts that failed by panic
	// and were converted into structured errors.
	PanicsRecovered Counter
	// Retries counts re-attempts of failed window/batch solves.
	Retries Counter
	// Degraded counts windows re-solved by the serial-SpMV fallback.
	Degraded Counter
	// Quarantined counts windows that failed terminally.
	Quarantined Counter
	// CheckpointWindows counts window checkpoints written.
	CheckpointWindows Counter
	// CheckpointResumed counts windows skipped because a checkpoint
	// already held their result.
	CheckpointResumed Counter
	// CheckpointErrors counts failed checkpoint writes.
	CheckpointErrors Counter
}

// RegisterOn publishes the counters on r under the prefix (e.g.
// "pmpr_engine_fault").
func (c *FaultCounters) RegisterOn(r *Registry, prefix string) {
	r.RegisterCounter(prefix+"_panics_recovered_total", "solve panics converted to errors", &c.PanicsRecovered)
	r.RegisterCounter(prefix+"_retries_total", "window/batch solve retries", &c.Retries)
	r.RegisterCounter(prefix+"_degraded_total", "windows re-solved by the serial fallback", &c.Degraded)
	r.RegisterCounter(prefix+"_quarantined_total", "windows failed terminally", &c.Quarantined)
	r.RegisterCounter(prefix+"_checkpoint_windows_total", "window checkpoints written", &c.CheckpointWindows)
	r.RegisterCounter(prefix+"_checkpoint_resumed_total", "windows resumed from checkpoint", &c.CheckpointResumed)
	r.RegisterCounter(prefix+"_checkpoint_errors_total", "failed checkpoint writes", &c.CheckpointErrors)
}

type metric struct {
	name string
	help string
	kind string // "counter", "gauge", or "histogram"
	ctr  *Counter
	fn   GaugeFunc
	hist *Histogram
}

// Registry is a minimal metrics registry exposed over both the expvar
// JSON surface and a Prometheus-style text endpoint. Metric names
// should follow Prometheus conventions (snake_case, counters ending in
// _total).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: map[string]*metric{}} }

// Counter registers (or returns the existing) counter with this name.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.ctr != nil {
		return m.ctr
	}
	c := &Counter{}
	r.metrics[name] = &metric{name: name, help: help, kind: "counter", ctr: c}
	return c
}

// RegisterCounter registers an externally-owned counter under name,
// replacing any previous registration. It lets owners keep incrementing
// a counter they embed (no registry indirection on the hot path) while
// still exposing it on the scrape surfaces.
func (r *Registry) RegisterCounter(name, help string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: "counter", ctr: c}
}

// Gauge registers a sampled gauge; fn is called at scrape time and must
// be safe for concurrent use.
func (r *Registry) Gauge(name, help string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: "gauge", fn: fn}
}

// Histogram registers (or returns the existing) histogram with this
// name over the given bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok && m.hist != nil {
		return m.hist
	}
	h := NewHistogram(bounds)
	r.metrics[name] = &metric{name: name, help: help, kind: "histogram", hist: h}
	return h
}

// RegisterHistogram registers an externally-owned histogram under name,
// replacing any previous registration — the histogram counterpart of
// RegisterCounter.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = &metric{name: name, help: help, kind: "histogram", hist: h}
}

func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WriteProm renders the registry in the Prometheus text exposition
// format. Histograms render the standard cumulative _bucket series
// with le labels (including +Inf), plus _sum and _count.
func (r *Registry) WriteProm(w io.Writer) {
	for _, m := range r.sorted() {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind)
		switch {
		case m.ctr != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.ctr.Value())
		case m.hist != nil:
			s := m.hist.Snapshot()
			var cum int64
			for i, bound := range s.Bounds {
				cum += s.Counts[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatLe(bound), cum)
			}
			cum += s.Counts[len(s.Bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(w, "%s_sum %g\n", m.name, s.Sum)
			fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count)
		default:
			fmt.Fprintf(w, "%s %g\n", m.name, m.fn())
		}
	}
}

// formatLe renders a bucket bound the way Prometheus clients do.
func formatLe(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot returns the current values keyed by metric name (the expvar
// representation). Histograms contribute <name>_count and <name>_sum
// entries.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	for _, m := range r.sorted() {
		switch {
		case m.ctr != nil:
			out[m.name] = float64(m.ctr.Value())
		case m.hist != nil:
			s := m.hist.Snapshot()
			out[m.name+"_count"] = float64(s.Count)
			out[m.name+"_sum"] = s.Sum
		default:
			out[m.name] = m.fn()
		}
	}
	return out
}
