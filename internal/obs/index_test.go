package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandleIndex(t *testing.T) {
	mux := NewMux(nil)
	HandleIndex(mux, "pmserve", []string{"/v1/windows", "/metrics", "/v1/topk"})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET / = %d, want 200", rec.Code)
	}
	var doc struct {
		Service   string   `json:"service"`
		Endpoints []string `json:"endpoints"`
		Build     struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("index body: %v", err)
	}
	if doc.Service != "pmserve" {
		t.Fatalf("service = %q, want pmserve", doc.Service)
	}
	want := []string{"/metrics", "/v1/topk", "/v1/windows"} // sorted
	if len(doc.Endpoints) != len(want) {
		t.Fatalf("endpoints = %v, want %v", doc.Endpoints, want)
	}
	for i := range want {
		if doc.Endpoints[i] != want[i] {
			t.Fatalf("endpoints = %v, want %v", doc.Endpoints, want)
		}
	}
	if doc.Build.GoVersion == "" {
		t.Fatal("index build info missing go_version")
	}
}

// TestHandleIndexExactRootOnly pins the /{$} pattern: the index must
// answer only the exact root, not swallow unknown paths.
func TestHandleIndexExactRootOnly(t *testing.T) {
	mux := NewMux(nil)
	HandleIndex(mux, "pmserve", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/no/such/route", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /no/such/route = %d, want 404", rec.Code)
	}
}
