package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestStatusHandler(t *testing.T) {
	fn := func() Status {
		return Status{
			Phase: "solve", WindowsTotal: 30, WindowsDone: 11,
			Retried: 2, LastSeq: 40,
			Histograms: map[string]HistogramSummary{
				"window_wall_seconds": {Count: 11, Sum: 1.5, P50: 0.1, P95: 0.3, P99: 0.4},
			},
		}
	}
	srv := httptest.NewServer(StatusHandler(fn))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	//pmvet:ignore closecheck -- test response body
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Phase != "solve" || st.WindowsDone != 11 || st.WindowsTotal != 30 ||
		st.Retried != 2 || st.LastSeq != 40 {
		t.Fatalf("round-tripped status = %+v", st)
	}
	h, ok := st.Histograms["window_wall_seconds"]
	if !ok || h.Count != 11 || h.P95 != 0.3 {
		t.Fatalf("histogram summary = %+v (ok=%v)", h, ok)
	}
}

// sseFrame is one parsed Server-Sent Events frame.
type sseFrame struct {
	id    uint64
	event string // "" for default (message) frames
	data  string
}

// readFrames parses SSE frames off r until n frames arrive or the
// stream ends. Comment lines (heartbeats) are skipped.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	cur := sseFrame{}
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended after %d/%d frames: %v", len(frames), n, err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.data != "" || cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[len("id: "):], 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[len("data: "):]
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

// openStream connects to the events endpoint with an optional
// Last-Event-ID and returns a frame reader plus a cancel func.
func openStream(t *testing.T, url string, lastEventID uint64) (*bufio.Reader, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		cancel()
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		cancel()
		t.Fatalf("Content-Type = %q", ct)
	}
	stop := func() {
		cancel()
		resp.Body.Close()
	}
	return bufio.NewReader(resp.Body), stop
}

func TestEventsHandlerStreamsLive(t *testing.T) {
	j := NewJournal(64)
	j.EmitRunStart(3, "spmv", "nested", 1)
	srv := httptest.NewServer(EventsHandler(j))
	defer srv.Close()

	r, stop := openStream(t, srv.URL, 0)
	defer stop()

	// The retained event replays immediately.
	frames := readFrames(t, r, 1)
	if frames[0].id != 1 {
		t.Fatalf("replay frame id = %d, want 1", frames[0].id)
	}
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(frames[0].data), &m); err != nil {
		t.Fatalf("frame data is not JSON: %v\n%s", err, frames[0].data)
	}
	if m["type"] != string(EvRunStart) {
		t.Fatalf("frame type = %v", m["type"])
	}

	// Live appends stream in order with seq as the SSE id.
	for w := 0; w < 3; w++ {
		j.EmitWindowDone(w, 0, "ok", 5, 1e-9, 0.01)
	}
	frames = readFrames(t, r, 3)
	for i, f := range frames {
		if f.id != uint64(2+i) {
			t.Fatalf("live frame %d id = %d, want %d", i, f.id, 2+i)
		}
		if f.event != "" {
			t.Fatalf("live frame %d unexpected event type %q", i, f.event)
		}
		if !strings.Contains(f.data, `"type":"window_done"`) {
			t.Fatalf("live frame %d data: %s", i, f.data)
		}
	}
}

func TestEventsHandlerLastEventIDResume(t *testing.T) {
	j := NewJournal(64)
	for w := 0; w < 10; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	srv := httptest.NewServer(EventsHandler(j))
	defer srv.Close()

	// Reconnect from the middle: replay must start at exactly seq 7 with
	// no lagged frame (nothing evicted).
	r, stop := openStream(t, srv.URL, 6)
	defer stop()
	frames := readFrames(t, r, 4)
	for i, f := range frames {
		if f.event != "" {
			t.Fatalf("frame %d: unexpected %q frame during lossless resume", i, f.event)
		}
		if f.id != uint64(7+i) {
			t.Fatalf("resume frame %d id = %d, want %d", i, f.id, 7+i)
		}
	}
}

func TestEventsHandlerLaggedFrameOnEvictedResume(t *testing.T) {
	j := NewJournal(4)
	for w := 0; w < 10; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	// Ring holds seqs 7..10; a client resuming from 2 has a gap.
	srv := httptest.NewServer(EventsHandler(j))
	defer srv.Close()

	r, stop := openStream(t, srv.URL, 2)
	defer stop()
	frames := readFrames(t, r, 5)
	if frames[0].event != "lagged" {
		t.Fatalf("first frame = %+v, want lagged", frames[0])
	}
	var lag struct {
		NextSeq uint64 `json:"next_seq"`
	}
	if err := json.Unmarshal([]byte(frames[0].data), &lag); err != nil {
		t.Fatalf("lagged data: %v\n%s", err, frames[0].data)
	}
	if lag.NextSeq != 7 {
		t.Fatalf("lagged next_seq = %d, want 7 (oldest retained)", lag.NextSeq)
	}
	for i, f := range frames[1:] {
		if f.id != uint64(7+i) {
			t.Fatalf("post-lag frame %d id = %d, want %d", i, f.id, 7+i)
		}
	}
}

func TestEventsHandlerQuerySince(t *testing.T) {
	j := NewJournal(64)
	for w := 0; w < 5; w++ {
		j.EmitWindowDone(w, 0, "ok", 1, 0, 0)
	}
	srv := httptest.NewServer(EventsHandler(j))
	defer srv.Close()

	// curl-style ?since= resumes like Last-Event-ID.
	r, stop := openStream(t, srv.URL+"?since=3", 0)
	defer stop()
	frames := readFrames(t, r, 2)
	if frames[0].id != 4 || frames[1].id != 5 {
		t.Fatalf("since=3 frames = %d,%d, want 4,5", frames[0].id, frames[1].id)
	}
}

// TestShutdownForceClosesSSEStreams pins the exit behavior of a server
// with a live /events watcher attached: an SSE stream never finishes
// on its own, so graceful Shutdown must fall back to force-closing it
// at the deadline and report success, not an error.
func TestShutdownForceClosesSSEStreams(t *testing.T) {
	j := NewJournal(16)
	j.EmitRunStart(1, "spmv", "nested", 1)
	mux := http.NewServeMux()
	HandleLive(mux, j, nil)
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	r, stop := openStream(t, "http://"+srv.Addr().String()+"/events", 0)
	defer stop()
	readFrames(t, r, 1) // the stream is established and replaying

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with open SSE stream: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Shutdown took %v; the open stream blocked it", d)
	}
	// The client side observes the stream ending.
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("stream still readable after Shutdown")
	}
}

func TestHandleLiveMounts(t *testing.T) {
	j := NewJournal(16)
	j.EmitRunStart(1, "spmv", "nested", 1)
	mux := http.NewServeMux()
	HandleLive(mux, j, func() Status { return Status{Phase: "idle"} })
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || st.Phase != "idle" {
		t.Fatalf("/status: %v %+v", err, st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	//pmvet:ignore closecheck -- test response body
	defer eresp.Body.Close()
	frames := readFrames(t, bufio.NewReader(eresp.Body), 1)
	if frames[0].id != 1 {
		t.Fatalf("/events first frame id = %d", frames[0].id)
	}
}
