package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// Bucket b counts observations <= Bounds[b]; the boundary value
	// itself lands in the lower bucket (Prometheus le semantics).
	h.Observe(0.5) // <= 1
	h.Observe(1)   // <= 1 (boundary)
	h.Observe(1.5) // <= 2
	h.Observe(4)   // <= 4 (boundary)
	h.Observe(100) // overflow
	s := h.Snapshot()
	want := []int64{2, 1, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d count = %d, want %d (all: %v)", i, c, want[i], s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if got := s.Sum; math.Abs(got-107) > 1e-9 {
		t.Fatalf("Sum = %g, want 107", got)
	}
}

func TestHistogramBoundsNormalized(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2, 2, math.Inf(1), math.NaN()})
	if got := h.Bounds(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("Bounds = %v, want [1 2 4] (sorted, deduped, finite)", got)
	}
	// No finite bounds at all still yields a usable histogram.
	h2 := NewHistogram(nil)
	if len(h2.Bounds()) == 0 {
		t.Fatal("NewHistogram(nil) produced no buckets")
	}
	h2.Observe(0.5)
	if h2.Snapshot().Count != 1 {
		t.Fatal("degenerate histogram dropped the observation")
	}
}

func TestBucketGenerators(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	if want := []float64{1, 2, 4, 8}; len(exp) != 4 || exp[0] != want[0] || exp[3] != want[3] {
		t.Fatalf("ExponentialBuckets = %v, want %v", exp, want)
	}
	lin := LinearBuckets(10, 5, 3)
	if want := []float64{10, 15, 20}; len(lin) != 3 || lin[0] != want[0] || lin[2] != want[2] {
		t.Fatalf("LinearBuckets = %v, want %v", lin, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 100 observations uniform over the 10..20 bucket: p50 interpolates
	// to the bucket midpoint.
	for i := 0; i < 100; i++ {
		h.Observe(15)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-15) > 0.5 {
		t.Fatalf("p50 = %g, want ~15", got)
	}
	if got := s.Quantile(0); got < 10 || got > 11 {
		t.Fatalf("p0 = %g, want bucket lower edge ~10", got)
	}
	// Overflow observations clamp to the highest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(1000)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to 1", got)
	}
	// Empty snapshot answers 0.
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	// Out-of-range q values clamp instead of panicking.
	if got := s.Quantile(-1); got < 10 {
		t.Fatalf("q=-1 gave %g", got)
	}
	if got := s.Quantile(2); got > 20 {
		t.Fatalf("q=2 gave %g", got)
	}
}

func TestHistogramSnapshotDelta(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	before := h.Snapshot()
	h.Observe(0.5)
	h.Observe(50)
	d := h.Snapshot().Delta(before)
	if d.Count != 2 {
		t.Fatalf("delta Count = %d, want 2", d.Count)
	}
	if math.Abs(d.Sum-50.5) > 1e-9 {
		t.Fatalf("delta Sum = %g, want 50.5", d.Sum)
	}
	if d.Counts[0] != 1 || d.Counts[1] != 0 || d.Counts[2] != 1 {
		t.Fatalf("delta Counts = %v, want [1 0 1]", d.Counts)
	}
	sum := d.Summary()
	if sum.Count != 2 || sum.P50 <= 0 {
		t.Fatalf("delta Summary = %+v", sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 10))
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(1 + (g+i)%512))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("Count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket counts sum to %d, Count is %d", bucketTotal, s.Count)
	}
}

func TestRegistryWritePromHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pmpr_test_seconds", "test latencies", []float64{0.1, 1, 10})
	h.Observe(0.0625)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)
	var buf bytes.Buffer
	r.WriteProm(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE pmpr_test_seconds histogram",
		`pmpr_test_seconds_bucket{le="0.1"} 1`,
		`pmpr_test_seconds_bucket{le="1"} 3`,
		`pmpr_test_seconds_bucket{le="10"} 3`,
		`pmpr_test_seconds_bucket{le="+Inf"} 4`,
		"pmpr_test_seconds_sum 101.0625",
		"pmpr_test_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, out)
		}
	}
	// The cumulative bucket lines must appear in ascending-bound order.
	i1 := strings.Index(out, `le="0.1"`)
	i2 := strings.Index(out, `le="1"`)
	i3 := strings.Index(out, `le="+Inf"`)
	if !(i1 < i2 && i2 < i3) {
		t.Fatalf("bucket lines out of order:\n%s", out)
	}
	// The expvar snapshot carries _count and _sum.
	snap := r.Snapshot()
	if snap["pmpr_test_seconds_count"] != 4 {
		t.Fatalf("Snapshot count = %v", snap["pmpr_test_seconds_count"])
	}
	if math.Abs(snap["pmpr_test_seconds_sum"]-101.0625) > 1e-9 {
		t.Fatalf("Snapshot sum = %v", snap["pmpr_test_seconds_sum"])
	}
}

func TestSolveHistogramsRegisterOn(t *testing.T) {
	sh := NewSolveHistograms()
	sh.WindowWall.Observe(0.02)
	sh.Iterations.Observe(12)
	sh.Residual.Observe(3e-9)
	r := NewRegistry()
	sh.RegisterOn(r, "pmpr_window")
	var buf bytes.Buffer
	r.WriteProm(&buf)
	out := buf.String()
	for _, name := range []string{
		"pmpr_window_wall_seconds", "pmpr_window_iterations", "pmpr_window_residual",
	} {
		if !strings.Contains(out, "# TYPE "+name+" histogram") {
			t.Fatalf("missing histogram %s in exposition:\n%s", name, out)
		}
		if !strings.Contains(out, name+"_count 1") {
			t.Fatalf("%s_count != 1:\n%s", name, out)
		}
	}
}
