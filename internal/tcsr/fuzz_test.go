package tcsr_test

import (
	"testing"

	"pmpr/internal/events"
	"pmpr/internal/invariant"
	"pmpr/internal/tcsr"
)

// FuzzBuildTCSR decodes an arbitrary byte string into an event log,
// builds the postmortem representation under fuzzed window parameters,
// and asserts the full structural invariant catalog: temporal CSR
// layout, local-relabel bijectivity, multi-window partition, and exact
// window coverage of the log. The test package is external because
// internal/invariant imports tcsr.
func FuzzBuildTCSR(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 2, 2, 3, 4, 0, 4, 1}, int64(6), int64(4), 4, 2, true)
	f.Add([]byte{0, 0, 0}, int64(0), int64(1), 1, 1, false)
	f.Add([]byte{5, 9, 1, 9, 5, 3}, int64(2), int64(7), 9, 3, true)
	f.Fuzz(func(t *testing.T, data []byte, delta, slide int64, count, numMW int, directed bool) {
		// Bound the fuzzed parameters: the validators walk every window.
		if delta < 0 || slide <= 0 || count <= 0 || count > 64 || numMW < 1 {
			return
		}
		if delta > 1<<20 || slide > 1<<20 {
			return
		}
		l := decodeLog(t, data)
		if l == nil {
			return
		}
		if !directed {
			l = l.Symmetrize()
		}
		spec := events.WindowSpec{T0: 0, Delta: delta, Slide: slide, Count: count}
		tg, err := tcsr.Build(l, spec, numMW, directed)
		if err != nil {
			t.Fatalf("Build rejected a valid spec: %v", err)
		}
		if err := invariant.CheckTemporal(tg); err != nil {
			t.Fatalf("structural invariants violated: %v", err)
		}
		if err := invariant.CheckCoverage(tg, l); err != nil {
			t.Fatalf("coverage invariants violated: %v", err)
		}
	})
}

// decodeLog deterministically turns a fuzzer byte string into a small
// sorted event log: bytes are consumed in (u, v, dt) triples.
func decodeLog(t *testing.T, data []byte) *events.Log {
	t.Helper()
	if len(data) < 3 || len(data) > 3*256 {
		return nil
	}
	var evs []events.Event
	var now int64
	for i := 0; i+2 < len(data); i += 3 {
		now += int64(data[i+2] % 16)
		evs = append(evs, events.Event{
			U: int32(data[i] % 16),
			V: int32(data[i+1] % 16),
			T: now,
		})
	}
	l, err := events.NewLog(evs, 16)
	if err != nil {
		t.Fatalf("NewLog on sorted synthetic events: %v", err)
	}
	return l
}
