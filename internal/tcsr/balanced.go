package tcsr

import (
	"fmt"

	"pmpr/internal/events"
)

// BuildBalanced constructs the postmortem representation like Build,
// but partitions the window sequence so that every multi-window graph
// holds roughly the same number of *events* rather than the same number
// of windows. The paper's conclusion calls the uniform split out as
// future work: "we partitioned the temporal data in multi-windows with
// equal number of graphs, but this may not be the decomposition that
// minimize memory and work overheads". On temporally bursty data
// (enron, epinions) the uniform split gives one multi-window graph most
// of the events, so every window inside it sweeps far more edges than
// it has; balancing by events evens the per-window sweep cost.
//
// The split is computed greedily over the prefix sums of per-window
// event counts: multi-window w ends at the first window where its share
// reaches (total events)/numMW. Every multi-window graph keeps at least
// one window, so the result has min(numMW, spec.Count) graphs.
func BuildBalanced(l *events.Log, spec events.WindowSpec, numMW int, directed bool) (*Temporal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if numMW < 1 {
		return nil, fmt.Errorf("tcsr: number of multi-window graphs %d must be >= 1", numMW)
	}
	if numMW > spec.Count {
		numMW = spec.Count
	}
	// Per-window event counts (with window overlap an event is counted
	// once per window it belongs to, matching the sweep cost it causes).
	load := make([]int64, spec.Count)
	var total int64
	for w := 0; w < spec.Count; w++ {
		c := int64(l.CountInRange(spec.Start(w), spec.End(w)))
		load[w] = c
		total += c
	}

	t := &Temporal{
		Spec:        spec,
		Directed:    directed,
		numVertices: l.NumVertices(),
		winToMW:     make([]int, spec.Count),
	}
	lo := 0
	var acc int64
	for i := 0; i < numMW; i++ {
		remainingMW := numMW - i
		remainingWin := spec.Count - lo
		// Leave at least one window per remaining multi-window graph.
		hi := lo + 1
		if remainingWin > remainingMW {
			target := acc + (total-acc)/int64(remainingMW)
			sum := acc + load[lo]
			for hi < spec.Count-(remainingMW-1) && sum < target {
				sum += load[hi]
				hi++
			}
			acc = sum
		} else {
			acc += load[lo]
		}
		if i == numMW-1 {
			hi = spec.Count
		}
		mw, err := buildMW(l, spec, lo, hi, directed)
		if err != nil {
			return nil, err
		}
		t.MWs = append(t.MWs, mw)
		for w := lo; w < hi; w++ {
			t.winToMW[w] = i
		}
		lo = hi
	}
	return t, nil
}
