// Package tcsr implements the paper's temporal CSR representation
// (Sec. 4.1, Fig. 3) and its partition into multi-window graphs.
//
// A temporal CSR extends CSR with a parallel timestamp vector: the
// adjacency of a vertex is the concatenation of "runs", one run per
// distinct neighbor, holding the ascending timestamps of the events
// between the pair. An edge exists in window i iff one of its run's
// timestamps falls inside [T_i, T_i+delta].
//
// Because |Events| can be arbitrarily larger than any single window's
// edge count, the window sequence is split uniformly into multi-window
// graphs; each stores only the events relevant to its windows, over a
// relabeled local vertex set. Events whose lifetime straddles a
// boundary are replicated, so sum_w |E_w| >= |Events| (the paper's
// memory/work trade-off).
package tcsr

import (
	"fmt"
	"sort"

	"pmpr/internal/events"
)

// Temporal is the postmortem representation of a temporal graph: the
// sliding-window spec plus one MultiWindow graph per contiguous chunk of
// windows.
type Temporal struct {
	Spec     events.WindowSpec
	Directed bool
	// MWs are the multi-window graphs in window order.
	MWs []*MultiWindow

	numVertices int32
	winToMW     []int // global window index -> index into MWs
}

// MultiWindow is the temporal CSR of a contiguous range of windows over
// its local (relabeled) vertex set.
//
// The raw CSR fields are exported for the hot kernels in internal/core;
// they must be treated as read-only. InRow/InCol/InTime describe
// in-adjacency (used by the pull PageRank kernel); OutRow/OutCol/OutTime
// describe out-adjacency (used to compute per-window out-degrees). For
// an undirected (symmetrized) build the two views alias the same
// arrays.
type MultiWindow struct {
	// WinLo, WinHi delimit the global window indices [WinLo, WinHi).
	WinLo, WinHi int

	// In-adjacency: the in-runs of local vertex v occupy
	// InCol[InRow[v]:InRow[v+1]] (local neighbor ids) and the parallel
	// InTime slice, sorted by (neighbor, time).
	InRow  []int64
	InCol  []int32
	InTime []int64

	// Out-adjacency, same layout keyed by source vertex.
	OutRow  []int64
	OutCol  []int32
	OutTime []int64

	spec     events.WindowSpec // global spec
	globalID []int32           // local -> global vertex id
	localID  map[int32]int32   // global -> local vertex id
	events   int               // number of events stored (= len(OutCol))
}

// Build constructs the postmortem representation of l for the given
// window spec, partitioned into numMW multi-window graphs. When
// directed is false the adjacency is shared between the in and out
// views (the caller should have symmetrized the log; Build does not
// symmetrize).
func Build(l *events.Log, spec events.WindowSpec, numMW int, directed bool) (*Temporal, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if numMW < 1 {
		return nil, fmt.Errorf("tcsr: number of multi-window graphs %d must be >= 1", numMW)
	}
	if numMW > spec.Count {
		numMW = spec.Count
	}
	t := &Temporal{
		Spec:        spec,
		Directed:    directed,
		numVertices: l.NumVertices(),
		winToMW:     make([]int, spec.Count),
	}
	base := spec.Count / numMW
	rem := spec.Count % numMW
	lo := 0
	for i := 0; i < numMW; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		mw, err := buildMW(l, spec, lo, hi, directed)
		if err != nil {
			return nil, err
		}
		t.MWs = append(t.MWs, mw)
		for w := lo; w < hi; w++ {
			t.winToMW[w] = i
		}
		lo = hi
	}
	return t, nil
}

// NumVertices returns the size of the global vertex universe.
func (t *Temporal) NumVertices() int32 { return t.numVertices }

// ForWindow returns the multi-window graph containing global window w.
func (t *Temporal) ForWindow(w int) *MultiWindow { return t.MWs[t.winToMW[w]] }

// TotalStoredEvents returns sum_w |E_w|: the number of event copies
// across all multi-window graphs (>= |Events| due to boundary
// replication).
func (t *Temporal) TotalStoredEvents() int64 {
	var s int64
	for _, mw := range t.MWs {
		s += int64(mw.events)
	}
	return s
}

// MemoryBytes estimates the representation's footprint, the quantity
// the paper sizes against system memory: encoding*(sum |Vw| + 2*|Ew|)
// plus the local-id maps.
func (t *Temporal) MemoryBytes() int64 {
	var b int64
	for _, mw := range t.MWs {
		b += int64(len(mw.InRow))*8 + int64(len(mw.InCol))*4 + int64(len(mw.InTime))*8
		if mw.OutColAliased() {
			continue
		}
		b += int64(len(mw.OutRow))*8 + int64(len(mw.OutCol))*4 + int64(len(mw.OutTime))*8
	}
	return b
}

// OutColAliased reports whether the out view shares storage with the in
// view (undirected build).
func (mw *MultiWindow) OutColAliased() bool {
	return len(mw.InCol) > 0 && len(mw.OutCol) > 0 && &mw.InCol[0] == &mw.OutCol[0]
}

// NumLocal returns |Vw|, the size of the local vertex set.
func (mw *MultiWindow) NumLocal() int32 { return int32(len(mw.globalID)) }

// NumWindows returns how many windows this multi-window graph covers.
func (mw *MultiWindow) NumWindows() int { return mw.WinHi - mw.WinLo }

// NumEvents returns |Ew|, the number of stored events.
func (mw *MultiWindow) NumEvents() int { return mw.events }

// GlobalID maps a local vertex id to the global id.
func (mw *MultiWindow) GlobalID(local int32) int32 { return mw.globalID[local] }

// GlobalIDs returns the local->global table (read-only), sorted
// ascending by global id.
func (mw *MultiWindow) GlobalIDs() []int32 { return mw.globalID }

// LocalID maps a global vertex id to the local id, or -1 when the
// vertex does not appear in this multi-window graph.
func (mw *MultiWindow) LocalID(global int32) int32 {
	if l, ok := mw.localID[global]; ok {
		return l
	}
	return -1
}

// Window returns the closed interval [ts, te] of global window w, which
// must lie in [WinLo, WinHi).
func (mw *MultiWindow) Window(w int) (ts, te int64) {
	return mw.spec.Start(w), mw.spec.End(w)
}

// Spec returns the global window spec.
func (mw *MultiWindow) Spec() events.WindowSpec { return mw.spec }

// RunActive reports whether any timestamp of the ascending slice times
// lies in [ts, te]. It is the edge-liveness test of the representation.
func RunActive(times []int64, ts, te int64) bool {
	// Runs are typically tiny (a handful of repeat events per pair);
	// a linear scan with early exit beats binary search in practice.
	for _, t := range times {
		if t > te {
			return false
		}
		if t >= ts {
			return true
		}
	}
	return false
}

// OutDegrees fills deg (length NumLocal) with the per-window
// out-degrees: the number of distinct out-neighbors of each local
// vertex active in global window w. It returns the number of active
// vertices (vertices with at least one active incident edge; for the
// directed case a vertex with only in-edges is counted via indegMark).
func (mw *MultiWindow) OutDegrees(w int, deg []int32) (active int32) {
	ts, te := mw.Window(w)
	n := mw.NumLocal()
	hasIn := make([]bool, n)
	for v := int32(0); v < n; v++ {
		deg[v] = 0
	}
	for u := int32(0); u < n; u++ {
		start, end := mw.OutRow[u], mw.OutRow[u+1]
		i := start
		for i < end {
			j := i + 1
			for j < end && mw.OutCol[j] == mw.OutCol[i] {
				j++
			}
			if RunActive(mw.OutTime[i:j], ts, te) {
				deg[u]++
				hasIn[mw.OutCol[i]] = true
			}
			i = j
		}
	}
	for v := int32(0); v < n; v++ {
		if deg[v] > 0 || hasIn[v] {
			active++
		}
	}
	return active
}

// ActiveEdges counts the distinct directed edges active in window w.
func (mw *MultiWindow) ActiveEdges(w int) int64 {
	ts, te := mw.Window(w)
	var m int64
	n := mw.NumLocal()
	for u := int32(0); u < n; u++ {
		start, end := mw.OutRow[u], mw.OutRow[u+1]
		i := start
		for i < end {
			j := i + 1
			for j < end && mw.OutCol[j] == mw.OutCol[i] {
				j++
			}
			if RunActive(mw.OutTime[i:j], ts, te) {
				m++
			}
			i = j
		}
	}
	return m
}

func buildMW(l *events.Log, spec events.WindowSpec, winLo, winHi int, directed bool) (*MultiWindow, error) {
	ts := spec.Start(winLo)
	te := spec.End(winHi - 1)
	slice := l.Slice(ts, te)

	// Filter to events covered by at least one window in [winLo, winHi):
	// when Slide > Delta the union of windows has gaps inside [ts, te].
	relevant := slice
	if spec.Slide > spec.Delta {
		relevant = make([]events.Event, 0, len(slice))
		for _, e := range slice {
			lo, hi, ok := spec.Covering(e.T)
			if ok && lo < winHi && hi >= winLo {
				relevant = append(relevant, e)
			}
		}
	}

	mw := &MultiWindow{
		WinLo:   winLo,
		WinHi:   winHi,
		spec:    spec,
		localID: make(map[int32]int32),
		events:  len(relevant),
	}

	// Local vertex set: endpoints of relevant events, relabeled in
	// ascending global-id order so partial initialization across
	// consecutive windows of the same multi-window stays index-aligned.
	seen := make(map[int32]bool)
	for _, e := range relevant {
		seen[e.U] = true
		seen[e.V] = true
	}
	mw.globalID = make([]int32, 0, len(seen))
	for g := range seen {
		mw.globalID = append(mw.globalID, g)
	}
	sort.Slice(mw.globalID, func(i, j int) bool { return mw.globalID[i] < mw.globalID[j] })
	for local, g := range mw.globalID {
		mw.localID[g] = int32(local)
	}

	mw.OutRow, mw.OutCol, mw.OutTime = buildSide(relevant, mw, false)
	if directed {
		mw.InRow, mw.InCol, mw.InTime = buildSide(relevant, mw, true)
	} else {
		mw.InRow, mw.InCol, mw.InTime = mw.OutRow, mw.OutCol, mw.OutTime
	}
	return mw, nil
}

// buildSide builds one temporal CSR side over local ids, runs sorted by
// (neighbor, time).
func buildSide(evs []events.Event, mw *MultiWindow, reversed bool) ([]int64, []int32, []int64) {
	n := mw.NumLocal()
	row := make([]int64, n+1)
	for _, e := range evs {
		src := e.U
		if reversed {
			src = e.V
		}
		row[mw.localID[src]+1]++
	}
	for i := int32(0); i < n; i++ {
		row[i+1] += row[i]
	}
	col := make([]int32, len(evs))
	tim := make([]int64, len(evs))
	next := make([]int64, n)
	copy(next, row[:n])
	for _, e := range evs {
		src, dst := e.U, e.V
		if reversed {
			src, dst = dst, src
		}
		ls := mw.localID[src]
		p := next[ls]
		col[p] = mw.localID[dst]
		tim[p] = e.T
		next[ls] = p + 1
	}
	// Sort each adjacency run by (neighbor, time). Events arrive
	// time-sorted, so within equal neighbors the times are already
	// ascending; a stable sort by neighbor preserves that.
	for u := int32(0); u < n; u++ {
		lo, hi := row[u], row[u+1]
		run := runSorter{col: col[lo:hi], tim: tim[lo:hi]}
		sort.Stable(run)
	}
	return row, col, tim
}

type runSorter struct {
	col []int32
	tim []int64
}

func (r runSorter) Len() int           { return len(r.col) }
func (r runSorter) Less(i, j int) bool { return r.col[i] < r.col[j] }
func (r runSorter) Swap(i, j int) {
	r.col[i], r.col[j] = r.col[j], r.col[i]
	r.tim[i], r.tim[j] = r.tim[j], r.tim[i]
}
