package tcsr

import (
	"math/rand"
	"sort"
	"testing"

	"pmpr/internal/events"
)

// naiveWindowAdjacency builds the undirected deduplicated adjacency of
// one window straight from the event list.
func naiveWindowAdjacency(l *events.Log, ts, te int64, n int32) map[int32]map[int32]bool {
	adj := make(map[int32]map[int32]bool)
	add := func(a, b int32) {
		if adj[a] == nil {
			adj[a] = make(map[int32]bool)
		}
		adj[a][b] = true
	}
	for _, e := range l.Slice(ts, te) {
		add(e.U, e.V)
		add(e.V, e.U)
	}
	return adj
}

func TestMaterializeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		n := int32(rng.Intn(25) + 2)
		evs := randomTemporalLog(rng, n, rng.Intn(300)+10, 1500)
		l, _ := events.NewLog(evs, n)
		spec, err := events.Span(l, int64(rng.Intn(300)+1), int64(rng.Intn(120)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, directed := range []bool{true, false} {
			src := l
			if !directed {
				src = l.Symmetrize()
			}
			tg, err := Build(src, spec, 3, directed)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			var view WindowView
			for w := 0; w < spec.Count; w++ {
				mw := tg.ForWindow(w)
				mw.Materialize(w, &view)
				want := naiveWindowAdjacency(src, spec.Start(w), spec.End(w), n)
				var wantActive int32
				for v := int32(0); v < mw.NumLocal(); v++ {
					g := mw.GlobalID(v)
					got := view.Col[view.Row[v]:view.Row[v+1]]
					if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
						t.Fatalf("trial %d w %d: neighbors unsorted", trial, w)
					}
					for k := 1; k < len(got); k++ {
						if got[k] == got[k-1] {
							t.Fatalf("trial %d w %d: duplicate neighbor", trial, w)
						}
					}
					if len(got) != len(want[g]) {
						t.Fatalf("trial %d w %d vertex %d: %d neighbors, want %d (directed=%v)",
							trial, w, g, len(got), len(want[g]), directed)
					}
					for _, nb := range got {
						if !want[g][mw.GlobalID(nb)] {
							t.Fatalf("trial %d w %d: phantom neighbor %d of %d", trial, w, mw.GlobalID(nb), g)
						}
					}
					if view.Active[v] != (len(want[g]) > 0) {
						t.Fatalf("trial %d w %d vertex %d: active=%v want %v", trial, w, g, view.Active[v], len(want[g]) > 0)
					}
					if len(want[g]) > 0 {
						wantActive++
					}
				}
				if view.NumActive != wantActive {
					t.Fatalf("trial %d w %d: NumActive=%d want %d", trial, w, view.NumActive, wantActive)
				}
			}
		}
	}
}

func TestMaterializeBufferReuse(t *testing.T) {
	l, _ := events.NewLog([]events.Event{
		ev(0, 1, 0), ev(1, 2, 5), ev(2, 3, 10), ev(3, 0, 15),
	}, 4)
	spec := events.WindowSpec{T0: 0, Delta: 7, Slide: 5, Count: 3}
	tg, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var view WindowView
	mw := tg.MWs[0]
	mw.Materialize(0, &view)
	colPtr := &view.Col[:1][0]
	mw.Materialize(1, &view) // smaller or equal — must reuse buffers
	if len(view.Col) > 0 && &view.Col[:1][0] != colPtr {
		t.Fatal("Col buffer reallocated despite sufficient capacity")
	}
	// Correct content after reuse.
	mw.Materialize(2, &view)
	loc := mw.LocalID(2)
	got := view.Col[view.Row[loc]:view.Row[loc+1]]
	// Window 2 = [10,17]: events (2,3,10) and (3,0,15): vertex 2 has
	// neighbor 3 only.
	if len(got) != 1 || mw.GlobalID(got[0]) != 3 {
		t.Fatalf("window 2 adjacency of vertex 2 = %v", got)
	}
}

func TestMaterializeEmptyWindow(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 1, Slide: 100, Count: 2}
	tg, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var view WindowView
	tg.MWs[0].Materialize(1, &view)
	if view.NumActive != 0 || view.Row[len(view.Row)-1] != 0 {
		t.Fatalf("empty window produced %d active, %d edges", view.NumActive, view.Row[len(view.Row)-1])
	}
}
