package tcsr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pmpr/internal/csr"
	"pmpr/internal/events"
)

func ev(u, v int32, t int64) events.Event { return events.Event{U: u, V: v, T: t} }

// paperExample builds the temporal edge list of the paper's Fig. 2a,
// with dates as day offsets from 6/1/2021. Vertices are 1..7.
func paperExample(t *testing.T) (*events.Log, events.WindowSpec) {
	t.Helper()
	raw := []events.Event{
		ev(1, 2, 20),  // 06/21
		ev(3, 5, 24),  // 06/25
		ev(4, 6, 40),  // 07/11
		ev(2, 3, 61),  // 08/01
		ev(2, 4, 71),  // 08/11
		ev(5, 6, 104), // 09/13
		ev(2, 7, 123), // 10/02
		ev(4, 7, 126), // 10/05
		ev(5, 7, 127), // 10/06
		ev(6, 7, 130), // 10/09
		ev(1, 2, 157), // 11/05
		ev(1, 3, 158), // 11/06
		ev(2, 5, 161), // 11/09
		ev(3, 5, 164), // 11/12
	}
	l, err := events.NewLog(raw, 8)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	// Window size 3.5 months ~ 106 days, sliding offset 1 month ~ 30
	// days: windows [0,106], [30,136], [60?,166?] -- the paper's third
	// window starts 8/1 (day 61); the spec derives starts 0,30,60 which
	// keeps the same active sets.
	return l.Symmetrize(), events.WindowSpec{T0: 0, Delta: 106, Slide: 30, Count: 3}
}

// activeUndirectedEdges extracts the set of undirected active pairs in
// window w from a multi-window graph.
func activeUndirectedEdges(mw *MultiWindow, w int) map[[2]int32]bool {
	ts, te := mw.Window(w)
	out := make(map[[2]int32]bool)
	for u := int32(0); u < mw.NumLocal(); u++ {
		start, end := mw.OutRow[u], mw.OutRow[u+1]
		i := start
		for i < end {
			j := i + 1
			for j < end && mw.OutCol[j] == mw.OutCol[i] {
				j++
			}
			if RunActive(mw.OutTime[i:j], ts, te) {
				a, b := mw.GlobalID(u), mw.GlobalID(mw.OutCol[i])
				if a > b {
					a, b = b, a
				}
				out[[2]int32{a, b}] = true
			}
			i = j
		}
	}
	return out
}

func TestPaperExampleFig2(t *testing.T) {
	l, spec := paperExample(t)
	tg, err := Build(l, spec, 1, false)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mw := tg.MWs[0]
	// Fig. 3: 14 undirected events stored as 28 temporal CSR entries.
	if mw.NumEvents() != 28 {
		t.Fatalf("stored events = %d, want 28", mw.NumEvents())
	}
	want := []map[[2]int32]bool{
		{ // T1: 6 edges
			{1, 2}: true, {3, 5}: true, {4, 6}: true, {2, 3}: true, {2, 4}: true, {5, 6}: true,
		},
		{ // T2: 8 edges
			{4, 6}: true, {2, 3}: true, {2, 4}: true, {5, 6}: true,
			{2, 7}: true, {4, 7}: true, {5, 7}: true, {6, 7}: true,
		},
		{ // T3: 11 edges
			{2, 3}: true, {2, 4}: true, {5, 6}: true, {2, 7}: true, {4, 7}: true,
			{5, 7}: true, {6, 7}: true, {1, 2}: true, {1, 3}: true, {2, 5}: true, {3, 5}: true,
		},
	}
	for w := 0; w < 3; w++ {
		got := activeUndirectedEdges(mw, w)
		if len(got) != len(want[w]) {
			t.Fatalf("window %d: %d active edges, want %d (%v)", w, len(got), len(want[w]), got)
		}
		for e := range want[w] {
			if !got[e] {
				t.Fatalf("window %d: missing edge %v", w, e)
			}
		}
	}
}

func TestPaperExampleRunsSorted(t *testing.T) {
	l, spec := paperExample(t)
	tg, err := Build(l, spec, 1, false)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mw := tg.MWs[0]
	for u := int32(0); u < mw.NumLocal(); u++ {
		lo, hi := mw.InRow[u], mw.InRow[u+1]
		for i := lo + 1; i < hi; i++ {
			if mw.InCol[i] < mw.InCol[i-1] {
				t.Fatalf("vertex %d: neighbors unsorted", u)
			}
			if mw.InCol[i] == mw.InCol[i-1] && mw.InTime[i] < mw.InTime[i-1] {
				t.Fatalf("vertex %d: times within run unsorted", u)
			}
		}
	}
}

func randomTemporalLog(rng *rand.Rand, n int32, m int, span int64) []events.Event {
	evs := make([]events.Event, m)
	tcur := int64(0)
	for i := range evs {
		tcur += rng.Int63n(span/int64(m) + 1)
		evs[i] = ev(int32(rng.Intn(int(n))), int32(rng.Intn(int(n))), tcur)
	}
	return evs
}

// windowEdgesViaCSR is the oracle: rebuild the window graph from the
// raw event slice and collect its directed edges in global ids.
func windowEdgesViaCSR(t *testing.T, l *events.Log, ts, te int64) map[[2]int32]bool {
	t.Helper()
	g, err := csr.FromLogWindow(l, ts, te)
	if err != nil {
		t.Fatalf("FromLogWindow: %v", err)
	}
	out := make(map[[2]int32]bool)
	for u := int32(0); u < g.NumVertices(); u++ {
		for _, v := range g.OutNeighbors(u) {
			out[[2]int32{u, v}] = true
		}
	}
	return out
}

func directedActiveEdges(mw *MultiWindow, w int) map[[2]int32]bool {
	ts, te := mw.Window(w)
	out := make(map[[2]int32]bool)
	for u := int32(0); u < mw.NumLocal(); u++ {
		start, end := mw.OutRow[u], mw.OutRow[u+1]
		i := start
		for i < end {
			j := i + 1
			for j < end && mw.OutCol[j] == mw.OutCol[i] {
				j++
			}
			if RunActive(mw.OutTime[i:j], ts, te) {
				out[[2]int32{mw.GlobalID(u), mw.GlobalID(mw.OutCol[i])}] = true
			}
			i = j
		}
	}
	return out
}

func TestWindowGraphsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := int32(rng.Intn(30) + 2)
		evs := randomTemporalLog(rng, n, rng.Intn(400)+10, 2000)
		l, err := events.NewLog(evs, n)
		if err != nil {
			t.Fatalf("NewLog: %v", err)
		}
		delta := int64(rng.Intn(300) + 1)
		slide := int64(rng.Intn(150) + 1)
		spec, err := events.Span(l, delta, slide)
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		for _, numMW := range []int{1, 2, 5, spec.Count} {
			tg, err := Build(l, spec, numMW, true)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			for w := 0; w < spec.Count; w++ {
				mw := tg.ForWindow(w)
				if w < mw.WinLo || w >= mw.WinHi {
					t.Fatalf("ForWindow(%d) returned MW [%d,%d)", w, mw.WinLo, mw.WinHi)
				}
				got := directedActiveEdges(mw, w)
				want := windowEdgesViaCSR(t, l, spec.Start(w), spec.End(w))
				if len(got) != len(want) {
					t.Fatalf("trial %d numMW %d window %d: %d edges, oracle %d",
						trial, numMW, w, len(got), len(want))
				}
				for e := range want {
					if !got[e] {
						t.Fatalf("trial %d window %d: missing edge %v", trial, w, e)
					}
				}
			}
		}
	}
}

func TestReplicationAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := int32(20)
	evs := randomTemporalLog(rng, n, 300, 1000)
	l, _ := events.NewLog(evs, n)
	spec, err := events.Span(l, 100, 20) // overlapping windows cover all events
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	one, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if one.TotalStoredEvents() != int64(l.Len()) {
		t.Fatalf("single MW stores %d events, want %d", one.TotalStoredEvents(), l.Len())
	}
	many, err := Build(l, spec, 8, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if many.TotalStoredEvents() < int64(l.Len()) {
		t.Fatalf("partitioned representation stores %d < |Events| %d",
			many.TotalStoredEvents(), l.Len())
	}
	if many.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes should be positive")
	}
}

func TestGapFilteringWhenSlideExceedsDelta(t *testing.T) {
	// slide=100, delta=10: events in (T0+10, T0+100) fall in no window.
	evs := []events.Event{
		ev(0, 1, 0),   // window 0
		ev(1, 2, 50),  // gap: no window
		ev(2, 3, 100), // window 1
	}
	l, _ := events.NewLog(evs, 4)
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 100, Count: 2}
	tg, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := tg.MWs[0].NumEvents(); got != 2 {
		t.Fatalf("stored %d events, want 2 (gap event dropped)", got)
	}
	if tg.MWs[0].LocalID(1) == -1 || tg.MWs[0].LocalID(2) == -1 {
		t.Fatal("window-active vertices missing")
	}
}

func TestLocalIDMapping(t *testing.T) {
	evs := []events.Event{ev(5, 9, 10), ev(9, 2, 20)}
	l, _ := events.NewLog(evs, 12)
	spec := events.WindowSpec{T0: 10, Delta: 10, Slide: 5, Count: 3}
	tg, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mw := tg.MWs[0]
	if mw.NumLocal() != 3 {
		t.Fatalf("NumLocal = %d, want 3", mw.NumLocal())
	}
	ids := mw.GlobalIDs()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("global ids unsorted: %v", ids)
	}
	for local, g := range ids {
		if mw.LocalID(g) != int32(local) {
			t.Fatalf("LocalID(GlobalID(%d)) = %d", local, mw.LocalID(g))
		}
	}
	if mw.LocalID(0) != -1 {
		t.Fatal("absent vertex should map to -1")
	}
}

func TestOutDegreesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := int32(rng.Intn(25) + 2)
		evs := randomTemporalLog(rng, n, rng.Intn(300)+5, 1500)
		l, _ := events.NewLog(evs, n)
		spec, err := events.Span(l, int64(rng.Intn(200)+1), int64(rng.Intn(100)+1))
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		tg, err := Build(l, spec, 3, true)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		for w := 0; w < spec.Count; w++ {
			mw := tg.ForWindow(w)
			deg := make([]int32, mw.NumLocal())
			active := mw.OutDegrees(w, deg)
			g, err := csr.FromLogWindow(l, spec.Start(w), spec.End(w))
			if err != nil {
				t.Fatalf("oracle: %v", err)
			}
			if active != g.ActiveCount() {
				t.Fatalf("trial %d window %d: active = %d, oracle %d", trial, w, active, g.ActiveCount())
			}
			for local := int32(0); local < mw.NumLocal(); local++ {
				gid := mw.GlobalID(local)
				if int64(deg[local]) != g.OutDegree(gid) {
					t.Fatalf("trial %d window %d vertex %d: deg %d, oracle %d",
						trial, w, gid, deg[local], g.OutDegree(gid))
				}
			}
		}
	}
}

func TestDirectedBuildsDistinctInView(t *testing.T) {
	evs := []events.Event{ev(0, 1, 5)}
	l, _ := events.NewLog(evs, 2)
	spec := events.WindowSpec{T0: 5, Delta: 1, Slide: 1, Count: 1}
	dg, err := Build(l, spec, 1, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mw := dg.MWs[0]
	if mw.OutColAliased() {
		t.Fatal("directed build should not alias in/out views")
	}
	// Vertex 0 (local 0) has out-edge, no in-edge.
	if mw.OutRow[1]-mw.OutRow[0] != 1 || mw.InRow[1]-mw.InRow[0] != 0 {
		t.Fatal("directed adjacency wrong for source vertex")
	}
	ug, err := Build(l.Symmetrize(), spec, 1, false)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !ug.MWs[0].OutColAliased() {
		t.Fatal("undirected build should alias in/out views")
	}
}

func TestBuildValidation(t *testing.T) {
	l, _ := events.NewLog([]events.Event{ev(0, 1, 5)}, 2)
	spec := events.WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 4}
	if _, err := Build(l, spec, 0, true); err == nil {
		t.Fatal("numMW=0 accepted")
	}
	if _, err := Build(l, events.WindowSpec{T0: 0, Delta: -1, Slide: 5, Count: 4}, 1, true); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// numMW > Count is clamped, not an error.
	tg, err := Build(l, spec, 100, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(tg.MWs) != spec.Count {
		t.Fatalf("got %d MWs, want clamp to %d", len(tg.MWs), spec.Count)
	}
}

func TestPartitionCoversAllWindowsOnce(t *testing.T) {
	f := func(countRaw, numMWRaw uint8) bool {
		count := int(countRaw%60) + 1
		numMW := int(numMWRaw%20) + 1
		l, err := events.NewLog([]events.Event{ev(0, 1, 0)}, 2)
		if err != nil {
			return false
		}
		spec := events.WindowSpec{T0: 0, Delta: 5, Slide: 3, Count: count}
		tg, err := Build(l, spec, numMW, true)
		if err != nil {
			return false
		}
		prevHi := 0
		for _, mw := range tg.MWs {
			if mw.WinLo != prevHi || mw.WinHi <= mw.WinLo {
				return false
			}
			prevHi = mw.WinHi
		}
		if prevHi != count {
			return false
		}
		// Uniform distribution: sizes differ by at most 1.
		lo, hi := count, 0
		for _, mw := range tg.MWs {
			if s := mw.NumWindows(); s < lo {
				lo = s
			}
			if s := mw.NumWindows(); s > hi {
				hi = s
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRunActive(t *testing.T) {
	cases := []struct {
		times  []int64
		ts, te int64
		want   bool
	}{
		{[]int64{5}, 5, 5, true},
		{[]int64{5}, 6, 10, false},
		{[]int64{5}, 1, 4, false},
		{[]int64{1, 9, 20}, 8, 10, true},
		{[]int64{1, 9, 20}, 10, 19, false},
		{[]int64{}, 0, 100, false},
		{[]int64{1, 2, 3}, 3, 3, true},
	}
	for _, c := range cases {
		if got := RunActive(c.times, c.ts, c.te); got != c.want {
			t.Errorf("RunActive(%v, %d, %d) = %v, want %v", c.times, c.ts, c.te, got, c.want)
		}
	}
}
