package tcsr

// WindowView is a compact, deduplicated adjacency snapshot of one
// window of a multi-window graph, in local vertex ids. Kernels that
// need many passes over a window's edges with direction-free semantics
// (connected components, k-core peeling) materialize a view once
// instead of re-filtering the temporal CSR on every pass.
//
// The view is undirected: the neighbors of v are the union of its
// active out- and in-neighbors (for symmetrized builds the two sides
// coincide). A view's buffers are reusable across windows via
// Materialize.
type WindowView struct {
	// Row/Col form a CSR over the multi-window local ids: the neighbors
	// of v are Col[Row[v]:Row[v+1]], sorted ascending, no duplicates.
	Row []int64
	Col []int32
	// Active flags vertices with at least one live incident edge.
	Active []bool
	// NumActive is the number of active vertices.
	NumActive int32
}

// SolveView is the build→solve handoff for the PageRank kernels: one
// window of a multi-window graph with its global id and time bounds
// already resolved. A kernel consumes the view instead of re-deriving
// window bounds from the representation, so the solve stage depends
// only on what the build stage hands it. The view is a cheap value
// (three words); it borrows the multi-window graph rather than copying
// edges, unlike the materialized WindowView.
type SolveView struct {
	// MW is the multi-window graph the window lives in.
	MW *MultiWindow
	// W is the global window index (WinLo-based id within Temporal.Spec).
	W int
	// Ts and Te bound the window's live events as consumed by RunActive:
	// an event at time t is in the window iff Ts <= t <= Te.
	Ts, Te int64
}

// ViewOf resolves global window w of mw into a solve view.
func (mw *MultiWindow) ViewOf(w int) SolveView {
	ts, te := mw.Window(w)
	return SolveView{MW: mw, W: w, Ts: ts, Te: te}
}

// Materialize fills the view with window w's adjacency. The view's
// slices are reused when large enough.
func (mw *MultiWindow) Materialize(w int, view *WindowView) {
	n := int(mw.NumLocal())
	ts, te := mw.Window(w)
	if cap(view.Row) < n+1 {
		view.Row = make([]int64, n+1)
	}
	view.Row = view.Row[:n+1]
	if cap(view.Active) < n {
		view.Active = make([]bool, n)
	}
	view.Active = view.Active[:n]

	aliased := mw.OutColAliased() || len(mw.InCol) == 0

	// Pass 1: count each vertex's active neighbors (merged, deduped).
	total := int64(0)
	for v := 0; v < n; v++ {
		view.Row[v] = total
		total += mw.mergeActive(int32(v), ts, te, aliased, nil)
	}
	view.Row[n] = total
	if cap(view.Col) < int(total) {
		view.Col = make([]int32, total)
	}
	view.Col = view.Col[:total]

	// Pass 2: fill.
	view.NumActive = 0
	for v := 0; v < n; v++ {
		dst := view.Col[view.Row[v]:view.Row[v+1]]
		mw.mergeActive(int32(v), ts, te, aliased, dst)
		act := len(dst) > 0
		view.Active[v] = act
		if act {
			view.NumActive++
		}
	}
}

// mergeActive walks the out- and in-runs of v (both sorted by
// neighbor), keeping neighbors with at least one live event on either
// side. With dst == nil it only counts; otherwise it writes into dst.
// It returns the number of distinct active neighbors.
func (mw *MultiWindow) mergeActive(v int32, ts, te int64, aliased bool, dst []int32) int64 {
	count := int64(0)
	emit := func(nbr int32) {
		if dst != nil {
			dst[count] = nbr
		}
		count++
	}
	oi, oEnd := mw.OutRow[v], mw.OutRow[v+1]
	var ii, iEnd int64
	if !aliased {
		ii, iEnd = mw.InRow[v], mw.InRow[v+1]
	}
	nextRun := func(col []int32, tim []int64, i, end int64) (nbr int32, active bool, next int64) {
		j := i + 1
		c := col[i]
		for j < end && col[j] == c {
			j++
		}
		return c, RunActive(tim[i:j], ts, te), j
	}
	var oNbr, iNbr int32
	var oAct, iAct bool
	oHave, iHave := false, false
	for {
		if !oHave && oi < oEnd {
			oNbr, oAct, oi = nextRun(mw.OutCol, mw.OutTime, oi, oEnd)
			oHave = true
		}
		if !aliased && !iHave && ii < iEnd {
			iNbr, iAct, ii = nextRun(mw.InCol, mw.InTime, ii, iEnd)
			iHave = true
		}
		switch {
		case oHave && iHave:
			switch {
			case oNbr < iNbr:
				if oAct {
					emit(oNbr)
				}
				oHave = false
			case iNbr < oNbr:
				if iAct {
					emit(iNbr)
				}
				iHave = false
			default:
				if oAct || iAct {
					emit(oNbr)
				}
				oHave, iHave = false, false
			}
		case oHave:
			if oAct {
				emit(oNbr)
			}
			oHave = false
		case iHave:
			if iAct {
				emit(iNbr)
			}
			iHave = false
		default:
			return count
		}
	}
}
