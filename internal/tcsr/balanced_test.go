package tcsr

import (
	"math/rand"
	"testing"

	"pmpr/internal/events"
)

// burstyLog produces a log where most events sit in a narrow burst, the
// regime the balanced partitioner targets.
func burstyLog(t *testing.T, seed int64) *events.Log {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var evs []events.Event
	tcur := int64(0)
	add := func(n int, step int64) {
		for i := 0; i < n; i++ {
			tcur += rng.Int63n(step) + 1
			evs = append(evs, ev(int32(rng.Intn(40)), int32(rng.Intn(40)), tcur))
		}
	}
	add(50, 50) // sparse prefix
	add(500, 1) // burst
	add(50, 50) // sparse suffix
	l, err := events.NewLog(evs, 40)
	if err != nil {
		t.Fatalf("NewLog: %v", err)
	}
	return l
}

func TestBuildBalancedSameWindowGraphs(t *testing.T) {
	l := burstyLog(t, 91)
	spec, err := events.Span(l, 300, 120)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	uni, err := Build(l, spec, 4, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bal, err := BuildBalanced(l, spec, 4, true)
	if err != nil {
		t.Fatalf("BuildBalanced: %v", err)
	}
	// Identical per-window edge sets regardless of the partitioning.
	for w := 0; w < spec.Count; w++ {
		a := directedActiveEdges(uni.ForWindow(w), w)
		b := directedActiveEdges(bal.ForWindow(w), w)
		if len(a) != len(b) {
			t.Fatalf("window %d: %d vs %d edges", w, len(a), len(b))
		}
		for e := range a {
			if !b[e] {
				t.Fatalf("window %d: balanced missing edge %v", w, e)
			}
		}
	}
}

func TestBuildBalancedPartitionIsValid(t *testing.T) {
	l := burstyLog(t, 92)
	for _, numMW := range []int{1, 2, 3, 5, 9} {
		spec, err := events.Span(l, 400, 90)
		if err != nil {
			t.Fatalf("Span: %v", err)
		}
		tg, err := BuildBalanced(l, spec, numMW, true)
		if err != nil {
			t.Fatalf("BuildBalanced(%d): %v", numMW, err)
		}
		prevHi := 0
		for _, mw := range tg.MWs {
			if mw.WinLo != prevHi || mw.WinHi <= mw.WinLo {
				t.Fatalf("numMW=%d: invalid MW range [%d, %d) after %d", numMW, mw.WinLo, mw.WinHi, prevHi)
			}
			prevHi = mw.WinHi
		}
		if prevHi != spec.Count {
			t.Fatalf("numMW=%d: partition covers %d of %d windows", numMW, prevHi, spec.Count)
		}
		want := numMW
		if want > spec.Count {
			want = spec.Count
		}
		if len(tg.MWs) != want {
			t.Fatalf("numMW=%d: got %d MWs", numMW, len(tg.MWs))
		}
	}
}

func TestBuildBalancedEvensLoad(t *testing.T) {
	l := burstyLog(t, 93)
	spec, err := events.Span(l, 200, 80)
	if err != nil {
		t.Fatalf("Span: %v", err)
	}
	imbalance := func(tg *Temporal) float64 {
		var maxE, sum int
		for _, mw := range tg.MWs {
			if mw.NumEvents() > maxE {
				maxE = mw.NumEvents()
			}
			sum += mw.NumEvents()
		}
		return float64(maxE) / (float64(sum) / float64(len(tg.MWs)))
	}
	uni, err := Build(l, spec, 4, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	bal, err := BuildBalanced(l, spec, 4, true)
	if err != nil {
		t.Fatalf("BuildBalanced: %v", err)
	}
	if len(uni.MWs) != len(bal.MWs) {
		t.Fatalf("MW counts differ: %d vs %d", len(uni.MWs), len(bal.MWs))
	}
	if imbalance(bal) >= imbalance(uni) {
		t.Fatalf("balanced partition not more even: %.2f vs %.2f", imbalance(bal), imbalance(uni))
	}
}

func TestBuildBalancedValidation(t *testing.T) {
	l := burstyLog(t, 94)
	spec, _ := events.Span(l, 200, 80)
	if _, err := BuildBalanced(l, spec, 0, true); err == nil {
		t.Fatal("numMW=0 accepted")
	}
	if _, err := BuildBalanced(l, events.WindowSpec{}, 2, true); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// Clamp when numMW > Count.
	tg, err := BuildBalanced(l, spec, 10000, true)
	if err != nil {
		t.Fatalf("BuildBalanced: %v", err)
	}
	if len(tg.MWs) != spec.Count {
		t.Fatalf("got %d MWs, want %d", len(tg.MWs), spec.Count)
	}
}

func TestBuildBalancedSingleMW(t *testing.T) {
	l := burstyLog(t, 95)
	spec, _ := events.Span(l, 200, 80)
	tg, err := BuildBalanced(l, spec, 1, true)
	if err != nil {
		t.Fatalf("BuildBalanced: %v", err)
	}
	if len(tg.MWs) != 1 || tg.MWs[0].WinLo != 0 || tg.MWs[0].WinHi != spec.Count {
		t.Fatalf("single MW wrong: %+v", tg.MWs[0])
	}
}
