package results

import (
	"bytes"
	"testing"
)

// FuzzRead asserts the series decoder never panics on corrupt input.
func FuzzRead(f *testing.F) {
	src := randomSource(3)
	var buf bytes.Buffer
	_ = Write(&buf, src)
	f.Add(buf.Bytes())
	f.Add([]byte("PMRS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		s, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent.
		if len(s.Windows) != s.Spec.Count {
			t.Fatalf("accepted series with %d windows for count %d", len(s.Windows), s.Spec.Count)
		}
		for _, w := range s.Windows {
			if len(w.Vertices) != len(w.Ranks) {
				t.Fatal("accepted window with mismatched slices")
			}
		}
	})
}
