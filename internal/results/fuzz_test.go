package results

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRead asserts the series decoder never panics on corrupt input,
// and that anything it accepts satisfies the full validation contract:
// structurally consistent windows (sequential labels, sorted in-range
// vertices, positive finite ranks) that survive a Write/Read round
// trip unchanged. Together these are the properties internal/serve
// relies on to build a RankStore without re-checking the data.
func FuzzRead(f *testing.F) {
	src := randomSource(3)
	var buf bytes.Buffer
	_ = Write(&buf, src)
	f.Add(buf.Bytes())
	f.Add([]byte("PMRS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		s, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted input must be internally consistent.
		if len(s.Windows) != s.Spec.Count {
			t.Fatalf("accepted series with %d windows for count %d", len(s.Windows), s.Spec.Count)
		}
		if s.NumVertices < 0 {
			t.Fatalf("accepted negative vertex count %d", s.NumVertices)
		}
		for i := range s.Windows {
			w := s.Window(i)
			if err := w.Validate(i, s.NumVertices); err != nil {
				t.Fatalf("accepted window violating its own invariants: %v", err)
			}
			// Dense must be safe on anything the decoder accepted; cap the
			// expansion so the fuzzer cannot make the harness allocate
			// gigabytes for a legitimately huge (but valid) header.
			if s.NumVertices <= 1<<16 {
				_ = w.Dense(s.NumVertices)
			}
		}
		// Valid-roundtrip property: an accepted series re-serializes and
		// decodes to itself.
		var out bytes.Buffer
		if err := Write(&out, s); err != nil {
			t.Fatalf("accepted series fails to re-serialize: %v", err)
		}
		s2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-serialized series rejected: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatal("series not stable under Write/Read round trip")
		}
	})
}
