// Package results serializes PageRank series for downstream analysis.
// The paper's premise is that "applications will have a downstream
// analysis that will depend on these vectors" (Sec. 2.2); this package
// gives those applications a compact on-disk interchange format.
//
// Format (little-endian): magic "PMRS", version uint32, then the
// window spec (t0, delta, slide int64; count uint32), numVertices
// int32, followed per window by: window index uint32, iterations
// uint32, flags uint8 (bit0 converged, bit1 partial init), entry count
// uint32, then entries of (vertex int32, rank float64) for positive
// ranks only — windows are sparse relative to the vertex universe.
package results

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"pmpr/internal/events"
)

const (
	magic   = "PMRS"
	version = 1

	flagConverged   = 1 << 0
	flagPartialInit = 1 << 1
)

// WindowRanks is one deserialized window.
type WindowRanks struct {
	Window          int
	Iterations      int
	Converged       bool
	UsedPartialInit bool
	// Vertices and Ranks are parallel slices of the positive entries,
	// sorted by vertex id.
	Vertices []int32
	Ranks    []float64
}

// Dense expands the sparse entries to a dense vector.
func (w *WindowRanks) Dense(numVertices int32) []float64 {
	out := make([]float64, numVertices)
	for i, v := range w.Vertices {
		out[v] = w.Ranks[i]
	}
	return out
}

// Series is a deserialized result file.
type Series struct {
	Spec        events.WindowSpec
	NumVertices int32
	Windows     []WindowRanks
}

// SeriesSource is what Write consumes: the subset of core.Series (or
// any other producer) it needs. Implementations yield windows in order.
type SeriesSource interface {
	SpecAndSize() (events.WindowSpec, int32)
	// WindowAt returns the sparse positive entries of window i sorted
	// by vertex, plus metadata.
	WindowAt(i int) WindowRanks
}

// Write serializes src.
func Write(w io.Writer, src SeriesSource) error {
	bw := bufio.NewWriter(w)
	spec, n := src.SpecAndSize()
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8*3+4+4)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(spec.T0))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(spec.Delta))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(spec.Slide))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(spec.Count))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(n))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for i := 0; i < spec.Count; i++ {
		wr := src.WindowAt(i)
		if len(wr.Vertices) != len(wr.Ranks) {
			return fmt.Errorf("results: window %d has %d vertices but %d ranks", i, len(wr.Vertices), len(wr.Ranks))
		}
		var flags uint8
		if wr.Converged {
			flags |= flagConverged
		}
		if wr.UsedPartialInit {
			flags |= flagPartialInit
		}
		whdr := make([]byte, 13)
		binary.LittleEndian.PutUint32(whdr[0:], uint32(wr.Window))
		binary.LittleEndian.PutUint32(whdr[4:], uint32(wr.Iterations))
		whdr[8] = flags
		binary.LittleEndian.PutUint32(whdr[9:], uint32(len(wr.Vertices)))
		if _, err := bw.Write(whdr); err != nil {
			return err
		}
		for j, v := range wr.Vertices {
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			binary.LittleEndian.PutUint64(rec[4:], uint64(floatBits(wr.Ranks[j])))
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a result file.
func Read(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("results: reading magic: %w", err)
	}
	if string(m) != magic {
		return nil, fmt.Errorf("results: bad magic %q", m)
	}
	hdr := make([]byte, 4+8*3+4+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("results: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != version {
		return nil, fmt.Errorf("results: unsupported version %d", v)
	}
	s := &Series{
		Spec: events.WindowSpec{
			T0:    int64(binary.LittleEndian.Uint64(hdr[4:])),
			Delta: int64(binary.LittleEndian.Uint64(hdr[12:])),
			Slide: int64(binary.LittleEndian.Uint64(hdr[20:])),
			Count: int(binary.LittleEndian.Uint32(hdr[28:])),
		},
		NumVertices: int32(binary.LittleEndian.Uint32(hdr[32:])),
	}
	const maxReasonable = 1 << 28
	if s.Spec.Count < 0 || s.Spec.Count > maxReasonable {
		return nil, fmt.Errorf("results: implausible window count %d", s.Spec.Count)
	}
	rec := make([]byte, 12)
	for i := 0; i < s.Spec.Count; i++ {
		whdr := make([]byte, 13)
		if _, err := io.ReadFull(br, whdr); err != nil {
			return nil, fmt.Errorf("results: window %d header: %w", i, err)
		}
		wr := WindowRanks{
			Window:          int(binary.LittleEndian.Uint32(whdr[0:])),
			Iterations:      int(binary.LittleEndian.Uint32(whdr[4:])),
			Converged:       whdr[8]&flagConverged != 0,
			UsedPartialInit: whdr[8]&flagPartialInit != 0,
		}
		count := binary.LittleEndian.Uint32(whdr[9:])
		if count > maxReasonable {
			return nil, fmt.Errorf("results: window %d has implausible entry count %d", i, count)
		}
		// Grow incrementally so a corrupt count fails with a truncation
		// error rather than a huge allocation.
		for j := uint32(0); j < count; j++ {
			if _, err := io.ReadFull(br, rec); err != nil {
				return nil, fmt.Errorf("results: window %d entry %d: %w", i, j, err)
			}
			wr.Vertices = append(wr.Vertices, int32(binary.LittleEndian.Uint32(rec[0:])))
			wr.Ranks = append(wr.Ranks, bitsFloat(binary.LittleEndian.Uint64(rec[4:])))
		}
		s.Windows = append(s.Windows, wr)
	}
	return s, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
