// Package results serializes PageRank series for downstream analysis.
// The paper's premise is that "applications will have a downstream
// analysis that will depend on these vectors" (Sec. 2.2); this package
// gives those applications a compact on-disk interchange format.
//
// Format (little-endian): magic "PMRS", version uint32, then the
// window spec (t0, delta, slide int64; count uint32), numVertices
// int32, followed per window by: window index uint32, iterations
// uint32, flags uint8 (bit0 converged, bit1 partial init), entry count
// uint32, then entries of (vertex int32, rank float64) for positive
// ranks only — windows are sparse relative to the vertex universe.
//
// Decoding is adversarial: Read validates every structural invariant
// (vertex ids in range, entries strictly sorted, finite positive
// ranks, windows in sequential order) and rejects violations with a
// structured *CorruptError, so consumers like internal/serve can trust
// a decoded Series without re-checking — Dense never indexes out of
// bounds and binary searches over Vertices are always well-defined.
// Write enforces the same invariants so a producer bug is caught at
// export time, not at the first downstream read.
package results

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"pmpr/internal/events"
)

const (
	magic   = "PMRS"
	version = 1

	flagConverged   = 1 << 0
	flagPartialInit = 1 << 1
)

// CorruptError reports a structural violation found while decoding or
// validating a rank series: an out-of-range vertex id, unsorted or
// duplicate entries, a misordered window record, an implausible count.
// IO-level failures (truncation, short reads) are reported as wrapped
// io errors instead, so callers can distinguish "the file is damaged"
// from "the file is lying".
type CorruptError struct {
	// Window is the window record the violation was found in, or -1
	// for header-level violations.
	Window int
	// Detail describes the violated invariant.
	Detail string
}

// Error renders the violation with its window context.
func (e *CorruptError) Error() string {
	if e.Window < 0 {
		return "results: corrupt series: " + e.Detail
	}
	return fmt.Sprintf("results: corrupt series: window %d: %s", e.Window, e.Detail)
}

func corruptf(window int, format string, args ...any) error {
	return &CorruptError{Window: window, Detail: fmt.Sprintf(format, args...)}
}

// WindowRanks is one deserialized window.
type WindowRanks struct {
	Window          int
	Iterations      int
	Converged       bool
	UsedPartialInit bool
	// Vertices and Ranks are parallel slices of the positive entries,
	// sorted by vertex id (strictly increasing — Validate enforces it).
	Vertices []int32
	Ranks    []float64
}

// Len returns the number of sparse entries in the window.
func (w *WindowRanks) Len() int { return len(w.Vertices) }

// Rank looks up the rank of vertex v by binary search over the sorted
// entries; ok is false when the vertex has no positive rank in this
// window.
func (w *WindowRanks) Rank(v int32) (rank float64, ok bool) {
	i := sort.Search(len(w.Vertices), func(i int) bool { return w.Vertices[i] >= v })
	if i < len(w.Vertices) && w.Vertices[i] == v {
		return w.Ranks[i], true
	}
	return 0, false
}

// ForEach calls f for every entry in ascending vertex order.
func (w *WindowRanks) ForEach(f func(v int32, rank float64)) {
	for i, v := range w.Vertices {
		f(v, w.Ranks[i])
	}
}

// Validate checks the window's structural invariants as record index
// `index` of a series over numVertices vertices: parallel slices, the
// window label matching its position, vertex ids strictly increasing
// within [0, numVertices), and ranks finite and positive. It returns a
// *CorruptError describing the first violation, or nil.
func (w *WindowRanks) Validate(index int, numVertices int32) error {
	if len(w.Vertices) != len(w.Ranks) {
		return corruptf(index, "%d vertices but %d ranks", len(w.Vertices), len(w.Ranks))
	}
	if w.Window != index {
		return corruptf(index, "record labeled window %d out of sequential order", w.Window)
	}
	if w.Iterations < 0 {
		return corruptf(index, "negative iteration count %d", w.Iterations)
	}
	prev := int32(-1)
	for i, v := range w.Vertices {
		if v < 0 || v >= numVertices {
			return corruptf(index, "vertex id %d outside [0, %d)", v, numVertices)
		}
		if v <= prev {
			return corruptf(index, "vertex ids not strictly increasing at entry %d (%d after %d)", i, v, prev)
		}
		prev = v
		r := w.Ranks[i]
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return corruptf(index, "vertex %d has non-positive or non-finite rank %v", v, r)
		}
	}
	return nil
}

// Dense expands the sparse entries to a dense vector. The receiver
// must satisfy Validate for this numVertices (Read guarantees it);
// entries outside [0, numVertices) would otherwise index out of range.
func (w *WindowRanks) Dense(numVertices int32) []float64 {
	out := make([]float64, numVertices)
	for i, v := range w.Vertices {
		out[v] = w.Ranks[i]
	}
	return out
}

// Series is a deserialized result file.
type Series struct {
	Spec        events.WindowSpec
	NumVertices int32
	Windows     []WindowRanks
}

// Window returns window i of the series.
func (s *Series) Window(i int) *WindowRanks { return &s.Windows[i] }

// SpecAndSize makes *Series a SeriesSource, so a decoded file can be
// re-serialized or fed to consumers (e.g. serve.NewStore) directly.
func (s *Series) SpecAndSize() (events.WindowSpec, int32) { return s.Spec, s.NumVertices }

// WindowAt returns window i; with SpecAndSize it implements
// SeriesSource.
func (s *Series) WindowAt(i int) WindowRanks { return s.Windows[i] }

// SeriesSource is what Write consumes: the subset of core.Series (or
// any other producer) it needs. Implementations yield windows in order.
type SeriesSource interface {
	SpecAndSize() (events.WindowSpec, int32)
	// WindowAt returns the sparse positive entries of window i sorted
	// by vertex, plus metadata.
	WindowAt(i int) WindowRanks
}

// Write serializes src. Every window is validated (see
// WindowRanks.Validate) before encoding, so a producer emitting
// misordered records or out-of-range ids fails here rather than
// handing a poisoned file to the next reader.
func Write(w io.Writer, src SeriesSource) error {
	bw := bufio.NewWriter(w)
	spec, n := src.SpecAndSize()
	if n < 0 {
		return corruptf(-1, "negative vertex count %d", n)
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	hdr := make([]byte, 4+8*3+4+4)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(spec.T0))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(spec.Delta))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(spec.Slide))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(spec.Count))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(n))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 12)
	for i := 0; i < spec.Count; i++ {
		wr := src.WindowAt(i)
		if err := wr.Validate(i, n); err != nil {
			return err
		}
		var flags uint8
		if wr.Converged {
			flags |= flagConverged
		}
		if wr.UsedPartialInit {
			flags |= flagPartialInit
		}
		whdr := make([]byte, 13)
		binary.LittleEndian.PutUint32(whdr[0:], uint32(wr.Window))
		binary.LittleEndian.PutUint32(whdr[4:], uint32(wr.Iterations))
		whdr[8] = flags
		binary.LittleEndian.PutUint32(whdr[9:], uint32(len(wr.Vertices)))
		if _, err := bw.Write(whdr); err != nil {
			return err
		}
		for j, v := range wr.Vertices {
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			binary.LittleEndian.PutUint64(rec[4:], uint64(floatBits(wr.Ranks[j])))
			if _, err := bw.Write(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a result file, validating every structural
// invariant as it decodes: the vertex count must be non-negative,
// window records must appear in sequential order (record i labeled
// window i), and each window must pass WindowRanks.Validate. A file
// that violates any of them is rejected with a *CorruptError — never a
// panic, and never a Series a consumer must distrust.
func Read(r io.Reader) (*Series, error) {
	br := bufio.NewReader(r)
	m := make([]byte, 4)
	if _, err := io.ReadFull(br, m); err != nil {
		return nil, fmt.Errorf("results: reading magic: %w", err)
	}
	if string(m) != magic {
		return nil, fmt.Errorf("results: bad magic %q", m)
	}
	hdr := make([]byte, 4+8*3+4+4)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("results: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != version {
		return nil, fmt.Errorf("results: unsupported version %d", v)
	}
	s := &Series{
		Spec: events.WindowSpec{
			T0:    int64(binary.LittleEndian.Uint64(hdr[4:])),
			Delta: int64(binary.LittleEndian.Uint64(hdr[12:])),
			Slide: int64(binary.LittleEndian.Uint64(hdr[20:])),
			Count: int(binary.LittleEndian.Uint32(hdr[28:])),
		},
		NumVertices: int32(binary.LittleEndian.Uint32(hdr[32:])),
	}
	const maxReasonable = 1 << 28
	if s.Spec.Count < 0 || s.Spec.Count > maxReasonable {
		return nil, corruptf(-1, "implausible window count %d", s.Spec.Count)
	}
	if s.NumVertices < 0 {
		// The uint32 on the wire can flip the int32 sign; a negative
		// universe would turn every in-range check below into nonsense.
		return nil, corruptf(-1, "negative vertex count %d", s.NumVertices)
	}
	rec := make([]byte, 12)
	for i := 0; i < s.Spec.Count; i++ {
		whdr := make([]byte, 13)
		if _, err := io.ReadFull(br, whdr); err != nil {
			return nil, fmt.Errorf("results: window %d header: %w", i, err)
		}
		wr := WindowRanks{
			Window:          int(int32(binary.LittleEndian.Uint32(whdr[0:]))),
			Iterations:      int(int32(binary.LittleEndian.Uint32(whdr[4:]))),
			Converged:       whdr[8]&flagConverged != 0,
			UsedPartialInit: whdr[8]&flagPartialInit != 0,
		}
		count := binary.LittleEndian.Uint32(whdr[9:])
		if count > maxReasonable {
			return nil, corruptf(i, "implausible entry count %d", count)
		}
		// Grow incrementally so a corrupt count fails with a truncation
		// error rather than a huge allocation.
		for j := uint32(0); j < count; j++ {
			if _, err := io.ReadFull(br, rec); err != nil {
				return nil, fmt.Errorf("results: window %d entry %d: %w", i, j, err)
			}
			wr.Vertices = append(wr.Vertices, int32(binary.LittleEndian.Uint32(rec[0:])))
			wr.Ranks = append(wr.Ranks, bitsFloat(binary.LittleEndian.Uint64(rec[4:])))
		}
		if err := wr.Validate(i, s.NumVertices); err != nil {
			return nil, err
		}
		s.Windows = append(s.Windows, wr)
	}
	return s, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
