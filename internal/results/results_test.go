package results

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pmpr/internal/events"
)

type memSource struct {
	spec    events.WindowSpec
	n       int32
	windows []WindowRanks
}

func (m memSource) SpecAndSize() (events.WindowSpec, int32) { return m.spec, m.n }
func (m memSource) WindowAt(i int) WindowRanks              { return m.windows[i] }

func randomSource(seed int64) memSource {
	rng := rand.New(rand.NewSource(seed))
	spec := events.WindowSpec{T0: -500, Delta: 100, Slide: 33, Count: 7}
	src := memSource{spec: spec, n: 50}
	for w := 0; w < spec.Count; w++ {
		wr := WindowRanks{
			Window:          w,
			Iterations:      rng.Intn(100),
			Converged:       rng.Intn(2) == 0,
			UsedPartialInit: rng.Intn(2) == 0,
		}
		for v := int32(0); v < src.n; v++ {
			if rng.Intn(3) == 0 {
				wr.Vertices = append(wr.Vertices, v)
				// Strictly positive: zero ranks are not representable in
				// the format (positive entries only).
				wr.Ranks = append(wr.Ranks, rng.Float64()/2+0.25)
			}
		}
		src.windows = append(src.windows, wr)
	}
	return src
}

func TestRoundTrip(t *testing.T) {
	src := randomSource(1)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Spec != src.spec || got.NumVertices != src.n {
		t.Fatalf("header mismatch: %+v vs %+v", got.Spec, src.spec)
	}
	for w := range src.windows {
		if !reflect.DeepEqual(got.Windows[w], src.windows[w]) {
			t.Fatalf("window %d mismatch:\n got %+v\nwant %+v", w, got.Windows[w], src.windows[w])
		}
	}
}

func TestDense(t *testing.T) {
	wr := WindowRanks{Vertices: []int32{2, 5}, Ranks: []float64{0.25, 0.75}}
	d := wr.Dense(8)
	if d[2] != 0.25 || d[5] != 0.75 || d[0] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestRankLookup(t *testing.T) {
	wr := WindowRanks{Vertices: []int32{2, 5, 9}, Ranks: []float64{0.25, 0.5, 0.25}}
	if r, ok := wr.Rank(5); !ok || r != 0.5 {
		t.Fatalf("Rank(5) = %v, %v", r, ok)
	}
	if r, ok := wr.Rank(9); !ok || r != 0.25 {
		t.Fatalf("Rank(9) = %v, %v", r, ok)
	}
	for _, missing := range []int32{0, 3, 10, -1} {
		if r, ok := wr.Rank(missing); ok || r != 0 {
			t.Fatalf("Rank(%d) = %v, %v; want 0, false", missing, r, ok)
		}
	}
	if wr.Len() != 3 {
		t.Fatalf("Len = %d", wr.Len())
	}
	var visited []int32
	wr.ForEach(func(v int32, _ float64) { visited = append(visited, v) })
	if !reflect.DeepEqual(visited, []int32{2, 5, 9}) {
		t.Fatalf("ForEach order = %v", visited)
	}
}

func TestSeriesIsSource(t *testing.T) {
	src := randomSource(4)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// A decoded series is itself a SeriesSource: re-serializing it must
	// produce an equal series.
	var buf2 bytes.Buffer
	if err := Write(&buf2, s); err != nil {
		t.Fatalf("re-Write: %v", err)
	}
	s2, err := Read(&buf2)
	if err != nil {
		t.Fatalf("re-Read: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatal("series not stable under re-serialization")
	}
	if s.Window(2) == nil || s.Window(2).Window != 2 {
		t.Fatal("Window accessor mislabeled")
	}
}

func TestRanksPreservedBitExact(t *testing.T) {
	src := memSource{
		spec: events.WindowSpec{T0: 0, Delta: 1, Slide: 1, Count: 1},
		n:    3,
		windows: []WindowRanks{{
			Window:   0,
			Vertices: []int32{0, 1},
			Ranks:    []float64{math.Nextafter(0.1, 1), 1e-300},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, r := range got.Windows[0].Ranks {
		if r != src.windows[0].Ranks[i] {
			t.Fatalf("rank %d not bit-exact: %v vs %v", i, r, src.windows[0].Ranks[i])
		}
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	src := randomSource(2)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader([]byte("XXXXetc"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Error("truncated file accepted")
	}
	bad := append([]byte(nil), full...)
	bad[4] = 0x7F // version
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

// writeRaw serializes src without any validation, so tests can craft
// structurally invalid files that Write itself would refuse.
func writeRaw(t *testing.T, src memSource) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magic)
	hdr := make([]byte, 4+8*3+4+4)
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(src.spec.T0))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(src.spec.Delta))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(src.spec.Slide))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(src.spec.Count))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(src.n))
	buf.Write(hdr)
	for _, wr := range src.windows {
		whdr := make([]byte, 13)
		binary.LittleEndian.PutUint32(whdr[0:], uint32(wr.Window))
		binary.LittleEndian.PutUint32(whdr[4:], uint32(wr.Iterations))
		binary.LittleEndian.PutUint32(whdr[9:], uint32(len(wr.Vertices)))
		buf.Write(whdr)
		rec := make([]byte, 12)
		for j, v := range wr.Vertices {
			binary.LittleEndian.PutUint32(rec[0:], uint32(v))
			binary.LittleEndian.PutUint64(rec[4:], math.Float64bits(wr.Ranks[j]))
			buf.Write(rec)
		}
	}
	return buf.Bytes()
}

func oneWindowSource(n int32, wr WindowRanks) memSource {
	return memSource{
		spec:    events.WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 1},
		n:       n,
		windows: []WindowRanks{wr},
	}
}

func TestReadRejectsStructuralViolations(t *testing.T) {
	cases := []struct {
		name string
		src  memSource
	}{
		{"vertex id at NumVertices", oneWindowSource(4,
			WindowRanks{Vertices: []int32{1, 4}, Ranks: []float64{0.5, 0.5}})},
		{"vertex id far out of range", oneWindowSource(4,
			WindowRanks{Vertices: []int32{1 << 20}, Ranks: []float64{1}})},
		{"negative vertex id", oneWindowSource(4,
			WindowRanks{Vertices: []int32{-3}, Ranks: []float64{1}})},
		{"duplicate vertex", oneWindowSource(4,
			WindowRanks{Vertices: []int32{2, 2}, Ranks: []float64{0.5, 0.5}})},
		{"unsorted vertices", oneWindowSource(4,
			WindowRanks{Vertices: []int32{3, 1}, Ranks: []float64{0.5, 0.5}})},
		{"NaN rank", oneWindowSource(4,
			WindowRanks{Vertices: []int32{1}, Ranks: []float64{math.NaN()}})},
		{"zero rank", oneWindowSource(4,
			WindowRanks{Vertices: []int32{1}, Ranks: []float64{0}})},
		{"negative rank", oneWindowSource(4,
			WindowRanks{Vertices: []int32{1}, Ranks: []float64{-0.5}})},
		{"mislabeled window", oneWindowSource(4,
			WindowRanks{Window: 3, Vertices: []int32{1}, Ranks: []float64{1}})},
		{"negative NumVertices", memSource{
			spec: events.WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 0},
			n:    -7,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := writeRaw(t, tc.src)
			s, err := Read(bytes.NewReader(raw))
			if err == nil {
				t.Fatalf("accepted corrupt file: %+v", s)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *CorruptError: %v", err)
			}
			// The rejection must also not be reproducible via Write: the
			// same violation fails at encode time.
			if err := Write(&bytes.Buffer{}, tc.src); err == nil {
				t.Fatal("Write accepted what Read rejects")
			}
		})
	}
}

func TestReadRejectsReorderedWindows(t *testing.T) {
	src := memSource{
		spec: events.WindowSpec{T0: 0, Delta: 10, Slide: 5, Count: 2},
		n:    4,
		windows: []WindowRanks{
			{Window: 1, Vertices: []int32{1}, Ranks: []float64{1}},
			{Window: 0, Vertices: []int32{2}, Ranks: []float64{1}},
		},
	}
	raw := writeRaw(t, src)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("reordered windows accepted")
	}
	if err := Write(&bytes.Buffer{}, src); err == nil {
		t.Fatal("Write accepted reordered windows")
	}
	var ce *CorruptError
	err := Write(&bytes.Buffer{}, src)
	if !errors.As(err, &ce) || ce.Window != 0 {
		t.Fatalf("want *CorruptError at window 0, got %v", err)
	}
}

func TestDenseSafeAfterRead(t *testing.T) {
	// A validated series can be densified without any out-of-range
	// write: this is the Dense-panic regression the decoder now guards.
	src := randomSource(5)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	s, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i := range s.Windows {
		d := s.Window(i).Dense(s.NumVertices)
		if int32(len(d)) != s.NumVertices {
			t.Fatalf("window %d dense length %d", i, len(d))
		}
	}
}

func TestWriteRejectsMismatchedLengths(t *testing.T) {
	src := memSource{
		spec:    events.WindowSpec{T0: 0, Delta: 1, Slide: 1, Count: 1},
		n:       3,
		windows: []WindowRanks{{Vertices: []int32{0}, Ranks: []float64{0.1, 0.2}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, src); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
