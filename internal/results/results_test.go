package results

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pmpr/internal/events"
)

type memSource struct {
	spec    events.WindowSpec
	n       int32
	windows []WindowRanks
}

func (m memSource) SpecAndSize() (events.WindowSpec, int32) { return m.spec, m.n }
func (m memSource) WindowAt(i int) WindowRanks              { return m.windows[i] }

func randomSource(seed int64) memSource {
	rng := rand.New(rand.NewSource(seed))
	spec := events.WindowSpec{T0: -500, Delta: 100, Slide: 33, Count: 7}
	src := memSource{spec: spec, n: 50}
	for w := 0; w < spec.Count; w++ {
		wr := WindowRanks{
			Window:          w,
			Iterations:      rng.Intn(100),
			Converged:       rng.Intn(2) == 0,
			UsedPartialInit: rng.Intn(2) == 0,
		}
		for v := int32(0); v < src.n; v++ {
			if rng.Intn(3) == 0 {
				wr.Vertices = append(wr.Vertices, v)
				wr.Ranks = append(wr.Ranks, rng.Float64())
			}
		}
		src.windows = append(src.windows, wr)
	}
	return src
}

func TestRoundTrip(t *testing.T) {
	src := randomSource(1)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Spec != src.spec || got.NumVertices != src.n {
		t.Fatalf("header mismatch: %+v vs %+v", got.Spec, src.spec)
	}
	for w := range src.windows {
		if !reflect.DeepEqual(got.Windows[w], src.windows[w]) {
			t.Fatalf("window %d mismatch:\n got %+v\nwant %+v", w, got.Windows[w], src.windows[w])
		}
	}
}

func TestDense(t *testing.T) {
	wr := WindowRanks{Vertices: []int32{2, 5}, Ranks: []float64{0.25, 0.75}}
	d := wr.Dense(8)
	if d[2] != 0.25 || d[5] != 0.75 || d[0] != 0 {
		t.Fatalf("Dense = %v", d)
	}
}

func TestRanksPreservedBitExact(t *testing.T) {
	src := memSource{
		spec: events.WindowSpec{T0: 0, Delta: 1, Slide: 1, Count: 1},
		n:    3,
		windows: []WindowRanks{{
			Window:   0,
			Vertices: []int32{0, 1},
			Ranks:    []float64{math.Nextafter(0.1, 1), 1e-300},
		}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, r := range got.Windows[0].Ranks {
		if r != src.windows[0].Ranks[i] {
			t.Fatalf("rank %d not bit-exact: %v vs %v", i, r, src.windows[0].Ranks[i])
		}
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	src := randomSource(2)
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader([]byte("XXXXetc"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(full[:len(full)-3])); err == nil {
		t.Error("truncated file accepted")
	}
	bad := append([]byte(nil), full...)
	bad[4] = 0x7F // version
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version accepted")
	}
}

func TestWriteRejectsMismatchedLengths(t *testing.T) {
	src := memSource{
		spec:    events.WindowSpec{T0: 0, Delta: 1, Slide: 1, Count: 1},
		n:       3,
		windows: []WindowRanks{{Vertices: []int32{0}, Ranks: []float64{0.1, 0.2}}},
	}
	var buf bytes.Buffer
	if err := Write(&buf, src); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}
