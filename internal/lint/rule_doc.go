package lint

import (
	"go/ast"
	"go/token"
)

// docRule enforces doc comments on exported symbols of non-main
// packages. The representation invariants this module relies on (local
// id spaces, read-only CSR views, discarded-rank contracts) live in doc
// comments; an undocumented exported symbol is an invariant someone
// will violate.
type docRule struct{}

func (docRule) Name() string { return "doc" }
func (docRule) Doc() string {
	return "exported symbols of library packages must carry doc comments"
}

func (r docRule) Check(pkg *Package) []Finding {
	if pkg.Types != nil && pkg.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		if file.Name.Name == "main" {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					pkg.findingf(&out, d.Name, r.Name(), "exported %s %s is undocumented", kind, d.Name.Name)
				}
			case *ast.GenDecl:
				r.checkGenDecl(pkg, d, &out)
			}
		}
	}
	return out
}

func (r docRule) checkGenDecl(pkg *Package, d *ast.GenDecl, out *[]Finding) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
				pkg.findingf(out, s.Name, r.Name(), "exported type %s is undocumented", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					pkg.findingf(out, name, r.Name(), "exported %s %s is undocumented", kind, name.Name)
				}
			}
		}
	}
}

// exportedRecv reports whether the declaration is a plain function or a
// method on an exported receiver type (methods on unexported types are
// not reachable by API users).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}
