package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// panicRule forbids panic calls in internal/* library code. Library
// callers cannot recover meaningfully from a panic raised deep inside a
// kernel or representation; misuse contracts belong in returned errors
// (or an *OK accessor variant like WindowResult.RankOK). Deliberate
// panics must carry a //pmvet:ignore panic comment with a rationale.
type panicRule struct{}

func (panicRule) Name() string { return "panic" }
func (panicRule) Doc() string {
	return "no panic in internal/* library code (return errors; annotate deliberate contract panics)"
}

func (r panicRule) Check(pkg *Package) []Finding {
	if !strings.Contains(pkg.Path, "internal/") {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, builtin := obj.(*types.Builtin); !builtin {
					return true // shadowed: a local function named panic
				}
			}
			pkg.findingf(&out, call, r.Name(),
				"panic in library code; return an error (or add an *OK accessor) instead")
			return true
		})
	}
	return out
}
