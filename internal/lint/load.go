package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks this module's packages from source.
// It needs no export data and no tooling beyond the standard library:
// module-internal imports are resolved by recursively loading the
// imported directory, everything else falls back to the stdlib source
// importer.
type Loader struct {
	fset    *token.FileSet
	root    string // absolute module root (directory of go.mod)
	module  string // module path declared in go.mod
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader for the module whose go.mod is found in
// dir or the nearest parent of dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Module returns the module path of the loaded module.
func (l *Loader) Module() string { return l.module }

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the package patterns (import paths relative to the
// module root; "..." suffixes expand recursively, "./..." means the
// whole module) and returns the matched packages, loaded and
// type-checked, in deterministic path order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		if err := l.expand(pat, dirs); err != nil {
			return nil, err
		}
	}
	paths := make([]string, 0, len(dirs))
	for d := range dirs {
		paths = append(paths, l.importPath(d))
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.loadPath(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) expand(pat string, dirs map[string]bool) error {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
	} else if pat == "..." {
		recursive, pat = true, "."
	}
	dir := filepath.Join(l.root, strings.TrimPrefix(pat, "./"))
	info, err := os.Stat(dir)
	if err != nil || !info.IsDir() {
		return fmt.Errorf("lint: pattern %q: no such directory %s", pat, dir)
	}
	if !recursive {
		if hasGoFiles(dir) {
			dirs[dir] = true
			return nil
		}
		return fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	return filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs[path] = true
		}
		return nil
	})
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer: module-internal paths are loaded
// from source, everything else (the standard library) is delegated.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadPath(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	names, err := goFileNames(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, err := TypeCheck(path, l.fset, files, l)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	l.cache[path] = pkg
	return pkg, nil
}

// TypeCheck builds an analyzable Package from already-parsed files.
// imp resolves imports; nil is fine for import-free fixture sources.
func TypeCheck(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
