// Package lint is the analysis engine behind cmd/pmvet: a small,
// stdlib-only (go/ast + go/parser + go/types) analyzer driver that
// loads this module's packages from source and enforces the domain
// rules the postmortem data structures depend on. The paper's speedups
// come from shared-structure tricks — temporal CSR with local
// relabeling, warm-started vectors, multi-window SpMM sweeps — where a
// silent indexing or allocation mistake produces plausible-but-wrong
// ranks; these rules make the dangerous patterns loud at review time.
//
// The engine has two layers. The facts layer (callgraph.go,
// effects.go) builds a module-wide call graph — direct calls, method
// calls devirtualized through module interfaces like core.Kernel,
// function values traced through fields, parameters, and results —
// plus per-function effect summaries (allocates, blocks, which struct
// fields are touched atomically vs. plainly). The rules layer consumes
// those facts: per-package Analyzers see one package at a time, and
// ModuleAnalyzers (hotpath, atomicmix, goleak, eventexhaust) see the
// whole module through a Module and can prove reachability properties
// no single-package rule can.
//
// Each rule is individually suppressible at a finding site with a
//
//	//pmvet:ignore rule[,rule...] [-- rationale]
//
// comment on the offending line or the line directly above it. The
// rationale after "--" is for the human reader; pmvet only matches the
// rule list. Analyze additionally reports directives that no longer
// suppress anything (stale ignores), so suppressions cannot outlive
// the finding they were reviewed for.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one rule violation, rendered as "file:line: rule: message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical pmvet output form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (e.g. "pmpr/internal/core").
	Path string
	// Dir is the absolute directory the files were parsed from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info

	ignores map[string]map[int][]*ignoreEntry // filename -> line -> directives
}

// Analyzer is one pmvet rule.
type Analyzer interface {
	// Name is the rule identifier used in findings and ignore comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check reports the rule's findings for pkg.
	Check(pkg *Package) []Finding
}

// ModuleAnalyzer is a rule that needs whole-module facts (the call
// graph, cross-package effect joins). Its CheckModule runs once per
// analysis; its per-package Check is a no-op so it still satisfies
// Analyzer for -rules selection and -list.
type ModuleAnalyzer interface {
	Analyzer
	// CheckModule reports the rule's findings for the whole module.
	CheckModule(m *Module) []Finding
}

// Effort selects how much of the module the expensive module rules
// cover. The facts layer always spans every loaded package (the call
// graph is cheap); effort scopes only where the transitive rules
// *look for entry points*, so the pre-commit path stays fast while CI
// proves the property module-wide.
type Effort string

// The effort tiers.
const (
	// EffortQuick scopes transitive-rule entry discovery to
	// internal/core and internal/sched — the hot substrate — for the
	// pre-commit path.
	EffortQuick Effort = "quick"
	// EffortFull discovers entry points module-wide (the CI default).
	EffortFull Effort = "full"
)

// Module is the whole-module view handed to ModuleAnalyzers: the
// loaded packages plus lazily built facts (call graph, effect
// summaries) shared by every rule that needs them.
type Module struct {
	// Pkgs are the loaded packages, in load order.
	Pkgs []*Package
	// Effort is the analysis tier (defaults to EffortFull).
	Effort Effort

	graph     *CallGraph
	effects   map[*FuncNode]*FuncEffects
	fileOwner map[string]*Package
}

// NewModule wraps loaded packages for module-level analysis.
func NewModule(pkgs []*Package) *Module {
	return &Module{Pkgs: pkgs, Effort: EffortFull}
}

// Graph returns the module call graph, building it on first use.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = BuildCallGraph(m.Pkgs)
	}
	return m.graph
}

// Effects returns the per-function effect summaries, built on first
// use alongside the graph.
func (m *Module) Effects() map[*FuncNode]*FuncEffects {
	if m.effects == nil {
		m.effects = ComputeEffects(m.Graph())
	}
	return m.effects
}

// PackageFor resolves the package that owns a filename, so module-rule
// findings are suppressed against the right package's ignore index.
func (m *Module) PackageFor(filename string) *Package {
	if m.fileOwner == nil {
		m.fileOwner = make(map[string]*Package)
		for _, pkg := range m.Pkgs {
			for _, file := range pkg.Files {
				m.fileOwner[pkg.Fset.Position(file.Pos()).Filename] = pkg
			}
		}
	}
	return m.fileOwner[filename]
}

// Analyzers returns the full rule set in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		panicRule{},
		recovercheckRule{},
		hotpathRule{},
		floateqRule{},
		closecheckRule{},
		docRule{},
		ctxfirstRule{},
		atomicmixRule{},
		goleakRule{},
		lockbalanceRule{},
		eventexhaustRule{},
	}
}

// ByName resolves a comma-separated rule list; unknown names error.
func ByName(names string) ([]Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", n, ruleNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames(as []Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return strings.Join(names, ", ")
}

// Timing is one rule's wall-clock cost, reported so the effort tiers
// stay honest about what each one buys.
type Timing struct {
	// Rule is the analyzer name ("<facts>" for graph+effects build).
	Rule string
	// Elapsed is the rule's wall time.
	Elapsed time.Duration
}

// Report is the full result of one Analyze call.
type Report struct {
	// Findings are the unsuppressed rule findings, sorted by position.
	Findings []Finding
	// Stale are //pmvet:ignore directives that name a selected rule but
	// suppressed nothing this run (rule name "stale-ignore"). Warnings
	// by default; pmvet -strict promotes them to failures.
	Stale []Finding
	// Timings are per-rule wall times in execution order.
	Timings []Timing
}

// StaleRule is the pseudo-rule name stale-directive findings carry.
const StaleRule = "stale-ignore"

// Analyze applies the analyzers to the module: per-package rules run
// on each package, module rules run once over the whole module, and
// every finding is filtered through the owning package's ignore
// directives. Directives that name a selected rule but matched nothing
// are reported in Report.Stale.
func Analyze(m *Module, analyzers []Analyzer) *Report {
	rep := &Report{}
	for _, pkg := range m.Pkgs {
		pkg.buildIgnores()
	}
	selected := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		selected[a.Name()] = true
	}
	needFacts := false
	for _, a := range analyzers {
		if _, ok := a.(ModuleAnalyzer); ok {
			needFacts = true
		}
	}
	if needFacts {
		start := time.Now()
		m.Effects() // builds graph + summaries once, outside rule timings
		rep.Timings = append(rep.Timings, Timing{Rule: "<facts>", Elapsed: time.Since(start)})
	}
	for _, a := range analyzers {
		start := time.Now()
		if ma, ok := a.(ModuleAnalyzer); ok {
			for _, f := range ma.CheckModule(m) {
				owner := m.PackageFor(f.Pos.Filename)
				if owner == nil || !owner.suppress(f) {
					rep.Findings = append(rep.Findings, f)
				}
			}
		} else {
			for _, pkg := range m.Pkgs {
				for _, f := range a.Check(pkg) {
					if !pkg.suppress(f) {
						rep.Findings = append(rep.Findings, f)
					}
				}
			}
		}
		rep.Timings = append(rep.Timings, Timing{Rule: a.Name(), Elapsed: time.Since(start)})
	}
	for _, pkg := range m.Pkgs {
		rep.Stale = append(rep.Stale, pkg.staleIgnores(selected)...)
	}
	sortFindings(rep.Findings)
	sortFindings(rep.Stale)
	return rep
}

// Run applies the analyzers to the packages and returns the
// unsuppressed findings sorted by position. It is the simple wrapper
// over Analyze for callers that do not need stale-ignore or timing
// data.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return Analyze(NewModule(pkgs), analyzers).Findings
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

const ignoreMarker = "pmvet:ignore"

// ignoreEntry is one rule named by one //pmvet:ignore directive, with
// a usage bit for the stale audit.
type ignoreEntry struct {
	rule string
	pos  token.Position
	used bool
}

// buildIgnores indexes every //pmvet:ignore comment by file and line.
func (p *Package) buildIgnores() {
	if p.ignores != nil {
		return
	}
	p.ignores = make(map[string]map[int][]*ignoreEntry)
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSpace(text), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				spec := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
				if i := strings.Index(spec, "--"); i >= 0 {
					spec = strings.TrimSpace(spec[:i]) // strip rationale
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.ignores[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*ignoreEntry)
					p.ignores[pos.Filename] = lines
				}
				for _, r := range strings.Split(spec, ",") {
					if r = strings.TrimSpace(r); r != "" {
						lines[pos.Line] = append(lines[pos.Line], &ignoreEntry{rule: r, pos: pos})
					}
				}
			}
		}
	}
}

// suppress reports whether an ignore comment on the finding's line or
// the line above names the finding's rule, marking the directive used.
func (p *Package) suppress(f Finding) bool {
	lines := p.ignores[f.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, e := range lines[line] {
			if e.rule == f.Rule {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// staleIgnores reports the package's directives that name a rule in
// the selected set but suppressed nothing. Directives for unselected
// rules are left alone — a -rules subset must not call the other
// rules' suppressions stale.
func (p *Package) staleIgnores(selected map[string]bool) []Finding {
	var out []Finding
	for _, lines := range p.ignores {
		for _, entries := range lines {
			for _, e := range entries {
				if e.used || !selected[e.rule] {
					continue
				}
				out = append(out, Finding{
					Pos:  e.pos,
					Rule: StaleRule,
					Msg:  fmt.Sprintf("//pmvet:ignore %s suppresses nothing (remove it or fix the rule list)", e.rule),
				})
			}
		}
	}
	return out
}

// findingf appends a finding at node's position.
func (p *Package) findingf(out *[]Finding, node ast.Node, rule, format string, args ...interface{}) {
	*out = append(*out, Finding{
		Pos:  p.Fset.Position(node.Pos()),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file's name ends in _test.go (the
// loader skips those, but in-memory fixtures may include them).
func isTestFile(p *Package, file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}
