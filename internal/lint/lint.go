// Package lint is the analysis engine behind cmd/pmvet: a small,
// stdlib-only (go/ast + go/parser + go/types) analyzer driver that
// loads this module's packages from source and enforces the domain
// rules the postmortem data structures depend on. The paper's speedups
// come from shared-structure tricks — temporal CSR with local
// relabeling, warm-started vectors, multi-window SpMM sweeps — where a
// silent indexing or allocation mistake produces plausible-but-wrong
// ranks; these rules make the dangerous patterns loud at review time.
//
// Each rule is individually suppressible at a finding site with a
//
//	//pmvet:ignore rule[,rule...] [-- rationale]
//
// comment on the offending line or the line directly above it. The
// rationale after "--" is for the human reader; pmvet only matches the
// rule list.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation, rendered as "file:line: rule: message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical pmvet output form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (e.g. "pmpr/internal/core").
	Path string
	// Dir is the absolute directory the files were parsed from.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info

	ignores map[string]map[int][]string // filename -> line -> suppressed rules
}

// Analyzer is one pmvet rule.
type Analyzer interface {
	// Name is the rule identifier used in findings and ignore comments.
	Name() string
	// Doc is a one-line description for -list output.
	Doc() string
	// Check reports the rule's findings for pkg.
	Check(pkg *Package) []Finding
}

// Analyzers returns the full rule set in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		panicRule{},
		recovercheckRule{},
		hotpathRule{},
		floateqRule{},
		closecheckRule{},
		docRule{},
		ctxfirstRule{},
	}
}

// ByName resolves a comma-separated rule list; unknown names error.
func ByName(names string) ([]Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", n, ruleNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames(as []Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name()
	}
	return strings.Join(names, ", ")
}

// Run applies the analyzers to every package, drops suppressed
// findings, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		pkg.buildIgnores()
		for _, a := range analyzers {
			for _, f := range a.Check(pkg) {
				if !pkg.suppressed(f) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

const ignoreMarker = "pmvet:ignore"

// buildIgnores indexes every //pmvet:ignore comment by file and line.
func (p *Package) buildIgnores() {
	if p.ignores != nil {
		return
	}
	p.ignores = make(map[string]map[int][]string)
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(strings.TrimSpace(text), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				spec := strings.TrimSpace(strings.TrimPrefix(text, ignoreMarker))
				if i := strings.Index(spec, "--"); i >= 0 {
					spec = strings.TrimSpace(spec[:i]) // strip rationale
				}
				pos := p.Fset.Position(c.Pos())
				lines := p.ignores[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					p.ignores[pos.Filename] = lines
				}
				for _, r := range strings.Split(spec, ",") {
					if r = strings.TrimSpace(r); r != "" {
						lines[pos.Line] = append(lines[pos.Line], r)
					}
				}
			}
		}
	}
}

// suppressed reports whether an ignore comment on the finding's line or
// the line above names the finding's rule.
func (p *Package) suppressed(f Finding) bool {
	lines := p.ignores[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == f.Rule {
				return true
			}
		}
	}
	return false
}

// findingf appends a finding at node's position.
func (p *Package) findingf(out *[]Finding, node ast.Node, rule, format string, args ...interface{}) {
	*out = append(*out, Finding{
		Pos:  p.Fset.Position(node.Pos()),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// isTestFile reports whether the file's name ends in _test.go (the
// loader skips those, but in-memory fixtures may include them).
func isTestFile(p *Package, file *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(file.Pos()).Filename, "_test.go")
}
