// This file is the second half of pmvet's facts layer: per-function
// effect summaries. Where callgraph.go answers "who calls whom", this
// file answers "what does each function do locally" — does it
// allocate, can it block, and which struct fields does it touch
// atomically versus plainly. The interprocedural rules combine the
// two: transitive hotpath unions local alloc/block effects over the
// call graph's reachable set; atomicmix joins the atomic- and
// plain-access sets across the whole module.
//
// Summaries are deliberately syntactic and local. An effect is
// recorded where it happens, with a position and a human-readable
// description, so a rule that finds `core.spmvKernel.Iterate →
// fmt.Sprintf` three hops down can print both the chain and the exact
// offending expression.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EffectKind classifies one local effect.
type EffectKind uint8

// Alloc effects first, then block effects. The split matters to the
// hotpath rule: Kernel.Init is allowed to allocate (the documented
// contract amortizes one boxed state allocation per batch) but must
// not block, while Iterate/Residual may do neither.
const (
	// AllocMake is a make() of a slice or channel.
	AllocMake EffectKind = iota
	// AllocMakeMap is a make() of a map — split from AllocMake because
	// the hotpath rule bans map allocation everywhere it looks, while
	// slice makes are banned only inside internal/core.
	AllocMakeMap
	// AllocNew is new(T) or a pointer-to-composite-literal (&T{...}).
	AllocNew
	// AllocLit is a map, slice, or array composite literal value.
	AllocLit
	// AllocAppend is a call to append.
	AllocAppend
	// AllocClosure is a function literal (closures capture → heap).
	AllocClosure
	// AllocConcat is string concatenation (+ / += on strings).
	AllocConcat
	// AllocConvert is an allocating conversion ([]byte(s), string(b)).
	AllocConvert
	// AllocCall is a call into a known-allocating stdlib function
	// (fmt.Sprintf, strings.Builder growth, sync.Pool.Get, ...).
	AllocCall

	// BlockChan is a channel send or receive.
	BlockChan
	// BlockSelect is a select statement with no default case.
	BlockSelect
	// BlockSync is a blocking sync primitive: Mutex/RWMutex Lock,
	// WaitGroup.Wait, Cond.Wait, Once.Do.
	BlockSync
	// BlockSleep is time.Sleep or a timer/ticker wait.
	BlockSleep
	// BlockSyscall is a call into os/net/syscall — I/O that can block.
	BlockSyscall
)

// IsAlloc reports whether the kind is an allocation effect.
func (k EffectKind) IsAlloc() bool { return k <= AllocCall }

// IsBlock reports whether the kind is a blocking effect.
func (k EffectKind) IsBlock() bool { return k >= BlockChan }

// String names the effect kind as it appears in findings.
func (k EffectKind) String() string {
	switch k {
	case AllocMake:
		return "alloc/make"
	case AllocMakeMap:
		return "alloc/make-map"
	case AllocNew:
		return "alloc/new"
	case AllocLit:
		return "alloc/lit"
	case AllocAppend:
		return "alloc/append"
	case AllocClosure:
		return "alloc/closure"
	case AllocConcat:
		return "alloc/concat"
	case AllocConvert:
		return "alloc/convert"
	case AllocCall:
		return "alloc/call"
	case BlockChan:
		return "block/chan"
	case BlockSelect:
		return "block/select"
	case BlockSync:
		return "block/sync"
	case BlockSleep:
		return "block/sleep"
	case BlockSyscall:
		return "block/syscall"
	default:
		return fmt.Sprintf("EffectKind(%d)", uint8(k))
	}
}

// Effect is one local alloc or block effect with its source position.
type Effect struct {
	Kind EffectKind
	Pos  token.Pos
	// Desc is a short rendering of the offending expression,
	// e.g. `make([]float64, n)` or `fmt.Sprintf`.
	Desc string
}

// AccessMode distinguishes how a struct field is touched.
type AccessMode uint8

// The access modes atomicmix joins across the module.
const (
	// AccessAtomic is an access through sync/atomic: a function-style
	// atomic.LoadX/StoreX/AddX/... taking the field's address, or a
	// method call on a typed atomic field (f.count.Add(1)).
	AccessAtomic AccessMode = iota
	// AccessPlain is a direct read or write of the field.
	AccessPlain
	// AccessCopy is a by-value copy of a typed atomic field (or of a
	// struct containing one) — always a bug, flagged unconditionally.
	AccessCopy
)

// FieldAccess records one access to a struct field.
type FieldAccess struct {
	// Field is the accessed field's object — the join key: the same
	// *types.Var regardless of which file or package touches it.
	Field *types.Var
	Mode  AccessMode
	Pos   token.Pos
	// Write is set for stores (assignment, ++/--, compound assign).
	Write bool
}

// FuncEffects is the complete local summary of one function.
type FuncEffects struct {
	Effects  []Effect
	Accesses []FieldAccess
}

// Allocs returns the allocation effects only.
func (fe *FuncEffects) Allocs() []Effect { return fe.filter(EffectKind.IsAlloc) }

// Blocks returns the blocking effects only.
func (fe *FuncEffects) Blocks() []Effect { return fe.filter(EffectKind.IsBlock) }

func (fe *FuncEffects) filter(keep func(EffectKind) bool) []Effect {
	var out []Effect
	for _, e := range fe.Effects {
		if keep(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// allocFuncs is the table of stdlib calls the summary treats as
// allocating. Keyed "pkg.Func" for functions, "pkg.Type.Method" for
// methods. It is a deny-list, not a whitelist: a call not listed here
// and not resolved in the module is assumed allocation-free, which
// keeps the hotpath rule quiet on math.Float64bits and friends. The
// table covers what hot code in this repo could plausibly reach.
var allocFuncs = map[string]bool{
	"fmt.Sprintf": true, "fmt.Sprint": true, "fmt.Sprintln": true,
	"fmt.Errorf": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Printf": true, "fmt.Println": true, "fmt.Print": true,
	"errors.New": true,
	"strings.Join": true, "strings.Repeat": true, "strings.Split": true,
	"strings.Fields": true, "strings.Replace": true, "strings.ReplaceAll": true,
	"strings.ToLower": true, "strings.ToUpper": true,
	"strconv.Itoa": true, "strconv.FormatInt": true, "strconv.FormatFloat": true,
	"strconv.Quote": true, "strconv.AppendQuote": true,
	"sort.Slice": true, "sort.SliceStable": true, // closure boxing + reflect
	"sync.Pool.Get": true, // may call New
	"log.Printf": true, "log.Println": true, "log.Print": true, "log.Fatalf": true,
}

// blockSyscallPkgs are packages whose calls count as BlockSyscall.
var blockSyscallPkgs = map[string]bool{
	"os": true, "net": true, "net/http": true, "syscall": true, "io": true, "bufio": true,
}

// blockSyncFuncs are the blocking sync-primitive methods.
var blockSyncFuncs = map[string]bool{
	"sync.Mutex.Lock": true, "sync.RWMutex.Lock": true, "sync.RWMutex.RLock": true,
	"sync.WaitGroup.Wait": true, "sync.Cond.Wait": true, "sync.Once.Do": true,
}

// atomicFuncs are the function-style sync/atomic operations; the bool
// marks writes.
var atomicFuncs = map[string]bool{
	"atomic.LoadInt32": false, "atomic.LoadInt64": false, "atomic.LoadUint32": false,
	"atomic.LoadUint64": false, "atomic.LoadUintptr": false, "atomic.LoadPointer": false,
	"atomic.StoreInt32": true, "atomic.StoreInt64": true, "atomic.StoreUint32": true,
	"atomic.StoreUint64": true, "atomic.StoreUintptr": true, "atomic.StorePointer": true,
	"atomic.AddInt32": true, "atomic.AddInt64": true, "atomic.AddUint32": true,
	"atomic.AddUint64": true, "atomic.AddUintptr": true,
	"atomic.SwapInt32": true, "atomic.SwapInt64": true, "atomic.SwapUint32": true,
	"atomic.SwapUint64": true, "atomic.SwapPointer": true,
	"atomic.CompareAndSwapInt32": true, "atomic.CompareAndSwapInt64": true,
	"atomic.CompareAndSwapUint32": true, "atomic.CompareAndSwapUint64": true,
	"atomic.CompareAndSwapPointer": true,
}

// atomicWriteMethods marks typed-atomic methods that store.
var atomicWriteMethods = map[string]bool{
	"Load": false, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// ComputeEffects builds the local summary for every node in the graph.
func ComputeEffects(g *CallGraph) map[*FuncNode]*FuncEffects {
	out := make(map[*FuncNode]*FuncEffects, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n] = summarize(n)
	}
	return out
}

// summarize walks one function body (not nested literals — they have
// their own nodes) and records its effects.
func summarize(n *FuncNode) *FuncEffects {
	fe := &FuncEffects{}
	if n.body == nil {
		return fe
	}
	pkg := n.Pkg
	// consumed marks selector/address expressions already accounted for
	// as the receiver or operand of an atomic operation, so the generic
	// SelectorExpr case below does not re-record them as plain accesses.
	consumed := make(map[ast.Node]bool)
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			// A literal in the body: the closure value itself is an
			// allocation here; its effects belong to its own node.
			fe.add(AllocClosure, e.Pos(), "func literal")
			return false
		case *ast.CallExpr:
			summarizeCall(pkg, fe, e, consumed)
		case *ast.CompositeLit:
			summarizeComposite(pkg, fe, e)
		case *ast.UnaryExpr:
			switch e.Op {
			case token.AND:
				if consumed[e] {
					return false
				}
				if _, ok := e.X.(*ast.CompositeLit); ok {
					fe.add(AllocNew, e.Pos(), "&composite literal")
				}
				// &x.f on a typed atomic field is how a pointer to the
				// atomic is passed around — an atomic-side use, not a copy.
				if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
					if field := selectedField(pkg, sel); field != nil && isTypedAtomic(field.Type()) {
						fe.Accesses = append(fe.Accesses, FieldAccess{
							Field: field, Mode: AccessAtomic, Pos: sel.Pos(),
						})
						consumed[sel] = true
					}
				}
			case token.ARROW:
				fe.add(BlockChan, e.Pos(), "channel receive")
			}
		case *ast.SendStmt:
			fe.add(BlockChan, e.Pos(), "channel send")
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				fe.add(BlockSelect, e.Pos(), "select without default")
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					fe.add(BlockChan, e.Pos(), "range over channel")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringType(pkg, e.X) {
				fe.add(AllocConcat, e.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringType(pkg, e.Lhs[0]) {
				fe.add(AllocConcat, e.Pos(), "string concatenation")
			}
			for _, lhs := range e.Lhs {
				recordFieldAccess(pkg, fe, lhs, true)
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					consumed[sel] = true // already recorded as a write
				}
			}
		case *ast.IncDecStmt:
			recordFieldAccess(pkg, fe, e.X, true)
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				consumed[sel] = true
			}
		case *ast.SelectorExpr:
			if consumed[e] {
				return true // keep walking X for nested field reads
			}
			recordFieldRead(pkg, fe, e)
			return true
		}
		return true
	}
	// Walk statements directly so `top` semantics stay simple: only the
	// outermost inspection sees top-level literals, and summarize is
	// never re-entered for nested ones anyway (walk returns false).
	ast.Inspect(n.body, walk)
	return fe
}

func (fe *FuncEffects) add(kind EffectKind, pos token.Pos, desc string) {
	fe.Effects = append(fe.Effects, Effect{Kind: kind, Pos: pos, Desc: desc})
}

// summarizeCall classifies one call expression: builtin allocators,
// stdlib allocators, blocking sync methods, sleeps, syscalls, and
// sync/atomic field accesses. Selector/address expressions consumed as
// atomic receivers or operands are marked in consumed so the generic
// field-access cases skip them.
func summarizeCall(pkg *Package, fe *FuncEffects, call *ast.CallExpr, consumed map[ast.Node]bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(pkg, fun) {
				if callMakesMap(pkg, call) {
					fe.add(AllocMakeMap, call.Pos(), "make(map)")
				} else {
					fe.add(AllocMake, call.Pos(), "make")
				}
			}
		case "new":
			if isBuiltin(pkg, fun) {
				fe.add(AllocNew, call.Pos(), "new")
			}
		case "append":
			if isBuiltin(pkg, fun) {
				fe.add(AllocAppend, call.Pos(), "append")
			}
		}
		// []byte(s) / string(b) conversions arrive as CallExpr with a
		// type Fun; catch them here.
		if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
			if isAllocatingConversion(pkg, call) {
				fe.add(AllocConvert, call.Pos(), "allocating conversion")
			}
		}
	case *ast.ArrayType:
		if isAllocatingConversion(pkg, call) {
			fe.add(AllocConvert, call.Pos(), "allocating conversion")
		}
	case *ast.SelectorExpr:
		name := qualifiedCallName(pkg, fun)
		switch {
		case allocFuncs[name]:
			fe.add(AllocCall, call.Pos(), name)
		case blockSyncFuncs[name]:
			fe.add(BlockSync, call.Pos(), name)
		case name == "time.Sleep" || name == "time.After" || name == "time.Tick":
			fe.add(BlockSleep, call.Pos(), name)
		default:
			if pkgName, ok := callPkg(pkg, fun); ok && blockSyscallPkgs[pkgName] {
				fe.add(BlockSyscall, call.Pos(), name)
			}
		}
		// Function-style atomics: atomic.AddInt64(&x.f, 1). The &x.f
		// operand is the atomic access itself, not a plain one.
		if write, ok := atomicFuncs[name]; ok && len(call.Args) > 0 {
			if field := addressedField(pkg, call.Args[0]); field != nil {
				fe.Accesses = append(fe.Accesses, FieldAccess{
					Field: field, Mode: AccessAtomic, Pos: call.Pos(), Write: write,
				})
				consumed[ast.Unparen(call.Args[0])] = true
			}
		}
		// Typed atomics: x.f.Add(1) where f is atomic.Int64 etc. The
		// x.f receiver selector is the atomic access, not a value copy.
		if inner, ok := fun.X.(*ast.SelectorExpr); ok {
			if field := selectedField(pkg, inner); field != nil && isTypedAtomic(field.Type()) {
				if write, ok := atomicWriteMethods[fun.Sel.Name]; ok {
					fe.Accesses = append(fe.Accesses, FieldAccess{
						Field: field, Mode: AccessAtomic, Pos: call.Pos(), Write: write,
					})
					consumed[inner] = true
				}
			}
		}
	}
}

// summarizeComposite records map/slice/array literal values (struct
// literals are free unless their address is taken, handled at &).
func summarizeComposite(pkg *Package, fe *FuncEffects, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		fe.add(AllocLit, lit.Pos(), "map literal")
	case *types.Slice:
		fe.add(AllocLit, lit.Pos(), "slice literal")
	}
}

// recordFieldAccess records a plain write (or copy) of a struct field.
func recordFieldAccess(pkg *Package, fe *FuncEffects, lhs ast.Expr, write bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := selectedField(pkg, sel)
	if field == nil {
		return
	}
	mode := AccessPlain
	if isTypedAtomic(field.Type()) {
		// Assigning over a typed atomic field is a copy-in — a bug.
		mode = AccessCopy
	}
	fe.Accesses = append(fe.Accesses, FieldAccess{Field: field, Mode: mode, Pos: sel.Pos(), Write: write})
}

// recordFieldRead records a plain read of a struct field, or a copy of
// a typed atomic field used as a value.
func recordFieldRead(pkg *Package, fe *FuncEffects, sel *ast.SelectorExpr) {
	field := selectedField(pkg, sel)
	if field == nil {
		return
	}
	if isTypedAtomic(field.Type()) {
		// A bare read of a typed atomic field is a value copy unless it
		// is the receiver of a method call or has its address taken —
		// both filtered by the caller's walk order (the CallExpr and
		// UnaryExpr cases see those first). We conservatively record it
		// and let the rule drop receiver/address uses (see atomicmix).
		fe.Accesses = append(fe.Accesses, FieldAccess{Field: field, Mode: AccessCopy, Pos: sel.Pos()})
		return
	}
	fe.Accesses = append(fe.Accesses, FieldAccess{Field: field, Mode: AccessPlain, Pos: sel.Pos()})
}

// selectedField resolves a selector to the struct field it names, or
// nil when it names a method, package member, or local.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return nil
	}
	return obj
}

// addressedField resolves &x.f to the field f, or nil.
func addressedField(pkg *Package, arg ast.Expr) *types.Var {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(pkg, sel)
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// wrappers (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isBuiltin reports whether id resolves to a Go builtin (not shadowed).
func isBuiltin(pkg *Package, id *ast.Ident) bool {
	obj := useOf(pkg, id)
	if obj == nil {
		return true // no type info: assume the spelling means the builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// callMakesMap reports whether call is make(map[...]...).
func callMakesMap(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := call.Args[0].(*ast.MapType); ok {
		return true
	}
	if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.IsType() {
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}

// isAllocatingConversion reports whether a conversion call allocates:
// string↔[]byte/[]rune copies.
func isAllocatingConversion(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to := pkg.Info.TypeOf(call)
	from := pkg.Info.TypeOf(call.Args[0])
	if to == nil || from == nil {
		return false
	}
	// Exactly one side stringy: string([]byte) or []byte(string) copies.
	return isStringy(to) != isStringy(from)
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringType(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	return t != nil && isStringy(t)
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// qualifiedCallName renders pkg.Func or pkg.Type.Method for a
// selector call into an imported package or onto a typed receiver.
func qualifiedCallName(pkg *Package, sel *ast.SelectorExpr) string {
	// Package-qualified function: atomic.AddInt64, fmt.Sprintf.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Name() + "." + sel.Sel.Name
		}
	}
	// Method call: render receiver's named type.
	if t := pkg.Info.TypeOf(sel.X); t != nil {
		if named, ok := deref(t).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Name() + "." + obj.Name() + "." + sel.Sel.Name
			}
		}
	}
	return sel.Sel.Name
}

// callPkg returns the package name a selector call targets, when the
// selector is package-qualified or a method on an imported type.
func callPkg(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	if t := pkg.Info.TypeOf(sel.X); t != nil {
		if named, ok := deref(t).(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path(), true
		}
	}
	return "", false
}

// descOf renders a short source-like description of an expression for
// findings (best effort; falls back to the node type).
func descOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return descOf(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return descOf(e.Fun) + "(...)"
	default:
		return strings.TrimPrefix(fmt.Sprintf("%T", e), "*ast.")
	}
}
