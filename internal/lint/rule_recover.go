package lint

import (
	"go/ast"
	"go/types"
)

// recovercheckRule flags recover() calls that discard the recovered
// value: a bare `recover()` statement, `_ = recover()`, or
// `defer recover()`. A recover that drops the panic value swallows the
// failure silently — the fault-tolerance layer requires every recovered
// panic to be converted into a structured error (see
// core.RecoveredPanic) so it can be retried, degraded, or reported.
// `defer recover()` additionally never stops unwinding at all: recover
// is only effective when called directly inside the deferred function.
type recovercheckRule struct{}

func (recovercheckRule) Name() string { return "recovercheck" }
func (recovercheckRule) Doc() string {
	return "recover() must bind its result and convert it into a structured error, not discard it"
}

func (r recovercheckRule) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if isRecoverCall(pkg, st.X) {
					pkg.findingf(&out, st, r.Name(),
						"recover() result discarded; bind it and convert the panic into a structured error")
				}
			case *ast.DeferStmt:
				if isRecoverCall(pkg, st.Call) {
					pkg.findingf(&out, st, r.Name(),
						"defer recover() never stops unwinding; call recover inside a deferred function and handle its result")
				}
			case *ast.AssignStmt:
				for i, rhs := range st.Rhs {
					if !isRecoverCall(pkg, rhs) || i >= len(st.Lhs) {
						continue
					}
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pkg.findingf(&out, st, r.Name(),
							"recover() assigned to blank; bind it and convert the panic into a structured error")
					}
				}
			}
			return true
		})
	}
	return out
}

// isRecoverCall reports whether expr calls the recover builtin.
func isRecoverCall(pkg *Package, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "recover" {
		return false
	}
	if obj := pkg.Info.Uses[id]; obj != nil {
		if _, builtin := obj.(*types.Builtin); !builtin {
			return false // shadowed: a local function named recover
		}
	}
	return true
}
