package lint

import (
	"strings"
	"testing"
)

// Every rule gets at least one positive fixture (seeded violation is
// reported) and one negative fixture (conforming code stays silent).

func TestPanicRule(t *testing.T) {
	bad := `package core
func f(ok bool) {
	if !ok {
		panic("unreachable")
	}
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "f.go", bad)
	if fs := runRule(t, "panic", pkg); len(fs) != 1 {
		t.Errorf("internal package: want 1 finding, got %v", fs)
	}
	// The rule covers library code only: a cmd/ package may panic.
	pkg = loadFixture(t, "pmpr/cmd/tool", "f.go", bad)
	if fs := runRule(t, "panic", pkg); len(fs) != 0 {
		t.Errorf("cmd package: want 0 findings, got %v", fs)
	}
	// A local function that shadows the builtin is not a panic.
	shadow := `package core
func panic(string) {}
func f() { panic("just a name") }
`
	pkg = loadFixture(t, "pmpr/internal/core", "shadow.go", shadow)
	if fs := runRule(t, "panic", pkg); len(fs) != 0 {
		t.Errorf("shadowed panic: want 0 findings, got %v", fs)
	}
}

func TestHotpathRule(t *testing.T) {
	bad := `package core

import "fmt"

func loop(n int, body func(lo, hi int)) { body(0, n) }

func kernel(xs []int, names []string) {
	var out []int
	s := ""
	loop(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fmt.Println(xs[i])
			out = append(out, xs[i])
			seen := map[int]bool{}
			_ = seen
			m := make(map[int]int, 4)
			_ = m
			s += names[i]
			t := names[i] + "!"
			_ = t
		}
	})
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_fixture.go", bad)
	fs := runRule(t, "hotpath", pkg)
	if len(fs) != 6 {
		t.Fatalf("hot file: want 6 findings (fmt, append, map literal, make map, +=, +), got %d: %v", len(fs), fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "hot path reachable from") || !strings.Contains(f.Msg, "chain:") {
			t.Errorf("finding message %q should carry the entry point and call chain", f.Msg)
		}
	}

	// Identical code in a non-hot file of the same package is allowed.
	pkg = loadFixture(t, "pmpr/internal/core", "setup.go", bad)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 0 {
		t.Errorf("non-hot file: want 0 findings, got %v", fs)
	}

	// Allocation and formatting outside the loop closure are allowed,
	// as is arithmetic inside it.
	good := `package core

import "fmt"

func loop(n int, body func(lo, hi int)) { body(0, n) }

func kernel(xs []int) int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	sum := 0
	loop(len(out), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += out[i]
		}
	})
	fmt.Println(sum)
	return sum
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "kernel_good.go", good)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 0 {
		t.Errorf("conforming kernel: want 0 findings, got %v", fs)
	}
}

func TestHotpathRuleMakeInCoreLoop(t *testing.T) {
	// Any make() inside a core kernel loop body is flagged, slices
	// included: the scratch arena exists so these bodies never allocate.
	bad := `package core

func loop(n int, body func(lo, hi int)) { body(0, n) }

func kernel(xs []float64) {
	loop(len(xs), func(lo, hi int) {
		acc := make([]float64, 4)
		_ = acc
	})
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_fixture.go", bad)
	fs := runRule(t, "hotpath", pkg)
	if len(fs) != 1 {
		t.Fatalf("slice make in core loop: want 1 finding, got %d: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].Msg, "alloc/make") {
		t.Errorf("finding %q should name the alloc/make effect", fs[0].Msg)
	}

	// Loop bodies bound to locals and passed by name are resolved and
	// checked too — but only once, even when passed at several sites.
	named := `package core

func loop(n int, body func(lo, hi int)) { body(0, n) }

func kernel(xs []float64) {
	pass := func(lo, hi int) {
		buf := make([]float64, 2)
		_ = buf
	}
	loop(len(xs), pass)
	loop(len(xs), pass)
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "kernel_named.go", named)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 1 {
		t.Errorf("named body: want 1 finding (deduped), got %d: %v", len(fs), fs)
	}

	// make() outside the loop body, with only reads inside, is the
	// pattern the arena enables; it stays silent.
	good := `package core

func loop(n int, body func(lo, hi int)) { body(0, n) }

func kernel(xs []float64) float64 {
	acc := make([]float64, 4)
	pass := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc[i%4] += xs[i]
		}
	}
	loop(len(xs), pass)
	return acc[0]
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "kernel_good.go", good)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 0 {
		t.Errorf("hoisted make: want 0 findings, got %v", fs)
	}

	// Outside internal/core (here: the streaming runner), slice make in
	// a loop body is not the arena's business — only the classic ban
	// set (fmt/log, append, map alloc, concat) applies there.
	streaming := `package streaming

type pool struct{}

func (pool) ParallelFor(n, grain int, body func(lo, hi int)) { body(0, n) }

func drive(p pool, xs []int) {
	p.ParallelFor(len(xs), 1, func(lo, hi int) {
		tmp := make([]int, 2)
		_ = tmp
	})
}
`
	pkg = loadFixture(t, "pmpr/internal/streaming", "runner.go", streaming)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 0 {
		t.Errorf("non-core slice make: want 0 findings, got %v", fs)
	}
}

func TestHotpathRuleParallelFor(t *testing.T) {
	// The scheduler itself is the audited substrate and exempt, so
	// ParallelFor coverage is pinned on the streaming runner, where the
	// classic hot-loop bans (append here) apply transitively.
	src := `package streaming

type pool struct{}

func (pool) ParallelFor(n, grain int, body func(lo, hi int)) { body(0, n) }

func drive(p pool, xs []int) {
	var log []int
	p.ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			log = append(log, xs[i])
		}
	})
	_ = log
}
`
	pkg := loadFixture(t, "pmpr/internal/streaming", "runner.go", src)
	if fs := runRule(t, "hotpath", pkg); len(fs) != 1 {
		t.Errorf("ParallelFor body: want 1 finding, got %v", fs)
	}
}

func TestFloateqRule(t *testing.T) {
	bad := `package core
func eq(a, b float64) bool { return a == b }
func ne(a []float32, i, j int) bool { return a[i] != a[j] }
`
	pkg := loadFixture(t, "pmpr/internal/core", "f.go", bad)
	if fs := runRule(t, "floateq", pkg); len(fs) != 2 {
		t.Errorf("float compare: want 2 findings, got %v", fs)
	}

	good := `package core
func zeroSentinel(a float64) bool { return a == 0 }
func zeroFloat(a float64) bool { return a != 0.0 }
func ints(a, b int) bool { return a == b }
func tol(a, b float64) bool { d := a - b; return d < 1e-9 && d > -1e-9 }
func ordered(a, b float64) bool {
	if a > b {
		return true
	}
	return a < b
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "g.go", good)
	if fs := runRule(t, "floateq", pkg); len(fs) != 0 {
		t.Errorf("conforming compares: want 0 findings, got %v", fs)
	}
}

func TestClosecheckRule(t *testing.T) {
	bad := `package events
type file struct{}
func (file) Close() error { return nil }
func (file) Flush() error { return nil }
func write(f file) {
	defer f.Close()
	f.Flush()
}
`
	pkg := loadFixture(t, "pmpr/internal/events", "io.go", bad)
	fs := runRule(t, "closecheck", pkg)
	if len(fs) != 2 {
		t.Fatalf("discarded close/flush: want 2 findings, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "defer f.Close") {
		t.Errorf("finding should name the deferred call, got %q", fs[0].Msg)
	}

	// Out-of-scope packages are not checked.
	pkg = loadFixture(t, "pmpr/internal/core", "io.go", bad)
	if fs := runRule(t, "closecheck", pkg); len(fs) != 0 {
		t.Errorf("out-of-scope package: want 0 findings, got %v", fs)
	}

	good := `package events
type file struct{}
func (file) Close() error { return nil }
func (file) Flush() error { return nil }
type pool struct{}
func (pool) Close() {}
func write(f file, p pool) error {
	defer p.Close() // void Close: nothing to check
	if err := f.Flush(); err != nil {
		return err
	}
	return f.Close()
}
`
	pkg = loadFixture(t, "pmpr/internal/events", "ok.go", good)
	if fs := runRule(t, "closecheck", pkg); len(fs) != 0 {
		t.Errorf("checked closes: want 0 findings, got %v", fs)
	}
}

func TestDocRule(t *testing.T) {
	bad := `package core

func Exported() {}
type Thing struct{}
func (Thing) Method() {}
const Limit = 3
var Global int
`
	pkg := loadFixture(t, "pmpr/internal/core", "f.go", bad)
	fs := runRule(t, "doc", pkg)
	if len(fs) != 5 {
		t.Fatalf("undocumented exports: want 5 findings, got %d: %v", len(fs), fs)
	}

	good := `package core
// Exported does a documented thing.
func Exported() {}
// Thing is documented.
type Thing struct{}
// Method is documented.
func (Thing) Method() {}
// Limit bounds things.
const Limit = 3
// Grouped constants share the declaration doc.
const (
	A = 1
	B = 2
)
func unexported() {}
type hidden struct{}
func (hidden) Exposed() {} // method on unexported type: unreachable
`
	pkg = loadFixture(t, "pmpr/internal/core", "g.go", good)
	if fs := runRule(t, "doc", pkg); len(fs) != 0 {
		t.Errorf("documented exports: want 0 findings, got %v", fs)
	}

	// main packages are exempt (their surface is flags, not symbols).
	mainSrc := `package main
func Exported() {}
func main() {}
`
	pkg = loadFixture(t, "pmpr/cmd/tool", "main.go", mainSrc)
	if fs := runRule(t, "doc", pkg); len(fs) != 0 {
		t.Errorf("main package: want 0 findings, got %v", fs)
	}
}

func TestCtxFirstRulePosition(t *testing.T) {
	bad := `package core

import "context"

func solve(n int, ctx context.Context) error { _ = ctx; _ = n; return nil }

type runner interface {
	Run(name string, ctx context.Context) error
}

var handler = func(id int, ctx context.Context) { _ = id; _ = ctx }

type callback func(grain int, ctx context.Context)
`
	pkg := loadFixture(t, "pmpr/internal/core", "ctx_fixture.go", bad)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 4 {
		t.Fatalf("want 4 findings (decl, interface method, literal, named func type), got %d: %v", len(fs), fs)
	}
	// ctx-first signatures (with or without more params) are fine, as
	// are signatures without a context at all.
	good := `package core

import "context"

func solve(ctx context.Context, n int) error { _ = ctx; _ = n; return nil }

type runner interface {
	Run(ctx context.Context) error
}

func pure(a, b int) int { return a + b }
`
	pkg = loadFixture(t, "pmpr/internal/core", "ctx_good.go", good)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 0 {
		t.Errorf("conforming code: want 0 findings, got %v", fs)
	}
	// The position rule applies to commands too.
	pkg = loadFixture(t, "pmpr/cmd/tool", "ctx_fixture.go", bad)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 4 {
		t.Errorf("cmd package position check: want 4 findings, got %v", fs)
	}
}

func TestCtxFirstRuleBackground(t *testing.T) {
	bad := `package core

import "context"

func run() error {
	ctx := context.Background()
	_ = ctx
	todo := context.TODO()
	_ = todo
	return nil
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "bg_fixture.go", bad)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 2 {
		t.Fatalf("internal package: want 2 findings (Background, TODO), got %d: %v", len(fs), fs)
	}
	// Commands own the process lifetime and may mint the root context.
	pkg = loadFixture(t, "pmpr/cmd/tool", "bg_fixture.go", bad)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 0 {
		t.Errorf("cmd package: want 0 findings, got %v", fs)
	}
	// A local package named context is not the stdlib's.
	shadow := `package core

type fakeCtx struct{}

func Background() fakeCtx { return fakeCtx{} }

func run() { _ = Background() }
`
	pkg = loadFixture(t, "pmpr/internal/core", "shadow_ctx.go", shadow)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 0 {
		t.Errorf("non-context Background: want 0 findings, got %v", fs)
	}
	// Suppression works like every other rule.
	suppressed := `package core

import "context"

func run() error {
	//pmvet:ignore ctxfirst -- detached audit goroutine outlives the request
	ctx := context.Background()
	_ = ctx
	return nil
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "bg_suppressed.go", suppressed)
	if fs := runRule(t, "ctxfirst", pkg); len(fs) != 0 {
		t.Errorf("suppressed finding still reported: %v", fs)
	}
}

func TestHotpathRuleFieldBoundClosures(t *testing.T) {
	// The staged kernels bind their passes to state-struct fields once
	// per solve and invoke them through the Batch's loop field; the rule
	// must resolve both the selector call (`b.loop(...)`) and the
	// selector-bound body (`s.pass1`).
	bad := `package core

import "fmt"

type batch struct {
	loop func(n int, body func(lo, hi int))
}

type state struct {
	pass1 func(lo, hi int)
}

func kernel(b *batch, s *state, xs []int) {
	s.pass1 = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fmt.Println(xs[i])
		}
	}
	b.loop(len(xs), s.pass1)
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_field_fixture.go", bad)
	fs := runRule(t, "hotpath", pkg)
	if len(fs) != 1 {
		t.Fatalf("field-bound body: want 1 finding (fmt), got %d: %v", len(fs), fs)
	}
}

func TestRecovercheckRule(t *testing.T) {
	bad := `package core
func a() {
	defer func() {
		recover()
	}()
}
func b() {
	defer func() {
		_ = recover()
	}()
}
func c() {
	defer recover()
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "rec.go", bad)
	fs := runRule(t, "recovercheck", pkg)
	if len(fs) != 3 {
		t.Fatalf("want 3 findings (bare, blank, defer), got %d: %v", len(fs), fs)
	}

	// Binding and converting the recovered value conforms.
	good := `package core
import "fmt"
func f() (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("recovered: %v", rec)
		}
	}()
	return nil
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "rec_good.go", good)
	if fs := runRule(t, "recovercheck", pkg); len(fs) != 0 {
		t.Errorf("conforming recover: want 0 findings, got %v", fs)
	}

	// A local function shadowing the builtin is not a recover.
	shadow := `package core
func recover() int { return 0 }
func g() { recover() }
`
	pkg = loadFixture(t, "pmpr/internal/core", "rec_shadow.go", shadow)
	if fs := runRule(t, "recovercheck", pkg); len(fs) != 0 {
		t.Errorf("shadowed recover: want 0 findings, got %v", fs)
	}

	// Suppression with a rationale works like every other rule.
	suppressed := `package core
func h() {
	defer func() {
		//pmvet:ignore recovercheck -- probe: any panic here is benign
		recover()
	}()
}
`
	pkg = loadFixture(t, "pmpr/internal/core", "rec_suppressed.go", suppressed)
	if fs := runRule(t, "recovercheck", pkg); len(fs) != 0 {
		t.Errorf("suppressed finding still reported: %v", fs)
	}
}
