package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// eventexhaustRule turns journal schema drift into a build break. The
// obs.EventType vocabulary is consumed in several places that must
// stay in lockstep with it — Event.AppendJSON's per-type field
// switch, and pmtop's required-fields validator map — and historically
// a new event type silently fell through those switches until someone
// noticed malformed JSONL. The rule enumerates every constant of the
// obs EventType type, then checks module-wide:
//
//   - every switch whose tag has type obs.EventType and no default
//     clause must have a case for every constant;
//   - every composite literal of a map keyed by obs.EventType must
//     have an entry for every constant.
//
// A switch with a default clause is exempt (non-exhaustiveness is then
// explicit); the SSE stream needs no case of its own because it
// renders through AppendJSON, which this rule pins.
type eventexhaustRule struct{}

func (eventexhaustRule) Name() string { return "eventexhaust" }
func (eventexhaustRule) Doc() string {
	return "switches and maps over obs.EventType must cover every event constant (or carry a default)"
}

// Check is a no-op: eventexhaust is a module rule (see CheckModule).
func (eventexhaustRule) Check(*Package) []Finding { return nil }

// CheckModule finds the EventType vocabulary and audits its consumers.
func (r eventexhaustRule) CheckModule(m *Module) []Finding {
	evType, consts := eventTypeVocabulary(m)
	if evType == nil || len(consts) == 0 {
		return nil
	}
	var out []Finding
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pkg, file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SwitchStmt:
					r.checkSwitch(pkg, n, evType, consts, &out)
				case *ast.CompositeLit:
					r.checkMapLit(pkg, n, evType, consts, &out)
				}
				return true
			})
		}
	}
	return out
}

// eventTypeVocabulary locates the EventType named type in the obs
// package and every declared constant of that type, in declaration
// order.
func eventTypeVocabulary(m *Module) (*types.Named, []*types.Const) {
	var evType *types.Named
	for _, pkg := range m.Pkgs {
		if !strings.HasSuffix(pkg.Path, "internal/obs") || pkg.Types == nil {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("EventType").(*types.TypeName); ok {
			evType, _ = tn.Type().(*types.Named)
		}
	}
	if evType == nil {
		return nil, nil
	}
	var consts []*types.Const
	scope := evType.Obj().Pkg().Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), evType) {
			consts = append(consts, c)
		}
	}
	return evType, consts
}

// checkSwitch audits one switch statement over EventType.
func (r eventexhaustRule) checkSwitch(pkg *Package, sw *ast.SwitchStmt, evType *types.Named, consts []*types.Const, out *[]Finding) {
	if sw.Tag == nil {
		return
	}
	if t := pkg.Info.TypeOf(sw.Tag); t == nil || !types.Identical(t, evType) {
		return
	}
	covered := make(map[string]bool)
	for _, st := range sw.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // a default clause makes non-exhaustiveness explicit
		}
		for _, e := range cc.List {
			if c := constOf(pkg, e); c != nil {
				covered[c.Name()] = true
			}
		}
	}
	missing := missingNames(consts, covered)
	if len(missing) > 0 {
		pkg.findingf(out, sw, r.Name(),
			"switch over obs.EventType misses %s (add cases or a default)",
			strings.Join(missing, ", "))
	}
}

// checkMapLit audits one map literal keyed by EventType.
func (r eventexhaustRule) checkMapLit(pkg *Package, lit *ast.CompositeLit, evType *types.Named, consts []*types.Const, out *[]Finding) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	mt, ok := tv.Type.Underlying().(*types.Map)
	if !ok || !types.Identical(mt.Key(), evType) {
		return
	}
	covered := make(map[string]bool)
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if c := constOf(pkg, kv.Key); c != nil {
			covered[c.Name()] = true
		}
	}
	missing := missingNames(consts, covered)
	if len(missing) > 0 {
		pkg.findingf(out, lit, r.Name(),
			"map keyed by obs.EventType misses %s (every event type needs an entry)",
			strings.Join(missing, ", "))
	}
}

// constOf resolves an expression to the typed constant it names, seen
// through conversions like obs.EventType("x") — those stay anonymous
// and return nil, which is the point: consumers must use the named
// constants.
func constOf(pkg *Package, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := useOf(pkg, e).(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pkg.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// missingNames lists the constants not in covered, in sorted order.
func missingNames(consts []*types.Const, covered map[string]bool) []string {
	var missing []string
	for _, c := range consts {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	return missing
}
