package lint

import "testing"

// Infinite for loop; switch-break taken with the lock held; the code
// after the switch unlocks before the real exit (return). Every real
// path is balanced, but if switch-break is modeled as a loop break, the
// post-loop state wrongly carries the lock.
func TestProbeLockbalanceSwitchBreakInfiniteLoop(t *testing.T) {
	src := `package p

import "sync"

type s struct{ mu sync.Mutex }

func (x *s) f(next func() int) {
	for {
		v := next()
		x.mu.Lock()
		switch v {
		case 1:
			x.mu.Unlock()
			break
		case 2:
			x.mu.Unlock()
		default:
			x.mu.Unlock()
			return
		}
	}
}
`
	pkg := loadFixture(t, "pmpr/internal/p", "p.go", src)
	fs := runRule(t, "lockbalance", pkg)
	if len(fs) != 0 {
		t.Errorf("balanced: want 0 findings, got %v", fs)
	}
}
