package lint

import (
	"testing"
)

// TestRepoLintsClean is the in-process version of the CI pmvet gate:
// the whole module must load, type-check, and produce zero findings.
// Intentional exemptions live as //pmvet:ignore comments in the code,
// never in the tool.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.Module() != "pmpr" {
		t.Fatalf("unexpected module %q", loader.Module())
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestLoaderSinglePackage exercises non-recursive pattern resolution.
func TestLoaderSinglePackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/events")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "pmpr/internal/events" {
		t.Fatalf("want exactly pmpr/internal/events, got %v", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Fatalf("package not fully loaded: %+v", pkgs[0])
	}
	if _, err := loader.Load("./no/such/dir"); err == nil {
		t.Error("want error for unknown pattern")
	}
}
