package lint

import (
	"fmt"
	"strings"
	"testing"

	"pmpr/internal/core"
)

// loadRepo loads and type-checks the whole module from source for the
// in-process repo gates.
func loadRepo(t *testing.T) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.Module() != "pmpr" {
		t.Fatalf("unexpected module %q", loader.Module())
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	return pkgs
}

// TestRepoLintsClean is the in-process version of the CI pmvet gate:
// the whole module must produce zero findings with every rule enabled,
// and — the strict tier — zero stale suppressions. Intentional
// exemptions live as //pmvet:ignore comments in the code, never in the
// tool.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	rep := Analyze(NewModule(loadRepo(t)), Analyzers())
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s", f)
	}
	for _, f := range rep.Stale {
		t.Errorf("stale suppression (prune the directive): %s", f)
	}
}

// TestRepoHotpathCoversRegistry proves the acceptance criterion that
// the transitive hotpath rule roots every kernel the runtime registry
// actually contains: for each registered kernel, the static entry
// discovery must have found its Init/Iterate/Residual methods. This
// links the two worlds — core's init-time registration and pmvet's
// call-site scan for RegisterKernel — so a kernel added without static
// coverage fails here, not silently.
func TestRepoHotpathCoversRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module from source")
	}
	names := core.RegisteredKernels()
	if len(names) < 3 {
		t.Fatalf("suspiciously few registered kernels: %v", names)
	}
	entries := HotpathEntryNames(NewModule(loadRepo(t)))
	have := make(map[string]bool, len(entries))
	for _, e := range entries {
		have[e] = true
	}
	for _, name := range names {
		k, ok := core.LookupKernel(name)
		if !ok {
			t.Fatalf("registry lists %q but lookup fails", name)
		}
		tn := strings.TrimPrefix(fmt.Sprintf("%T", k), "*")
		for _, method := range []string{"Init", "Iterate", "Residual"} {
			if !have[tn+"."+method] {
				t.Errorf("kernel %q (%s): %s not rooted by hotpath; entries: %v", name, tn, method, entries)
			}
		}
	}
}

// TestLoaderSinglePackage exercises non-recursive pattern resolution.
func TestLoaderSinglePackage(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./internal/events")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "pmpr/internal/events" {
		t.Fatalf("want exactly pmpr/internal/events, got %v", pkgs)
	}
	if len(pkgs[0].Files) == 0 || pkgs[0].Types == nil {
		t.Fatalf("package not fully loaded: %+v", pkgs[0])
	}
	if _, err := loader.Load("./no/such/dir"); err == nil {
		t.Error("want error for unknown pattern")
	}
}
