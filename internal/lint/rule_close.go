package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// closecheckRule flags Close/Flush calls whose error result is
// discarded (bare statement, defer, or go) in the IO-heavy packages:
// internal/events and internal/results write the event logs and rank
// series that downstream analyses trust, and the cmd/ front-ends and
// their shared internal/cliutil plumbing own the files those packages
// stream into. A buffered writer reports
// short writes at Flush/Close time — dropping that error turns a full
// disk into silently truncated results. Read-side closes where the
// error is genuinely uninteresting take //pmvet:ignore closecheck with
// a rationale.
type closecheckRule struct{}

func (closecheckRule) Name() string { return "closecheck" }
func (closecheckRule) Doc() string {
	return "no discarded Close/Flush errors in internal/events, internal/results, internal/cliutil, and cmd/*"
}

func closecheckScope(path string) bool {
	return strings.Contains(path, "internal/events") ||
		strings.Contains(path, "internal/results") ||
		strings.Contains(path, "internal/cliutil") ||
		strings.Contains(path, "/cmd/")
}

func (r closecheckRule) Check(pkg *Package) []Finding {
	if !closecheckScope(pkg.Path) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call, kind = st.Call, "defer "
			case *ast.GoStmt:
				call, kind = st.Call, "go "
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Flush") {
				return true
			}
			if !callReturnsValue(pkg, call) {
				return true
			}
			pkg.findingf(&out, call, r.Name(),
				"%s%s error discarded (a failed close/flush on a write path loses data)",
				kind, types.ExprString(call.Fun))
			return true
		})
	}
	return out
}

// callReturnsValue reports whether the call has at least one result.
// Without type info (fixture sources) it assumes it does.
func callReturnsValue(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return true
	}
	return !tv.IsVoid()
}
