package lint

import (
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicmixRule enforces the module's single-synchronization-discipline
// invariant on struct fields: a field accessed through sync/atomic
// anywhere must be accessed through sync/atomic everywhere — a single
// plain load racing an atomic store is undefined behavior the race
// detector only catches if the schedule cooperates. The rule joins the
// effect layer's per-function field-access records across the whole
// module:
//
//   - A field with at least one function-style atomic access
//     (atomic.AddInt64(&x.f, ...)) must have no plain access outside
//     constructor/init paths (functions named init, New*, or new*,
//     where the struct is not yet shared).
//   - A typed atomic field (atomic.Int64, atomic.Bool, ...) must never
//     be copied by value or assigned over — Go vet catches some of
//     these, but only inside one package at a time.
type atomicmixRule struct{}

func (atomicmixRule) Name() string { return "atomicmix" }
func (atomicmixRule) Doc() string {
	return "fields accessed via sync/atomic must not also be accessed plainly outside init/ctor paths"
}

// Check is a no-op: atomicmix is a module rule (see CheckModule).
func (atomicmixRule) Check(*Package) []Finding { return nil }

// CheckModule joins field accesses module-wide and reports the mixes.
func (r atomicmixRule) CheckModule(m *Module) []Finding {
	effects := m.Effects()
	g := m.Graph()

	type access struct {
		node *FuncNode
		FieldAccess
	}
	byField := make(map[*types.Var][]access)
	for _, n := range g.Nodes {
		fe := effects[n]
		if fe == nil {
			continue
		}
		for _, a := range fe.Accesses {
			byField[a.Field] = append(byField[a.Field], access{node: n, FieldAccess: a})
		}
	}

	var out []Finding
	seen := make(map[token.Pos]bool)
	emit := func(n *FuncNode, pos token.Pos, msg string) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{Pos: n.Pkg.Fset.Position(pos), Rule: r.Name(), Msg: msg})
	}

	for field, accs := range byField {
		atomicCount := 0
		for _, a := range accs {
			if a.Mode == AccessAtomic {
				atomicCount++
			}
		}
		for _, a := range accs {
			switch a.Mode {
			case AccessCopy:
				// Copying a typed atomic is always wrong, mixed or not.
				emit(a.node, a.Pos, "typed atomic field "+fieldDisplayName(field)+
					" copied or assigned by value (use its Load/Store methods)")
			case AccessPlain:
				if atomicCount == 0 || inCtorPath(a.node) {
					continue
				}
				emit(a.node, a.Pos, "field "+fieldDisplayName(field)+
					" is accessed via sync/atomic elsewhere but plainly here (in "+
					shortName(a.node.Name)+")")
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// inCtorPath reports whether the node is a constructor or initializer,
// where the struct is not yet visible to other goroutines: package
// init functions, New*/new* constructors, and literals nested inside
// them (their names extend the parent's).
func inCtorPath(n *FuncNode) bool {
	name := shortName(n.Name)
	// Strip any .funcN literal suffixes so closures inherit the parent's
	// classification.
	if i := strings.Index(name, ".func"); i >= 0 {
		name = name[:i]
	}
	// The function segment is the last dot-separated part (methods are
	// Recv.Name; constructors are plain names).
	if i := strings.LastIndex(name, "."); i >= 0 {
		name = name[i+1:]
	}
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// fieldDisplayName renders Struct.field for findings.
func fieldDisplayName(field *types.Var) string {
	name := field.Name()
	if field.Pkg() != nil {
		return field.Pkg().Name() + "." + name
	}
	return name
}
