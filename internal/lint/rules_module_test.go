package lint

import (
	"strings"
	"testing"
)

// analyzeFixture runs the named rules over one fixture package and
// returns the full report (findings, stale suppressions, timings).
func analyzeFixture(t *testing.T, rules string, pkg *Package) *Report {
	t.Helper()
	as, err := ByName(rules)
	if err != nil {
		t.Fatalf("ByName(%q): %v", rules, err)
	}
	return Analyze(NewModule([]*Package{pkg}), as)
}

func TestAtomicmixRule(t *testing.T) {
	// A field touched by atomic ops in one function and by plain
	// reads/writes in another is a torn-access bug waiting to happen.
	mixed := `package obs

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n }
`
	pkg := loadFixture(t, "pmpr/internal/obs", "counter.go", mixed)
	fs := runRule(t, "atomicmix", pkg)
	if len(fs) != 1 {
		t.Fatalf("mixed access: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "plain") || !strings.Contains(fs[0].Msg, "n") {
		t.Errorf("finding %q should name the plainly-accessed field", fs[0].Msg)
	}

	// All-atomic access is the fix and must be clean.
	clean := `package obs

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return atomic.LoadInt64(&c.n) }
`
	pkg = loadFixture(t, "pmpr/internal/obs", "counter_clean.go", clean)
	if fs := runRule(t, "atomicmix", pkg); len(fs) != 0 {
		t.Errorf("all-atomic access: want 0 findings, got %v", fs)
	}

	// Plain writes inside a constructor are pre-publication and exempt.
	ctor := `package obs

import "sync/atomic"

type counter struct{ n int64 }

func newCounter(seed int64) *counter {
	c := &counter{}
	c.n = seed
	return c
}

func (c *counter) bump() { atomic.AddInt64(&c.n, 1) }
`
	pkg = loadFixture(t, "pmpr/internal/obs", "counter_ctor.go", ctor)
	if fs := runRule(t, "atomicmix", pkg); len(fs) != 0 {
		t.Errorf("constructor write: want 0 findings, got %v", fs)
	}

	// Copying a typed atomic by value silently drops the atomicity; the
	// vet-style copylock check misses struct-field reads like this.
	copied := `package obs

import "sync/atomic"

type gauge struct{ v atomic.Int64 }

func snap(g *gauge) atomic.Int64 { return g.v }
`
	pkg = loadFixture(t, "pmpr/internal/obs", "gauge.go", copied)
	fs = runRule(t, "atomicmix", pkg)
	if len(fs) != 1 {
		t.Fatalf("typed atomic copy: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "copied or assigned by value") {
		t.Errorf("finding %q should explain the by-value copy", fs[0].Msg)
	}

	// Using the typed atomic through its methods is clean.
	typedOK := `package obs

import "sync/atomic"

type gauge struct{ v atomic.Int64 }

func (g *gauge) set(x int64) { g.v.Store(x) }

func (g *gauge) get() int64 { return g.v.Load() }
`
	pkg = loadFixture(t, "pmpr/internal/obs", "gauge_clean.go", typedOK)
	if fs := runRule(t, "atomicmix", pkg); len(fs) != 0 {
		t.Errorf("typed atomic via methods: want 0 findings, got %v", fs)
	}
}

func TestGoleakRule(t *testing.T) {
	// One undisciplined goroutine among four accepted shutdown shapes:
	// ctx.Done select, WaitGroup.Done, single-send handoff, and
	// close-joined range. Only the spinner should be flagged.
	src := `package obs

import (
	"context"
	"sync"
)

func spin() {
	go func() {
		for {
		}
	}()
}

func watchCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func joinWG(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}

func handoff(errc chan error, work func() error) {
	go func() { errc <- work() }()
}

func drain(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}
`
	pkg := loadFixture(t, "pmpr/internal/obs", "leak.go", src)
	fs := runRule(t, "goleak", pkg)
	if len(fs) != 1 {
		t.Fatalf("want exactly the undisciplined goroutine flagged, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "no visible exit discipline") {
		t.Errorf("finding %q should state the missing discipline", fs[0].Msg)
	}
	if fs[0].Pos.Line != 9 {
		t.Errorf("finding should point at the spin goroutine (line 9), got line %d", fs[0].Pos.Line)
	}
}

func TestLockbalanceRule(t *testing.T) {
	// Early return while the mutex is held: the classic leak.
	leak := `package obs

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) get(fail bool) int {
	s.mu.Lock()
	if fail {
		return -1
	}
	s.mu.Unlock()
	return s.n
}
`
	pkg := loadFixture(t, "pmpr/internal/obs", "store.go", leak)
	fs := runRule(t, "lockbalance", pkg)
	if len(fs) != 1 {
		t.Fatalf("early-return leak: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "still held") {
		t.Errorf("finding %q should say the lock is still held", fs[0].Msg)
	}
	if fs[0].Pos.Line != 13 {
		t.Errorf("finding should point at the leaking return (line 13), got line %d", fs[0].Pos.Line)
	}

	// The three balanced disciplines the repo actually uses: deferred
	// unlock, branch-local unlock before every return, and the worker
	// lock/unlock cycle inside an infinite loop.
	balanced := `package obs

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *store) branchy(fail bool) int {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return -1
	}
	n := s.n
	s.mu.Unlock()
	return n
}

func (s *store) worker(stop *bool) {
	for {
		s.mu.Lock()
		if *stop {
			s.mu.Unlock()
			return
		}
		s.n++
		s.mu.Unlock()
	}
}
`
	pkg = loadFixture(t, "pmpr/internal/obs", "store_ok.go", balanced)
	if fs := runRule(t, "lockbalance", pkg); len(fs) != 0 {
		t.Errorf("balanced disciplines: want 0 findings, got %v", fs)
	}
}

func TestEventexhaustRule(t *testing.T) {
	// A switch over EventType with no default must cover every
	// constant; EvC is missing here.
	missing := `package obs

type EventType uint8

const (
	EvA EventType = iota
	EvB
	EvC
)

func name(t EventType) string {
	switch t {
	case EvA:
		return "a"
	case EvB:
		return "b"
	}
	return "?"
}
`
	pkg := loadFixture(t, "pmpr/internal/obs", "events.go", missing)
	fs := runRule(t, "eventexhaust", pkg)
	if len(fs) != 1 {
		t.Fatalf("missing case: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "EvC") {
		t.Errorf("finding %q should name the missing constant", fs[0].Msg)
	}

	// A default clause is an explicit decision and exempts the switch.
	withDefault := `package obs

type EventType uint8

const (
	EvA EventType = iota
	EvB
	EvC
)

func name(t EventType) string {
	switch t {
	case EvA:
		return "a"
	default:
		return "?"
	}
}
`
	pkg = loadFixture(t, "pmpr/internal/obs", "events_default.go", withDefault)
	if fs := runRule(t, "eventexhaust", pkg); len(fs) != 0 {
		t.Errorf("default clause: want 0 findings, got %v", fs)
	}

	// Map literals keyed by EventType (the pmtop required-fields table)
	// need an entry per constant.
	mapMissing := `package obs

type EventType uint8

const (
	EvA EventType = iota
	EvB
	EvC
)

var names = map[EventType]string{
	EvA: "a",
	EvB: "b",
}
`
	pkg = loadFixture(t, "pmpr/internal/obs", "events_map.go", mapMissing)
	fs = runRule(t, "eventexhaust", pkg)
	if len(fs) != 1 {
		t.Fatalf("missing map key: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "EvC") {
		t.Errorf("finding %q should name the missing key", fs[0].Msg)
	}

	// Complete coverage in both shapes is clean.
	complete := `package obs

type EventType uint8

const (
	EvA EventType = iota
	EvB
	EvC
)

var names = map[EventType]string{
	EvA: "a",
	EvB: "b",
	EvC: "c",
}

func name(t EventType) string {
	switch t {
	case EvA, EvB:
		return "ab"
	case EvC:
		return "c"
	}
	return "?"
}
`
	pkg = loadFixture(t, "pmpr/internal/obs", "events_full.go", complete)
	if fs := runRule(t, "eventexhaust", pkg); len(fs) != 0 {
		t.Errorf("complete coverage: want 0 findings, got %v", fs)
	}
}

func TestStaleIgnoreAudit(t *testing.T) {
	// A directive that no longer suppresses anything is reported so
	// suppressions cannot outlive their finding.
	stale := `package fake

func ok() int { return 1 } //pmvet:ignore panic -- nothing panics here anymore
`
	pkg := loadFixture(t, "pmpr/internal/fake", "stale.go", stale)
	rep := analyzeFixture(t, "panic", pkg)
	if len(rep.Findings) != 0 {
		t.Errorf("want 0 findings, got %v", rep.Findings)
	}
	if len(rep.Stale) != 1 {
		t.Fatalf("want 1 stale directive, got %v", rep.Stale)
	}
	if rep.Stale[0].Rule != StaleRule {
		t.Errorf("stale finding rule = %q, want %q", rep.Stale[0].Rule, StaleRule)
	}

	// Running a rule subset must not flag suppressions that belong to
	// rules outside the subset — they had no chance to be used.
	rep = analyzeFixture(t, "floateq", pkg)
	if len(rep.Stale) != 0 {
		t.Errorf("subset run: want 0 stale directives, got %v", rep.Stale)
	}

	// A directive that actually suppresses a finding is not stale.
	used := `package fake

func boom() { panic("x") } //pmvet:ignore panic -- fixture rationale
`
	pkg = loadFixture(t, "pmpr/internal/fake", "used.go", used)
	rep = analyzeFixture(t, "panic", pkg)
	if len(rep.Findings) != 0 || len(rep.Stale) != 0 {
		t.Errorf("used directive: want no findings and no stale, got %v / %v", rep.Findings, rep.Stale)
	}
}

func TestHotpathRuleTransitiveHelper(t *testing.T) {
	// The pre-callgraph rule only looked inside the loop-body literal,
	// so moving the append one call away defeated it. The transitive
	// rule follows the edge and reports the chain.
	src := `package core

func loop(n int, body func(lo, hi int)) { body(0, n) }

func gather(dst []int, x int) []int { return append(dst, x) }

func kernel(xs []int) {
	var out []int
	loop(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out = gather(out, xs[i])
		}
	})
	_ = out
}
`
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_helper_fixture.go", src)
	fs := runRule(t, "hotpath", pkg)
	if len(fs) != 1 {
		t.Fatalf("append behind a helper: want 1 finding, got %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "gather") {
		t.Errorf("finding %q should show the chain through the helper", fs[0].Msg)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding should point at the append inside the helper (line 5), got line %d", fs[0].Pos.Line)
	}
}

// registeredFixture defines a miniature RegisterKernel world: Init may
// allocate but not block, Iterate/Residual may do neither.
const registeredFixture = `package core

type Kernel interface {
	Init(ch chan int)
	Iterate()
	Residual() float64
}

func RegisterKernel(k Kernel) {}

type fixKernel struct{ buf []float64 }

func (k fixKernel) Init(ch chan int) {
	k.buf = make([]float64, 8)
	<-ch
}

func (k fixKernel) Iterate() {
	k.buf = append(k.buf, 1)
}

func (k fixKernel) Residual() float64 { return 0 }

func register() { RegisterKernel(fixKernel{}) }
`

func TestHotpathRuleRegisteredKernel(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_reg_fixture.go", registeredFixture)
	fs := runRule(t, "hotpath", pkg)
	if len(fs) != 2 {
		t.Fatalf("want 2 findings (Init block, Iterate alloc), got %v", fs)
	}
	var sawInitBlock, sawIterateAlloc bool
	for _, f := range fs {
		switch {
		case strings.Contains(f.Msg, "fixKernel.Init") && strings.Contains(f.Msg, "block/chan"):
			sawInitBlock = true
		case strings.Contains(f.Msg, "fixKernel.Iterate") && strings.Contains(f.Msg, "alloc/append"):
			sawIterateAlloc = true
		case strings.Contains(f.Msg, "fixKernel.Init") && strings.Contains(f.Msg, "alloc/"):
			t.Errorf("Init is allowed to allocate by the kernel contract, got %v", f)
		default:
			t.Errorf("unexpected finding %v", f)
		}
	}
	if !sawInitBlock || !sawIterateAlloc {
		t.Errorf("want Init-block and Iterate-alloc findings, got %v", fs)
	}
}

func TestHotpathEntryNames(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/core", "kernel_reg2_fixture.go", registeredFixture)
	names := HotpathEntryNames(NewModule([]*Package{pkg}))
	for _, want := range []string{"core.fixKernel.Init", "core.fixKernel.Iterate", "core.fixKernel.Residual"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("entry %q missing from HotpathEntryNames %v", want, names)
		}
	}
}

func TestEffortQuickScopesParallelForEntries(t *testing.T) {
	// Under -effort quick, loop bodies outside internal/core are not
	// rooted; under full they are. Quick keeps pre-commit fast without
	// weakening the kernel guarantees, which are core-side.
	src := `package streaming

type pool struct{}

func (pool) ParallelFor(n, grain int, body func(lo, hi int)) { body(0, n) }

func drive(p pool, xs []int) {
	var log []int
	p.ParallelFor(len(xs), 1, func(lo, hi int) {
		log = append(log, 1)
	})
	_ = log
}
`
	pkg := loadFixture(t, "pmpr/internal/streaming", "runner.go", src)
	as, err := ByName("hotpath")
	if err != nil {
		t.Fatal(err)
	}

	full := NewModule([]*Package{pkg})
	if fs := Analyze(full, as).Findings; len(fs) != 1 {
		t.Errorf("effort=full: want 1 finding, got %v", fs)
	}

	quick := NewModule([]*Package{pkg})
	quick.Effort = EffortQuick
	if fs := Analyze(quick, as).Findings; len(fs) != 0 {
		t.Errorf("effort=quick: want 0 findings outside core, got %v", fs)
	}
}
