package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// floateqRule flags == and != between floating-point operands. Rank
// vectors are built by iterative accumulation, so two mathematically
// equal ranks rarely share a bit pattern; exact comparison silently
// changes tie-breaks and convergence decisions. Comparisons against the
// constant zero are exempt: the kernels use exactly-assigned 0 as the
// "dangling / inactive" sentinel, which is a well-defined bit test.
type floateqRule struct{}

func (floateqRule) Name() string { return "floateq" }
func (floateqRule) Doc() string {
	return "no ==/!= on float operands outside tests (exact-zero sentinel compares are exempt)"
}

func (r floateqRule) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		if isTestFile(pkg, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pkg, be.X) && !isFloatExpr(pkg, be.Y) {
				return true
			}
			if isZeroConst(pkg, be.X) || isZeroConst(pkg, be.Y) {
				return true
			}
			pkg.findingf(&out, be, r.Name(),
				"floating-point %s comparison (use a tolerance, or compare ordered: < then >)", be.Op)
			return true
		})
	}
	return out
}

func isFloatExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
