// This file is the first half of pmvet's facts layer: a module-wide
// call graph over every loaded package. The rules layer (rule_*.go)
// used to be purely syntactic — each rule looked at one statement at a
// time — which cannot prove the whole-program properties the engine
// now depends on ("nothing reachable from Kernel.Iterate allocates").
// The graph makes those properties checkable: it resolves direct
// calls, devirtualizes method calls through module interfaces (the
// `core.Kernel` registry, `sched.Body`-style callbacks), and tracks
// function values as they flow through assignments, struct fields,
// parameters, and results, so a kernel pass bound to a field in Init
// and invoked through `b.loop(n, s.pass1)` three layers later is a
// plain edge.
//
// The function-value analysis is a small Andersen-style propagation:
// every storage location a func value can occupy (variable, parameter,
// struct field, result slot) is a flow node; assignments and calls add
// subset constraints; resolving a call through a func value may add
// new argument→parameter constraints, so the solver iterates to a
// fixpoint. It is flow- and context-insensitive — deliberately: the
// result over-approximates the real graph, which is the safe direction
// for the reachability rules built on top of it.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// EdgeKind classifies how a call-graph edge was resolved.
type EdgeKind uint8

// The edge kinds, in increasing order of approximation.
const (
	// EdgeCall is a statically resolved call: plain function call,
	// method call on a concrete receiver, or an immediately invoked
	// function literal.
	EdgeCall EdgeKind = iota
	// EdgeIface is a method call through an interface, devirtualized to
	// a concrete implementation declared in the module.
	EdgeIface
	// EdgeFunc is a call through a function value, resolved by the
	// flow analysis to a function whose value reaches the call site.
	EdgeFunc
	// EdgeGo is any of the above launched with a `go` statement.
	EdgeGo
)

// String names the edge kind as printed by WriteGraph.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeIface:
		return "iface"
	case EdgeFunc:
		return "func"
	case EdgeGo:
		return "go"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is one resolved call from a FuncNode to another.
type Edge struct {
	// Callee is the target function.
	Callee *FuncNode
	// Kind records how the target was resolved.
	Kind EdgeKind
	// Site is the call (or go) expression, for positions in findings.
	Site ast.Node
}

// FuncNode is one function in the call graph: a declared function or
// method (Decl != nil) or a function literal (Lit != nil).
type FuncNode struct {
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Decl is the declaration node; nil for literals.
	Decl *ast.FuncDecl
	// Lit is the literal node; nil for declarations.
	Lit *ast.FuncLit
	// Obj is the type-checker object of a declared function; nil for
	// literals.
	Obj *types.Func
	// Name is the canonical display name: "path.Recv.Name" for methods,
	// "path.Name" for functions, and "parent.funcN" for literals,
	// mirroring the runtime's naming so dumps read like stack traces.
	Name string
	// Edges are the node's resolved out-calls in source order,
	// deduplicated by (callee, kind).
	Edges []Edge

	body *ast.BlockStmt
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// CallGraph is the module-wide graph over every loaded package.
type CallGraph struct {
	// Nodes holds every function and literal, in deterministic order
	// (package path, then file position).
	Nodes []*FuncNode

	byObj   map[*types.Func]*FuncNode
	byLit   map[*ast.FuncLit]*FuncNode
	builder *graphBuilder
}

// NodeOf returns the graph node of a declared function, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeOfLit returns the graph node of a function literal, or nil.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// FuncsOf resolves the function values expr (in pkg) may evaluate to,
// using the solved flow system: literals, named functions, and values
// the flow analysis proved can reach the expression (a loop body bound
// to a kernel-state field, a callback stored in a local). Rules use
// this to trace arguments at specific call sites — e.g. the closure
// handed to ParallelFor — without re-deriving the flow solution.
func (g *CallGraph) FuncsOf(pkg *Package, expr ast.Expr) []*FuncNode {
	funcs, keys := g.builder.evalExpr(pkg, expr)
	seen := make(map[*FuncNode]bool)
	var out []*FuncNode
	add := func(f *FuncNode) {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for _, f := range funcs {
		add(f)
	}
	for _, k := range keys {
		for f := range g.builder.sets[k] {
			add(f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// flowKey identifies one storage location a function value can occupy.
// Either obj (a variable, parameter, or struct field) or ret (a
// function's result slot) is set.
type flowKey struct {
	obj types.Object
	ret *FuncNode
	idx int // result index when ret is set
}

// callSite is one unresolved call recorded during the scan, revisited
// by the fixpoint solver.
type callSite struct {
	caller *FuncNode
	call   *ast.CallExpr
	goStmt bool
}

// graphBuilder accumulates the flow constraint system while scanning
// function bodies, then solves it and emits edges.
type graphBuilder struct {
	pkgs  []*Package
	graph *CallGraph

	// sets maps each flow node to the functions known to reach it;
	// succs are the subset edges (everything in key also reaches succ).
	sets  map[flowKey]map[*FuncNode]bool
	succs map[flowKey][]flowKey

	// argsDone records call sites whose argument→parameter constraints
	// were already added for a given callee.
	argsDone map[callSite]map[*FuncNode]bool

	sites   []callSite
	changed bool

	// ifaceCache memoizes interface → implementing-methods lookups.
	ifaceCache map[*types.Interface]map[string][]*FuncNode
	// namedTypes are all named (non-interface) types declared in the
	// module, the devirtualization candidate set.
	namedTypes []*types.Named
}

// BuildCallGraph constructs the module call graph over pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	b := &graphBuilder{
		pkgs: pkgs,
		graph: &CallGraph{
			byObj: make(map[*types.Func]*FuncNode),
			byLit: make(map[*ast.FuncLit]*FuncNode),
		},
		sets:       make(map[flowKey]map[*FuncNode]bool),
		succs:      make(map[flowKey][]flowKey),
		argsDone:   make(map[callSite]map[*FuncNode]bool),
		ifaceCache: make(map[*types.Interface]map[string][]*FuncNode),
	}
	b.collectNodes()
	b.collectNamedTypes()
	for _, n := range b.graph.Nodes {
		b.scanBody(n)
	}
	b.solve()
	for _, s := range b.sites {
		b.emitEdges(s)
	}
	b.graph.builder = b
	return b.graph
}

// collectNodes registers every function declaration and literal as a
// graph node, naming literals parent.funcN in declaration order.
func (b *graphBuilder) collectNodes() {
	for _, pkg := range b.pkgs {
		for _, file := range pkg.Files {
			if isTestFile(pkg, file) {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{
					Pkg:  pkg,
					Decl: fd,
					Obj:  obj,
					Name: declName(pkg, fd),
					body: fd.Body,
				}
				b.graph.Nodes = append(b.graph.Nodes, node)
				if obj != nil {
					b.graph.byObj[obj] = node
				}
				b.collectLits(pkg, node, fd.Body)
			}
		}
	}
}

// collectLits registers the literals nested in body (recursively),
// numbering them under their parent node.
func (b *graphBuilder) collectLits(pkg *Package, parent *FuncNode, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	n := 0
	// Walk without descending into nested literals; each literal
	// recurses with itself as the parent, so numbering nests the way
	// the runtime names closures (f.func1, f.func1.1, ...).
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n++
		child := &FuncNode{
			Pkg:  pkg,
			Lit:  lit,
			Name: fmt.Sprintf("%s.func%d", parent.Name, n),
			body: lit.Body,
		}
		b.graph.Nodes = append(b.graph.Nodes, child)
		b.graph.byLit[lit] = child
		b.collectLits(pkg, child, lit.Body)
		return false
	}
	ast.Inspect(body, walk)
}

// declName renders pkg-qualified function and method names.
func declName(pkg *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if recv := recvTypeName(fd.Recv.List[0].Type); recv != "" {
			name = recv + "." + name
		}
	}
	return pkg.Path + "." + name
}

// recvTypeName extracts the bare receiver type name.
func recvTypeName(t ast.Expr) string {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// collectNamedTypes gathers every named non-interface type declared in
// the module — the candidate set for interface devirtualization.
func (b *graphBuilder) collectNamedTypes() {
	for _, pkg := range b.pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// modulePkg reports whether tp belongs to one of the loaded packages.
func (b *graphBuilder) modulePkg(tp *types.Package) bool {
	if tp == nil {
		return false
	}
	for _, pkg := range b.pkgs {
		if pkg.Types == tp {
			return true
		}
	}
	return false
}

// scanBody records the node's call sites and the flow constraints its
// statements induce. Nested literals are skipped — they are scanned as
// their own nodes.
func (b *graphBuilder) scanBody(n *FuncNode) {
	if n.body == nil {
		return
	}
	pkg := n.Pkg
	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.FuncLit:
			return false // its own node
		case *ast.CallExpr:
			if !isTypeConversion(pkg, st) {
				b.sites = append(b.sites, callSite{caller: n, call: st})
			}
		case *ast.GoStmt:
			b.sites = append(b.sites, callSite{caller: n, call: st.Call, goStmt: true})
			// The call's arguments and nested calls still walk below via
			// the CallExpr case; mark this call resolved as go by
			// skipping the duplicate plain-site record.
			for _, arg := range st.Call.Args {
				ast.Inspect(arg, walk)
			}
			b.flowCallArgsOnly(n, st.Call)
			return false
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if len(st.Lhs) == len(st.Rhs) {
					b.flowInto(pkg, b.lhsKey(pkg, st.Lhs[i]), rhs)
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if i < len(st.Names) {
					if obj := pkg.Info.Defs[st.Names[i]]; obj != nil {
						b.flowInto(pkg, flowKey{obj: obj}, v)
					}
				}
			}
		case *ast.CompositeLit:
			b.flowComposite(pkg, st)
		case *ast.ReturnStmt:
			for i, res := range st.Results {
				b.flowInto(pkg, flowKey{ret: n, idx: i}, res)
			}
		}
		return true
	}
	ast.Inspect(n.body, walk)
}

// flowCallArgsOnly handles the argument flow of a go statement's call
// without re-recording the call site.
func (b *graphBuilder) flowCallArgsOnly(n *FuncNode, call *ast.CallExpr) {
	// Argument→parameter constraints are added during solving, keyed by
	// the recorded site; nothing to do eagerly.
	_ = n
	_ = call
}

// lhsKey resolves an assignment target to its flow node (zero key when
// the target is not a trackable location, e.g. an index expression).
func (b *graphBuilder) lhsKey(pkg *Package, lhs ast.Expr) flowKey {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pkg.Info.Defs[lhs]
		if obj == nil {
			obj = pkg.Info.Uses[lhs]
		}
		if obj != nil {
			return flowKey{obj: obj}
		}
	case *ast.SelectorExpr:
		if obj := pkg.Info.Uses[lhs.Sel]; obj != nil {
			return flowKey{obj: obj}
		}
	case *ast.ParenExpr:
		return b.lhsKey(pkg, lhs.X)
	case *ast.StarExpr:
		return b.lhsKey(pkg, lhs.X)
	}
	return flowKey{}
}

// flowComposite adds field constraints for struct literals, so a
// kernel state assembled as &state{pass: fn} flows fn into the field.
func (b *graphBuilder) flowComposite(pkg *Package, lit *ast.CompositeLit) {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return
	}
	st, ok := deref(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if obj := fieldByName(st, id.Name); obj != nil {
					b.flowInto(pkg, flowKey{obj: obj}, kv.Value)
				}
			}
			continue
		}
		if i < st.NumFields() {
			b.flowInto(pkg, flowKey{obj: st.Field(i)}, elt)
		}
	}
}

func fieldByName(st *types.Struct, name string) *types.Var {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return st.Field(i)
		}
	}
	return nil
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// flowInto adds "everything expr can be flows into dst".
func (b *graphBuilder) flowInto(pkg *Package, dst flowKey, expr ast.Expr) {
	if dst == (flowKey{}) || !funcTyped(pkg, expr) {
		return
	}
	funcs, keys := b.evalExpr(pkg, expr)
	for _, f := range funcs {
		b.addFunc(dst, f)
	}
	for _, k := range keys {
		b.addSubset(k, dst)
	}
}

// funcTyped reports whether expr's static type can hold a function.
func funcTyped(pkg *Package, expr ast.Expr) bool {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return true // no type info: stay conservative
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// evalExpr resolves the function values expr may evaluate to: concrete
// graph nodes plus the flow nodes it reads from.
func (b *graphBuilder) evalExpr(pkg *Package, expr ast.Expr) (funcs []*FuncNode, keys []flowKey) {
	switch e := expr.(type) {
	case *ast.FuncLit:
		if n := b.graph.byLit[e]; n != nil {
			funcs = append(funcs, n)
		}
	case *ast.Ident:
		switch obj := useOf(pkg, e).(type) {
		case *types.Func:
			if n := b.graph.byObj[obj]; n != nil {
				funcs = append(funcs, n)
			}
		case *types.Var:
			keys = append(keys, flowKey{obj: obj})
		}
	case *ast.SelectorExpr:
		switch obj := useOf(pkg, e.Sel).(type) {
		case *types.Func:
			// Method value or package-qualified function reference.
			if n := b.graph.byObj[obj]; n != nil {
				funcs = append(funcs, n)
			}
		case *types.Var:
			keys = append(keys, flowKey{obj: obj})
		}
	case *ast.CallExpr:
		if isTypeConversion(pkg, e) {
			// forLoop(serialLoop): a conversion passes its operand through.
			if len(e.Args) == 1 {
				return b.evalExpr(pkg, e.Args[0])
			}
			return nil, nil
		}
		// A call used as a value: flow from the callee's result slot.
		for _, callee := range b.staticCallees(pkg, e) {
			keys = append(keys, flowKey{ret: callee, idx: 0})
		}
	case *ast.ParenExpr:
		return b.evalExpr(pkg, e.X)
	}
	return funcs, keys
}

// useOf resolves an identifier to its object (uses, then defs).
func useOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// isTypeConversion reports whether the call expression is actually a
// conversion (its Fun names a type).
func isTypeConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// staticCallees resolves the statically known callees of a call: the
// named function or method (concrete receivers only), or an
// immediately invoked literal. Interface and func-value calls return
// nil here; they are resolved by the solver.
func (b *graphBuilder) staticCallees(pkg *Package, call *ast.CallExpr) []*FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := useOf(pkg, fun).(*types.Func); ok {
			if n := b.graph.byObj[obj]; n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := useOf(pkg, fun.Sel).(*types.Func); ok {
			if recvInterface(obj) == nil {
				if n := b.graph.byObj[obj]; n != nil {
					return []*FuncNode{n}
				}
			}
		}
	case *ast.FuncLit:
		if n := b.graph.byLit[fun]; n != nil {
			return []*FuncNode{n}
		}
	}
	return nil
}

// recvInterface returns the interface a method is declared on, or nil
// for concrete (or non-) methods.
func recvInterface(obj *types.Func) *types.Interface {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// addFunc inserts f into dst's set, marking the system changed.
func (b *graphBuilder) addFunc(dst flowKey, f *FuncNode) {
	set := b.sets[dst]
	if set == nil {
		set = make(map[*FuncNode]bool)
		b.sets[dst] = set
	}
	if !set[f] {
		set[f] = true
		b.changed = true
	}
}

// addSubset records src ⊆ dst.
func (b *graphBuilder) addSubset(src, dst flowKey) {
	for _, existing := range b.succs[src] {
		if existing == dst {
			return
		}
	}
	b.succs[src] = append(b.succs[src], dst)
	b.changed = true
}

// solve iterates subset propagation and call-site argument binding to
// a fixpoint.
func (b *graphBuilder) solve() {
	for round := 0; round < 64; round++ {
		b.changed = false
		b.propagate()
		for _, s := range b.sites {
			b.bindArgs(s)
		}
		if !b.changed {
			return
		}
	}
}

// propagate pushes sets across subset edges until stable.
func (b *graphBuilder) propagate() {
	for stable := false; !stable; {
		stable = true
		for src, dsts := range b.succs {
			for f := range b.sets[src] {
				for _, dst := range dsts {
					set := b.sets[dst]
					if set == nil {
						set = make(map[*FuncNode]bool)
						b.sets[dst] = set
					}
					if !set[f] {
						set[f] = true
						stable = false
						b.changed = true
					}
				}
			}
		}
	}
}

// calleesOf computes the current callee set of a site: static targets,
// interface implementations, and flow-resolved function values.
func (b *graphBuilder) calleesOf(s callSite) map[*FuncNode]EdgeKind {
	pkg := s.caller.Pkg
	out := make(map[*FuncNode]EdgeKind)
	for _, n := range b.staticCallees(pkg, s.call) {
		out[n] = EdgeCall
	}
	if len(out) == 0 {
		if sel, ok := ast.Unparen(s.call.Fun).(*ast.SelectorExpr); ok {
			if obj, ok := useOf(pkg, sel.Sel).(*types.Func); ok {
				if iface := recvInterface(obj); iface != nil && b.modulePkg(obj.Pkg()) {
					for _, impl := range b.implementations(iface, obj.Name()) {
						out[impl] = EdgeIface
					}
				}
			}
		}
	}
	if len(out) == 0 {
		// A call through a function value: union the flow sets.
		funcs, keys := b.evalExpr(pkg, s.call.Fun)
		for _, f := range funcs {
			out[f] = EdgeFunc
		}
		for _, k := range keys {
			for f := range b.sets[k] {
				// Guard against signature mismatch from over-merged flow
				// nodes: a callee must at least be callable.
				out[f] = EdgeFunc
			}
		}
	}
	return out
}

// bindArgs adds argument→parameter and receiver-free constraints for
// every callee currently known at the site.
func (b *graphBuilder) bindArgs(s callSite) {
	pkg := s.caller.Pkg
	for callee := range b.calleesOf(s) {
		done := b.argsDone[s]
		if done == nil {
			done = make(map[*FuncNode]bool)
			b.argsDone[s] = done
		}
		if done[callee] {
			continue
		}
		done[callee] = true
		params := calleeParams(callee)
		for i, arg := range s.call.Args {
			if i >= len(params) {
				break
			}
			if params[i] != nil {
				b.flowInto(pkg, flowKey{obj: params[i]}, arg)
			}
		}
	}
}

// calleeParams lists a node's parameter objects in order.
func calleeParams(n *FuncNode) []types.Object {
	var fields []*ast.Field
	switch {
	case n.Decl != nil && n.Decl.Type.Params != nil:
		fields = n.Decl.Type.Params.List
	case n.Lit != nil && n.Lit.Type.Params != nil:
		fields = n.Lit.Type.Params.List
	}
	var out []types.Object
	for _, f := range fields {
		if len(f.Names) == 0 {
			out = append(out, nil) // unnamed parameter: nothing flows
			continue
		}
		for _, name := range f.Names {
			out = append(out, n.Pkg.Info.Defs[name])
		}
	}
	return out
}

// implementations returns the declared methods named method of every
// module type satisfying iface.
func (b *graphBuilder) implementations(iface *types.Interface, method string) []*FuncNode {
	cache := b.ifaceCache[iface]
	if cache == nil {
		cache = make(map[string][]*FuncNode)
		b.ifaceCache[iface] = cache
	}
	if impls, ok := cache[method]; ok {
		return impls
	}
	var impls []*FuncNode
	for _, named := range b.namedTypes {
		var recv types.Type = named
		if !types.Implements(recv, iface) {
			recv = types.NewPointer(named)
			if !types.Implements(recv, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if n := b.graph.byObj[fn]; n != nil {
				impls = append(impls, n)
			}
		}
	}
	cache[method] = impls
	return impls
}

// emitEdges writes the final resolved edges of a site onto its caller.
// Dedup is per call site, not per (callee, kind): a function that calls
// the same callee from several sites keeps one edge per site, because
// site-reading consumers (registered-kernel discovery reading the
// argument expression, goleak flagging each launch) must see every
// site, not just the first. Reachability walks are unaffected — they
// track visited nodes — and WriteGraph dedups at render time.
func (b *graphBuilder) emitEdges(s callSite) {
	for callee, kind := range b.calleesOf(s) {
		if s.goStmt {
			kind = EdgeGo
		}
		dup := false
		for _, e := range s.caller.Edges {
			if e.Callee == callee && e.Kind == kind && e.Site == s.call {
				dup = true
				break
			}
		}
		if !dup {
			s.caller.Edges = append(s.caller.Edges, Edge{Callee: callee, Kind: kind, Site: s.call})
		}
	}
}

// WriteGraph dumps the graph as sorted "caller -> callee [kind]"
// lines — the pmvet -graph format, and the shape the golden-file test
// pins. Nodes without out-edges are listed alone so the node set is
// visible too.
func (g *CallGraph) WriteGraph(w io.Writer) error {
	nodes := make([]*FuncNode, len(g.Nodes))
	copy(nodes, g.Nodes)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for _, n := range nodes {
		// Collapse per-site edges: the dump names relations, not sites.
		lines := make([]string, 0, len(n.Edges))
		lineSeen := make(map[string]bool, len(n.Edges))
		for _, e := range n.Edges {
			l := fmt.Sprintf("  -> %s [%s]", e.Callee.Name, e.Kind)
			if !lineSeen[l] {
				lineSeen[l] = true
				lines = append(lines, l)
			}
		}
		sort.Strings(lines)
		if _, err := fmt.Fprintln(w, n.Name); err != nil {
			return err
		}
		for _, l := range lines {
			if _, err := fmt.Fprintln(w, l); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReachableFrom walks edges from entry, skipping nodes for which skip
// returns true (nil = never skip), and returns every visited node with
// its breadth-first call chain from entry (entry itself excluded).
// Chains make findings debuggable: the rule can print how a forbidden
// effect is reached.
func (g *CallGraph) ReachableFrom(entry *FuncNode, skip func(*FuncNode) bool) map[*FuncNode][]string {
	parents := map[*FuncNode]*FuncNode{entry: nil}
	queue := []*FuncNode{entry}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			c := e.Callee
			if _, seen := parents[c]; seen {
				continue
			}
			if skip != nil && skip(c) {
				continue
			}
			parents[c] = n
			queue = append(queue, c)
		}
	}
	out := make(map[*FuncNode][]string, len(parents))
	for n := range parents {
		var chain []string
		for p := n; p != nil; p = parents[p] {
			chain = append(chain, shortName(p.Name))
		}
		// Reverse into entry-first order.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		out[n] = chain
	}
	return out
}

// shortName strips the module-path prefix for readable chains.
func shortName(name string) string {
	if i := strings.LastIndex(name, "/"); i >= 0 {
		return name[i+1:]
	}
	return name
}
