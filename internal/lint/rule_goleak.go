package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// goleakRule audits every goroutine launch site in the module for an
// exit discipline. A `go` statement with no visible way to stop is how
// engines accumulate zombie goroutines across runs — each one holds
// its stack, its captured references, and possibly a lock. The rule
// accepts a launch when the launched body satisfies any of:
//
//   - it selects on (or receives from) a context's Done channel, so
//     cancellation reaches it;
//   - it calls Done on a sync.WaitGroup (directly or deferred), so a
//     joiner can wait for it;
//   - it is a single-send handoff — a one-statement body whose only
//     statement sends on a channel (the `go func() { ch <- f() }()`
//     idiom, where the goroutine's lifetime is exactly one blocking
//     call and the channel is the join);
//   - it receives from a channel in a loop terminated by channel close
//     (a `for range ch` worker, joined by closing the channel).
//
// Anything else — including a launch the analyzer cannot resolve to a
// body — is flagged for a fix or a reviewed //pmvet:ignore with the
// actual join protocol in the rationale.
type goleakRule struct{}

func (goleakRule) Name() string { return "goleak" }
func (goleakRule) Doc() string {
	return "every go statement must select on ctx.Done, join via WaitGroup, hand off on a channel, or range a closed channel"
}

// Check is a no-op: goleak is a module rule (see CheckModule).
func (goleakRule) Check(*Package) []Finding { return nil }

// CheckModule inspects the body launched by every EdgeGo edge.
func (r goleakRule) CheckModule(m *Module) []Finding {
	g := m.Graph()
	var out []Finding
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			if e.Kind != EdgeGo {
				continue
			}
			body := e.Callee.body
			if body == nil {
				out = append(out, Finding{
					Pos:  n.Pkg.Fset.Position(e.Site.Pos()),
					Rule: r.Name(),
					Msg:  "goroutine launches " + shortName(e.Callee.Name) + ", whose exit discipline cannot be verified (no body)",
				})
				continue
			}
			if goroutineDisciplined(e.Callee.Pkg, body) {
				continue
			}
			out = append(out, Finding{
				Pos:  n.Pkg.Fset.Position(e.Site.Pos()),
				Rule: r.Name(),
				Msg: "goroutine " + shortName(e.Callee.Name) +
					" has no visible exit discipline (no ctx.Done select, WaitGroup.Done, channel handoff, or close-joined range)",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// goroutineDisciplined reports whether the launched body shows one of
// the accepted exit disciplines.
func goroutineDisciplined(pkg *Package, body *ast.BlockStmt) bool {
	// Single-send handoff: the whole body is one channel send.
	if len(body.List) == 1 {
		if _, ok := body.List[0].(*ast.SendStmt); ok {
			return true
		}
	}
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch e := node.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				// ctx.Done() anywhere (a select case, a receive) counts:
				// cancellation is wired in.
				if sel.Sel.Name == "Done" && isContextExpr(pkg, sel.X) {
					found = true
				}
				// wg.Done() (including deferred) marks a joinable goroutine.
				if sel.Sel.Name == "Done" && isWaitGroupExpr(pkg, sel.X) {
					found = true
				}
			}
		case *ast.RangeStmt:
			// for range ch: terminated by close(ch).
			if t := pkg.Info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isContextExpr reports whether e's type is context.Context.
func isContextExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isWaitGroupExpr reports whether e's type is sync.WaitGroup.
func isWaitGroupExpr(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	named, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
