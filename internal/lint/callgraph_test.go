package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// callgraphFixture is a miniature of the engine's dispatch shapes: an
// interface devirtualized to its implementations (Kernel-style), a
// function value bound to a struct field (sched.Body-style), and a
// goroutine launch. The golden file pins all three edge kinds.
const callgraphFixture = `package fixture

type Kernel interface{ Step() }

type fast struct{}

func (fast) Step() { helper() }

type slow struct{}

func (slow) Step() {}

func helper() {}

type batch struct{ body func() }

func drive(k Kernel) {
	k.Step()
	b := batch{body: helper}
	b.body()
	go helper()
}
`

// TestCallGraphGolden pins the -graph output shape and the
// devirtualization behavior: the interface call resolves to every
// module implementation, the field-bound function value resolves
// through the flow analysis, and the go statement is kept distinct.
func TestCallGraphGolden(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/fixture", "graph_fixture.go", callgraphFixture)
	g := BuildCallGraph([]*Package{pkg})
	var buf bytes.Buffer
	if err := g.WriteGraph(&buf); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "callgraph.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	wantBytes, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if want := string(wantBytes); got != want {
		t.Errorf("call graph drifted from golden (run with -update to accept):\n--- want ---\n%s--- got ---\n%s", want, got)
	}
}

// TestReachableFromChains checks the breadth-first chains that hotpath
// findings print: every reachable node carries its path from the entry.
func TestReachableFromChains(t *testing.T) {
	pkg := loadFixture(t, "pmpr/internal/fixture", "graph_chain_fixture.go", callgraphFixture)
	g := BuildCallGraph([]*Package{pkg})
	var drive *FuncNode
	for _, n := range g.Nodes {
		if n.Name == "pmpr/internal/fixture.drive" {
			drive = n
		}
	}
	if drive == nil {
		t.Fatal("drive node not found")
	}
	reach := g.ReachableFrom(drive, nil)
	var helperChain []string
	for n, chain := range reach {
		if n.Name == "pmpr/internal/fixture.helper" {
			helperChain = chain
		}
	}
	if helperChain == nil {
		t.Fatalf("helper not reachable from drive; reachable set: %v", reach)
	}
	joined := strings.Join(helperChain, " → ")
	if !strings.HasPrefix(joined, "fixture.drive") || !strings.HasSuffix(joined, "fixture.helper") {
		t.Errorf("chain %q should run from drive to helper", joined)
	}

	// Skipping every Step implementation severs the devirtualized leg
	// but helper stays reachable through the direct edges.
	reach = g.ReachableFrom(drive, func(n *FuncNode) bool {
		return strings.HasSuffix(n.Name, ".Step")
	})
	for n := range reach {
		if strings.HasSuffix(n.Name, ".Step") {
			t.Errorf("skipped node %s still in reachable set", n.Name)
		}
	}
	found := false
	for n := range reach {
		if n.Name == "pmpr/internal/fixture.helper" {
			found = true
		}
	}
	if !found {
		t.Error("helper should stay reachable through the direct call edges")
	}
}
