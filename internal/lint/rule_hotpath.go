package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotpathRule proves the engine's central performance invariant
// transitively: nothing reachable from a registered kernel's hot
// methods allocates or blocks. The old version of this rule was
// syntactic — it looked inside the loop-body literals at the call site
// and could be defeated by one level of indirection (move the append
// into a helper and the rule went quiet). This version walks the
// module call graph from two families of entry points:
//
//   - Every kernel registered via core.RegisterKernel: Iterate and
//     Residual may neither allocate nor block anywhere in their
//     transitive call tree; Init may allocate (the documented kernel
//     contract amortizes one boxed-state allocation per batch there)
//     but must not block.
//   - Every closure handed to ParallelFor/ParallelForCtx anywhere in
//     the module (internal/core only under -effort quick): inside
//     internal/core the full no-alloc/no-block ban applies; elsewhere
//     the ban is the classic hot-loop set — fmt/log-style calls,
//     append, map allocation, string concatenation — so analysis
//     loop bodies that legitimately make scratch slices stay legal.
//
// The traversal does not descend into internal/sched itself: the
// scheduler is the audited synchronization substrate (its locks and
// sleeps are the mechanism that runs the hot loops, checked by
// lockbalance/goleak instead), and bodies passed to it are still
// traced because the flow analysis connects them to the loop drivers
// in internal/core.
type hotpathRule struct{}

func (hotpathRule) Name() string { return "hotpath" }
func (hotpathRule) Doc() string {
	return "no alloc/block effect reachable from registered kernels' Init/Iterate/Residual or ParallelFor bodies"
}

// Check is a no-op: hotpath is a module rule (see CheckModule).
func (hotpathRule) Check(*Package) []Finding { return nil }

// hotBan selects which effect kinds are forbidden for one entry.
type hotBan uint8

// The ban levels, strictest first.
const (
	// banAllocBlock forbids every alloc and block effect (kernel
	// Iterate/Residual, core loop bodies).
	banAllocBlock hotBan = iota
	// banBlock forbids only blocking (kernel Init).
	banBlock
	// banClassic forbids the classic hot-loop set: fmt/log calls,
	// append, map allocation, string concat (non-core loop bodies).
	banClassic
)

// banned reports whether an effect is forbidden at this ban level.
func (b hotBan) banned(e Effect) bool {
	switch b {
	case banAllocBlock:
		return true // any recorded effect is an alloc or a block
	case banBlock:
		return e.Kind.IsBlock()
	case banClassic:
		switch e.Kind {
		case AllocAppend, AllocConcat, AllocCall, AllocMakeMap:
			return true
		case AllocLit:
			return e.Desc == "map literal"
		}
		return false
	}
	return false
}

// hotEntry is one traversal root with its ban level and a display name
// for the finding message.
type hotEntry struct {
	node *FuncNode
	ban  hotBan
	desc string
}

// CheckModule walks the call graph from every hot entry point and
// flags each banned effect once, with the call chain that reaches it.
func (r hotpathRule) CheckModule(m *Module) []Finding {
	g := m.Graph()
	effects := m.Effects()
	entries := hotpathEntries(m)
	skip := func(n *FuncNode) bool {
		return strings.HasSuffix(n.Pkg.Path, "internal/sched")
	}
	var out []Finding
	type seenKey struct {
		pos  token.Pos
		kind EffectKind
		ban  hotBan
	}
	seen := make(map[seenKey]bool)
	for _, entry := range entries {
		reach := g.ReachableFrom(entry.node, skip)
		// Deterministic order over the reachable set.
		nodes := make([]*FuncNode, 0, len(reach))
		for n := range reach {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
		for _, n := range nodes {
			fe := effects[n]
			if fe == nil {
				continue
			}
			for _, e := range fe.Effects {
				if !entry.ban.banned(e) {
					continue
				}
				key := seenKey{pos: e.Pos, kind: e.Kind, ban: entry.ban}
				if seen[key] {
					continue
				}
				seen[key] = true
				chain := strings.Join(reach[n], " → ")
				out = append(out, Finding{
					Pos:  n.Pkg.Fset.Position(e.Pos),
					Rule: r.Name(),
					Msg: "hot path reachable from " + entry.desc + " has " + e.Kind.String() +
						" (" + e.Desc + "); chain: " + chain,
				})
			}
		}
	}
	return out
}

// kernelMethodBans maps the Kernel hot methods to their ban levels.
// Init is allowed to allocate by the documented kernel contract (one
// boxed state + bound pass closures per batch, amortized across the
// whole window sweep) but must never block; the steady-state methods
// may do neither.
var kernelMethodBans = []struct {
	method string
	ban    hotBan
}{
	{"Init", banBlock},
	{"Iterate", banAllocBlock},
	{"Residual", banAllocBlock},
}

// hotpathEntries discovers the traversal roots: registered kernels'
// hot methods, plus loop bodies at ParallelFor call sites.
func hotpathEntries(m *Module) []hotEntry {
	g := m.Graph()
	var entries []hotEntry
	for _, typ := range registeredKernelTypes(m) {
		tn := typeDisplayName(typ)
		for _, mb := range kernelMethodBans {
			obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, mb.method)
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if node := g.NodeOf(fn); node != nil {
				entries = append(entries, hotEntry{node: node, ban: mb.ban, desc: tn + "." + mb.method})
			}
		}
	}
	entries = append(entries, parallelForEntries(m)...)
	return entries
}

// registeredKernelTypes resolves the concrete type of the argument at
// every core.RegisterKernel call site — the exact set the runtime
// registry will contain, independent of which types merely implement
// the Kernel interface.
func registeredKernelTypes(m *Module) []types.Type {
	g := m.Graph()
	var out []types.Type
	seen := make(map[string]bool)
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			if !strings.HasSuffix(e.Callee.Name, ".RegisterKernel") {
				continue
			}
			call, ok := e.Site.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			t := n.Pkg.Info.TypeOf(call.Args[0])
			if t == nil {
				continue
			}
			key := t.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// typeDisplayName renders a short pkg.Type name for findings.
func typeDisplayName(t types.Type) string {
	if named, ok := deref(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

// hotLoopFile classifies files whose loop-dispatch call sites root a
// transitive entry, and with which ban. Only the per-vertex/per-edge
// loop files count: internal/core's window-level orchestration
// (solve.go dispatch closures) also runs on the pool, but at window
// granularity, where journaling and validation are the entire point —
// rooting those would ban the engine's own bookkeeping.
func hotLoopFile(pkgPath, base string) (hotBan, bool) {
	switch {
	case strings.HasSuffix(pkgPath, "internal/core"):
		if strings.HasPrefix(base, "kernel_") || base == "loop.go" {
			return banAllocBlock, true
		}
	case strings.HasSuffix(pkgPath, "internal/streaming"):
		if base == "runner.go" {
			return banClassic, true
		}
	}
	return 0, false
}

// parallelForEntries finds every loop body handed to the scheduler
// (ParallelFor/ParallelForCtx) or to a kernel forLoop (`loop(...)`,
// `b.loop(...)`) at call sites in the hot loop files, resolved through
// the flow analysis so bodies bound to locals or fields count. Under
// EffortQuick only internal/core sites are rooted.
func parallelForEntries(m *Module) []hotEntry {
	g := m.Graph()
	var entries []hotEntry
	seen := make(map[*FuncNode]hotBan)
	for _, n := range g.Nodes {
		if n.body == nil {
			continue
		}
		pkg := n.Pkg
		base := pathBase(pkg.Fset.Position(n.Pos()).Filename)
		ban, ok := hotLoopFile(pkg.Path, base)
		if !ok {
			continue
		}
		if m.Effort == EffortQuick && !strings.HasSuffix(pkg.Path, "internal/core") {
			continue
		}
		ast.Inspect(n.body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok || !isLoopDispatch(call) || len(call.Args) == 0 {
				return true
			}
			body := call.Args[len(call.Args)-1]
			for _, target := range g.FuncsOf(pkg, body) {
				if prev, ok := seen[target]; ok && prev <= ban {
					continue // already rooted at an equal-or-stricter ban
				}
				seen[target] = ban
				entries = append(entries, hotEntry{
					node: target,
					ban:  ban,
					desc: "loop body " + shortName(target.Name),
				})
			}
			return true
		})
	}
	return entries
}

// isLoopDispatch reports whether the call hands a body to the
// scheduler or a kernel forLoop.
func isLoopDispatch(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "loop"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "ParallelFor", "ParallelForCtx", "loop":
			return true
		}
	}
	return false
}

// pathBase is filepath.Base without the import.
func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// HotpathEntryNames lists the rule's discovered traversal roots (the
// entry descriptions, sorted). The repo gate's registry-coverage test
// uses this to prove every kernel in core's runtime registry is
// actually rooted here.
func HotpathEntryNames(m *Module) []string {
	entries := hotpathEntries(m)
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.desc)
	}
	sort.Strings(names)
	return names
}
